//! Use the circuit substrate directly: build a custom datapath (a 16-bit
//! multiply-accumulate unit), calibrate it, and characterize its timing
//! error behavior under voltage reduction — the library is not limited to
//! the bundled FPU.
//!
//! ```text
//! cargo run --release --example custom_circuit
//! ```

use tei::netlist::{CellLibrary, Netlist, NetlistStats};
use tei::timing::{
    ArrivalSim, DeratingModel, DtaEngine, OperatingPoint, Sta, TimingEngine, VoltageReduction,
};

fn main() {
    // A 16×16→32-bit multiplier with a 32-bit accumulator input.
    let mut nl = Netlist::new("mac16", CellLibrary::nangate45_like());
    let a = nl.add_input_bus("a", 16);
    let b = nl.add_input_bus("b", 16);
    let acc = nl.add_input_bus("acc", 32);
    nl.begin_block("mac/multiply");
    let p = nl.array_multiplier(&a, &b);
    nl.begin_block("mac/accumulate");
    let zero = nl.const_bit(false);
    let (sum, _) = nl.ripple_add(&p, &acc, zero);
    nl.mark_output_bus("result", &sum);

    let stats = NetlistStats::of(&nl);
    println!(
        "mac16: {} gates ({} inputs)",
        stats.logic_gates, stats.inputs
    );

    // Calibrate the static critical path to 3.8 ns; this MAC block runs on
    // a tight 3.0 ns clock domain, so its dynamically excited paths sit
    // close to the capturing edge.
    let clk = 3.0;
    let sta = Sta::analyze(&nl);
    nl.scale_all_delays(3.8 / sta.max_delay());
    println!("calibrated static critical path: 3.80 ns (clock {clk:.1} ns)");

    // Functional check: 123 × 456 + 789.
    let out = nl.eval_u64(&[("a", 123), ("b", 456), ("acc", 789)]);
    assert_eq!(out["result"], 123 * 456 + 789);
    println!("functional check: 123 × 456 + 789 = {}", out["result"]);

    // Dynamic timing analysis across a small operand sweep.
    let engine = DtaEngine::new(nl.clone(), TimingEngine::Arrival, DeratingModel::default());
    let encode = |a_v: u64, b_v: u64, acc_v: u64| -> Vec<bool> {
        (0..16)
            .map(|i| (a_v >> i) & 1 == 1)
            .chain((0..16).map(|i| (b_v >> i) & 1 == 1))
            .chain((0..32).map(|i| (acc_v >> i) & 1 == 1))
            .collect()
    };
    let prev = encode(0x0003, 0x0007, 0);
    let cur = encode(0xffff, 0xfffe, 0xdead_beef);
    for vr in [
        VoltageReduction::Nominal,
        VoltageReduction::VR15,
        VoltageReduction::VR20,
        VoltageReduction::Custom(0.25),
    ] {
        let op = OperatingPoint { vdd: vr.vdd(), clk };
        let out = engine.analyze(&prev, &cur, op);
        println!(
            "{:9}: {} corrupted output bits (mask {:#010x})",
            vr.label(),
            out.flipped_bits(),
            out.mask_u64() as u32
        );
    }

    // Settle-time spread over operand values (the workload-dependence the
    // paper's WA model captures).
    let mut narrow_max = 0.0f64;
    let mut wide_max = 0.0f64;
    for i in 0..40u64 {
        let narrow = encode(i + 1, i + 2, 0);
        let wide = encode(0x8000 | (i * 997), 0x7fff ^ (i * 131), i * 0x0101_0101);
        let rn = ArrivalSim::run(&nl, &encode(0, 0, 0), &narrow);
        let rw = ArrivalSim::run(&nl, &encode(0, 0, 0), &wide);
        let port = nl.output_port("result").unwrap();
        narrow_max = narrow_max.max(rn.max_settle(port));
        wide_max = wide_max.max(rw.max_settle(port));
    }
    println!(
        "settle-time spread: narrow operands ≤ {narrow_max:.2} ns, wide operands ≤ {wide_max:.2} ns"
    );
}
