//! The paper's future-work extensions: evaluate timing errors under
//! temperature variation, transistor aging, and overclocking — all three
//! reduce to delay-inflation factors the same DTA machinery consumes.
//!
//! ```text
//! cargo run --release --example delay_sources
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei::fpu::{FpuTimingSpec, FpuUnit};
use tei::softfloat::{FpOp, FpOpKind, Precision};
use tei::timing::{overclock_factor, AgingModel, ArrivalSim, TemperatureModel, TwoVectorResult};

fn main() {
    let spec = FpuTimingSpec::paper_calibrated();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    println!("generating {op} ...");
    let unit = FpuUnit::generate(op, &spec);
    let dta = unit.dta_netlist();
    let clk = spec.clk;

    // One fixed operand stream; each scenario just changes the factor k.
    let mut rng = StdRng::seed_from_u64(11);
    let mut mk = || {
        let s = (rng.gen::<bool>() as u64) << 63;
        let e = rng.gen_range(950u64..1150) << 52;
        s | e | (rng.gen::<u64>() & ((1 << 52) - 1))
    };
    let n = 1500;
    let mut settles = Vec::with_capacity(n);
    let mut buf = TwoVectorResult::default();
    let mut prev = unit.encode_inputs(mk(), mk());
    for _ in 0..n {
        let cur = unit.encode_inputs(mk(), mk());
        ArrivalSim::run_into(&dta, &prev, &cur, &mut buf);
        settles.push(buf.max_settle(unit.result_port()));
        prev = cur;
    }
    let er = |k: f64| settles.iter().filter(|&&s| s.min(clk) * k > clk).count() as f64 / n as f64;

    println!("\ntemperature sweep at 0.88 V (VR20):");
    let temp = TemperatureModel::default();
    for celsius in [0.0, 25.0, 55.0, 85.0, 110.0] {
        let k = temp.factor(0.88, celsius);
        println!("  {celsius:5.0} °C: k = {k:.3} → ER {:.3e}", er(k));
    }

    println!("\naging sweep at 0.935 V (VR15):");
    let aging = AgingModel::default();
    for years in [0.0, 1.0, 3.0, 7.0, 10.0] {
        let k = aging.factor(0.935, years);
        println!("  {years:4.0} years: k = {k:.3} → ER {:.3e}", er(k));
    }

    println!("\noverclocking sweep at nominal voltage:");
    for pct in [0.0, 0.05, 0.10, 0.15, 0.20] {
        let k = overclock_factor(pct);
        println!(
            "  +{:4.0}% frequency: k = {:.3} → ER {:.3e}",
            100.0 * pct,
            k,
            er(k)
        );
    }
}
