//! Quickstart: the whole cross-layer flow on one floating-point operation
//! and one tiny program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tei::fpu::{FpuTimingSpec, FpuUnit};
use tei::isa::{FReg, ProgramBuilder, Reg};
use tei::softfloat::{FpOp, FpOpKind, Precision};
use tei::timing::{ArrivalSim, Sta, VoltageReduction};
use tei::uarch::FuncCore;

fn main() {
    // 1. Circuit layer: generate the gate-level double-precision multiplier,
    //    calibrated to the paper's post-P&R corner (4.5 ns clock).
    let spec = FpuTimingSpec::paper_calibrated();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let unit = FpuUnit::generate(op, &spec);
    let sta = Sta::analyze(unit.netlist());
    println!(
        "{op}: {} gates, static critical path {:.2} ns (clock {:.1} ns)",
        unit.netlist().len(),
        sta.max_delay(),
        spec.clk
    );

    // 2. Dynamic timing analysis over consecutive operation pairs: most
    //    operands settle early; occasionally one excites a deep path that
    //    misses the capturing edge at reduced voltage.
    let dta = unit.dta_netlist();
    let mut state = 0x5eedu64;
    let mut nextf = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (1000u64 + state % 120) << 52 | (state.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 12)
    };
    let mut prev = unit.encode_inputs(nextf(), nextf());
    let mut shown = 0;
    for i in 0..5000 {
        let (a, b) = (nextf(), nextf());
        let cur = unit.encode_inputs(a, b);
        let r = ArrivalSim::run(&dta, &prev, &cur);
        let settle = r.max_settle(unit.result_port()).min(spec.clk);
        let errs = |vr: VoltageReduction| {
            let k = vr.derating_factor();
            unit.result_port()
                .iter()
                .filter(|&&n| settle * k > spec.clk && r.is_error(n, spec.clk, k))
                .count()
        };
        let e20 = errs(VoltageReduction::VR20);
        if i < 3 || (e20 > 0 && shown < 3) {
            if e20 > 0 {
                shown += 1;
            }
            println!(
                "  op {i:4}: {:13.5e} × {:13.5e}  settle {settle:.2} ns → VR15: {} bits, VR20: {e20} bits corrupted",
                f64::from_bits(a),
                f64::from_bits(b),
                errs(VoltageReduction::VR15),
            );
        }
        prev = cur;
    }

    // 3. Application layer: inject a bitmask into an FP instruction of a
    //    small program and observe the architectural outcome.
    let mut p = ProgramBuilder::new();
    p.fli(FReg::F1, 10.0, Reg::T0);
    p.fli(FReg::F2, 4.0, Reg::T0);
    p.fmul_d(FReg::F10, FReg::F1, FReg::F2);
    p.syscall(tei::isa::Syscall::PutF64);
    p.halt();
    let prog = p.finish();

    let mut golden = FuncCore::with_memory(&prog, 1 << 16);
    golden.run(1000);
    let mut faulty = FuncCore::with_memory(&prog, 1 << 16);
    // Flip mantissa bit 50 of the first fp-mul's destination register.
    faulty.run_with_hook(1000, &mut |ev| {
        if ev.index == 0 {
            ev.result ^ (1 << 50)
        } else {
            ev.result
        }
    });
    let read = |out: &[u8]| f64::from_bits(u64::from_le_bytes(out[..8].try_into().unwrap()));
    println!(
        "golden output: {}, corrupted output: {} → {}",
        read(&golden.output),
        read(&faulty.output),
        if golden.output == faulty.output {
            "Masked"
        } else {
            "SDC"
        }
    );
}
