//! Compare the three error models (DA / IA / WA) on one benchmark — a
//! miniature of the paper's Figure 9/10 experiment.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use tei::core::{campaign, dev, DaModel, InjectionModel, StatModel, TeiError};
use tei::timing::VoltageReduction;
use tei::workloads::{build, BenchmarkId, Scale};

fn main() -> Result<(), TeiError> {
    let mem = 8 << 20;
    let vr = VoltageReduction::VR20;
    println!("generating the calibrated FPU bank ...");
    let (bank, spec) = dev::default_bank();

    let bench = build(BenchmarkId::Sobel, Scale::Test);
    println!("benchmark: {} ({})", bench.id, bench.input_desc);
    let golden = campaign::GoldenRun::capture(&bench, mem, u64::MAX)?;
    println!(
        "golden run: {} instructions, {} FP ops, {} cycles (detailed)",
        golden.instructions, golden.fp_ops, golden.cycles
    );

    // Model development.
    let samples = 4000;
    let trace = dev::TraceSet::capture(&bench.program, mem, u64::MAX, samples);
    let wa = StatModel::workload_aware(&bank, &spec, vr, &trace, samples)?;
    let ia = StatModel::instruction_aware(&bank, &spec, vr, samples, 1)?;
    let da = DaModel::from_fixed(vr, 1e-2); // the paper's published VR20 ratio

    // Application evaluation.
    let cfg = campaign::CampaignConfig {
        runs: 150,
        ..Default::default()
    };
    println!(
        "\n{:9} {:>9} {:>8} {:>6} {:>6} {:>8} {:>7}",
        "model", "ER", "Masked", "SDC", "Crash", "Timeout", "AVM"
    );
    for model in [
        &da as &(dyn InjectionModel + Sync),
        &ia as &(dyn InjectionModel + Sync),
        &wa as &(dyn InjectionModel + Sync),
    ] {
        let r = campaign::run_campaign(bench.id.name(), &golden, model, &cfg);
        let f = r.fractions();
        println!(
            "{:9} {:9.2e} {:7.1}% {:5.1}% {:5.1}% {:7.1}% {:7.3}",
            r.model,
            r.error_ratio,
            100.0 * f[0],
            100.0 * f[1],
            100.0 * f[2],
            100.0 * f[3],
            r.avm()
        );
    }
    println!("\nThe data-agnostic model injects at its fixed ratio regardless of what");
    println!("this workload's operands can actually excite — the divergence the");
    println!("paper quantifies at ~250× on average (Figure 10).");
    Ok(())
}
