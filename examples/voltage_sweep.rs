//! Sweep the supply-voltage reduction level for one benchmark and find the
//! AVM-guided operating point — the paper's Section V.C analysis.
//!
//! ```text
//! cargo run --release --example voltage_sweep [benchmark]
//! ```

use tei::core::{campaign, dev, power, StatModel, TeiError};
use tei::timing::VoltageReduction;
use tei::workloads::{build, BenchmarkId, Scale};

fn main() -> Result<(), TeiError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "k-means".into());
    let id = BenchmarkId::all()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}; using k-means");
            BenchmarkId::Kmeans
        });
    let mem = 8 << 20;
    println!("generating the calibrated FPU bank ...");
    let (bank, spec) = dev::default_bank();
    let bench = build(id, Scale::Test);
    let golden = campaign::GoldenRun::capture(&bench, mem, u64::MAX)?;
    let samples = 4000;
    let trace = dev::TraceSet::capture(&bench.program, mem, u64::MAX, samples);

    println!(
        "\n{}: sweeping supply reduction with the workload-aware model\n",
        id.name()
    );
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>14}",
        "VR", "Vdd", "WA-ER", "AVM", "power-savings"
    );
    let cfg = campaign::CampaignConfig {
        runs: 80,
        ..Default::default()
    };
    let mut avm_points = Vec::new();
    for pct in [5usize, 10, 12, 15, 18, 20, 22] {
        let vr = VoltageReduction::Custom(pct as f64 / 100.0);
        let wa = StatModel::workload_aware(&bank, &spec, vr, &trace, samples)?;
        let er = campaign::model_error_ratio(&wa, &golden);
        let r = campaign::run_campaign(id.name(), &golden, &wa, &cfg);
        println!(
            "{:>6} {:>7.3}V {:>10.2e} {:>8.3} {:>13.1}%",
            vr.label(),
            vr.vdd(),
            er,
            r.avm(),
            100.0 * power::power_savings(vr)
        );
        avm_points.push((vr, r.avm()));
    }
    let choice = power::select_operating_point(&avm_points, 0.0);
    println!(
        "\nAVM-guided operating point: {} ({:.3} V) → {:.1}% power savings",
        choice.label(),
        choice.vdd(),
        100.0 * power::power_savings(choice)
    );
    Ok(())
}
