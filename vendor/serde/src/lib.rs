//! Offline vendored stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! minimal JSON-backed serialization framework under the familiar names:
//! [`Serialize`] / [`Deserialize`] traits plus `#[derive(Serialize,
//! Deserialize)]` macros (from the sibling `serde_derive` shim). Unlike real
//! serde there is no serializer abstraction — the data model *is* JSON —
//! which is exactly what this workspace needs (`serde_json::to_string` /
//! `from_str` round-trips of model artifacts).
//!
//! Wire-format conventions match `serde_json` defaults: structs are objects,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are `{"Variant": payload}` objects.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

use de::{Error, Parser};

/// Serialize `self` as JSON appended to `out`.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialize a value from the JSON text held by `p`.
pub trait Deserialize: Sized {
    /// Parse one JSON value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] on malformed or mismatched input.
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 48], *self as i128));
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                let v = p.parse_number()?;
                <$t>::try_from(v)
                    .map_err(|_| p.err(concat!("number out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u64 values above i64::MAX still fit i128, so `parse_number` returning i128
// keeps full u64 range; helper to format any integer quickly.
fn itoa_buf(buf: &mut [u8; 48], v: i128) -> &str {
    use std::io::Write as _;
    let mut cur = std::io::Cursor::new(&mut buf[..]);
    write!(cur, "{v}").expect("48 bytes fit any i128 we format");
    let n = cur.position() as usize;
    std::str::from_utf8(&buf[..n]).expect("ascii")
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_bool()
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` prints the shortest representation that round-trips.
            use std::fmt::Write as _;
            write!(out, "{self:?}").expect("write to String");
        } else {
            out.push_str("null"); // serde_json convention for NaN/inf
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(p.parse_f64()? as f32)
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.parse_string()
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl Deserialize for char {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let s = p.parse_string()?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(p.err("expected single-character string")),
        }
    }
}

/// Escape and quote `s` as a JSON string.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.peek() == Some(b'n') {
            p.parse_null()?;
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let mut out = Vec::new();
        p.expect(b'[')?;
        if p.try_consume(b']') {
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if p.try_consume(b',') {
                continue;
            }
            p.expect(b']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let v = Vec::<T>::deserialize_json(p)?;
        let got = v.len();
        v.try_into()
            .map_err(|_| p.err(&format!("expected array of {N} elements, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                p.expect(b'[')?;
                let mut first = true;
                let v = ($(
                    {
                        if !first { p.expect(b',')?; }
                        first = false;
                        $t::deserialize_json(p)?
                    },
                )+);
                let _ = first;
                p.expect(b']')?;
                Ok(v)
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Types usable as JSON object keys (serialized as strings).
pub trait MapKey: Ord + Sized {
    /// Append the quoted key string.
    fn write_key(&self, out: &mut String);
    /// Parse a key back from the unquoted key text.
    ///
    /// # Errors
    ///
    /// Returns a message when `text` does not encode a valid key.
    fn parse_key(text: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn write_key(&self, out: &mut String) {
        write_json_string(self, out);
    }
    fn parse_key(text: &str) -> Result<Self, String> {
        Ok(text.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn write_key(&self, out: &mut String) {
                out.push('"');
                out.push_str(itoa_buf(&mut [0u8; 48], *self as i128));
                out.push('"');
            }
            fn parse_key(text: &str) -> Result<Self, String> {
                text.parse().map_err(|e| format!("bad integer key {text:?}: {e}"))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.write_key(out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let mut out = std::collections::BTreeMap::new();
        p.expect(b'{')?;
        if p.try_consume(b'}') {
            return Ok(out);
        }
        loop {
            let key_text = p.parse_string()?;
            let key = K::parse_key(&key_text).map_err(|m| p.err(&m))?;
            p.expect(b':')?;
            out.insert(key, V::deserialize_json(p)?);
            if p.try_consume(b',') {
                continue;
            }
            p.expect(b'}')?;
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    fn from_json<T: Deserialize>(s: &str) -> T {
        let mut p = Parser::new(s);
        T::deserialize_json(&mut p).expect("parse")
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(from_json::<u64>("42"), 42);
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(from_json::<i32>("-7"), -7);
        assert_eq!(to_json(&true), "true");
        assert!(!from_json::<bool>("false"));
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(from_json::<f64>("1.5"), 1.5);
        assert_eq!(from_json::<f64>("1e-3"), 1e-3);
        assert_eq!(to_json(&u64::MAX), "18446744073709551615");
        assert_eq!(from_json::<u64>("18446744073709551615"), u64::MAX);
    }

    #[test]
    fn f64_shortest_round_trip() {
        for v in [0.1f64, 1.0 / 3.0, 4.4e-21, 1e300, -0.0, 123456789.123456] {
            let s = to_json(&v);
            assert_eq!(from_json::<f64>(&s).to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}e";
        let j = to_json(&s.to_string());
        assert_eq!(from_json::<String>(&j), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, -0.5)];
        assert_eq!(from_json::<Vec<(u64, f64)>>(&to_json(&v)), v);
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(from_json::<[f64; 3]>(&to_json(&a)), a);
        let o: Option<u32> = None;
        assert_eq!(to_json(&o), "null");
        assert_eq!(from_json::<Option<u32>>("null"), None);
        assert_eq!(from_json::<Option<u32>>("5"), Some(5));
        let mut m = std::collections::BTreeMap::new();
        m.insert(3usize, 9u64);
        m.insert(1, 7);
        let j = to_json(&m);
        assert_eq!(j, r#"{"1":7,"3":9}"#);
        assert_eq!(from_json::<std::collections::BTreeMap<usize, u64>>(&j), m);
    }
}
