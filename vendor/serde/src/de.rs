//! Hand-rolled JSON pull parser used by the [`Deserialize`](crate::Deserialize)
//! impls and the derive-generated code.

use std::fmt;

/// Deserialization error: a message plus the byte offset it occurred at.
#[derive(Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl Error {
    /// Build an error at an explicit offset.
    pub fn new(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({self})")
    }
}

impl std::error::Error for Error {}

/// A cursor over JSON text.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Start parsing `text`.
    pub fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Build an error at the current offset.
    pub fn err(&self, msg: &str) -> Error {
        Error::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte, without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consume `c` or fail.
    ///
    /// # Errors
    ///
    /// Errors when the next non-whitespace byte is not `c`.
    pub fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.try_consume(c) {
            Ok(())
        } else {
            let found = self.peek().map(|b| b as char);
            Err(self.err(&format!("expected '{}', found {found:?}", c as char)))
        }
    }

    /// Consume `c` if it is next; report whether it was.
    pub fn try_consume(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True when only trailing whitespace remains.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.bytes.len()
    }

    fn keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    /// Parse `null`.
    ///
    /// # Errors
    ///
    /// Errors when the input is not `null`.
    pub fn parse_null(&mut self) -> Result<(), Error> {
        self.keyword("null")
    }

    /// Parse `true` / `false`.
    ///
    /// # Errors
    ///
    /// Errors when the input is neither.
    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        match self.peek() {
            Some(b't') => self.keyword("true").map(|()| true),
            Some(b'f') => self.keyword("false").map(|()| false),
            _ => Err(self.err("expected boolean")),
        }
    }

    fn number_token(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number", start))
    }

    /// Parse an integer (rejects fractional forms).
    ///
    /// # Errors
    ///
    /// Errors on non-numeric or fractional input.
    pub fn parse_number(&mut self) -> Result<i128, Error> {
        let start = self.pos;
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| Error::new(format!("invalid integer {tok:?}"), start))
    }

    /// Parse any numeric token as `f64` (`null` reads as NaN, matching the
    /// encoder's convention for non-finite values).
    ///
    /// # Errors
    ///
    /// Errors on non-numeric input.
    pub fn parse_f64(&mut self) -> Result<f64, Error> {
        if self.peek() == Some(b'n') {
            self.parse_null()?;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|_| Error::new(format!("invalid number {tok:?}"), start))
    }

    /// Parse a quoted string with escapes.
    ///
    /// # Errors
    ///
    /// Errors on malformed strings or escapes.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our encoder;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Skip one complete JSON value of any shape.
    ///
    /// # Errors
    ///
    /// Errors on malformed input.
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'n') => self.parse_null(),
            Some(b't') | Some(b'f') => self.parse_bool().map(|_| ()),
            Some(b'"') => self.parse_string().map(|_| ()),
            Some(b'[') => {
                self.expect(b'[')?;
                if self.try_consume(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if self.try_consume(b',') {
                        continue;
                    }
                    return self.expect(b']');
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.try_consume(b'}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if self.try_consume(b',') {
                        continue;
                    }
                    return self.expect(b'}');
                }
            }
            _ => self.parse_f64().map(|_| ()),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_value_handles_nesting() {
        let mut p = Parser::new(r#"{"a": [1, {"b": "x,y"}, null], "c": 2} "#);
        p.skip_value().expect("skip");
        assert!(p.at_end());
    }

    #[test]
    fn unicode_strings_survive() {
        let mut p = Parser::new(r#""héllo → wörld""#);
        assert_eq!(p.parse_string().expect("parse"), "héllo → wörld");
    }
}
