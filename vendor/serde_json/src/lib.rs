//! Offline vendored stand-in for `serde_json`.
//!
//! Provides the slice of the API this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], the [`Value`] tree, and the
//! [`json!`] macro. The vendored `serde` traits serialize directly to
//! JSON text, so "serializing" here is just running them and, for the
//! pretty variant, re-indenting the compact output.

use serde::de::Parser;
use serde::{Deserialize, Serialize};

/// Error type shared with the vendored `serde` parser.
pub type Error = serde::de::Error;

/// Serialize `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored implementation; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` as two-space-indented JSON (serde_json style).
///
/// # Errors
///
/// Never fails for the vendored implementation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty_from_compact(&to_string(value)?))
}

/// Parse a value from JSON text, requiring the whole input be consumed.
///
/// # Errors
///
/// Returns an [`Error`] on malformed input, type mismatches, missing
/// struct fields, or trailing non-whitespace content.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = T::deserialize_json(&mut p)?;
    if p.at_end() {
        Ok(v)
    } else {
        Err(p.err("trailing characters after JSON value"))
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Re-indent compact JSON (no whitespace outside strings) the way
/// `serde_json::to_string_pretty` does.
fn pretty_from_compact(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = String::with_capacity(s.len() * 2);
    let mut depth = 0usize;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                // Copy the whole string literal verbatim (it may contain
                // braces, commas, and non-ASCII text).
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str(&s[start..i]);
                continue;
            }
            open @ (b'{' | b'[') => {
                let close = if open == b'{' { b'}' } else { b']' };
                if b.get(i + 1) == Some(&close) {
                    out.push(open as char);
                    out.push(close as char);
                    i += 2;
                    continue;
                }
                out.push(open as char);
                depth += 1;
                out.push('\n');
                push_indent(&mut out, depth);
            }
            close @ (b'}' | b']') => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                push_indent(&mut out, depth);
                out.push(close as char);
            }
            b',' => {
                out.push(',');
                out.push('\n');
                push_indent(&mut out, depth);
            }
            b':' => out.push_str(": "),
            other => out.push(other as char),
        }
        i += 1;
    }
    out
}

/// A dynamically-typed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (kept exact, printed without a decimal point).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out),
            Value::Int(i) => {
                use std::fmt::Write as _;
                write!(out, "{i}").expect("write to String");
            }
            Value::Float(f) => f.serialize_json(out),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.serialize_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Conversion into [`Value`], used by the [`json!`] macro.
pub trait IntoValue {
    /// Convert `self` into a [`Value`].
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }
}

impl IntoValue for f32 {
    fn into_value(self) -> Value {
        Value::Float(f64::from(self))
    }
}

macro_rules! impl_into_value_int {
    ($($t:ty),*) => {$(
        impl IntoValue for $t {
            fn into_value(self) -> Value {
                Value::Int(self as i128)
            }
        }
    )*};
}
impl_into_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::String(self)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: IntoValue + Clone> IntoValue for &T {
    fn into_value(self) -> Value {
        self.clone().into_value()
    }
}

impl<T: IntoValue> IntoValue for Vec<T> {
    fn into_value(self) -> Value {
        Value::Array(self.into_iter().map(IntoValue::into_value).collect())
    }
}

impl<T: IntoValue + Clone> IntoValue for &[T] {
    fn into_value(self) -> Value {
        Value::Array(self.iter().cloned().map(IntoValue::into_value).collect())
    }
}

impl<T: IntoValue> IntoValue for Option<T> {
    fn into_value(self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.into_value(),
        }
    }
}

/// Build a [`Value`] from a JSON-looking literal: `json!({"k": expr, ...})`,
/// `json!([a, b])`, `json!(null)`, or `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::IntoValue::into_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::IntoValue::into_value(&$val) ),*
        ])
    };
    ($other:expr) => { $crate::IntoValue::into_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_to_string() {
        let v = json!({
            "a": 1usize,
            "b": vec![1.5f64, 2.0],
            "c": "x\"y",
            "d": Option::<f64>::None,
            "e": vec![json!({"k": 1u32})],
        });
        assert_eq!(
            to_string(&v).expect("serialize"),
            r#"{"a":1,"b":[1.5,2.0],"c":"x\"y","d":null,"e":[{"k":1}]}"#
        );
    }

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = json!({"a": 1u8, "b": vec![1u8, 2u8], "empty": Vec::<f64>::new()});
        assert_eq!(
            to_string_pretty(&v).expect("serialize"),
            "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn from_str_rejects_trailing_garbage() {
        assert!(from_str::<u32>("12 ").is_ok());
        assert!(from_str::<u32>("12 x").is_err());
    }
}
