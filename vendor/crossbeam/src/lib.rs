//! Offline vendored stand-in for the `crossbeam` scoped-thread API.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this
//! shim maps the `crossbeam::scope(|s| ... s.spawn(|_| ...) ...)` surface
//! the workspace uses directly onto [`std::thread::scope`]. The only
//! behavioral difference: `scope` itself always returns `Ok` because every
//! spawned handle in this workspace is explicitly joined (a panicking
//! unjoined thread would propagate as a panic instead of an `Err`).

use std::any::Any;

/// Panic payload carried out of a joined thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope within which threads borrowing the environment may be spawned.
#[derive(Copy, Clone)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joins to the closure's return value.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the thread panicked.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// again (crossbeam convention), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reentry = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&reentry)),
        }
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before
/// this returns.
///
/// # Errors
///
/// Never fails in this shim (see crate docs); the `Result` mirrors the
/// upstream crossbeam signature so `.expect(...)` call sites compile.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_panics() {
        super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope");
    }
}
