//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no access to crates.io, so this derive is
//! written against `proc_macro` directly (no `syn`/`quote`). It supports
//! exactly the shapes this workspace uses:
//!
//! - named-field structs
//! - tuple structs (newtype structs serialize transparently, wider ones
//!   as arrays, matching `serde_json` conventions)
//! - enums with unit variants (`"Name"`), tuple variants
//!   (`{"Name": payload}` / `{"Name": [a, b]}`), and struct variants
//!   (`{"Name": {...}}`)
//!
//! Generics and `#[serde(...)]` attributes are intentionally rejected:
//! nothing in the workspace needs them, and failing loudly beats
//! silently producing the wrong wire format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Skip any `#[...]` / `#![...]` attributes (doc comments arrive as
    /// attributes too).
    fn skip_attrs(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.i += 1;
            if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                self.i += 1;
            }
            match self.bump() {
                Some(TokenTree::Group(_)) => {}
                other => panic!("serde_derive: malformed attribute near {other:?}"),
            }
        }
    }

    /// Skip `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.i += 1;
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.i += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c) {
            self.i += 1;
            true
        } else {
            false
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body near {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body near {other:?}"),
            };
            let mut v = Cursor::new(body);
            let mut variants = Vec::new();
            loop {
                v.skip_attrs();
                if v.at_end() {
                    break;
                }
                let vname = v.expect_ident();
                let fields = match v.peek().cloned() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        v.i += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        v.i += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional `= discriminant` up to the separating comma.
                while !v.at_end() && !v.eat_punct(',') {
                    v.i += 1;
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Extract field names from a named-field body, skipping each field's
/// type. Commas nested in groups are invisible to us (a `Group` is one
/// token), so only angle brackets (`BTreeMap<K, V>`) need depth tracking.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let fname = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{fname}`");
        }
        fields.push(fname);
        let mut angle = 0i32;
        while let Some(t) = c.bump() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, type_name: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all)]\nimpl ::serde::{trait_name} for {type_name} {{\n"
    )
}

/// `out.push_str("\"field\":"); serialize(value);` for each field of an
/// object body. `value_expr` maps a field name to the expression holding it.
fn ser_named_body(fields: &[String], value_expr: impl Fn(&str) -> String) -> String {
    let mut s = String::from("out.push('{');\n");
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            s.push_str("out.push(',');\n");
        }
        s.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
        s.push_str(&format!(
            "::serde::Serialize::serialize_json({}, out);\n",
            value_expr(f)
        ));
    }
    s.push_str("out.push('}');\n");
    s
}

fn ser_seq_body(exprs: &[String]) -> String {
    let mut s = String::from("out.push('[');\n");
    for (k, e) in exprs.iter().enumerate() {
        if k > 0 {
            s.push_str("out.push(',');\n");
        }
        s.push_str(&format!("::serde::Serialize::serialize_json({e}, out);\n"));
    }
    s.push_str("out.push(']');\n");
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    let mut s = impl_header("Serialize", name);
    s.push_str("fn serialize_json(&self, out: &mut ::std::string::String) {\n");
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Unit => s.push_str("out.push_str(\"null\");\n"),
            Fields::Named(fs) => s.push_str(&ser_named_body(fs, |f| format!("&self.{f}"))),
            Fields::Tuple(1) => {
                s.push_str("::serde::Serialize::serialize_json(&self.0, out);\n");
            }
            Fields::Tuple(n) => {
                let exprs: Vec<String> = (0..*n).map(|k| format!("&self.{k}")).collect();
                s.push_str(&ser_seq_body(&exprs));
            }
        },
        Item::Enum { name, variants } => {
            s.push_str("match self {\n");
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        s.push_str(&format!(
                            "{name}::{vname} => {{ out.push_str(\"\\\"{vname}\\\"\"); }}\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        s.push_str(&format!("{name}::{vname}(__v0) => {{\n"));
                        s.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":\");\n"));
                        s.push_str("::serde::Serialize::serialize_json(__v0, out);\n");
                        s.push_str("out.push('}');\n}\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__v{k}")).collect();
                        s.push_str(&format!("{name}::{vname}({}) => {{\n", binds.join(", ")));
                        s.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":\");\n"));
                        s.push_str(&ser_seq_body(&binds));
                        s.push_str("out.push('}');\n}\n");
                    }
                    Fields::Named(fs) => {
                        s.push_str(&format!("{name}::{vname} {{ {} }} => {{\n", fs.join(", ")));
                        s.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":\");\n"));
                        s.push_str(&ser_named_body(fs, |f| f.to_string()));
                        s.push_str("out.push('}');\n}\n");
                    }
                }
            }
            s.push_str("}\n");
        }
    }
    s.push_str("}\n}\n");
    s
}

/// Block expression that parses a JSON object into `ctor { fields... }`.
fn de_named_expr(ctor: &str, fields: &[String]) -> String {
    let mut s = String::from("{\np.expect(b'{')?;\n");
    for f in fields {
        s.push_str(&format!(
            "let mut __f_{f}: ::std::option::Option<_> = ::std::option::Option::None;\n"
        ));
    }
    s.push_str("if !p.try_consume(b'}') {\nloop {\n");
    s.push_str("let __key = p.parse_string()?;\np.expect(b':')?;\n");
    s.push_str("match __key.as_str() {\n");
    for f in fields {
        s.push_str(&format!(
            "\"{f}\" => {{ __f_{f} = ::std::option::Option::Some(::serde::Deserialize::deserialize_json(p)?); }}\n"
        ));
    }
    s.push_str("_ => { p.skip_value()?; }\n}\n");
    s.push_str("if p.try_consume(b',') { continue; }\np.expect(b'}')?;\nbreak;\n}\n}\n");
    s.push_str(&format!("{ctor} {{\n"));
    for f in fields {
        s.push_str(&format!(
            "{f}: __f_{f}.ok_or_else(|| p.err(\"missing field `{f}` in {ctor}\"))?,\n"
        ));
    }
    s.push_str("}\n}\n");
    s
}

/// Block expression parsing `[a, b, ...]` into `ctor(__v0, __v1, ...)`.
fn de_seq_expr(ctor: &str, n: usize) -> String {
    let mut s = String::from("{\np.expect(b'[')?;\n");
    for k in 0..n {
        if k > 0 {
            s.push_str("p.expect(b',')?;\n");
        }
        s.push_str(&format!(
            "let __v{k} = ::serde::Deserialize::deserialize_json(p)?;\n"
        ));
    }
    s.push_str("p.expect(b']')?;\n");
    let binds: Vec<String> = (0..n).map(|k| format!("__v{k}")).collect();
    s.push_str(&format!("{ctor}({})\n}}\n", binds.join(", ")));
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    let mut s = impl_header("Deserialize", name);
    s.push_str(
        "fn deserialize_json(p: &mut ::serde::de::Parser<'_>) \
         -> ::std::result::Result<Self, ::serde::de::Error> {\n",
    );
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Unit => {
                s.push_str(&format!(
                    "p.parse_null()?;\n::std::result::Result::Ok({name})\n"
                ));
            }
            Fields::Named(fs) => {
                s.push_str(&format!(
                    "::std::result::Result::Ok({})\n",
                    de_named_expr(name, fs)
                ));
            }
            Fields::Tuple(1) => {
                s.push_str(&format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_json(p)?))\n"
                ));
            }
            Fields::Tuple(n) => {
                s.push_str(&format!(
                    "::std::result::Result::Ok({})\n",
                    de_seq_expr(name, *n)
                ));
            }
        },
        Item::Enum { name, variants } => {
            // Unit variants arrive as a bare string, data variants as a
            // single-key object — mirror serde_json's externally tagged form.
            s.push_str("if p.peek() == ::std::option::Option::Some(b'\"') {\n");
            s.push_str("let __name = p.parse_string()?;\nmatch __name.as_str() {\n");
            for (vname, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    s.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            s.push_str(&format!(
                "_ => ::std::result::Result::Err(p.err(&format!(\"unknown variant `{{__name}}` of {name}\"))),\n"
            ));
            s.push_str("}\n} else {\n");
            s.push_str("p.expect(b'{')?;\nlet __name = p.parse_string()?;\np.expect(b':')?;\n");
            s.push_str("let __value = match __name.as_str() {\n");
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        s.push_str(&format!(
                            "\"{vname}\" => {name}::{vname}(::serde::Deserialize::deserialize_json(p)?),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        s.push_str(&format!(
                            "\"{vname}\" => {},\n",
                            de_seq_expr(&format!("{name}::{vname}"), *n)
                        ));
                    }
                    Fields::Named(fs) => {
                        s.push_str(&format!(
                            "\"{vname}\" => {},\n",
                            de_named_expr(&format!("{name}::{vname}"), fs)
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "_ => return ::std::result::Result::Err(p.err(&format!(\"unknown variant `{{__name}}` of {name}\"))),\n"
            ));
            s.push_str("};\np.expect(b'}')?;\n::std::result::Result::Ok(__value)\n}\n");
        }
    }
    s.push_str("}\n}\n");
    s
}
