//! Offline vendored stand-in for `criterion`.
//!
//! Implements the measurement surface the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with [`Throughput`] and sample-size hints,
//! [`Bencher::iter`], [`BenchmarkId`], and [`black_box`].
//!
//! Instead of criterion's statistical machinery this harness calibrates
//! an iteration count against a fixed time budget and reports the mean
//! wall-clock time per iteration (plus throughput when configured).
//!
//! Mode selection: when the binary is invoked by `cargo bench` (cargo
//! passes `--bench`) each benchmark is measured for real. Under
//! `cargo test`, which also runs `harness = false` bench targets, every
//! benchmark executes exactly one iteration so the suite stays fast while
//! still smoke-testing the bench code.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendered from a single parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identifier with a function name and a parameter value.
    #[must_use]
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations and record the
    /// total elapsed wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    quick: bool,
    /// Wall-clock budget per benchmark in measurement mode.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`; `cargo test`
        // runs them bare (harness = false), where one iteration suffices.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            quick: !bench_mode,
            budget: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Measure a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let label = id.into_id();
        run_benchmark(self, &label, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration (reported as throughput).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; this harness sizes runs by time budget,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measure one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(self.criterion, &label, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    // Probe run: one iteration, which is also the full run in quick mode.
    f(&mut bencher);
    if criterion.quick {
        println!("{label}: ok (quick mode, 1 iteration)");
        return;
    }
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (criterion.budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;
    bencher.iterations = iters;
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!("{label}: {} /iter ({iters} iterations)", fmt_ns(mean_ns));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 * 1e9 / mean_ns;
        line.push_str(&format!(", {rate:.0} {unit}/s"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            quick: true,
            budget: Duration::from_millis(10),
        };
        let mut calls = 0u64;
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_calibrates() {
        let mut c = Criterion {
            quick: false,
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls > 1, "calibration should rerun the closure");
    }
}
