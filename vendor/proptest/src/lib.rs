//! Offline vendored stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of the proptest API the workspace uses: the [`proptest!`]
//! test macro, [`Strategy`] with `prop_map`, [`any`], [`Just`],
//! [`prop_oneof!`], ranges as strategies, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking** — a failing case
//! reports its inputs (via the assertion message) and the case number.
//! Generation is deterministic per test name, so failures reproduce.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies. Seeded from the test name so
/// every run of a given test sees the same case sequence.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for the named test.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Failure raised by `prop_assert*` or helper functions.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (unused by this shim, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input with the given reason.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`", returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform values of `T` over its whole domain.
#[must_use]
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_standard(&mut rng.0)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// Uniform choice between boxed strategies, as built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __lhs == __rhs,
            "assertion failed: {:?} != {:?}",
            __lhs,
            __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __lhs == __rhs,
            "assertion failed: {:?} != {:?}: {}",
            __lhs,
            __rhs,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __lhs != __rhs,
            "assertion failed: {:?} == {:?}",
            __lhs,
            __rhs
        );
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the `#[test]` attribute is written explicitly at
/// the call site, proptest-style) that runs the body over `cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("{} failed at case {}/{}: {}",
                               stringify!($name), __case, __config.cases, __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![0u8..10, Just(42u8)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..100, 5i64..10), c in small()) {
            prop_assert!(a < 100);
            prop_assert!((5..10).contains(&b));
            prop_assert!(c < 10 || c == 42, "c={}", c);
        }

        #[test]
        fn maps_apply(x in (0u16..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 101);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let s = any::<u64>();
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
