//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) slice of the `rand 0.8` API the workspace
//! actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`, `gen_ratio`), and
//! [`rngs::StdRng`] backed by xoshiro256++ seeded via SplitMix64.
//!
//! Random streams are deterministic per seed but do **not** match the
//! upstream `rand` implementation bit-for-bit; everything in this
//! workspace only relies on determinism, not on specific sequences.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value uniformly sampleable from an [`RngCore`] (the subset of rand's
/// `Standard` distribution the workspace uses).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128).wrapping_sub(self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (`bool`, integer, or float).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// True with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&z));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_and_ratio_hit_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "heads={heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let eighth = (0..4000).filter(|_| rng.gen_ratio(1, 8)).count();
        assert!((300..700).contains(&eighth), "eighth={eighth}");
    }

    #[test]
    fn dyn_rngcore_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.gen_range(0..64u32);
        assert!(v < 64);
    }
}
