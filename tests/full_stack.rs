//! Cross-crate integration: the complete flow from text assembly through
//! gate-level model development to classified injection outcomes.

use tei::core::{campaign, dev, DaModel, StatModel};
use tei::isa::assemble;
use tei::softfloat::{FpOp, FpOpKind, Precision};
use tei::timing::VoltageReduction;
use tei::uarch::{ExitReason, FuncCore, OooConfig, OooCore};
use tei::workloads::{build, BenchmarkId, Scale};

#[test]
fn assembly_to_injection_outcome() {
    // A program written in textual assembly, executed on both cores, then
    // corrupted at a chosen FP instruction.
    let src = r"
                li   t0, 4614256656552045848   # 3.14159... bits
                fmv.d.x f1, t0
                li   t0, 4613303445314885481   # 2.71828... bits
                fmv.d.x f2, t0
                fmul.d f10, f1, f2
                li   a7, 3                     # PutF64
                ecall
                halt
    ";
    let prog = assemble(src).expect("assembles");
    let mut func = FuncCore::with_memory(&prog, 1 << 16);
    let rf = func.run(10_000);
    assert_eq!(rf.exit, ExitReason::Halted);
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 16);
    let ro = ooo.run(100_000);
    assert_eq!(ro.exit, ExitReason::Halted);
    assert_eq!(func.output, ooo.output);
    let golden = f64::from_bits(u64::from_le_bytes(func.output[..8].try_into().unwrap()));
    assert!((golden - std::f64::consts::PI * std::f64::consts::E).abs() < 1e-12);

    // Corrupt the multiply's destination register (mantissa bit 40).
    let mut faulty = FuncCore::with_memory(&prog, 1 << 16);
    faulty.run_with_hook(10_000, &mut |ev| {
        assert_eq!(ev.op, FpOp::new(FpOpKind::Mul, Precision::Double));
        ev.result ^ (1 << 40)
    });
    assert_ne!(faulty.output, func.output, "corruption must surface (SDC)");
}

#[test]
fn end_to_end_campaign_smoke() {
    // Tiny but complete: model development on the gate-level FPU, then a
    // classified injection campaign on a real benchmark.
    let (bank, spec) = dev::default_bank();
    let bench = build(BenchmarkId::Is, Scale::Test);
    let mem = 8 << 20;
    let golden = campaign::GoldenRun::capture(&bench, mem, u64::MAX).unwrap();
    assert!(golden.fp_ops > 1000, "is is FP-heavy");

    let trace = dev::TraceSet::capture(&bench.program, mem, u64::MAX, 1200);
    let wa = StatModel::workload_aware(&bank, &spec, VoltageReduction::VR20, &trace, 1200).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let cfg = campaign::CampaignConfig {
        runs: 30,
        seed: 42,
        ..Default::default()
    };
    let rw = campaign::run_campaign("is", &golden, &wa, &cfg);
    let rd = campaign::run_campaign("is", &golden, &da, &cfg);
    assert_eq!(rw.counts.total(), 30);
    assert_eq!(rd.counts.total(), 30);
    // DA injects single-bit flips at its fixed ratio; is catches many of
    // them through verification or crashes on wild keys.
    assert!(rd.avm() >= 0.0 && rd.avm() <= 1.0);
    // The two models must disagree on the injected error ratio.
    assert_ne!(rw.error_ratio, rd.error_ratio);
}

#[test]
fn campaign_outcomes_are_deterministic() {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let golden = campaign::GoldenRun::capture(&bench, 8 << 20, u64::MAX).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let cfg = campaign::CampaignConfig {
        runs: 40,
        seed: 123,
        threads: 3,
        ..Default::default()
    };
    let a = campaign::run_campaign("sobel", &golden, &da, &cfg);
    let b = campaign::run_campaign("sobel", &golden, &da, &cfg);
    assert_eq!(a.counts, b.counts, "same seed ⇒ same outcome tally");
}

#[test]
fn umbrella_reexports_are_usable() {
    // Spot-check that every layer is reachable through the umbrella crate.
    let lib = tei::netlist::CellLibrary::nangate45_like();
    assert!(lib.delay(tei::netlist::GateKind::Xor2) > 0.0);
    assert!(tei::timing::VoltageReduction::VR20.derating_factor() > 1.0);
    let mut fpu = tei::softfloat::Fpu::new();
    let s = fpu.apply(
        tei::softfloat::FpOp::new(FpOpKind::Add, Precision::Double),
        1.0f64.to_bits(),
        2.0f64.to_bits(),
    );
    assert_eq!(f64::from_bits(s), 3.0);
    assert_eq!(tei::core::stats::sample_size(0.03, 0.95).unwrap(), 1068);
    assert!((tei::core::power::power_savings(VoltageReduction::VR20) - 0.56).abs() < 0.01);
}
