//! Property-based tests of the STA invariants the static verification
//! layer builds on: the arrival recurrence, path enumeration order, and
//! the per-bit bounds' conservativity over the dynamic engines.
//!
//! The vendored proptest shim has no `prop_flat_map`, so random DAGs are
//! generated from a `u64` seed drawn by the strategy and expanded with a
//! seeded [`StdRng`] — fully deterministic per case.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_netlist::{CellLibrary, GateKind, NetId, Netlist};
use tei_timing::{ArrivalSim, CompiledNetlist, SlackOracle, Sta};

/// Build a random topologically-ordered DAG: `n_inputs` primary inputs
/// followed by `n_gates` random gates whose pins reference earlier nets.
/// The last (up to) four nets become the output port.
fn random_dag(seed: u64, n_inputs: usize, n_gates: usize) -> Netlist {
    const KINDS: [GateKind; 10] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xnor2,
        GateKind::Mux2,
        GateKind::Maj3,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new("dag", CellLibrary::unit());
    let mut nets = nl.add_input_bus("a", n_inputs);
    for _ in 0..n_gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let pins: Vec<NetId> = (0..kind.arity())
            .map(|_| nets[rng.gen_range(0..nets.len())])
            .collect();
        nets.push(nl.add_gate(kind, &pins));
    }
    let outs: Vec<NetId> = nets.iter().rev().take(4).rev().copied().collect();
    nl.mark_output_bus("y", &outs);
    nl
}

fn random_inputs(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arrival recurrence holds for every net: primary inputs arrive
    /// at 0, every gate at `max(fanin arrivals) + delay`.
    #[test]
    fn prop_arrival_recurrence(seed in any::<u64>(), ni in 2usize..6, ng in 1usize..40) {
        let nl = random_dag(seed, ni, ng);
        let sta = Sta::analyze(&nl);
        for (i, g) in nl.gates().iter().enumerate() {
            let expect = if g.kind == GateKind::Input {
                0.0
            } else {
                g.fanin()
                    .iter()
                    .map(|p| sta.arrival(*p))
                    .fold(0.0f64, f64::max)
                    + g.delay
            };
            prop_assert_eq!(sta.arrivals()[i], expect, "net {}", i);
        }
    }

    /// `worst_path_to` traces a real input→endpoint path whose summed
    /// gate delays equal the endpoint arrival exactly.
    #[test]
    fn prop_worst_path_realizes_arrival(seed in any::<u64>(), ni in 2usize..6, ng in 1usize..40) {
        let nl = random_dag(seed, ni, ng);
        let sta = Sta::analyze(&nl);
        for &endpoint in &nl.output_nets() {
            let path = sta.worst_path_to(&nl, endpoint);
            prop_assert_eq!(*path.last().expect("non-empty path"), endpoint);
            prop_assert!(nl.gate(path[0]).fanin().is_empty(), "path must start at a source");
            let mut delay = 0.0;
            for pair in path.windows(2) {
                prop_assert!(
                    nl.gate(pair[1]).fanin().contains(&pair[0]),
                    "consecutive path nets must be connected"
                );
                delay += nl.gate(pair[1]).delay;
            }
            prop_assert_eq!(delay, sta.arrival(endpoint), "worst path must realize the arrival");
        }
    }

    /// `k_worst_paths_to` reports non-increasing delays, leads with the
    /// arrival time, recomputes each reported delay from the path, and
    /// saturates gracefully when `k` exceeds the path count.
    #[test]
    fn prop_k_worst_paths_sorted_and_exact(seed in any::<u64>(), ni in 2usize..5, ng in 1usize..20) {
        let nl = random_dag(seed, ni, ng);
        let sta = Sta::analyze(&nl);
        let endpoint = *nl.output_nets().last().expect("has outputs");
        // Far larger than the path count of these small DAGs can reach.
        let paths = sta.k_worst_paths_to(&nl, endpoint, 100_000);
        prop_assert!(!paths.is_empty());
        prop_assert_eq!(paths[0].0, sta.arrival(endpoint), "first path is the critical one");
        for pair in paths.windows(2) {
            prop_assert!(pair[0].0 >= pair[1].0, "paths must come out longest-first");
        }
        for (delay, path) in &paths {
            let recomputed: f64 = path.windows(2).map(|p| nl.gate(p[1]).delay).sum();
            prop_assert!(
                (recomputed - delay).abs() < 1e-9,
                "reported delay {} != path delay {}",
                delay,
                recomputed
            );
        }
        // Asking for exactly as many paths must agree with the big ask.
        let exact = sta.k_worst_paths_to(&nl, endpoint, paths.len());
        prop_assert_eq!(exact.len(), paths.len());
    }

    /// The static per-bit bounds are conservative over the dynamic
    /// engine, and the compiled kernel's bounds equal the STA arrivals
    /// (the slack oracle's soundness assumption).
    #[test]
    fn prop_static_bounds_dominate_dynamic_settles(seed in any::<u64>(), ni in 2usize..6, ng in 1usize..40) {
        let nl = random_dag(seed, ni, ng);
        let sta = Sta::analyze(&nl);
        let compiled = CompiledNetlist::compile(&nl);
        for (i, &bound) in compiled.static_bounds().iter().enumerate() {
            prop_assert_eq!(bound, sta.arrivals()[i], "compiled bound {} != STA arrival", i);
        }
        let oracle = SlackOracle::analyze(&nl);
        prop_assert_eq!(oracle.bounds(), sta.arrivals());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..8 {
            let prev = random_inputs(&mut rng, ni);
            let cur = random_inputs(&mut rng, ni);
            let res = ArrivalSim::run(&nl, &prev, &cur);
            for (i, &settle) in res.settle.iter().enumerate() {
                prop_assert!(
                    settle <= sta.arrivals()[i] + 1e-12,
                    "net {} settles at {} past its static bound {}",
                    i,
                    settle,
                    sta.arrivals()[i]
                );
            }
        }
    }
}
