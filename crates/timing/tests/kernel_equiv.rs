//! Property-based equivalence of the compiled [`ArrivalKernel`] against
//! the reference [`ArrivalSim`]: identical steady-state values and
//! bit-identical settle times on random DAGs, both for isolated
//! two-vector runs and for chained `advance` streams (the DTA campaign
//! access pattern, where each pair reuses the previous circuit state).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_netlist::{CellLibrary, GateKind, Netlist};
use tei_timing::{ArrivalKernel, ArrivalSim, CompiledNetlist, TwoVectorResult};

/// Build a random topologically-ordered DAG over `n_inputs` inputs.
fn random_netlist(seed: u64, n_inputs: usize, n_gates: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new("prop", CellLibrary::nangate45_like());
    let mut nets = Vec::new();
    for _ in 0..n_inputs {
        nets.push(nl.add_input_bit());
    }
    let kinds = GateKind::all_logic();
    for _ in 0..n_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let pins: Vec<_> = (0..kind.arity())
            .map(|_| nets[rng.gen_range(0..nets.len())])
            .collect();
        nets.push(nl.add_gate(kind, &pins));
    }
    // Mark everything observable so nothing is dead for either engine.
    nl.mark_output_bus("all", &nets);
    nl
}

fn random_inputs(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen()).collect()
}

fn assert_same(reference: &TwoVectorResult, got: &TwoVectorResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.prev, &reference.prev, "prev values");
    prop_assert_eq!(&got.cur, &reference.cur, "cur values");
    prop_assert_eq!(got.settle.len(), reference.settle.len(), "settle length");
    for i in 0..reference.settle.len() {
        prop_assert_eq!(
            got.settle[i].to_bits(),
            reference.settle[i].to_bits(),
            "settle[{}]: kernel {} vs sim {}",
            i,
            got.settle[i],
            reference.settle[i]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_kernel_matches_sim_two_vector(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut kernel = ArrivalKernel::new();
        let mut got = TwoVectorResult::default();
        for _ in 0..4 {
            let prev = random_inputs(&mut rng, n_inputs);
            let cur = random_inputs(&mut rng, n_inputs);
            let reference = ArrivalSim::run(&nl, &prev, &cur);
            kernel.run_into(&c, &prev, &cur, &mut got);
            assert_same(&reference, &got)?;
        }
    }

    #[test]
    fn prop_chained_advances_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
        stream_len in 2usize..12,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();

        let mut kernel = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        kernel.reset(&c, &stream[0]);
        for w in stream.windows(2) {
            kernel.advance(&c, &w[1]);
            kernel.snapshot_into(&mut snap);
            let reference = ArrivalSim::run(&nl, &w[0], &w[1]);
            assert_same(&reference, &snap)?;
        }
    }

    #[test]
    fn prop_window_transitions_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
        stream_len in 2usize..40,
        window in 2usize..9,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();

        let mut kernel = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        let mut start = 0usize;
        while start + 1 < stream.len() {
            let count = (stream.len() - start).min(window);
            let flat: Vec<bool> = stream[start..start + count]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            kernel.load_window(&c, &flat, count);
            for t in 0..kernel.window_transitions() {
                kernel.select_transition(&c, t);
                kernel.snapshot_into(&mut snap);
                let reference = ArrivalSim::run(&nl, &stream[start + t], &stream[start + t + 1]);
                assert_same(&reference, &snap)?;
            }
            start += count - 1;
        }
    }

    /// Multi-word lanes (W = 4 and W = 8) must match the reference
    /// simulator transition for transition, with window sizes chosen to
    /// land on, before, and past the 64-vector lane word boundaries.
    #[test]
    fn prop_multi_word_windows_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..120,
        stream_len in 2usize..150,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(4));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();
        window_width_matches::<4>(&nl, &c, &stream)?;
        window_width_matches::<8>(&nl, &c, &stream)?;
    }
}

/// Drive `stream` through maximal windows of an `ArrivalKernel<W>` and
/// compare every transition against `ArrivalSim`.
fn window_width_matches<const W: usize>(
    nl: &Netlist,
    c: &CompiledNetlist,
    stream: &[Vec<bool>],
) -> Result<(), TestCaseError> {
    let mut kernel = ArrivalKernel::<W>::default();
    let mut snap = TwoVectorResult::default();
    let mut start = 0usize;
    while start + 1 < stream.len() {
        let count = (stream.len() - start).min(ArrivalKernel::<W>::WINDOW_VECTORS);
        let flat: Vec<bool> = stream[start..start + count]
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        kernel.load_window(c, &flat, count);
        prop_assert_eq!(kernel.window_transitions(), count - 1);
        for t in 0..count - 1 {
            kernel.select_transition(c, t);
            kernel.snapshot_into(&mut snap);
            let reference = ArrivalSim::run(nl, &stream[start + t], &stream[start + t + 1]);
            assert_same(&reference, &snap)?;
        }
        start += count - 1;
    }
    Ok(())
}
