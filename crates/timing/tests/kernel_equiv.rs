//! Property-based equivalence of the compiled [`ArrivalKernel`] against
//! the reference [`ArrivalSim`]: identical steady-state values and
//! bit-identical settle times on random DAGs, both for isolated
//! two-vector runs and for chained `advance` streams (the DTA campaign
//! access pattern, where each pair reuses the previous circuit state).
//!
//! The final property widens this into the 3-way engine matrix: the
//! interpreted engine and the codegen runtime (a [`SpecializedKernel`]
//! over [`DynProgram`], the exact `ops`/plane/settle pipeline emitted
//! kernels run) against `ArrivalSim`, at every supported lane width.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_netlist::{CellLibrary, GateKind, NetId, Netlist};
use tei_timing::{
    ArrivalEngine, ArrivalKernel, ArrivalSim, CompiledNetlist, DynProgram, InterpretedEngine,
    SpecializedKernel, TwoVectorResult,
};

/// Build a random topologically-ordered DAG over `n_inputs` inputs.
fn random_netlist(seed: u64, n_inputs: usize, n_gates: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new("prop", CellLibrary::nangate45_like());
    let mut nets = Vec::new();
    for _ in 0..n_inputs {
        nets.push(nl.add_input_bit());
    }
    let kinds = GateKind::all_logic();
    for _ in 0..n_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let pins: Vec<_> = (0..kind.arity())
            .map(|_| nets[rng.gen_range(0..nets.len())])
            .collect();
        nets.push(nl.add_gate(kind, &pins));
    }
    // Mark everything observable so nothing is dead for either engine.
    nl.mark_output_bus("all", &nets);
    nl
}

fn random_inputs(rng: &mut StdRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen()).collect()
}

fn assert_same(reference: &TwoVectorResult, got: &TwoVectorResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.prev, &reference.prev, "prev values");
    prop_assert_eq!(&got.cur, &reference.cur, "cur values");
    prop_assert_eq!(got.settle.len(), reference.settle.len(), "settle length");
    for i in 0..reference.settle.len() {
        prop_assert_eq!(
            got.settle[i].to_bits(),
            reference.settle[i].to_bits(),
            "settle[{}]: kernel {} vs sim {}",
            i,
            got.settle[i],
            reference.settle[i]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_kernel_matches_sim_two_vector(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut kernel = ArrivalKernel::new();
        let mut got = TwoVectorResult::default();
        for _ in 0..4 {
            let prev = random_inputs(&mut rng, n_inputs);
            let cur = random_inputs(&mut rng, n_inputs);
            let reference = ArrivalSim::run(&nl, &prev, &cur);
            kernel.run_into(&c, &prev, &cur, &mut got);
            assert_same(&reference, &got)?;
        }
    }

    #[test]
    fn prop_chained_advances_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
        stream_len in 2usize..12,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();

        let mut kernel = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        kernel.reset(&c, &stream[0]);
        for w in stream.windows(2) {
            kernel.advance(&c, &w[1]);
            kernel.snapshot_into(&mut snap);
            let reference = ArrivalSim::run(&nl, &w[0], &w[1]);
            assert_same(&reference, &snap)?;
        }
    }

    #[test]
    fn prop_window_transitions_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..160,
        stream_len in 2usize..40,
        window in 2usize..9,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();

        let mut kernel = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        let mut start = 0usize;
        while start + 1 < stream.len() {
            let count = (stream.len() - start).min(window);
            let flat: Vec<bool> = stream[start..start + count]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            kernel.load_window(&c, &flat, count);
            for t in 0..kernel.window_transitions() {
                kernel.select_transition(&c, t);
                kernel.snapshot_into(&mut snap);
                let reference = ArrivalSim::run(&nl, &stream[start + t], &stream[start + t + 1]);
                assert_same(&reference, &snap)?;
            }
            start += count - 1;
        }
    }

    /// Multi-word lanes (W = 4 and W = 8) must match the reference
    /// simulator transition for transition, with window sizes chosen to
    /// land on, before, and past the 64-vector lane word boundaries.
    #[test]
    fn prop_multi_word_windows_match_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..120,
        stream_len in 2usize..150,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(4));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();
        window_width_matches::<4>(&nl, &c, &stream)?;
        window_width_matches::<8>(&nl, &c, &stream)?;
    }

    /// 3-way engine matrix: at every lane width, the interpreted engine
    /// and the codegen runtime must both reproduce `ArrivalSim` — and
    /// each other — transition for transition: identical values, toggle
    /// flags, and bit-exact settle times on every net.
    #[test]
    fn prop_engine_matrix_matches_sim(
        seed in any::<u64>(),
        n_inputs in 1usize..10,
        n_gates in 1usize..120,
        stream_len in 2usize..150,
    ) {
        let nl = random_netlist(seed, n_inputs, n_gates);
        let c = CompiledNetlist::compile(&nl);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5));
        let stream: Vec<Vec<bool>> =
            (0..stream_len).map(|_| random_inputs(&mut rng, n_inputs)).collect();
        engine_matrix_matches::<1>(&nl, &c, &stream)?;
        engine_matrix_matches::<4>(&nl, &c, &stream)?;
        engine_matrix_matches::<8>(&nl, &c, &stream)?;
    }
}

/// Drive `stream` through maximal windows of both [`ArrivalEngine`]
/// implementations at width `W` and pin each transition to the
/// `ArrivalSim` reference (snapshot plus per-net point queries).
fn engine_matrix_matches<const W: usize>(
    nl: &Netlist,
    c: &CompiledNetlist,
    stream: &[Vec<bool>],
) -> Result<(), TestCaseError> {
    let n_inputs = stream[0].len();
    let mut interp = InterpretedEngine::<W>::new(c);
    let mut codegen = SpecializedKernel::<_, W>::new(DynProgram::new(c));
    // The liveness-compacted plan the emitter bakes into shipped
    // kernels, keeping an arbitrary subset (every third net plus the
    // sink) exposed.
    let keep: Vec<u32> = (0..c.len() as u32)
        .filter(|&i| i % 3 == 0 || i as usize == c.len() - 1)
        .collect();
    let mut compact = SpecializedKernel::<_, W>::new(DynProgram::compacted(c, &keep));
    prop_assert_eq!(interp.lanes(), W);
    prop_assert_eq!(codegen.lanes(), W);
    let mut snap_i = TwoVectorResult::default();
    let mut snap_c = TwoVectorResult::default();
    let mut start = 0usize;
    while start + 1 < stream.len() {
        let count = (stream.len() - start).min(W * 64);
        let flat: Vec<bool> = stream[start..start + count]
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        interp.load_window(&flat, count);
        codegen.load_window(&flat[..count * n_inputs], count);
        compact.load_window(&flat[..count * n_inputs], count);
        prop_assert_eq!(interp.window_transitions(), count - 1);
        prop_assert_eq!(codegen.window_transitions(), count - 1);
        for t in 0..count - 1 {
            interp.select_transition(t);
            codegen.select_transition(t);
            compact.select_transition(t);
            let reference = ArrivalSim::run(nl, &stream[start + t], &stream[start + t + 1]);
            interp.snapshot_into(&mut snap_i);
            codegen.snapshot_into(&mut snap_c);
            assert_same(&reference, &snap_i)?;
            assert_same(&reference, &snap_c)?;
            for net in 0..c.len() {
                let id = NetId::from_index(net);
                prop_assert_eq!(interp.cur(id), codegen.cur(id), "cur net {}", net);
                prop_assert_eq!(interp.prev(id), codegen.prev(id), "prev net {}", net);
                prop_assert_eq!(
                    interp.changed(id),
                    codegen.changed(id),
                    "changed net {}",
                    net
                );
                prop_assert_eq!(
                    interp.settle_of(id).to_bits(),
                    codegen.settle_of(id).to_bits(),
                    "settle net {}: interp {} vs codegen {}",
                    net,
                    interp.settle_of(id),
                    codegen.settle_of(id)
                );
                // Compacted plan: values and toggles on every net;
                // settle only where the plan kept the slot alive.
                prop_assert_eq!(interp.cur(id), compact.cur(id), "compact cur net {}", net);
                prop_assert_eq!(
                    interp.changed(id),
                    compact.changed(id),
                    "compact changed net {}",
                    net
                );
                if compact.settle_exposed(id) {
                    prop_assert_eq!(
                        interp.settle_of(id).to_bits(),
                        compact.settle_of(id).to_bits(),
                        "compact settle net {}: interp {} vs compact {}",
                        net,
                        interp.settle_of(id),
                        compact.settle_of(id)
                    );
                }
            }
            for &k in &keep {
                prop_assert!(
                    compact.settle_exposed(NetId::from_index(k as usize)),
                    "kept net {} must stay exposed",
                    k
                );
            }
        }
        start += count - 1;
    }
    Ok(())
}

/// Drive `stream` through maximal windows of an `ArrivalKernel<W>` and
/// compare every transition against `ArrivalSim`.
fn window_width_matches<const W: usize>(
    nl: &Netlist,
    c: &CompiledNetlist,
    stream: &[Vec<bool>],
) -> Result<(), TestCaseError> {
    let mut kernel = ArrivalKernel::<W>::default();
    let mut snap = TwoVectorResult::default();
    let mut start = 0usize;
    while start + 1 < stream.len() {
        let count = (stream.len() - start).min(ArrivalKernel::<W>::WINDOW_VECTORS);
        let flat: Vec<bool> = stream[start..start + count]
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        kernel.load_window(c, &flat, count);
        prop_assert_eq!(kernel.window_transitions(), count - 1);
        for t in 0..count - 1 {
            kernel.select_transition(c, t);
            kernel.snapshot_into(&mut snap);
            let reference = ArrivalSim::run(nl, &stream[start + t], &stream[start + t + 1]);
            assert_same(&reference, &snap)?;
        }
        start += count - 1;
    }
    Ok(())
}
