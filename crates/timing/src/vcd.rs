//! VCD (Value Change Dump) export of event-driven simulation waveforms.
//!
//! Lets generated-circuit transitions — including the glitch trains behind
//! timing errors — be inspected in GTKWave or any standard waveform viewer.

use crate::event::{EventSim, FanoutTable};
use std::fmt::Write as _;
use tei_netlist::Netlist;

/// One recorded value change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Change {
    /// Simulation time (ns).
    pub time: f64,
    /// Net index.
    pub net: usize,
    /// New value.
    pub value: bool,
}

/// A recorded waveform: initial values plus time-ordered changes.
#[derive(Debug, Clone)]
pub struct Waveform {
    initial: Vec<bool>,
    changes: Vec<Change>,
}

impl Waveform {
    /// Capture the full waveform of one input transition by re-running the
    /// event-driven simulator with recording enabled.
    ///
    /// Intended for small circuits and debugging sessions — recording a
    /// multiplier array's glitch trains produces very large dumps.
    pub fn capture(
        nl: &Netlist,
        fanouts: &FanoutTable,
        prev_inputs: &[bool],
        cur_inputs: &[bool],
        delays: &[f64],
    ) -> Self {
        let initial = nl.eval(prev_inputs);
        let mut changes = Vec::new();
        // Reuse the exact engine by replaying with per-step introspection:
        // the engine exposes final values and last transitions, but the VCD
        // needs every change, so this module re-implements the same
        // transport-delay loop with a recording tap. The engines are kept
        // in lockstep by the `matches_event_sim` test below.
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Ev {
            time: f64,
            seq: u64,
            gate: u32,
            value: bool,
        }
        impl Eq for Ev {}
        impl PartialOrd for Ev {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Ev {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .time
                    .partial_cmp(&self.time)
                    .expect("finite times")
                    .then(other.seq.cmp(&self.seq))
            }
        }
        let mut values = initial.clone();
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut seq = 0u64;
        let eval_gate = |g: &tei_netlist::Gate, values: &[bool]| -> bool {
            g.kind.eval(
                values[g.pins[0].index()],
                values[g.pins[1].index()],
                values[g.pins[2].index()],
            )
        };
        let input_nets: Vec<usize> = nl.inputs().iter().map(|n| n.index()).collect();
        for (slot, &net) in input_nets.iter().enumerate() {
            if prev_inputs[slot] != cur_inputs[slot] {
                values[net] = cur_inputs[slot];
                changes.push(Change {
                    time: 0.0,
                    net,
                    value: cur_inputs[slot],
                });
                for &f in fanouts.of(net) {
                    let g = &nl.gates()[f as usize];
                    let v = eval_gate(g, &values);
                    heap.push(Ev {
                        time: delays[f as usize],
                        seq,
                        gate: f,
                        value: v,
                    });
                    seq += 1;
                }
            }
        }
        while let Some(ev) = heap.pop() {
            let gi = ev.gate as usize;
            if values[gi] == ev.value {
                continue;
            }
            values[gi] = ev.value;
            changes.push(Change {
                time: ev.time,
                net: gi,
                value: ev.value,
            });
            for &f in fanouts.of(gi) {
                let g = &nl.gates()[f as usize];
                let v = eval_gate(g, &values);
                heap.push(Ev {
                    time: ev.time + delays[f as usize],
                    seq,
                    gate: f,
                    value: v,
                });
                seq += 1;
            }
        }
        Waveform { initial, changes }
    }

    /// The recorded changes in time order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Final value of each net.
    pub fn final_values(&self) -> Vec<bool> {
        let mut v = self.initial.clone();
        for c in &self.changes {
            v[c.net] = c.value;
        }
        v
    }

    /// Render as a VCD document with picosecond resolution. Only the named
    /// ports of `nl` are declared as variables (internal nets would swamp
    /// viewers for large netlists); pass the same netlist used for capture.
    pub fn to_vcd(&self, nl: &Netlist) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {} $end", ident(nl.name()));
        // Map net index → VCD id, for port bits only.
        let mut ids: Vec<Option<String>> = vec![None; nl.len()];
        let mut next = 0usize;
        let mut alloc = |n: usize, ids: &mut Vec<Option<String>>| {
            if ids[n].is_none() {
                ids[n] = Some(vcd_id(next));
                next += 1;
            }
        };
        for (name, bus) in nl.input_ports().iter().chain(nl.output_ports()) {
            for (bit, net) in bus.iter().enumerate() {
                alloc(net.index(), &mut ids);
                let _ = writeln!(
                    out,
                    "$var wire 1 {} {}[{bit}] $end",
                    ids[net.index()].as_ref().expect("allocated"),
                    ident(name)
                );
            }
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "#0");
        let _ = writeln!(out, "$dumpvars");
        for (n, id) in ids.iter().enumerate() {
            if let Some(id) = id {
                let _ = writeln!(out, "{}{}", self.initial[n] as u8, id);
            }
        }
        let _ = writeln!(out, "$end");
        let mut last_time = 0u64;
        let mut first = true;
        for c in &self.changes {
            let Some(id) = &ids[c.net] else { continue };
            let t = (c.time * 1000.0).round() as u64; // ns → ps
            if first || t != last_time {
                let _ = writeln!(out, "#{t}");
                last_time = t;
                first = false;
            }
            let _ = writeln!(out, "{}{}", c.value as u8, id);
        }
        out
    }
}

fn ident(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Short printable-ASCII VCD identifiers: `!`, `"`, ..., `!!`, ...
fn vcd_id(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

/// Convenience: capture and render in one call, at a uniform derating.
pub fn dump_vcd(nl: &Netlist, prev_inputs: &[bool], cur_inputs: &[bool], factor: f64) -> String {
    let fanouts = FanoutTable::build(nl);
    let delays = EventSim::derated_delays(nl, factor);
    Waveform::capture(nl, &fanouts, prev_inputs, cur_inputs, &delays).to_vcd(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::CellLibrary;

    fn xor_glitch_circuit() -> Netlist {
        let mut nl = Netlist::new("glitch", CellLibrary::unit());
        let a = nl.add_input_bus("a", 1);
        let d1 = nl.buf(a[0]);
        let d2 = nl.buf(d1);
        let x = nl.xor(a[0], d2);
        nl.mark_output_bus("x", &[x]);
        nl
    }

    #[test]
    fn matches_event_sim() {
        let nl = xor_glitch_circuit();
        let fo = FanoutTable::build(&nl);
        let delays = EventSim::derated_delays(&nl, 1.0);
        let wf = Waveform::capture(&nl, &fo, &[false], &[true], &delays);
        let ev = EventSim::run(&nl, &fo, &[false], &[true], &delays, 1e9);
        assert_eq!(wf.final_values(), ev.final_values);
        // The glitch produces two changes on the xor output.
        let x = nl.output_nets()[0].index();
        let xor_changes: Vec<_> = wf.changes().iter().filter(|c| c.net == x).collect();
        assert_eq!(xor_changes.len(), 2, "rise then fall");
        assert!(xor_changes[0].value && !xor_changes[1].value);
    }

    #[test]
    fn vcd_document_structure() {
        let nl = xor_glitch_circuit();
        let vcd = dump_vcd(&nl, &[false], &[true], 1.0);
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$scope module glitch $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.contains("#0"));
        // The glitch pulse shows up at t = 1ns (1000 ps) and 3ns.
        assert!(vcd.contains("#1000"));
        assert!(vcd.contains("#3000"));
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
