//! Netlist-specialized codegen backend for the arrival kernel.
//!
//! For the *shipped* FPU units the netlist is known at build time, so
//! the per-window work can be specialized against it. [`emit_program`]
//! compiles a [`CompiledNetlist`] into a Rust module of static tables
//! implementing [`NetlistProgram`]; the shared [`SpecializedKernel`]
//! harness wraps any program in the window protocol of
//! [`ArrivalEngine`], driving two table-driven passes
//! ([`table_plane_pass`], [`table_settle_pass`]) that are bit-identical
//! to the interpreter.
//!
//! **What specialization buys.** The settle pass dominates DTA
//! throughput and is cache-bandwidth bound: the interpreter's dense
//! batch streams a net-indexed `[f64; W]` settle array (411 KB for the
//! d-mul netlist at `W = 4`, 823 KB at 8) plus full `[u64; W]` diff
//! lanes per gate per batch. The emitter instead performs a liveness
//! analysis over the settle dataflow and allocates *recycled scratch
//! slots*: a net's slot is freed at its last fanout reader and reused
//! (LIFO, so the hottest line is reused first), while nets in the
//! `keep` set — the unit's observable outputs — hold dedicated slots
//! for the campaign's [`settle_of`](ArrivalEngine::settle_of) queries.
//! The scratch footprint drops from `N` nets to the netlist's cut
//! width, and the harness transposes diff lanes word-major once per
//! window so each settle batch reads 8 bytes of toggle bits per gate
//! instead of `8 * W`. The interpreter cannot do this: its net-indexed
//! settle array *is* its public contract (`settle_of` on every net,
//! snapshots, the event-driven cross-checks).
//!
//! **How the settle loop is driven.** Table validation happens once,
//! in [`SpecializedKernel::new`], against owned copies of the
//! program's tables; each batch then runs an unchecked loop over a
//! packed 16-byte [`GateRec`] per gate (re-validating per batch
//! measurably costs as much as the settle arithmetic itself — see
//! [`table_settle_pass`]). On x86-64 with AVX-512F, `W = 8` sweeps
//! *two* adjacent batches at once (the `zmm` module): one ZMM
//! register per batch per net, the toggle byte used directly as the
//! `maskz` write mask, and one record + one diff-word load amortized
//! across both batches — measured at ~2.2× the interpreted `W = 4`
//! walk on d-mul. `TEI_NO_AVX512` forces the generic path for A/B
//! runs or downclock-sensitive hosts.
//!
//! **Why tables and not straight-line code.** A first version of this
//! backend unrolled every gate into its own statement (delays as
//! inline constants, levels unrolled). Measured on d-mul at `W = 4` it
//! ran 6.5× *slower* than the interpreter: ~1 MB of instructions per
//! settle batch streams through the i-cache, which loses decisively to
//! a resident loop over compact tables — and cost half an hour of LLVM
//! time per build. The shipped design keeps the specialization where
//! it pays (the slot allocation, delays as exact `f64` bit constants,
//! pins resolved to slots at emission) and executes it with the same
//! few hundred bytes of loop code for every unit.
//!
//! **Exposure contract.** After a settle pass, only nets whose slot
//! was never recycled still hold their settle time: every net in
//! `keep`, plus any net whose slot happened not to be reused.
//! [`NetlistProgram::settle_slot`] reports `u32::MAX` for the rest,
//! and the engine's [`settle_exposed`](ArrivalEngine::settle_exposed)
//! surfaces that. The DTA campaign only reads output-port settles (see
//! `accumulate_transition` in `tei-core`), which are always kept;
//! full-fidelity programs ([`DynProgram::new`]) expose every net.
//!
//! **Emission-order determinism:** gates are emitted in compiled
//! (topological) index order, the same order the interpreter sweeps,
//! and the slot allocator is deterministic (LIFO free list, one linear
//! scan), so regenerating from an identical netlist reproduces the
//! source byte for byte; the embedded
//! [`CompiledNetlist::fingerprint`] ties a generated program to the
//! exact netlist it came from. Equivalence is enforced three ways: the
//! `kernel_equiv` proptests drive this harness over [`DynProgram`]
//! (full and compacted plans) on random DAGs against the reference
//! simulator, [`SettlePlan`] self-verifies every allocation by replay,
//! and the `tei-kernels` crate checks every generated unit kernel
//! transition-for-transition against the interpreter.

use crate::engine::ArrivalEngine;
use crate::kernel::{lane_bit, CompiledNetlist, Lanes};
use crate::sim::TwoVectorResult;
use std::fmt::Write as _;
use tei_netlist::{GateKind, NetId};

/// The compiled shape of one specialized netlist program: static (or
/// runtime-built) tables the [`SpecializedKernel`] harness drives with
/// [`table_plane_pass`] and [`table_settle_pass`]. Implemented by
/// generated code (via [`emit_program`]) and, for arbitrary netlists,
/// by [`DynProgram`].
///
/// Table invariants (checked by [`SpecializedKernel::new`]): `kinds`
/// and `delay_bits` hold one entry per gate, `pins`/`spins` three;
/// every slot index is below [`slot_count`](Self::slot_count); no gate
/// writes slot 0 (the constant-zero sentinel).
pub trait NetlistProgram: Send + Sync {
    /// Number of nets (== gates) in the specialized netlist.
    fn gate_count(&self) -> usize;

    /// Primary input nets in declaration order.
    fn input_nets(&self) -> &[u32];

    /// Fingerprint of the [`CompiledNetlist`] this program was emitted
    /// from (see [`CompiledNetlist::fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// Gate opcodes (compiled `GateKind` discriminants), topological
    /// order.
    fn kinds(&self) -> &[u8];

    /// Net-indexed fanin pins, fixed stride 3, padded by repetition
    /// (the plane pass operand table).
    fn pins(&self) -> &[u32];

    /// Per-gate propagation delays as raw `f64` bits (exact
    /// round-trip through emitted source).
    fn delay_bits(&self) -> &[u64];

    /// Settle scratch slots, including the reserved constant-zero
    /// slot 0.
    fn slot_count(&self) -> usize;

    /// Scratch slot each gate's settle lanes are written to (never 0).
    fn slots(&self) -> &[u32];

    /// Slot-resolved fanin pins for the settle pass, stride 3: the
    /// slot holding each fanin's settle value at this gate's position
    /// in the sweep, or 0 (the zero sentinel) for self/forward padding
    /// pins.
    fn spins(&self) -> &[u32];

    /// Slot still holding `net`'s settle value *after* the pass, or
    /// `u32::MAX` if it was recycled for a later gate (the net is not
    /// exposed; see the module docs).
    fn settle_slot(&self, net: usize) -> u32;
}

/// Inlined lane/settle primitives used by the table passes. Kept tiny
/// and `#[inline(always)]` so the passes lower to straight-line vector
/// code with no calls.
pub mod ops {
    use super::Lanes;
    use std::array::from_fn;

    /// Transition lanes of a value plane: `v ^ (v >> 1)` as a
    /// `W * 64`-bit-wide shift (borrowing the low bit of the next
    /// word), masked to the window's valid transitions.
    #[inline(always)]
    pub fn dif<const W: usize>(v: Lanes<W>, tm: Lanes<W>) -> Lanes<W> {
        from_fn(|w| {
            let hi = if w + 1 < W { v[w + 1] } else { 0 };
            (v[w] ^ ((v[w] >> 1) | (hi << 63))) & tm[w]
        })
    }

    /// Fused store: `p[i] = v; d[i] = dif(v, tm)`.
    #[inline(always)]
    pub fn st<const W: usize>(
        v: Lanes<W>,
        tm: Lanes<W>,
        p: &mut [Lanes<W>],
        d: &mut [Lanes<W>],
        i: usize,
    ) {
        p[i] = v;
        d[i] = dif(v, tm);
    }

    /// All-zero lanes (Const0).
    #[inline(always)]
    pub fn c0<const W: usize>() -> Lanes<W> {
        [0; W]
    }

    /// All-one lanes (Const1).
    #[inline(always)]
    pub fn c1<const W: usize>() -> Lanes<W> {
        [!0; W]
    }

    /// Lane NOT.
    #[inline(always)]
    pub fn inv<const W: usize>(a: Lanes<W>) -> Lanes<W> {
        from_fn(|w| !a[w])
    }

    /// Lane AND.
    #[inline(always)]
    pub fn and2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| a[w] & b[w])
    }

    /// Lane OR.
    #[inline(always)]
    pub fn or2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| a[w] | b[w])
    }

    /// Lane NAND.
    #[inline(always)]
    pub fn nand2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| !(a[w] & b[w]))
    }

    /// Lane NOR.
    #[inline(always)]
    pub fn nor2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| !(a[w] | b[w]))
    }

    /// Lane XOR.
    #[inline(always)]
    pub fn xor2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| a[w] ^ b[w])
    }

    /// Lane XNOR.
    #[inline(always)]
    pub fn xnor2<const W: usize>(a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| !(a[w] ^ b[w]))
    }

    /// Lane 2:1 mux, pin order `[sel, a, b]`: `b` when `sel` is high.
    #[inline(always)]
    pub fn mux2<const W: usize>(sel: Lanes<W>, a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        from_fn(|w| (sel[w] & b[w]) | (!sel[w] & a[w]))
    }

    /// Lane 3-input majority.
    #[inline(always)]
    pub fn maj3<const W: usize>(a: Lanes<W>, b: Lanes<W>, c: Lanes<W>) -> Lanes<W> {
        from_fn(|w| (a[w] & b[w]) | (a[w] & c[w]) | (b[w] & c[w]))
    }

    /// Two-operand settle fold, the interpreter's comparison chain
    /// (never NaN, so this is exactly `f64::max`).
    #[inline(always)]
    pub fn m2<const W: usize>(a: [f64; W], b: [f64; W]) -> [f64; W] {
        from_fn(|j| if a[j] > b[j] { a[j] } else { b[j] })
    }

    /// Three-operand settle fold in the interpreter's order.
    #[inline(always)]
    pub fn m3<const W: usize>(a: [f64; W], b: [f64; W], c: [f64; W]) -> [f64; W] {
        from_fn(|j| {
            let m = if a[j] > b[j] { a[j] } else { b[j] };
            if m > c[j] {
                m
            } else {
                c[j]
            }
        })
    }

    /// Per-lane keep masks for a gate's batch toggle bits `d >> ls`,
    /// loaded from the harness's [`lane_lut`](super::lane_lut):
    /// all-ones lanes where the gate toggles, all-zeros elsewhere.
    ///
    /// The table load is what keeps the settle pass branch-free: the
    /// arithmetically equivalent `((bits >> j) & 1).wrapping_neg()`
    /// lets LLVM prove each mask is 0 or !0, canonicalize the AND in
    /// [`stl`] into a per-lane select, and lower that as a data-
    /// dependent *branch* per lane per gate — which both scalarizes
    /// the pass and mispredicts at the toggle rate. A load from a
    /// table LLVM cannot see through stays an AND and vectorizes.
    #[inline(always)]
    pub fn kp<const W: usize>(lut: &[Lanes<W>], d: u64, ls: usize) -> Lanes<W> {
        // The table holds a power-of-two entry count covering the `W`
        // index bits that matter (see `lane_lut`), so masking by
        // `len - 1` both selects the right entry and keeps the bounds
        // check trivially elidable.
        lut[((d >> ls) as usize) & (lut.len() - 1)]
    }

    /// Masked settle lanes: `latest + delay` in lanes where `keep` is
    /// all-ones (the gate toggles), bit-exact `+0.0` elsewhere — the
    /// same keep-mask arithmetic as the interpreter's batch.
    #[inline(always)]
    pub fn stl<const W: usize>(latest: [f64; W], delay: f64, keep: Lanes<W>) -> [f64; W] {
        from_fn(|j| f64::from_bits((latest[j] + delay).to_bits() & keep[j]))
    }
}

/// Keep-mask table for [`ops::kp`]: entry `b` holds, per lane `j < W`,
/// all-ones iff bit `j` of `b` is set. Sized `2^W` — only the low `W`
/// bits of a gate's batch toggle word influence the entry, so at
/// W = 4 the table is 16 entries (512 B, L1-resident alongside the
/// scratch) instead of a fixed 256-entry 8 KiB of randomly-indexed L1
/// pressure, and the power-of-two length lets the index mask in
/// [`ops::kp`] elide the bounds check.
pub fn lane_lut<const W: usize>() -> Box<[Lanes<W>]> {
    assert!(W <= 8, "lane LUT supports widths up to 8");
    let lut: Vec<Lanes<W>> = (0..1u64 << W)
        .map(|b| std::array::from_fn(|j| ((b >> j) & 1).wrapping_neg()))
        .collect();
    lut.into_boxed_slice()
}

/// Steady-state pass over opcode/pin tables: evaluate every gate's
/// window lanes in topological order and write each net's transition
/// lanes (`plane ^ plane >> 1`, masked by `tmask`) into `diffs`.
/// Primary-input lanes must already be packed into `plane`.
pub fn table_plane_pass<const W: usize>(
    kinds: &[u8],
    pins: &[u32],
    plane: &mut [Lanes<W>],
    diffs: &mut [Lanes<W>],
    tmask: Lanes<W>,
) {
    let n = kinds.len();
    assert_eq!(pins.len(), 3 * n, "pin table stride");
    assert!(plane.len() >= n && diffs.len() >= n, "plane buffers");
    for i in 0..n {
        let p = &pins[i * 3..i * 3 + 3];
        let v0 = plane[p[0] as usize];
        let v1 = plane[p[1] as usize];
        let v2 = plane[p[2] as usize];
        let v = match kinds[i] {
            k if k == GateKind::Input as u8 || k == GateKind::Buf as u8 => v0,
            k if k == GateKind::Const0 as u8 => ops::c0(),
            k if k == GateKind::Const1 as u8 => ops::c1(),
            k if k == GateKind::Not as u8 => ops::inv(v0),
            k if k == GateKind::And2 as u8 => ops::and2(v0, v1),
            k if k == GateKind::Or2 as u8 => ops::or2(v0, v1),
            k if k == GateKind::Nand2 as u8 => ops::nand2(v0, v1),
            k if k == GateKind::Nor2 as u8 => ops::nor2(v0, v1),
            k if k == GateKind::Xor2 as u8 => ops::xor2(v0, v1),
            k if k == GateKind::Xnor2 as u8 => ops::xnor2(v0, v1),
            k if k == GateKind::Mux2 as u8 => ops::mux2(v0, v1, v2),
            k if k == GateKind::Maj3 as u8 => ops::maj3(v0, v1, v2),
            _ => unreachable!("invalid opcode"),
        };
        ops::st(v, tmask, plane, diffs, i);
    }
}

/// Settle pass over a slot-allocated plan: the interpreter's dense
/// batch with every net's `[f64; W]` settle lanes written to its
/// scratch slot in topological order, masked to `+0.0` in lanes where
/// the net does not toggle. Slot 0 is the constant-zero sentinel read
/// by self/forward padding pins (re-zeroed here, so a poisoned scratch
/// cannot leak). `dw` holds each gate's toggle word for the batch's
/// lane word (the harness's word-major transpose); `ls` is the batch's
/// bit offset within it.
///
/// A gate may legally write the slot one of its own fanins just
/// vacated (the allocator frees at last use *before* reassigning):
/// all three operand lanes are loaded before the store.
pub fn table_settle_pass<const W: usize>(
    slots: &[u32],
    spins: &[u32],
    delay_bits: &[u64],
    scratch: &mut [[f64; W]],
    dw: &[u64],
    lut: &[Lanes<W>],
    ls: usize,
) {
    let n = slots.len();
    assert_eq!(spins.len(), 3 * n, "spin table stride");
    assert_eq!(delay_bits.len(), n, "delay table length");
    assert!(dw.len() >= n, "toggle word slice");
    assert_eq!(lut.len(), 1 << W, "keep-mask table covers W index bits");
    let m = scratch.len() as u32;
    // Branchless folds, not `all()`: the short-circuit in `all()`
    // compiles to a scalar 4-bytes-per-iteration loop, and these
    // sweeps cover the whole slot/spin tables — measured at ~24 us per
    // batch on d-mul, i.e. as expensive as the settle loop itself. The
    // folds vectorize.
    assert!(
        slots.iter().fold(true, |ok, &s| ok & (s != 0) & (s < m)),
        "settle slot out of range"
    );
    assert!(
        spins.iter().fold(true, |ok, &s| ok & (s < m)),
        "spin slot out of range"
    );
    // SAFETY: the sweeps above establish every slot/spin index is
    // below `scratch.len()`; the length asserts cover the table reads.
    unsafe { table_settle_unchecked(slots, spins, delay_bits, scratch, dw, lut, ls) }
}

/// [`table_settle_pass`] without the per-call table validation — the
/// per-batch entry point for [`SpecializedKernel`], which validates its
/// owned tables once at construction.
///
/// # Safety
///
/// `spins.len() == 3 * slots.len()`, `delay_bits.len() == slots.len()`,
/// `dw.len() >= slots.len()`, `lut.len() == 1 << W`, every element of
/// `slots` is non-zero and `< scratch.len()`, and every element of
/// `spins` is `< scratch.len()`.
unsafe fn table_settle_unchecked<const W: usize>(
    slots: &[u32],
    spins: &[u32],
    delay_bits: &[u64],
    scratch: &mut [[f64; W]],
    dw: &[u64],
    lut: &[Lanes<W>],
    ls: usize,
) {
    scratch[0] = [0.0; W];
    for i in 0..slots.len() {
        // SAFETY: slot/spin range and table lengths are the caller's
        // contract; `i < slots.len()` bounds the table reads.
        unsafe {
            let sp = spins.get_unchecked(3 * i..3 * i + 3);
            let a = *scratch.get_unchecked(sp[0] as usize);
            let b = *scratch.get_unchecked(sp[1] as usize);
            let c = *scratch.get_unchecked(sp[2] as usize);
            let latest = ops::m3(a, b, c);
            let keep = ops::kp(lut, *dw.get_unchecked(i), ls);
            let out = ops::stl(latest, f64::from_bits(*delay_bits.get_unchecked(i)), keep);
            *scratch.get_unchecked_mut(*slots.get_unchecked(i) as usize) = out;
        }
    }
}

/// Cacheline-aligned backing storage for the settle scratch. A plain
/// `Vec<[f64; 8]>` is only guaranteed 16-byte alignment, which makes
/// most 64-byte lane arrays straddle two cachelines — every load and
/// store in the settle loop then touches two lines instead of one.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct CacheLine([u8; 64]);

/// `count` zeroed `[f64; W]` lane arrays on a 64-byte-aligned base.
struct AlignedLanes<const W: usize> {
    buf: Vec<CacheLine>,
    count: usize,
}

impl<const W: usize> AlignedLanes<W> {
    fn zeroed(count: usize) -> Self {
        let bytes = count * W * 8;
        AlignedLanes {
            buf: vec![CacheLine([0; 64]); bytes.div_ceil(64)],
            count,
        }
    }

    fn as_mut(&mut self) -> &mut [[f64; W]] {
        // SAFETY: the buffer holds at least `count * W` f64-sized,
        // 64-byte-aligned bytes, all initialized (any bit pattern is a
        // valid f64), and `[f64; W]` has alignment 8 <= 64.
        unsafe {
            std::slice::from_raw_parts_mut(self.buf.as_mut_ptr() as *mut [f64; W], self.count)
        }
    }

    fn as_ref(&self) -> &[[f64; W]] {
        // SAFETY: as in `as_mut`.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const [f64; W], self.count) }
    }
}

/// Packed per-gate settle record: the three fanin slots, the writing
/// slot, and the delay bits in one 16-byte, cacheline-friendly load.
/// Slot indices are `u16`, so packing requires the scratch to stay
/// below `2^16` slots — true for every shipped unit even under the
/// full (identity) plan, with the `u32` table loop as the general
/// fallback. Packing matters because the settle loop is issue-port
/// bound: unpacked, each gate costs seven scalar table loads that
/// compete with the three lane-array vector loads for the two load
/// ports; packed, it is two.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
struct GateRec {
    /// Fanin slots (0 = constant-zero sentinel).
    sp: [u16; 3],
    /// Writing slot (never 0).
    slot: u16,
    /// Gate delay, `f64::to_bits`.
    delay_bits: u64,
}

/// [`GateRec`] table for a settle plan, or `None` if any slot index
/// overflows `u16`.
fn pack_records(slots: &[u32], spins: &[u32], delay_bits: &[u64]) -> Option<Vec<GateRec>> {
    if slots.iter().chain(spins).any(|&s| s > u16::MAX as u32) {
        return None;
    }
    Some(
        (0..slots.len())
            .map(|i| GateRec {
                sp: [
                    spins[3 * i] as u16,
                    spins[3 * i + 1] as u16,
                    spins[3 * i + 2] as u16,
                ],
                slot: slots[i] as u16,
                delay_bits: delay_bits[i],
            })
            .collect(),
    )
}

/// Packed-record settle pass, any lane width.
///
/// # Safety
///
/// Every `sp`/`slot` index in `recs` is `< scratch.len()`,
/// `dw.len() >= recs.len()`, and `lut.len() == 1 << W`.
unsafe fn packed_settle_unchecked<const W: usize>(
    recs: &[GateRec],
    scratch: &mut [[f64; W]],
    dw: &[u64],
    lut: &[Lanes<W>],
    ls: usize,
) {
    scratch[0] = [0.0; W];
    for i in 0..recs.len() {
        // SAFETY: record indices in range per the caller's contract;
        // `i < recs.len()` bounds the `dw` read.
        unsafe {
            let r = recs.get_unchecked(i);
            let a = *scratch.get_unchecked(r.sp[0] as usize);
            let b = *scratch.get_unchecked(r.sp[1] as usize);
            let c = *scratch.get_unchecked(r.sp[2] as usize);
            let latest = ops::m3(a, b, c);
            let keep = ops::kp(lut, *dw.get_unchecked(i), ls);
            let out = ops::stl(latest, f64::from_bits(r.delay_bits), keep);
            *scratch.get_unchecked_mut(r.slot as usize) = out;
        }
    }
}

/// AVX-512 settle pass at W = 8: one ZMM register per net's lane
/// array, and the batch's toggle byte used directly as the `maskz`
/// write mask — no keep-mask table load at all.
///
/// Bit-exact with the generic pass: `_mm512_max_pd(a, b)` returns `a`
/// iff `a > b` (else `b`), exactly the interpreter's comparison chain
/// for never-NaN settle times, and `maskz` zeroes are the same `+0.0`
/// the keep-mask AND produces.
#[cfg(target_arch = "x86_64")]
mod zmm {
    use core::arch::x86_64::*;

    /// Whether the running CPU supports the W = 8 ZMM settle pass.
    #[inline]
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            // Escape hatch for A/B measurement and for hosts where
            // 512-bit license downclocking hurts the surrounding
            // workload more than the wider settle pass helps.
            std::env::var_os("TEI_NO_AVX512").is_none()
                && std::arch::is_x86_feature_detected!("avx512f")
        })
    }

    /// # Safety
    ///
    /// Same table contract as [`super::table_settle_unchecked`] at
    /// W = 8 (no keep-mask table), plus AVX-512F support
    /// ([`available`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn settle_w8(
        slots: &[u32],
        spins: &[u32],
        delay_bits: &[u64],
        scratch: &mut [[f64; 8]],
        dw: &[u64],
        ls: usize,
    ) {
        scratch[0] = [0.0; 8];
        let base = scratch.as_mut_ptr() as *mut f64;
        for i in 0..slots.len() {
            // SAFETY: slot/spin range and table lengths are the
            // caller's contract; lane arrays are 8-aligned f64 runs,
            // loaded/stored unaligned.
            unsafe {
                let s0 = *spins.get_unchecked(3 * i) as usize;
                let s1 = *spins.get_unchecked(3 * i + 1) as usize;
                let s2 = *spins.get_unchecked(3 * i + 2) as usize;
                let a = _mm512_loadu_pd(base.add(s0 * 8));
                let b = _mm512_loadu_pd(base.add(s1 * 8));
                let c = _mm512_loadu_pd(base.add(s2 * 8));
                let latest = _mm512_max_pd(_mm512_max_pd(a, b), c);
                let d = _mm512_set1_pd(f64::from_bits(*delay_bits.get_unchecked(i)));
                let k = ((*dw.get_unchecked(i) >> ls) & 0xff) as __mmask8;
                let out = _mm512_maskz_add_pd(k, latest, d);
                _mm512_storeu_pd(base.add(*slots.get_unchecked(i) as usize * 8), out);
            }
        }
    }

    /// Batch-pair settle: two adjacent W = 8 batches in one sweep over
    /// an interleaved scratch where slot `s` holds batch 0's lanes at
    /// `[f64; 8]` entry `2s` and batch 1's at `2s + 1`. One record
    /// load and one diff-word load then serve both batches, cutting
    /// scalar load traffic ~40% in a loop bound on the two load ports;
    /// both batches' masks sit in the same diff word because the pair
    /// base is a multiple of 16 and 16 divides 64.
    ///
    /// # Safety
    ///
    /// Same table contract as [`super::packed_settle_unchecked`], with
    /// `scratch.len() >= 2 * slot_count` (interleaved pair layout) and
    /// `ls <= 48`, plus AVX-512F support ([`available`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn settle_w8_pair_packed(
        recs: &[super::GateRec],
        scratch: &mut [[f64; 8]],
        dw: &[u64],
        ls: usize,
    ) {
        scratch[0] = [0.0; 8];
        scratch[1] = [0.0; 8];
        let base = scratch.as_mut_ptr() as *mut f64;
        for i in 0..recs.len() {
            // SAFETY: record indices in range per the caller's
            // contract; `i < recs.len()` bounds the `dw` read.
            unsafe {
                let r = recs.get_unchecked(i);
                let (s0, s1, s2) = (
                    r.sp[0] as usize * 16,
                    r.sp[1] as usize * 16,
                    r.sp[2] as usize * 16,
                );
                let l0 = _mm512_max_pd(
                    _mm512_max_pd(_mm512_loadu_pd(base.add(s0)), _mm512_loadu_pd(base.add(s1))),
                    _mm512_loadu_pd(base.add(s2)),
                );
                let l1 = _mm512_max_pd(
                    _mm512_max_pd(
                        _mm512_loadu_pd(base.add(s0 + 8)),
                        _mm512_loadu_pd(base.add(s1 + 8)),
                    ),
                    _mm512_loadu_pd(base.add(s2 + 8)),
                );
                let d = _mm512_set1_pd(f64::from_bits(r.delay_bits));
                let w = *dw.get_unchecked(i) >> ls;
                let o0 = _mm512_maskz_add_pd((w & 0xff) as __mmask8, l0, d);
                let o1 = _mm512_maskz_add_pd(((w >> 8) & 0xff) as __mmask8, l1, d);
                let out = r.slot as usize * 16;
                _mm512_storeu_pd(base.add(out), o0);
                _mm512_storeu_pd(base.add(out + 8), o1);
            }
        }
    }
}

/// A slot allocation for the settle pass of one netlist: where each
/// gate writes, where each fanin pin reads, and which nets remain
/// exposed afterwards. Produced at emission time ([`emit_program`])
/// or at runtime ([`DynProgram`]); every allocation is self-verified
/// by replay before use.
#[derive(Debug, Clone)]
pub struct SettlePlan {
    /// Writing slot per gate (never 0, the zero sentinel).
    pub slots: Vec<u32>,
    /// Slot-resolved fanin pins, stride 3; 0 for self/forward pins.
    pub spins: Vec<u32>,
    /// Slot holding each net's value after the pass; `u32::MAX` if
    /// recycled.
    pub exposed: Vec<u32>,
    /// Scratch size, including slot 0.
    pub slot_count: usize,
}

impl SettlePlan {
    /// The trivial full-fidelity plan: gate `i` owns slot `i + 1`
    /// forever, so every net stays exposed. Matches the interpreter's
    /// net-indexed settle array with one extra zero slot.
    pub fn full(c: &CompiledNetlist) -> Self {
        let n = c.len();
        let pins = c.pins();
        let slots: Vec<u32> = (0..n).map(|i| i as u32 + 1).collect();
        let spins = (0..3 * n)
            .map(|k| {
                let p = pins[k] as usize;
                if p < k / 3 {
                    p as u32 + 1
                } else {
                    0
                }
            })
            .collect();
        let plan = SettlePlan {
            spins,
            exposed: slots.clone(),
            slots,
            slot_count: n + 1,
        };
        plan.verify(c);
        plan
    }

    /// Liveness-compacted plan: each net's slot is freed at its last
    /// fanout reader and recycled LIFO; nets in `keep` (and any net
    /// whose slot never gets reused) stay exposed. Deterministic for a
    /// given `(netlist, keep)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `keep` names a net outside the netlist, or if the
    /// replay self-check finds a slot recycled while still live (an
    /// allocator bug, never an input condition).
    pub fn compacted(c: &CompiledNetlist, keep: &[u32]) -> Self {
        const NONE: u32 = u32::MAX;
        let n = c.len();
        let pins = c.pins();
        let mut kept = vec![false; n];
        for &k in keep {
            kept[k as usize] = true;
        }
        // Last gate reading each net (padding duplicates and
        // self/forward pins are harmless: same or no constraint).
        let mut last_use = vec![NONE; n];
        for i in 0..n {
            for s in 0..3 {
                let p = pins[i * 3 + s] as usize;
                if p < i {
                    last_use[p] = i as u32;
                }
            }
        }
        let mut slot_of = vec![NONE; n];
        let mut exposed = vec![NONE; n];
        let mut slots = Vec::with_capacity(n);
        let mut spins = Vec::with_capacity(3 * n);
        let mut owner: Vec<u32> = vec![NONE]; // slot -> owning gate; slot 0 reserved
        let mut free: Vec<u32> = Vec::new();
        for i in 0..n {
            for s in 0..3 {
                let p = pins[i * 3 + s] as usize;
                spins.push(if p < i { slot_of[p] } else { 0 });
            }
            // Free fanins at their last use *before* allocating, so a
            // gate can inherit a dying fanin's (cache-hot) slot — the
            // pass loads operands before it stores (see
            // `table_settle_pass`).
            for s in 0..3 {
                let p = pins[i * 3 + s] as usize;
                if p < i && last_use[p] == i as u32 && !kept[p] && slot_of[p] != NONE {
                    free.push(slot_of[p]);
                    slot_of[p] = NONE; // guards duplicate pins
                }
            }
            let slot = free.pop().unwrap_or_else(|| {
                owner.push(NONE);
                owner.len() as u32 - 1
            });
            // Reusing a slot un-exposes its previous owner.
            if owner[slot as usize] != NONE {
                exposed[owner[slot as usize] as usize] = NONE;
            }
            owner[slot as usize] = i as u32;
            exposed[i] = slot;
            slot_of[i] = slot;
            slots.push(slot);
            // A value nobody reads (and nobody keeps) dies immediately.
            if last_use[i] == NONE && !kept[i] {
                free.push(slot);
                slot_of[i] = NONE;
            }
        }
        let plan = SettlePlan {
            slots,
            spins,
            exposed,
            slot_count: owner.len(),
        };
        plan.verify(c);
        for &k in keep {
            assert_ne!(
                plan.exposed[k as usize], NONE,
                "kept net {k} lost its slot (allocator bug)"
            );
        }
        plan
    }

    /// Replay the allocation and assert every settle-pass read hits
    /// the slot that currently holds that fanin — the safety argument
    /// for trusting a plan (and the shipped static tables emitted from
    /// one) without per-pass checks.
    fn verify(&self, c: &CompiledNetlist) {
        let n = c.len();
        let pins = c.pins();
        assert_eq!(self.slots.len(), n);
        assert_eq!(self.spins.len(), 3 * n);
        assert_eq!(self.exposed.len(), n);
        let mut holds: Vec<u32> = vec![u32::MAX; self.slot_count];
        for i in 0..n {
            for s in 0..3 {
                let p = pins[i * 3 + s] as usize;
                let spin = self.spins[i * 3 + s];
                if p < i {
                    assert_eq!(
                        holds[spin as usize], p as u32,
                        "gate {i} pin {s}: slot {spin} does not hold net {p}"
                    );
                } else {
                    assert_eq!(spin, 0, "gate {i} pin {s}: forward pin must read slot 0");
                }
            }
            let w = self.slots[i];
            assert!(
                w != 0 && (w as usize) < self.slot_count,
                "gate {i}: writing slot {w} out of range"
            );
            holds[w as usize] = i as u32;
        }
        for (net, &e) in self.exposed.iter().enumerate() {
            if e != u32::MAX {
                assert_eq!(
                    holds[e as usize], net as u32,
                    "net {net}: exposed slot {e} overwritten"
                );
            }
        }
    }
}

/// The window-protocol harness shared by every specialized program:
/// owns the lane planes, the word-major toggle transpose, and the
/// slot-allocated settle scratch; packs input windows and drives the
/// table passes. Implements [`ArrivalEngine`] bit-identically to the
/// interpreted kernel on every exposed net (see the module docs for
/// the exposure contract and why the always-dense settle batch is
/// exact).
pub struct SpecializedKernel<P, const W: usize> {
    program: P,
    plane: Vec<Lanes<W>>,
    diffs: Vec<Lanes<W>>,
    /// Word-major toggle transpose: `diffs_t[w * n + i]` is net `i`'s
    /// diff word `w`, so one settle batch reads 8 contiguous bytes per
    /// gate instead of a strided `[u64; W]`.
    diffs_t: Vec<u64>,
    scratch: AlignedLanes<W>,
    /// Owned copies of the program's settle tables, validated once in
    /// [`SpecializedKernel::new`]. The per-batch hot loop runs
    /// unchecked over these — a `NetlistProgram` impl that returned
    /// different (out-of-range) tables on a later call cannot reach
    /// it, and re-validating per batch measurably costs as much as the
    /// settle loop itself.
    slots: Vec<u32>,
    spins: Vec<u32>,
    delay_bits: Vec<u64>,
    /// [`GateRec`] packing of the three tables above, when every slot
    /// index fits `u16` (always, for the shipped bank).
    packed: Option<Vec<GateRec>>,
    lut: Box<[Lanes<W>]>,
    /// Batch-pair mode (see [`zmm::settle_w8_pair_packed`]): the
    /// settle pass covers `2 * W` transitions per sweep and `scratch`
    /// holds `2 * slot_count` lane arrays in the interleaved pair
    /// layout. Decided once at construction.
    pair: bool,
    width: usize,
    win_count: usize,
    view_t: usize,
    batch_base: usize,
}

impl<P: NetlistProgram, const W: usize> SpecializedKernel<P, W> {
    /// Vectors per bit-sliced window at this lane width.
    pub const WINDOW_VECTORS: usize = W * 64;

    /// A kernel for `program` with all buffers pre-sized.
    ///
    /// # Panics
    ///
    /// Panics if the program's tables violate the [`NetlistProgram`]
    /// invariants (wrong strides, slot indices out of range, a gate
    /// writing the zero sentinel).
    pub fn new(program: P) -> Self {
        let n = program.gate_count();
        let width = program.input_nets().len();
        let m = program.slot_count();
        assert_eq!(program.kinds().len(), n, "kind table length");
        assert_eq!(program.pins().len(), 3 * n, "pin table stride");
        assert_eq!(program.delay_bits().len(), n, "delay table length");
        assert_eq!(program.slots().len(), n, "slot table length");
        assert_eq!(program.spins().len(), 3 * n, "spin table stride");
        assert!(
            program.pins().iter().all(|&p| (p as usize) < n),
            "pin index out of range"
        );
        assert!(
            program.slots().iter().all(|&s| s != 0 && (s as usize) < m),
            "settle slot out of range"
        );
        assert!(
            program.spins().iter().all(|&s| (s as usize) < m),
            "spin slot out of range"
        );
        let packed = pack_records(program.slots(), program.spins(), program.delay_bits());
        #[cfg(target_arch = "x86_64")]
        let pair = W == 8 && packed.is_some() && zmm::available();
        #[cfg(not(target_arch = "x86_64"))]
        let pair = false;
        SpecializedKernel {
            plane: vec![[0; W]; n],
            diffs: vec![[0; W]; n],
            diffs_t: vec![0; W * n],
            scratch: AlignedLanes::zeroed(if pair { 2 * m } else { m }),
            slots: program.slots().to_vec(),
            spins: program.spins().to_vec(),
            delay_bits: program.delay_bits().to_vec(),
            packed,
            lut: lane_lut::<W>(),
            pair,
            program,
            width,
            win_count: 0,
            view_t: 0,
            batch_base: usize::MAX,
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Settle value of `slot` at `lane` transitions past `batch_base`,
    /// layout-aware: paired scratch interleaves the two batches of a
    /// sweep (slot `s` at entries `2s` and `2s + 1`), single-batch
    /// scratch indexes slots directly.
    #[inline]
    fn settle_at(&self, slot: usize, lane: usize) -> f64 {
        let s = self.scratch.as_ref();
        if self.pair {
            s[2 * slot + lane / W][lane % W]
        } else {
            s[slot][lane]
        }
    }
}

impl<P: NetlistProgram, const W: usize> ArrivalEngine for SpecializedKernel<P, W> {
    fn name(&self) -> &'static str {
        "codegen"
    }

    fn lanes(&self) -> usize {
        W
    }

    fn load_window(&mut self, flat: &[bool], count: usize) {
        assert!((1..=Self::WINDOW_VECTORS).contains(&count), "window size");
        assert_eq!(flat.len(), count * self.width, "window buffer size");
        self.win_count = count;
        self.view_t = 0;
        self.batch_base = usize::MAX;

        // Pack each input's window values into its bit lane (same
        // layout as the interpreter's load_window).
        for (k, &net) in self.program.input_nets().iter().enumerate() {
            let mut lane = [0u64; W];
            for (v, chunk) in flat.chunks_exact(self.width).enumerate() {
                lane[v >> 6] |= u64::from(chunk[k]) << (v & 63);
            }
            self.plane[net as usize] = lane;
        }

        // Mask off diff lanes beyond the last valid transition.
        let valid = count - 1;
        let tmask: Lanes<W> = std::array::from_fn(|w| {
            let lo = w * 64;
            if valid >= lo + 64 {
                !0
            } else if valid > lo {
                (1u64 << (valid - lo)) - 1
            } else {
                0
            }
        });
        table_plane_pass(
            self.program.kinds(),
            self.program.pins(),
            &mut self.plane,
            &mut self.diffs,
            tmask,
        );

        // Word-major transpose, once per window (settle batches then
        // stream one u64 per gate instead of the whole lane array).
        let n = self.diffs.len();
        for w in 0..W {
            let dst = &mut self.diffs_t[w * n..(w + 1) * n];
            for (d, t) in self.diffs.iter().zip(dst.iter_mut()) {
                *t = d[w];
            }
        }
    }

    fn window_transitions(&self) -> usize {
        self.win_count.saturating_sub(1)
    }

    fn select_transition(&mut self, t: usize) {
        assert!(self.win_count > 0, "no window loaded");
        assert!(t + 1 < self.win_count, "transition out of range");
        self.view_t = t;
        let sweep = if self.pair { 2 * W } else { W };
        let base = t - (t % sweep);
        if self.batch_base == base {
            return;
        }
        self.batch_base = base;
        // `base` is a multiple of the sweep width and the sweep width
        // divides 64, so the sweep's bits live in one word of each
        // net's diff lanes.
        let n = self.program.gate_count();
        let lw = base >> 6;
        let dw = &self.diffs_t[lw * n..lw * n + n];
        let ls = base & 63;
        // SAFETY: `slots`/`spins`/`delay_bits` (and their `packed`
        // form) are the owned copies validated in `new` (strides,
        // non-zero slots, every index below the slot count; paired
        // scratch holds twice that); `dw` is one word per gate and
        // `lut` holds `1 << W` entries by construction.
        #[cfg(target_arch = "x86_64")]
        if W == 8 && zmm::available() {
            // SAFETY (cast): `W == 8` here, so `[[f64; W]]` and
            // `[[f64; 8]]` are the same layout.
            let scratch8 = unsafe {
                std::slice::from_raw_parts_mut(
                    self.scratch.as_mut().as_mut_ptr() as *mut [f64; 8],
                    self.scratch.count,
                )
            };
            unsafe {
                match &self.packed {
                    // `pair` is true whenever records packed (see
                    // `new`), so the packed arm is always the pair
                    // sweep and `ls` is a multiple of 16 (<= 48).
                    Some(recs) => zmm::settle_w8_pair_packed(recs, scratch8, dw, ls),
                    None => {
                        zmm::settle_w8(&self.slots, &self.spins, &self.delay_bits, scratch8, dw, ls)
                    }
                }
            };
            return;
        }
        unsafe {
            match &self.packed {
                Some(recs) => {
                    packed_settle_unchecked(recs, self.scratch.as_mut(), dw, &self.lut, ls)
                }
                None => table_settle_unchecked(
                    &self.slots,
                    &self.spins,
                    &self.delay_bits,
                    self.scratch.as_mut(),
                    dw,
                    &self.lut,
                    ls,
                ),
            }
        };
    }

    fn cur(&self, net: NetId) -> bool {
        lane_bit(&self.plane[net.index()], self.view_t + 1)
    }

    fn prev(&self, net: NetId) -> bool {
        lane_bit(&self.plane[net.index()], self.view_t)
    }

    fn changed(&self, net: NetId) -> bool {
        lane_bit(&self.diffs[net.index()], self.view_t)
    }

    fn settle_exposed(&self, net: NetId) -> bool {
        self.program.settle_slot(net.index()) != u32::MAX
    }

    fn settle_of(&self, net: NetId) -> f64 {
        let slot = self.program.settle_slot(net.index());
        assert!(
            slot != u32::MAX,
            "settle of net {} was recycled (not in this program's keep set)",
            net.index()
        );
        self.settle_at(slot as usize, self.view_t - self.batch_base)
    }

    fn snapshot_into(&self, out: &mut TwoVectorResult) {
        let n = self.plane.len();
        let lane = self.view_t - self.batch_base;
        out.settle.clear();
        out.settle.extend((0..n).map(|i| {
            let slot = self.program.settle_slot(i);
            // Recycled nets report 0.0; full-fidelity programs expose
            // every net, so snapshots over them are exact.
            if slot == u32::MAX {
                0.0
            } else {
                self.settle_at(slot as usize, lane)
            }
        }));
        out.prev.clear();
        out.cur.clear();
        out.prev.reserve(n);
        out.cur.reserve(n);
        for i in 0..n {
            out.cur.push(lane_bit(&self.plane[i], self.view_t + 1));
            out.prev.push(lane_bit(&self.plane[i], self.view_t));
        }
    }
}

/// [`NetlistProgram`] built at runtime from a [`CompiledNetlist`]: the
/// same table shapes generated code ships as statics, materialized on
/// the fly. [`DynProgram::new`] uses the full (identity) plan — every
/// net exposed — and is the property-test control for the
/// [`SpecializedKernel`] harness; [`DynProgram::compacted`] exercises
/// the same liveness-compacted allocation the emitter bakes into
/// shipped kernels, for netlists that have no generated module.
pub struct DynProgram {
    kinds: Vec<u8>,
    pins: Vec<u32>,
    delay_bits: Vec<u64>,
    inputs: Vec<u32>,
    fingerprint: u64,
    plan: SettlePlan,
}

impl DynProgram {
    /// A full-fidelity dynamic program over `compiled` (every net
    /// exposed).
    pub fn new(compiled: &CompiledNetlist) -> Self {
        Self::with_plan(compiled, SettlePlan::full(compiled))
    }

    /// A slot-compacted dynamic program over `compiled`, keeping the
    /// nets in `keep` exposed (see [`SettlePlan::compacted`]).
    pub fn compacted(compiled: &CompiledNetlist, keep: &[u32]) -> Self {
        Self::with_plan(compiled, SettlePlan::compacted(compiled, keep))
    }

    fn with_plan(compiled: &CompiledNetlist, plan: SettlePlan) -> Self {
        DynProgram {
            kinds: compiled.kinds().to_vec(),
            pins: compiled.pins().to_vec(),
            delay_bits: compiled.delays().iter().map(|d| d.to_bits()).collect(),
            inputs: compiled.input_nets().to_vec(),
            fingerprint: compiled.fingerprint(),
            plan,
        }
    }

    /// The program's settle plan.
    pub fn plan(&self) -> &SettlePlan {
        &self.plan
    }
}

impl NetlistProgram for DynProgram {
    fn gate_count(&self) -> usize {
        self.kinds.len()
    }

    fn input_nets(&self) -> &[u32] {
        &self.inputs
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn kinds(&self) -> &[u8] {
        &self.kinds
    }

    fn pins(&self) -> &[u32] {
        &self.pins
    }

    fn delay_bits(&self) -> &[u64] {
        &self.delay_bits
    }

    fn slot_count(&self) -> usize {
        self.plan.slot_count
    }

    fn slots(&self) -> &[u32] {
        &self.plan.slots
    }

    fn spins(&self) -> &[u32] {
        &self.plan.spins
    }

    fn settle_slot(&self, net: usize) -> u32 {
        self.plan.exposed[net]
    }
}

/// Emit the netlist-specialized Rust source for `c` as a `pub mod
/// {module_name}` implementing [`NetlistProgram`] on a zero-sized
/// `Program` type over static tables, with the settle plan compacted
/// around the `keep` set (the unit's observable outputs).
///
/// `levels` is the per-net logic depth (from
/// [`Netlist::levelize`](tei_netlist::Netlist::levelize), computed on
/// the same netlist `c` was compiled from) and is used only for the
/// header annotation; emission order is the compiled topological index
/// order and the slot allocator is deterministic, which makes
/// regeneration byte-for-byte reproducible. The emitted module
/// references this crate as `tei_timing` (the generated-kernels crate
/// compiles it via `include!`).
///
/// # Panics
///
/// Panics if `levels.len()` differs from the netlist's gate count,
/// `module_name` is not a lowercase identifier, or `keep` names a net
/// outside the netlist.
pub fn emit_program(
    c: &CompiledNetlist,
    levels: &[u32],
    module_name: &str,
    tag: &str,
    keep: &[u32],
) -> String {
    let n = c.len();
    assert_eq!(levels.len(), n, "level table must cover every net");
    assert!(
        !module_name.is_empty()
            && module_name
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_')
            && !module_name.starts_with(|ch: char| ch.is_ascii_digit()),
        "module name {module_name:?} must be a lowercase identifier"
    );
    let inputs = c.input_nets();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let plan = SettlePlan::compacted(c, keep);

    let mut s = String::with_capacity(32 * n + 4096);
    let _ = writeln!(
        s,
        "// @generated by tei-timing codegen — do not edit; regenerate from the netlist."
    );
    let _ = writeln!(
        s,
        "// unit: {tag} · gates: {n} · inputs: {} · logic levels: {max_level} · settle slots: \
         {} ({:.1}% of dense)",
        inputs.len(),
        plan.slot_count,
        100.0 * plan.slot_count as f64 / (n + 1) as f64
    );
    let _ = writeln!(s, "pub mod {module_name} {{");
    let _ = writeln!(s, "    #![allow(clippy::all)]");
    let _ = writeln!(s, "    use tei_timing::codegen::NetlistProgram;");
    let _ = writeln!(s, "    /// Gate count of the specialized netlist.");
    let _ = writeln!(s, "    pub const N: usize = {n};");
    let _ = writeln!(
        s,
        "    /// Fingerprint of the `CompiledNetlist` this was emitted from."
    );
    let _ = writeln!(
        s,
        "    pub const FINGERPRINT: u64 = 0x{:016X};",
        c.fingerprint()
    );
    let _ = writeln!(
        s,
        "    /// Settle scratch slots (liveness-compacted; slot 0 is the zero sentinel)."
    );
    let _ = writeln!(s, "    pub const SLOT_COUNT: usize = {};", plan.slot_count);
    emit_u32_array(&mut s, "INPUTS", inputs.len(), inputs.iter().copied());
    let _ = write!(s, "    static KINDS: [u8; {n}] = [");
    for (k, v) in c.kinds().iter().enumerate() {
        if k % 32 == 0 {
            let _ = write!(s, "\n        ");
        }
        let _ = write!(s, "{v}, ");
    }
    let _ = writeln!(s, "\n    ];");
    emit_u32_array(&mut s, "PINS", 3 * n, c.pins().iter().copied());
    emit_u32_array(&mut s, "SLOTS", n, plan.slots.iter().copied());
    emit_u32_array(&mut s, "SPINS", 3 * n, plan.spins.iter().copied());
    emit_u32_array(&mut s, "EXPOSED", n, plan.exposed.iter().copied());
    let _ = write!(s, "    static DELAYS: [u64; {n}] = [");
    for (k, d) in c.delays().iter().enumerate() {
        if k % 4 == 0 {
            let _ = write!(s, "\n        ");
        }
        let _ = write!(s, "0x{:016X}, ", d.to_bits());
    }
    let _ = writeln!(s, "\n    ];");
    let _ = writeln!(s, "    /// Table-compiled specialized program for `{tag}`.");
    let _ = writeln!(s, "    #[derive(Debug, Clone, Copy, Default)]");
    let _ = writeln!(s, "    pub struct Program;");
    let _ = writeln!(s, "    impl NetlistProgram for Program {{");
    let _ = writeln!(s, "        fn gate_count(&self) -> usize {{ N }}");
    let _ = writeln!(s, "        fn input_nets(&self) -> &[u32] {{ &INPUTS }}");
    let _ = writeln!(s, "        fn fingerprint(&self) -> u64 {{ FINGERPRINT }}");
    let _ = writeln!(s, "        fn kinds(&self) -> &[u8] {{ &KINDS }}");
    let _ = writeln!(s, "        fn pins(&self) -> &[u32] {{ &PINS }}");
    let _ = writeln!(s, "        fn delay_bits(&self) -> &[u64] {{ &DELAYS }}");
    let _ = writeln!(s, "        fn slot_count(&self) -> usize {{ SLOT_COUNT }}");
    let _ = writeln!(s, "        fn slots(&self) -> &[u32] {{ &SLOTS }}");
    let _ = writeln!(s, "        fn spins(&self) -> &[u32] {{ &SPINS }}");
    let _ = writeln!(
        s,
        "        fn settle_slot(&self, net: usize) -> u32 {{ EXPOSED[net] }}"
    );
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "}}");
    s
}

/// Append `static {name}: [u32; {len}] = [...];` with 16 values per
/// line (indented for the emitted module body).
fn emit_u32_array(s: &mut String, name: &str, len: usize, vals: impl Iterator<Item = u32>) {
    let _ = write!(s, "    static {name}: [u32; {len}] = [");
    for (k, v) in vals.enumerate() {
        if k % 16 == 0 {
            let _ = write!(s, "\n        ");
        }
        let _ = write!(s, "{v}, ");
    }
    let _ = writeln!(s, "\n    ];");
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::{CellLibrary, Netlist};

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny", CellLibrary::nangate45_like());
        let a = nl.add_input_bit();
        let b = nl.add_input_bit();
        let x = nl.add_gate(GateKind::Xor2, &[a, b]);
        let y = nl.add_gate(GateKind::Nand2, &[x, a]);
        nl.mark_output_bus("r", &[x, y]);
        nl
    }

    /// A chain netlist compacts to O(1) slots when only the sink is
    /// kept: each link's slot is recycled at its single reader.
    fn chain(len: usize) -> Netlist {
        let mut nl = Netlist::new("chain", CellLibrary::nangate45_like());
        let mut cur = nl.add_input_bit();
        let mut last = cur;
        for _ in 0..len {
            last = nl.add_gate(GateKind::Not, &[cur]);
            cur = last;
        }
        nl.mark_output_bus("r", &[last]);
        nl
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let nl = tiny();
        let c1 = CompiledNetlist::compile(&nl);
        let c2 = CompiledNetlist::compile(&nl);
        assert_eq!(c1.fingerprint(), c2.fingerprint(), "deterministic");
        let mut other = tiny();
        other.scale_all_delays(1.5);
        let c3 = CompiledNetlist::compile(&other);
        assert_ne!(
            c1.fingerprint(),
            c3.fingerprint(),
            "delay changes must change the fingerprint"
        );
    }

    #[test]
    fn compacted_plan_recycles_chain_slots() {
        let nl = chain(64);
        let c = CompiledNetlist::compile(&nl);
        let sink = c.len() as u32 - 1;
        let plan = SettlePlan::compacted(&c, &[sink]);
        // One live link at a time plus the kept sink and the zero
        // sentinel: far fewer slots than nets.
        assert!(
            plan.slot_count <= 4,
            "chain should compact to O(1) slots, got {}",
            plan.slot_count
        );
        assert_ne!(plan.exposed[sink as usize], u32::MAX, "sink stays exposed");
        // Interior links are recycled.
        assert!(
            (1..c.len() - 1).any(|i| plan.exposed[i] == u32::MAX),
            "interior chain nets should be recycled"
        );
    }

    #[test]
    fn full_plan_exposes_every_net() {
        let nl = tiny();
        let c = CompiledNetlist::compile(&nl);
        let plan = SettlePlan::full(&c);
        assert_eq!(plan.slot_count, c.len() + 1);
        assert!(plan.exposed.iter().all(|&e| e != u32::MAX));
    }

    #[test]
    fn emitted_source_is_deterministic_and_carries_fingerprint() {
        let nl = tiny();
        let c = CompiledNetlist::compile(&nl);
        let levels = nl.levelize();
        let keep: Vec<u32> = vec![2, 3];
        let a = emit_program(&c, &levels, "tiny", "tiny", &keep);
        let b = emit_program(&c, &levels, "tiny", "tiny", &keep);
        assert_eq!(a, b, "emission must be deterministic");
        assert!(a.contains(&format!("0x{:016X}", c.fingerprint())));
        assert!(a.contains("pub mod tiny {"));
        assert!(a.contains("static SLOTS"));
        assert!(a.contains("static SPINS"));
        assert!(a.contains("SLOT_COUNT"));
    }

    #[test]
    #[should_panic(expected = "lowercase identifier")]
    fn emit_rejects_bad_module_names() {
        let nl = tiny();
        let c = CompiledNetlist::compile(&nl);
        let levels = nl.levelize();
        emit_program(&c, &levels, "Bad-Name", "tiny", &[]);
    }
}
