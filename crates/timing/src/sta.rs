//! Static timing analysis: arrival times, worst paths, slack, path census.

use serde::{Deserialize, Serialize};
use tei_netlist::{GateKind, NetId, Netlist};

/// Static timing analysis of a netlist at its nominal corner.
///
/// Arrival time of a net is the worst-case (topological) time at which the
/// net settles after the launching clock edge: `max(fanin arrivals) + gate
/// delay`, with primary inputs arriving at t = 0. This matches conventional
/// STA, which is input-data-agnostic — the paper's Section II.A.
#[derive(Debug, Clone)]
pub struct Sta {
    arrivals: Vec<f64>,
    endpoints: Vec<NetId>,
}

impl Sta {
    /// Run STA over `nl`. Endpoints are the netlist's declared outputs
    /// (register D-pins in the paper's pipelined-core view).
    pub fn analyze(nl: &Netlist) -> Self {
        let mut arrivals = vec![0.0f64; nl.len()];
        for (i, g) in nl.gates().iter().enumerate() {
            if g.kind == GateKind::Input {
                continue;
            }
            let worst = g
                .fanin()
                .iter()
                .map(|p| arrivals[p.index()])
                .fold(0.0f64, f64::max);
            arrivals[i] = worst + g.delay;
        }
        Sta {
            arrivals,
            endpoints: nl.output_nets(),
        }
    }

    /// Arrival time of one net.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrivals[net.index()]
    }

    /// All arrival times, indexed by net.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// The critical (maximum) delay over all endpoints — the left side of
    /// the paper's equation (1); the minimum usable clock period.
    pub fn max_delay(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|e| self.arrivals[e.index()])
            .fold(0.0, f64::max)
    }

    /// Slack of an endpoint at clock period `clk`:
    /// `slack = clk − arrival`. Negative slack means a static violation.
    pub fn slack(&self, endpoint: NetId, clk: f64) -> f64 {
        clk - self.arrivals[endpoint.index()]
    }

    /// Enumerate the `k` longest paths ending at `endpoint`, longest first.
    ///
    /// Best-first search over partial path suffixes with the exact
    /// remaining-arrival bound, so paths are produced in non-increasing
    /// delay order (PrimeTime's `report_timing -nworst k` per endpoint).
    /// Each result is `(delay, nets from primary input to endpoint)`.
    pub fn k_worst_paths_to(
        &self,
        nl: &Netlist,
        endpoint: NetId,
        k: usize,
    ) -> Vec<(f64, Vec<NetId>)> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry {
            bound: f64,
            suffix_delay: f64,
            arena: usize,
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.bound.partial_cmp(&other.bound).expect("finite bounds")
            }
        }

        // Arena of (node, parent) links forming suffix chains toward the
        // endpoint; shared tails keep memory linear in pops.
        let mut arena: Vec<(NetId, Option<usize>)> = vec![(endpoint, None)];
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            bound: self.arrivals[endpoint.index()],
            suffix_delay: 0.0,
            arena: 0,
        });
        let mut out = Vec::with_capacity(k);
        while let Some(e) = heap.pop() {
            let (node, _) = arena[e.arena];
            let g = nl.gate(node);
            if g.fanin().is_empty() {
                // Complete path: walk the chain back to the endpoint.
                let mut path = Vec::new();
                let mut cur = Some(e.arena);
                while let Some(i) = cur {
                    path.push(arena[i].0);
                    cur = arena[i].1;
                }
                out.push((e.bound, path));
                if out.len() >= k {
                    break;
                }
                continue;
            }
            let suffix = e.suffix_delay + g.delay;
            for &u in g.fanin() {
                arena.push((u, Some(e.arena)));
                heap.push(Entry {
                    bound: self.arrivals[u.index()] + suffix,
                    suffix_delay: suffix,
                    arena: arena.len() - 1,
                });
            }
        }
        out
    }

    /// Trace the single worst path ending at `endpoint`: walk back through
    /// the fanin with the largest arrival. Returns nets from a primary
    /// input to the endpoint, inclusive.
    pub fn worst_path_to(&self, nl: &Netlist, endpoint: NetId) -> Vec<NetId> {
        let mut path = vec![endpoint];
        let mut cur = endpoint;
        loop {
            let g = nl.gate(cur);
            if g.fanin().is_empty() {
                break;
            }
            let next = *g
                .fanin()
                .iter()
                .max_by(|a, b| {
                    self.arrivals[a.index()]
                        .partial_cmp(&self.arrivals[b.index()])
                        .expect("arrival times are finite")
                })
                .expect("non-empty fanin");
            path.push(next);
            cur = next;
        }
        path.reverse();
        path
    }
}

/// One reported timing path (worst path per endpoint).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathInfo {
    /// Endpoint net.
    pub endpoint: NetId,
    /// Path delay in nanoseconds at the nominal corner.
    pub delay: f64,
    /// Slack at the census clock period.
    pub slack: f64,
    /// Name of the block contributing the most delay along the path.
    pub dominant_block: String,
    /// Name of the output port the endpoint belongs to.
    pub port: String,
    /// Number of gates on the path.
    pub length: usize,
}

/// The paper's Figure 4 artifact: the K lowest-slack paths of a design,
/// grouped by functional block.
///
/// As in PrimeTime-style `report_timing -nworst 1`, one path is reported
/// per endpoint (the worst), and the census keeps the K worst endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathCensus {
    /// Paths sorted by ascending slack (most critical first).
    pub paths: Vec<PathInfo>,
    /// Clock period used for the slack computation.
    pub clk: f64,
}

impl PathCensus {
    /// Collect the `k` lowest-slack paths of `nl` at clock `clk`, taking as
    /// many paths per endpoint as needed to fill `k` (like PrimeTime's
    /// `-max_paths k -nworst n`).
    pub fn top_k(nl: &Netlist, clk: f64, k: usize) -> Self {
        let endpoints: usize = nl.output_ports().iter().map(|(_, b)| b.len()).sum();
        let nworst = k.div_ceil(endpoints.max(1)).clamp(1, 16);
        Self::top_k_nworst(nl, clk, k, nworst)
    }

    /// Collect the `k` lowest-slack paths, reporting at most `nworst` paths
    /// per endpoint.
    pub fn top_k_nworst(nl: &Netlist, clk: f64, k: usize, nworst: usize) -> Self {
        let sta = Sta::analyze(nl);
        let mut paths: Vec<PathInfo> = Vec::new();
        for (port, bus) in nl.output_ports() {
            for &endpoint in bus {
                for (delay, nets) in sta.k_worst_paths_to(nl, endpoint, nworst) {
                    // Aggregate delay per block along the path.
                    let mut per_block: Vec<f64> = vec![0.0; nl.block_names().len()];
                    for &n in &nets {
                        let g = nl.gate(n);
                        per_block[g.block.index()] += g.delay;
                    }
                    let dominant = per_block
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite delays"))
                        .map(|(i, _)| nl.block_names()[i].clone())
                        .unwrap_or_else(|| "top".to_string());
                    paths.push(PathInfo {
                        endpoint,
                        delay,
                        slack: clk - delay,
                        dominant_block: dominant,
                        port: port.clone(),
                        length: nets.len(),
                    });
                }
            }
        }
        paths.sort_by(|a, b| a.slack.partial_cmp(&b.slack).expect("finite slack"));
        paths.truncate(k);
        PathCensus { paths, clk }
    }

    /// Histogram of path counts per dominant block, most critical first.
    pub fn by_block(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for p in &self.paths {
            match counts.iter_mut().find(|(b, _)| *b == p.dominant_block) {
                Some((_, c)) => *c += 1,
                None => counts.push((p.dominant_block.clone(), 1)),
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::CellLibrary;

    fn chain(nl: &mut Netlist, start: NetId, n: usize) -> NetId {
        let mut cur = start;
        for _ in 0..n {
            cur = nl.not(cur);
        }
        cur
    }

    #[test]
    fn arrival_accumulates_along_chain() {
        let mut nl = Netlist::new("c", CellLibrary::unit());
        let a = nl.add_input_bit();
        let end = chain(&mut nl, a, 5);
        nl.mark_output_bus("o", &[end]);
        let sta = Sta::analyze(&nl);
        assert!((sta.max_delay() - 5.0).abs() < 1e-12);
        assert!((sta.slack(end, 8.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_of_reconvergent_paths_wins() {
        let mut nl = Netlist::new("r", CellLibrary::unit());
        let a = nl.add_input_bit();
        let short = nl.not(a);
        let long = chain(&mut nl, a, 4);
        let out = nl.and(short, long);
        nl.mark_output_bus("o", &[out]);
        let sta = Sta::analyze(&nl);
        assert!((sta.arrival(out) - 5.0).abs() < 1e-12);
        let path = sta.worst_path_to(&nl, out);
        assert_eq!(path.len(), 6, "input + 4 nots + and");
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), out);
    }

    #[test]
    fn census_sorts_by_slack_and_tags_blocks() {
        let mut nl = Netlist::new("c", CellLibrary::unit());
        let a = nl.add_input_bit();
        nl.begin_block("shallow");
        let s = chain(&mut nl, a, 2);
        nl.begin_block("deep");
        let d = chain(&mut nl, a, 10);
        nl.mark_output_bus("s", &[s]);
        nl.mark_output_bus("d", &[d]);
        let census = PathCensus::top_k(&nl, 12.0, 10);
        assert_eq!(census.paths.len(), 2);
        assert_eq!(census.paths[0].dominant_block, "deep");
        assert!(census.paths[0].slack < census.paths[1].slack);
        let hist = census.by_block();
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn census_truncates_to_k() {
        let mut nl = Netlist::new("c", CellLibrary::unit());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, _) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        let census = PathCensus::top_k(&nl, 100.0, 3);
        assert_eq!(census.paths.len(), 3);
        // Worst slack first = highest-order sum bit (deepest carry chain).
        assert!(census.paths[0].delay >= census.paths[1].delay);
    }
}
