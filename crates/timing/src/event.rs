//! Exact event-driven timed simulation with transport delays.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tei_netlist::Netlist;

/// Precomputed fanout lists of a netlist (gate index → driven gate indices).
#[derive(Debug, Clone)]
pub struct FanoutTable {
    fanouts: Vec<Vec<u32>>,
}

impl FanoutTable {
    /// Build the fanout table of `nl`.
    pub fn build(nl: &Netlist) -> Self {
        let mut fanouts = vec![Vec::new(); nl.len()];
        for (i, g) in nl.gates().iter().enumerate() {
            for &pin in g.fanin() {
                fanouts[pin.index()].push(i as u32);
            }
        }
        FanoutTable { fanouts }
    }

    /// Gates driven by net `net_index`.
    #[inline]
    pub fn of(&self, net_index: usize) -> &[u32] {
        &self.fanouts[net_index]
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    gate: u32,
    value: bool,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking ties
        // by scheduling order so later-computed values win at equal times.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Result of an event-driven simulation of one input transition.
#[derive(Debug, Clone)]
pub struct EventSimResult {
    /// Final steady-state value per net (the golden result).
    pub final_values: Vec<bool>,
    /// Value per net at the capturing clock edge (what a register latches).
    pub latched: Vec<bool>,
    /// Last transition time per net (0 for nets that never toggled).
    pub last_transition: Vec<f64>,
    /// Total number of value-change events processed (waveform activity;
    /// also the input to dynamic-power estimation).
    pub events: u64,
}

impl EventSimResult {
    /// Whether net `i` latches a value that differs from its final value.
    #[inline]
    pub fn is_error(&self, i: usize) -> bool {
        self.latched[i] != self.final_values[i]
    }
}

/// Exact event-driven timed gate-level simulator.
///
/// Models transport delays per gate, so reconvergent fanout produces real
/// glitch trains; the value captured at the clock edge is read off the
/// simulated waveform. This is the reference dynamic-timing engine; the
/// fast [`ArrivalSim`](crate::ArrivalSim) is validated against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventSim;

impl EventSim {
    /// Simulate the transition `prev_inputs → cur_inputs` with per-gate
    /// effective `delays` (nominal delay × derating factor) and capture the
    /// latched state at time `clk`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the netlist.
    pub fn run(
        nl: &Netlist,
        fanouts: &FanoutTable,
        prev_inputs: &[bool],
        cur_inputs: &[bool],
        delays: &[f64],
        clk: f64,
    ) -> EventSimResult {
        assert_eq!(prev_inputs.len(), nl.inputs().len(), "prev input width");
        assert_eq!(cur_inputs.len(), nl.inputs().len(), "cur input width");
        assert_eq!(delays.len(), nl.len(), "per-gate delay table width");

        // Steady state under the previous vector.
        let mut values = nl.eval(prev_inputs);
        let mut last_transition = vec![0.0f64; nl.len()];
        let mut latched: Option<Vec<bool>> = None;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut events = 0u64;

        let eval_gate = |g: &tei_netlist::Gate, values: &[bool]| -> bool {
            g.kind.eval(
                values[g.pins[0].index()],
                values[g.pins[1].index()],
                values[g.pins[2].index()],
            )
        };

        // Apply the input transition at t = 0.
        let input_nets: Vec<usize> = nl.inputs().iter().map(|n| n.index()).collect();
        for (slot, &net) in input_nets.iter().enumerate() {
            if prev_inputs[slot] != cur_inputs[slot] {
                values[net] = cur_inputs[slot];
                last_transition[net] = 0.0;
                events += 1;
                for &f in fanouts.of(net) {
                    let g = &nl.gates()[f as usize];
                    let v = eval_gate(g, &values);
                    // Transport-delay semantics: the output waveform is the
                    // delayed function of the input waveforms, so always
                    // schedule; no-op transitions are discarded at fire time.
                    heap.push(Event {
                        time: delays[f as usize],
                        seq,
                        gate: f,
                        value: v,
                    });
                    seq += 1;
                }
            }
        }

        while let Some(ev) = heap.pop() {
            if ev.time > clk && latched.is_none() {
                latched = Some(values.clone());
            }
            let gi = ev.gate as usize;
            if values[gi] == ev.value {
                continue;
            }
            values[gi] = ev.value;
            last_transition[gi] = ev.time;
            events += 1;
            for &f in fanouts.of(gi) {
                let g = &nl.gates()[f as usize];
                let v = eval_gate(g, &values);
                heap.push(Event {
                    time: ev.time + delays[f as usize],
                    seq,
                    gate: f,
                    value: v,
                });
                seq += 1;
            }
        }

        let latched = latched.unwrap_or_else(|| values.clone());
        // Sanitizer: every event time is a sum of path delays from the
        // `delays` table, so the last transition of a net cannot exceed
        // the static worst-case arrival computed over the same table.
        #[cfg(feature = "sanitize-arrivals")]
        {
            let mut bound = vec![0.0f64; nl.len()];
            for (i, g) in nl.gates().iter().enumerate() {
                if g.kind == tei_netlist::GateKind::Input {
                    continue;
                }
                let worst = g
                    .fanin()
                    .iter()
                    .map(|p| bound[p.index()])
                    .fold(0.0f64, f64::max);
                bound[i] = worst + delays[i];
            }
            for i in 0..nl.len() {
                assert!(
                    last_transition[i] <= bound[i] + 1e-9,
                    "sanitize-arrivals: net n{i} last toggled at {} past its static bound {}",
                    last_transition[i],
                    bound[i]
                );
            }
        }
        EventSimResult {
            final_values: values,
            latched,
            last_transition,
            events,
        }
    }

    /// Effective per-gate delay table at a uniform derating `factor`.
    pub fn derated_delays(nl: &Netlist, factor: f64) -> Vec<f64> {
        nl.gates().iter().map(|g| g.delay * factor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ArrivalSim;
    use tei_netlist::CellLibrary;

    fn nominal(nl: &Netlist) -> Vec<f64> {
        EventSim::derated_delays(nl, 1.0)
    }

    #[test]
    fn final_values_match_functional_eval() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let zero = nl.const_bit(false);
        let (sum, _) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        let fo = FanoutTable::build(&nl);
        let prev: Vec<bool> = vec![false; 8];
        let cur: Vec<bool> = [true, true, false, false, true, false, true, false].to_vec();
        let r = EventSim::run(&nl, &fo, &prev, &cur, &nominal(&nl), 1e9);
        assert_eq!(r.final_values, nl.eval(&cur));
        assert_eq!(r.latched, r.final_values, "huge clk latches final values");
    }

    #[test]
    fn late_clock_edge_sees_stale_value() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let mut cur = a;
        for _ in 0..6 {
            cur = nl.not(cur);
        }
        nl.mark_output_bus("o", &[cur]);
        let fo = FanoutTable::build(&nl);
        let r = EventSim::run(&nl, &fo, &[false], &[true], &nominal(&nl), 3.5);
        // Chain settles at t=6 > clk=3.5 → latched value is stale.
        assert!(r.is_error(cur.index()));
        let r2 = EventSim::run(&nl, &fo, &[false], &[true], &nominal(&nl), 6.0);
        assert!(!r2.is_error(cur.index()));
    }

    #[test]
    fn glitch_from_reconvergent_fanout_is_observed() {
        // XOR(a, delayed(a)): a static-0 function that glitches high.
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let d1 = nl.buf(a);
        let d2 = nl.buf(d1);
        let x = nl.add_gate(GateKind::Xor2, &[a, d2]);
        nl.mark_output_bus("x", &[x]);
        let fo = FanoutTable::build(&nl);
        // a: 0→1. x is 0 before and after, but pulses 1 during (1,3].
        let r = EventSim::run(&nl, &fo, &[false], &[true], &nominal(&nl), 2.0);
        assert!(!r.final_values[x.index()], "statically 0");
        assert!(r.latched[x.index()], "clk lands inside the glitch");
        assert!(r.is_error(x.index()));
        // The arrival engine cannot see this glitch (documented limitation).
        let ar = ArrivalSim::run(&nl, &[false], &[true]);
        assert!(!ar.is_error(x, 2.0, 1.0));
    }

    #[test]
    fn derating_slows_settle_proportionally() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let mut cur = a;
        for _ in 0..5 {
            cur = nl.not(cur);
        }
        nl.mark_output_bus("o", &[cur]);
        let fo = FanoutTable::build(&nl);
        let r1 = EventSim::run(&nl, &fo, &[false], &[true], &nominal(&nl), 1e9);
        let d2 = EventSim::derated_delays(&nl, 1.5);
        let r2 = EventSim::run(&nl, &fo, &[false], &[true], &d2, 1e9);
        let t1 = r1.last_transition[cur.index()];
        let t2 = r2.last_transition[cur.index()];
        assert!((t2 - 1.5 * t1).abs() < 1e-9, "t1={t1} t2={t2}");
    }

    #[test]
    fn agrees_with_arrival_sim_on_glitch_free_chain() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 6);
        let b = nl.add_input_bus("b", 6);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);
        let fo = FanoutTable::build(&nl);
        let prev = vec![false; 12];
        let cur: Vec<bool> = (0..12).map(|i| i < 6).collect(); // 63 + 0
        let ev = EventSim::run(&nl, &fo, &prev, &cur, &nominal(&nl), 1e9);
        let ar = ArrivalSim::run(&nl, &prev, &cur);
        for net in nl.output_nets() {
            let i = net.index();
            assert_eq!(ev.final_values[i], ar.cur[i]);
            // The arrival engine is conservative on settle times.
            assert!(ar.settle[i] >= ev.last_transition[i] - 1e-9);
        }
    }

    use tei_netlist::GateKind;
}
