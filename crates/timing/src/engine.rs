//! The runtime-dispatched arrival-engine surface.
//!
//! The DTA campaign loop drives the bit-sliced window protocol —
//! `load_window`, then `select_transition` per transition, then the
//! per-net accessors — without caring *how* the settle times are
//! computed. [`ArrivalEngine`] captures exactly that protocol as an
//! object-safe trait so the loop can pick between:
//!
//! * the interpreted [`ArrivalKernel`] over a [`CompiledNetlist`]
//!   ([`InterpretedEngine`]) — works for any netlist, including ones
//!   parsed or generated at runtime; and
//! * a netlist-specialized generated kernel
//!   ([`SpecializedKernel`](crate::SpecializedKernel)) — slot-compacted
//!   tables emitted once per shipped FPU unit by
//!   [`codegen`](crate::codegen), selected when its structural
//!   fingerprint matches the unit's compiled netlist.
//!
//! Both implementations are bit-identical for identical input streams
//! on every net the engine exposes (enforced by the `kernel_equiv`
//! proptests and the generated-kernel equivalence suite), so engine
//! choice is a pure throughput knob. Generated kernels recycle settle
//! storage for internal nets (see [`codegen`](crate::codegen)); the
//! campaign only reads output-port settles, which every engine
//! exposes — check [`settle_exposed`](ArrivalEngine::settle_exposed)
//! before querying arbitrary internal nets on a specialized engine.

use crate::kernel::{ArrivalKernel, CompiledNetlist};
use crate::sim::TwoVectorResult;
use tei_netlist::NetId;

/// Object-safe window-mode arrival engine: the exact protocol the DTA
/// campaign inner loop drives, dispatchable over interpreted and
/// generated kernels. All engines are bit-identical; see the module
/// docs.
pub trait ArrivalEngine: Send {
    /// Short engine label for reports and benchmarks (`"interp"`,
    /// `"codegen"`).
    fn name(&self) -> &'static str;

    /// Lane words per net (`W`): the window holds `lanes() * 64`
    /// vectors.
    fn lanes(&self) -> usize;

    /// Input vectors per bit-sliced window.
    fn window_vectors(&self) -> usize {
        self.lanes() * 64
    }

    /// Load a window of `count` concatenated input vectors and evaluate
    /// every steady state (see [`ArrivalKernel::load_window`]).
    fn load_window(&mut self, flat: &[bool], count: usize);

    /// Transitions available in the loaded window (`count - 1`).
    fn window_transitions(&self) -> usize;

    /// Focus the engine on window transition `t`; afterwards the
    /// accessors report that transition (see
    /// [`ArrivalKernel::select_transition`]).
    fn select_transition(&mut self, t: usize);

    /// Steady-state value of `net` under the current vector.
    fn cur(&self, net: NetId) -> bool;

    /// Steady-state value of `net` under the previous vector.
    fn prev(&self, net: NetId) -> bool;

    /// Whether `net` changed value in the selected transition.
    fn changed(&self, net: NetId) -> bool;

    /// Whether [`settle_of`](Self::settle_of) is valid for `net` on
    /// this engine. Full-fidelity engines expose every net; engines
    /// over slot-compacted programs expose at least their keep set
    /// (the unit's observable outputs).
    fn settle_exposed(&self, net: NetId) -> bool {
        let _ = net;
        true
    }

    /// Settle time of `net` for the selected transition (0 if
    /// unchanged). Only valid for exposed nets (see
    /// [`settle_exposed`](Self::settle_exposed)); specialized engines
    /// panic on recycled nets rather than return stale storage.
    fn settle_of(&self, net: NetId) -> f64;

    /// Latched value of `net` at clock `clk` with delays inflated by
    /// `factor` (Razor-style: late-settling nets keep the old value).
    fn latched(&self, net: NetId, clk: f64, factor: f64) -> bool {
        if self.settle_of(net) * factor > clk {
            self.prev(net)
        } else {
            self.cur(net)
        }
    }

    /// Whether `net` latches an incorrect value at `clk` under `factor`.
    fn is_error(&self, net: NetId, clk: f64, factor: f64) -> bool {
        self.latched(net, clk, factor) != self.cur(net)
    }

    /// Latest settle time over a set of nets (e.g. an output bus).
    fn max_settle(&self, nets: &[NetId]) -> f64 {
        nets.iter().map(|&n| self.settle_of(n)).fold(0.0, f64::max)
    }

    /// Dump the selected transition into `out`, matching
    /// [`ArrivalSim::run_into`](crate::ArrivalSim::run_into) for that
    /// pair.
    fn snapshot_into(&self, out: &mut TwoVectorResult);
}

/// The interpreted [`ArrivalKernel`] behind the [`ArrivalEngine`]
/// surface: the universal fallback that works for any
/// [`CompiledNetlist`], including runtime-parsed ones no generated
/// kernel exists for.
pub struct InterpretedEngine<'c, const W: usize> {
    compiled: &'c CompiledNetlist,
    kernel: ArrivalKernel<W>,
}

impl<'c, const W: usize> InterpretedEngine<'c, W> {
    /// An engine over `compiled` with empty scratch (buffers size
    /// themselves on the first `load_window`).
    pub fn new(compiled: &'c CompiledNetlist) -> Self {
        InterpretedEngine {
            compiled,
            kernel: ArrivalKernel::default(),
        }
    }
}

impl<const W: usize> ArrivalEngine for InterpretedEngine<'_, W> {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn lanes(&self) -> usize {
        W
    }

    fn load_window(&mut self, flat: &[bool], count: usize) {
        self.kernel.load_window(self.compiled, flat, count);
    }

    fn window_transitions(&self) -> usize {
        self.kernel.window_transitions()
    }

    fn select_transition(&mut self, t: usize) {
        self.kernel.select_transition(self.compiled, t);
    }

    fn cur(&self, net: NetId) -> bool {
        self.kernel.cur(net)
    }

    fn prev(&self, net: NetId) -> bool {
        self.kernel.prev(net)
    }

    fn changed(&self, net: NetId) -> bool {
        self.kernel.changed(net)
    }

    fn settle_of(&self, net: NetId) -> f64 {
        self.kernel.settle_of(net)
    }

    fn snapshot_into(&self, out: &mut TwoVectorResult) {
        self.kernel.snapshot_into(out);
    }
}

/// Boxed interpreted engine over `compiled` at the requested lane width,
/// or `None` for an unsupported width (supported: 1, 4, 8).
pub fn interpreted_engine(
    compiled: &CompiledNetlist,
    lanes: usize,
) -> Option<Box<dyn ArrivalEngine + '_>> {
    match lanes {
        1 => Some(Box::new(InterpretedEngine::<1>::new(compiled))),
        4 => Some(Box::new(InterpretedEngine::<4>::new(compiled))),
        8 => Some(Box::new(InterpretedEngine::<8>::new(compiled))),
        _ => None,
    }
}
