//! Compiled structure-of-arrays arrival kernel.
//!
//! [`ArrivalSim`](crate::ArrivalSim) walks the gate `Vec` of a
//! [`Netlist`] on every pair, evaluating both the previous and the
//! current vector for every gate even when its fanin cone did not move;
//! for the million-pair DTA campaigns that walk dominates the runtime.
//! This module compiles a netlist once into flat dense tables
//! ([`CompiledNetlist`]) and propagates each input transition
//! incrementally ([`ArrivalKernel`]): the previous steady state is kept
//! between pairs (the `prev` vector of pair *k+1* is the `cur` vector
//! of pair *k*, exactly the structure of a DTA trace), so each gate is
//! evaluated at most once per transition instead of twice.
//!
//! `advance` picks between two propagation strategies based on how much
//! of the circuit the *previous* transition toggled:
//!
//! * **Frontier walk** (sparse transitions): a dirty bitset seeded from
//!   the toggled inputs is consumed in topological index order,
//!   evaluating only gates downstream of a change. Work scales with the
//!   size of the disturbed cone, not the circuit.
//! * **Dense sweep** (heavily toggled transitions, the regime of
//!   random-operand DTA campaigns, where ~40% of the double-multiplier
//!   nets flip per pair): one branch-free pass over all gates in index
//!   order. At that toggle density branch predictors see noise and the
//!   frontier's random-access bookkeeping costs more than it saves, so
//!   the sweep keeps the pipeline full instead: truth-table lookups for
//!   values, conditional-move selects for settle times and change
//!   marks, and a branchless append to the changed-net list.
//!
//! Two representation choices make the sweep branch-free:
//!
//! * **Truth-table evaluation.** Each gate's logic function is compiled
//!   to an 8-entry truth-table byte; evaluation is
//!   `(tt >> (v0 | v1<<1 | v2<<2)) & 1` with no data-dependent branch.
//!   Unused pin slots are padded with the gate's first pin (inputs pin
//!   to themselves and decode as buffers of their primed value), and
//!   the replicated tables ignore the duplicated bits.
//! * **Self-cleaning settle array.** Between advances only nets changed
//!   by the last transition hold a non-zero settle time, so the
//!   latest-fanin fold is a plain branch-free `max` over all three pin
//!   slots — unchanged fanins contribute `0.0`, the fold's identity.
//!
//! For campaign streams the kernel additionally batches vectors into
//! **bit-sliced windows**: each net carries a [`Lanes`] array of `W`
//! `u64` words (`W * 64` vectors evaluated per whole-circuit pass), and
//! the per-transition settle pass walks a transposed per-transition
//! gate bitmask. `W` is a const parameter of [`ArrivalKernel`]; the
//! fixed-size-array lane ops autovectorize to AVX2 (`W = 4`) and
//! AVX-512 (`W = 8`) bitwise instructions.
//!
//! The kernel is bit-for-bit and settle-time-exact against
//! [`ArrivalSim`](crate::ArrivalSim), whichever strategy runs. Values
//! agree because the steady state of a gate with no changed fanin
//! cannot change (the sweep re-derives it; the frontier skips it).
//! Settle times agree because both engines compute
//! `settle[i] = fold(0.0, max, settle of changed fanins) + delay[i]`
//! and folding the extra `0.0` terms of unchanged (or duplicated)
//! fanins into an `f64::max` chain that already starts at `0.0` is an
//! exact no-op. Enforced by proptest in `tests/kernel_equiv.rs`.

use crate::sim::TwoVectorResult;
use tei_netlist::{GateKind, NetId, Netlist};

// Dense `u8` opcodes for the bit-sliced window dispatch.
const K_INPUT: u8 = GateKind::Input as u8;
const K_CONST0: u8 = GateKind::Const0 as u8;
const K_CONST1: u8 = GateKind::Const1 as u8;
const K_BUF: u8 = GateKind::Buf as u8;
const K_NOT: u8 = GateKind::Not as u8;
const K_AND2: u8 = GateKind::And2 as u8;
const K_OR2: u8 = GateKind::Or2 as u8;
const K_NAND2: u8 = GateKind::Nand2 as u8;
const K_NOR2: u8 = GateKind::Nor2 as u8;
const K_XOR2: u8 = GateKind::Xor2 as u8;
const K_XNOR2: u8 = GateKind::Xnor2 as u8;
const K_MUX2: u8 = GateKind::Mux2 as u8;
const K_MAJ3: u8 = GateKind::Maj3 as u8;

/// Input-pin count per opcode, indexed by `GateKind as u8`. Kept (and
/// checked against `GateKind::arity` in tests) as documentation of the
/// pin-padding layout even though compile reads arities dynamically.
#[cfg(test)]
const ARITY: [u8; 13] = [0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3];

/// Vectors per lane *word*: one per bit of a `u64`. A kernel with `W`
/// lane words holds `W * WINDOW_VECTORS` vectors per window (see
/// [`ArrivalKernel::WINDOW_VECTORS`]); the plain name is kept as the
/// single-word (`W = 1`) window size for existing callers.
pub const WINDOW_VECTORS: usize = 64;

/// The multi-word window lane of one net: bit `v` of word `v / 64`
/// holds the net's steady-state value under the window's `v`-th input
/// vector. Written as fixed-size-array ops so the compiler
/// autovectorizes `W = 4` to AVX2-width and `W = 8` to AVX-512-width
/// bitwise instructions.
pub type Lanes<const W: usize> = [u64; W];

/// Bit `v` of a multi-word lane.
#[inline(always)]
pub(crate) fn lane_bit<const W: usize>(lane: &Lanes<W>, v: usize) -> bool {
    (lane[v >> 6] >> (v & 63)) & 1 == 1
}

/// Transpose a 64×64 bit matrix in place: afterwards, bit `c` of
/// `a[r]` is what bit `r` of `a[c]` was (LSB-first rows both ways).
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// 8-entry truth tables indexed by `GateKind as u8`; output bit at
/// index `v0 | v1<<1 | v2<<2`. Tables for gates with fewer than three
/// pins replicate over the unused high bits, so any padding pin value
/// decodes correctly. Pin order follows `Gate::pins`: Mux2 is
/// `[sel, a, b]` selecting `b` when `sel` is high.
const TRUTH: [u8; 13] = [
    0xAA, // Input (self-pinned: decodes as a buffer of its own value)
    0x00, // Const0
    0xFF, // Const1
    0xAA, // Buf
    0x55, // Not
    0x88, // And2
    0xEE, // Or2
    0x77, // Nand2
    0x11, // Nor2
    0x66, // Xor2
    0x99, // Xnor2
    0xE4, // Mux2
    0xE8, // Maj3
];

/// Once the previous transition toggled more than 1/8 of all nets,
/// `advance` switches from the frontier walk to the dense sweep.
const DENSE_TOGGLE_DIVISOR: usize = 8;

/// Window mode: once a settle batch's changed-net union covers more
/// than 1/2 of all nets, the batch is computed by a full topological
/// sweep instead of the bitmask walk — at that density the sweep's
/// sequential stores and branch-free inner loop beat the per-set-bit
/// scan plus changed-list bookkeeping.
const DENSE_BATCH_DIVISOR: usize = 2;

/// A netlist lowered to structure-of-arrays form for the arrival kernel:
/// per-gate truth-table bytes, a fixed-stride pin table, a flat delay
/// array, and fanout adjacency in CSR layout to drive the sparse-path
/// dirty frontier.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    n: usize,
    /// `GateKind as u8` per gate (drives the bit-sliced window eval).
    kinds: Vec<u8>,
    /// Truth-table byte per gate (see [`TRUTH`]).
    tt: Vec<u8>,
    /// Three pin slots per gate (stride 3); slots beyond the gate's
    /// arity repeat the first pin (harmless under the replicated truth
    /// tables, identity under the settle `max` fold). Primary inputs
    /// pin to themselves.
    pins: Vec<u32>,
    delays: Vec<f64>,
    /// Static worst-case arrival bound per net (the [`Sta`] recurrence
    /// over the compiled delay table): `max(pin bounds) + delay`, with
    /// inputs and constants at 0. Dynamic settle times never exceed it
    /// (enforced under `sanitize-arrivals`), which is what lets the
    /// campaign path prune provably-safe output bits.
    ///
    /// [`Sta`]: crate::Sta
    bounds: Vec<f64>,
    /// Primary input nets in declaration order.
    inputs: Vec<u32>,
    /// CSR offsets into `fanout`; net `i` drives `fanout[off[i]..off[i+1]]`.
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
}

impl CompiledNetlist {
    /// Lower `nl` (gates already in topological order) into flat tables.
    pub fn compile(nl: &Netlist) -> Self {
        let n = nl.len();
        let gates = nl.gates();

        let mut kinds = Vec::with_capacity(n);
        let mut tt = Vec::with_capacity(n);
        let mut pins = vec![0u32; n * 3];
        let mut delays = Vec::with_capacity(n);
        let mut bounds = vec![0.0f64; n];
        let mut fanout_count = vec![0u32; n];

        for (i, g) in gates.iter().enumerate() {
            kinds.push(g.kind as u8);
            tt.push(TRUTH[g.kind as u8 as usize]);
            // Inputs flip at t = 0 and constants never flip, so their
            // settle contribution is exactly zero; forcing the delay
            // lets every propagation path treat them uniformly.
            delays.push(match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
                _ => g.delay,
            });
            let fanin = g.fanin();
            // Inputs self-pin (their truth table is a buffer); gates
            // replicate their first pin into unused slots.
            let pad = match fanin.first() {
                Some(p) => p.index() as u32,
                None if g.kind == GateKind::Input => i as u32,
                None => 0,
            };
            for slot in 0..3 {
                pins[i * 3 + slot] = match fanin.get(slot) {
                    Some(pin) => {
                        let j = pin.index();
                        debug_assert!(j < i, "netlist must be topologically ordered");
                        fanout_count[j] += 1;
                        j as u32
                    }
                    None => pad,
                };
            }
            // Static arrival bound: the Sta recurrence over the compiled
            // delay table (inputs and constants pinned to 0 above).
            let worst = fanin
                .iter()
                .map(|p| bounds[p.index()])
                .fold(0.0f64, f64::max);
            bounds[i] = worst + delays[i];
        }

        // Prefix-sum the fanout counts into CSR offsets, then fill.
        let mut fanout_off = vec![0u32; n + 1];
        for i in 0..n {
            fanout_off[i + 1] = fanout_off[i] + fanout_count[i];
        }
        let mut fanout = vec![0u32; fanout_off[n] as usize];
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        for (i, g) in gates.iter().enumerate() {
            for &pin in g.fanin() {
                let j = pin.index();
                fanout[cursor[j] as usize] = i as u32;
                cursor[j] += 1;
            }
        }

        let inputs = nl.inputs().iter().map(|net| net.index() as u32).collect();

        CompiledNetlist {
            n,
            kinds,
            tt,
            pins,
            delays,
            bounds,
            inputs,
            fanout_off,
            fanout,
        }
    }

    /// Static worst-case arrival bound of `net` at the nominal corner
    /// (see the `bounds` field). No dynamic settle time the kernel ever
    /// reports for `net` exceeds this.
    #[inline]
    pub fn static_bound(&self, net: NetId) -> f64 {
        self.bounds[net.index()]
    }

    /// All static arrival bounds, indexed by net.
    pub fn static_bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of nets (== gates) in the compiled design.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty design.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// FNV-1a structural fingerprint over everything the arrival kernel
    /// evaluates: gate count, opcodes, pin table, exact delay bits, and
    /// the primary-input order. Two compiled netlists with equal
    /// fingerprints produce identical kernel results for identical input
    /// streams, which is what lets a generated specialized kernel (see
    /// [`codegen`](crate::codegen)) prove at runtime that it was emitted
    /// from *this* netlist — a mismatch (changed datapath builder,
    /// recalibrated delays) falls back to the interpreter instead of
    /// silently computing against a stale circuit.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for b in (self.n as u64).to_le_bytes() {
            eat(b);
        }
        for &k in &self.kinds {
            eat(k);
        }
        for p in &self.pins {
            for b in p.to_le_bytes() {
                eat(b);
            }
        }
        for d in &self.delays {
            for b in d.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        for i in &self.inputs {
            for b in i.to_le_bytes() {
                eat(b);
            }
        }
        h
    }

    /// Per-gate opcodes (`GateKind as u8`), for the codegen emitter.
    pub(crate) fn kinds(&self) -> &[u8] {
        &self.kinds
    }

    /// The padded stride-3 pin table, for the codegen emitter.
    pub(crate) fn pins(&self) -> &[u32] {
        &self.pins
    }

    /// The compiled per-gate delays, for the codegen emitter.
    pub(crate) fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Primary input nets in declaration order, for the codegen emitter.
    pub(crate) fn input_nets(&self) -> &[u32] {
        &self.inputs
    }

    #[inline]
    fn fanout_of(&self, i: usize) -> &[u32] {
        &self.fanout[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// Evaluate gate `i`'s logic function against `val` (0/1 per net).
    #[inline]
    fn eval(&self, i: usize, val: &[u8]) -> u8 {
        let p = &self.pins[i * 3..i * 3 + 3];
        let idx = val[p[0] as usize] | val[p[1] as usize] << 1 | val[p[2] as usize] << 2;
        (self.tt[i] >> idx) & 1
    }
}

/// Arrival-time propagation engine over a [`CompiledNetlist`] with
/// reusable scratch buffers and a changed-net frontier.
///
/// Usage: [`reset`](ArrivalKernel::reset) with the first input vector,
/// then [`advance`](ArrivalKernel::advance) once per subsequent vector.
/// After each `advance` the accessors report the same quantities as a
/// [`TwoVectorResult`] for the transition just applied: `prev`/`cur`
/// steady-state values, per-net settle times (0 for unchanged nets), and
/// the Razor-style latched-value error test.
///
/// The const parameter `W` selects the window lane width: each net
/// carries `W` `u64` words, i.e. `W * 64` input vectors per bit-sliced
/// window ([`load_window`](ArrivalKernel::load_window)), and settle
/// times are computed `W` transitions per batch as `[f64; W]` lane
/// arrays. `W = 1` is the historical single-word engine; `W = 4` /
/// `W = 8` widen both the steady-state evaluation and the settle folds
/// to AVX2/AVX-512 vector registers. Results are bit-identical for
/// every width (each lane's fold order matches the scalar pass); width
/// only changes throughput.
#[derive(Debug, Clone, Default)]
pub struct ArrivalKernel<const W: usize = 1> {
    /// Steady-state value (0/1) of every net under the *current* input
    /// vector.
    val: Vec<u8>,
    /// Per-net settle time of the last transition. Invariant between
    /// advances: every net outside `changed_list` holds `0.0`, so a
    /// plain `max` fold over all pin slots reproduces the changed-only
    /// fold.
    settle: Vec<f64>,
    /// Window mode: per-net settle times of the current *batch* of `W`
    /// consecutive transitions, lane `j` = transition `batch_base + j`.
    /// After a sparse batch the all-zero-outside-`changed_list`
    /// invariant of `settle` holds (`changed_list` is the union of the
    /// batch's changed nets); after a dense batch every entry is
    /// freshly written instead (see `batch_dense`).
    settle_w: Vec<[f64; W]>,
    /// First transition of the batch `settle_w` currently holds
    /// (`usize::MAX` = none computed yet for this window).
    batch_base: usize,
    /// Whether the current batch was computed by the dense sweep, which
    /// writes *every* net's lanes (so `changed_list` is empty and the
    /// all-zero-outside-the-list invariant is suspended until the next
    /// sparse batch restores it with a full clear).
    batch_dense: bool,
    /// Window mode: pin table for the dense settle sweep — a copy of
    /// `CompiledNetlist::pins` with self/forward pins redirected to the
    /// zero sentinel at index `n`, so the sweep needs no per-pin
    /// bounds/self checks. Rebuilt by every `load_window`.
    dense_pins: Vec<u32>,
    /// Lane-mask table: entry `m` holds all-ones in lane `j` iff bit
    /// `j` of `m` is set (`2^W` entries, built once; only for `W <= 8`).
    lane_masks: Vec<Lanes<W>>,
    /// Epoch stamp: net changed in the last `advance` iff `== epoch`.
    changed_mark: Vec<u32>,
    /// Nets changed in the last `advance` occupy `[..changed_len]`;
    /// kept at full length so the dense sweep can append branchlessly.
    changed_list: Vec<u32>,
    changed_len: usize,
    epoch: u32,
    /// Dirty bitset scheduling gates for re-evaluation on the frontier
    /// path, one bit per gate, consumed (cleared) by the scan.
    dirty: Vec<u64>,
    /// Window mode: steady-state bit lanes, `W` words per net, bit `v`
    /// of word `v / 64` = value under the window's `v`-th input vector.
    plane: Vec<Lanes<W>>,
    /// Window mode: per-net transition lanes (`plane ^ plane >> 1` as a
    /// `W * 64`-bit shift, masked to valid transitions).
    diffs: Vec<Lanes<W>>,
    /// Window mode: `diffs` transposed into per-transition gate
    /// bitmasks; transition `t` owns words `[t*words .. (t+1)*words)`.
    diff_t: Vec<u64>,
    /// Vectors loaded in the current window (0 = no window).
    win_count: usize,
    /// Transition selected by `select_transition`.
    view_t: usize,
    /// True between `load_window` and the next `reset`.
    window_mode: bool,
}

impl ArrivalKernel {
    /// A single-word (`W = 1`) kernel with empty scratch; buffers size
    /// themselves on `reset`. Wider kernels are built with
    /// `ArrivalKernel::<W>::default()`.
    pub fn new() -> Self {
        ArrivalKernel::default()
    }
}

impl<const W: usize> ArrivalKernel<W> {
    /// Vectors per bit-sliced window at this lane width: one per bit
    /// of the `W`-word lane.
    pub const WINDOW_VECTORS: usize = W * 64;

    /// Establish circuit state: full functional evaluation of `inputs`,
    /// all settle times zero, no nets marked changed.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the design's input count.
    pub fn reset(&mut self, c: &CompiledNetlist, inputs: &[bool]) {
        assert_eq!(inputs.len(), c.inputs.len(), "input width");
        self.window_mode = false;
        self.win_count = 0;
        self.val.clear();
        self.val.resize(c.n, 0);
        self.settle.clear();
        self.settle.resize(c.n, 0.0);
        // Drop window-mode settle lanes wholesale: the union list that
        // tracked their non-zero entries is reset below, so the next
        // `load_window` re-zeroes them via `resize`.
        self.settle_w.clear();
        self.batch_base = usize::MAX;
        self.batch_dense = false;
        self.changed_mark.clear();
        self.changed_mark.resize(c.n, u32::MAX);
        self.changed_list.clear();
        self.changed_list.resize(c.n, 0);
        self.changed_len = 0;
        self.epoch = 0;
        self.dirty.clear();
        self.dirty.resize(c.n.div_ceil(64), 0);
        for (k, &net) in c.inputs.iter().enumerate() {
            self.val[net as usize] = inputs[k] as u8;
        }
        // Inputs self-pin as buffers, so the uniform sweep re-derives
        // their primed value.
        for i in 0..c.n {
            self.val[i] = c.eval(i, &self.val);
        }
    }

    /// Apply the transition from the current steady state to
    /// `new_inputs`, recomputing values and settle times downstream of
    /// toggled nets (frontier walk or dense sweep, chosen by the toggle
    /// density of the previous transition).
    ///
    /// # Panics
    ///
    /// Panics if `new_inputs.len()` differs from the design's input
    /// count, or if [`reset`](ArrivalKernel::reset) has not been called.
    pub fn advance(&mut self, c: &CompiledNetlist, new_inputs: &[bool]) {
        assert_eq!(new_inputs.len(), c.inputs.len(), "input width");
        assert_eq!(self.val.len(), c.n, "kernel not reset for this design");
        assert!(
            !self.window_mode,
            "per-pair advance requires a reset after window processing"
        );
        let dense = self.changed_len * DENSE_TOGGLE_DIVISOR >= c.n;
        if dense {
            self.advance_dense(c, new_inputs);
        } else {
            self.advance_frontier(c, new_inputs);
        }
    }

    /// Sanitizer: every settle time computed for the last transition
    /// (or, in window mode, any lane of the last batch) must respect the
    /// compiled static arrival bound. A violation means the kernel's
    /// settle fold (or the bound computation) is wrong.
    #[cfg(feature = "sanitize-arrivals")]
    fn sanitize_settles(&self, c: &CompiledNetlist) {
        // A dense batch writes every net and leaves `changed_list`
        // empty; check the whole array instead.
        if self.window_mode && self.batch_dense {
            for i in 0..c.n {
                for (j, &s) in self.settle_w[i].iter().enumerate() {
                    assert!(
                        s <= c.bounds[i] + 1e-9,
                        "sanitize-arrivals: net n{i} settled at {s} past its static bound {} \
                         (batch lane {j})",
                        c.bounds[i]
                    );
                }
            }
            return;
        }
        for &i in &self.changed_list[..self.changed_len] {
            let i = i as usize;
            if self.window_mode {
                for (j, &s) in self.settle_w[i].iter().enumerate() {
                    assert!(
                        s <= c.bounds[i] + 1e-9,
                        "sanitize-arrivals: net n{i} settled at {s} past its static bound {} \
                         (batch lane {j})",
                        c.bounds[i]
                    );
                }
            } else {
                assert!(
                    self.settle[i] <= c.bounds[i] + 1e-9,
                    "sanitize-arrivals: net n{i} settled at {} past its static bound {}",
                    self.settle[i],
                    c.bounds[i]
                );
            }
        }
    }

    /// Roll the epoch stamp forward, returning the new epoch.
    fn bump_epoch(&mut self) -> u32 {
        // Epoch u32::MAX is the "never" marker set by reset; wrap before
        // colliding with it.
        if self.epoch == u32::MAX - 1 {
            self.changed_mark.fill(u32::MAX);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Sparse path: consume a dirty bitset seeded from the toggled
    /// inputs, evaluating only gates downstream of a change.
    fn advance_frontier(&mut self, c: &CompiledNetlist, new_inputs: &[bool]) {
        // Restore the all-zero settle invariant for the new transition.
        for &i in &self.changed_list[..self.changed_len] {
            self.settle[i as usize] = 0.0;
        }
        self.changed_len = 0;
        let epoch = self.bump_epoch();

        // Toggled inputs seed the dirty frontier.
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for (k, &net) in c.inputs.iter().enumerate() {
            let i = net as usize;
            if self.val[i] != new_inputs[k] as u8 {
                self.val[i] = new_inputs[k] as u8;
                self.changed_mark[i] = epoch;
                self.changed_list[self.changed_len] = net;
                self.changed_len += 1; // settle stays 0: inputs flip at t = 0
                for &g in c.fanout_of(i) {
                    let gi = g as usize;
                    self.dirty[gi >> 6] |= 1 << (gi & 63);
                    lo = lo.min(gi);
                    hi = hi.max(gi);
                }
            }
        }
        if lo == usize::MAX {
            return; // identical vectors: nothing to propagate
        }

        // Scan dirty gates in index order (indices are topological, so
        // every fanin is final before its reader). Consuming the lowest
        // set bit keeps the scan ordered even as it marks later gates;
        // `hi` grows monotonically as fanouts are marked.
        let mut wi = lo >> 6;
        while wi <= hi >> 6 {
            loop {
                let word = self.dirty[wi];
                if word == 0 {
                    break;
                }
                let bit = word.trailing_zeros() as usize;
                self.dirty[wi] = word & (word - 1);
                let i = (wi << 6) | bit;
                let new = c.eval(i, &self.val);
                if new != self.val[i] {
                    self.val[i] = new;
                    self.changed_mark[i] = epoch;
                    self.changed_list[self.changed_len] = i as u32;
                    self.changed_len += 1;
                    // Latest-settling fanin: unchanged fanins hold 0.0,
                    // so the plain fold equals ArrivalSim's changed-only
                    // fold (both start at 0.0).
                    let p = &c.pins[i * 3..i * 3 + 3];
                    let latest = self.settle[p[0] as usize]
                        .max(self.settle[p[1] as usize])
                        .max(self.settle[p[2] as usize]);
                    self.settle[i] = latest + c.delays[i];
                    for &g in c.fanout_of(i) {
                        let gi = g as usize;
                        self.dirty[gi >> 6] |= 1 << (gi & 63);
                        hi = hi.max(gi);
                    }
                }
            }
            wi += 1;
        }
        #[cfg(feature = "sanitize-arrivals")]
        self.sanitize_settles(c);
    }

    /// Dense path: two branch-free passes over the gate tables in
    /// topological index order, so heavily toggled transitions cannot
    /// stall the pipeline on mispredictions. The first (value) pass
    /// re-derives every steady-state bit via truth-table lookups and
    /// records which nets flipped as a bitmask; the second (settle)
    /// pass visits only the set bits, in index order, computing settle
    /// times with the branch-free three-slot `max` fold.
    fn advance_dense(&mut self, c: &CompiledNetlist, new_inputs: &[bool]) {
        // Restore the all-zero settle invariant for the new transition.
        for &i in &self.changed_list[..self.changed_len] {
            self.settle[i as usize] = 0.0;
        }
        self.changed_len = 0;
        let epoch = self.bump_epoch();

        // Prime toggled inputs; their settle entries are permanently
        // zero (inputs flip at t = 0) and their self-pinned buffer rows
        // below re-derive the primed value with no flip recorded.
        for (k, &net) in c.inputs.iter().enumerate() {
            let i = net as usize;
            let nv = new_inputs[k] as u8;
            if self.val[i] != nv {
                self.val[i] = nv;
                self.changed_mark[i] = epoch;
                self.changed_list[self.changed_len] = net;
                self.changed_len += 1;
            }
        }

        let n = c.n;
        // Value pass: flip bits accumulate into `dirty`, reused here as
        // a plain bitmask (every touched word is overwritten, and the
        // settle pass consumes words back to zero, preserving the
        // frontier path's all-clear precondition).
        {
            let val = &mut self.val[..n];
            let pins = &c.pins[..n * 3];
            let tts = &c.tt[..n];
            let mut word = 0u64;
            for i in 0..n {
                // SAFETY: `compile` stores pin indices `< n` (fanins
                // precede their gate; padding repeats a fanin or the
                // gate's own index), and `val`/`tts`/`pins` were sliced
                // to exactly `n`/`3n` above.
                let diff = unsafe {
                    let p0 = *pins.get_unchecked(i * 3) as usize;
                    let p1 = *pins.get_unchecked(i * 3 + 1) as usize;
                    let p2 = *pins.get_unchecked(i * 3 + 2) as usize;
                    let idx = *val.get_unchecked(p0)
                        | *val.get_unchecked(p1) << 1
                        | *val.get_unchecked(p2) << 2;
                    let new = (*tts.get_unchecked(i) >> idx) & 1;
                    let old = *val.get_unchecked(i);
                    *val.get_unchecked_mut(i) = new;
                    new ^ old
                };
                word |= u64::from(diff) << (i & 63);
                if i & 63 == 63 {
                    self.dirty[i >> 6] = word;
                    word = 0;
                }
            }
            if n & 63 != 0 {
                self.dirty[n >> 6] = word;
            }
        }

        // Settle pass: only flipped nets, ascending index (topological),
        // consuming the bitmask back to zero as it goes.
        for wi in 0..self.dirty.len() {
            let mut word = self.dirty[wi];
            self.dirty[wi] = 0;
            while word != 0 {
                let i = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                // SAFETY: `i < n` (the mask has one bit per gate) and
                // pin indices are `< n` as in the value pass;
                // `changed_len < n` because each net enters the list at
                // most once per advance.
                unsafe {
                    let p0 = *c.pins.get_unchecked(i * 3) as usize;
                    let p1 = *c.pins.get_unchecked(i * 3 + 1) as usize;
                    let p2 = *c.pins.get_unchecked(i * 3 + 2) as usize;
                    // Latest-settling fanin: unchanged fanins hold 0.0,
                    // so the plain fold equals ArrivalSim's changed-only
                    // fold (both start at 0.0). Settle times are never
                    // NaN, making the comparison chain exactly
                    // `f64::max`.
                    let s0 = *self.settle.get_unchecked(p0);
                    let s1 = *self.settle.get_unchecked(p1);
                    let s2 = *self.settle.get_unchecked(p2);
                    let m = if s0 > s1 { s0 } else { s1 };
                    let latest = if m > s2 { m } else { s2 };
                    *self.settle.get_unchecked_mut(i) = latest + *c.delays.get_unchecked(i);
                    *self.changed_mark.get_unchecked_mut(i) = epoch;
                    *self.changed_list.get_unchecked_mut(self.changed_len) = i as u32;
                }
                self.changed_len += 1;
            }
        }
        #[cfg(feature = "sanitize-arrivals")]
        self.sanitize_settles(c);
    }

    /// Load a bit-sliced window of up to [`Self::WINDOW_VECTORS`] input
    /// vectors (`flat` holds `count` concatenated vectors of the
    /// design's input width) and evaluate every vector's steady state
    /// in one pass: each net's `W * 64` window values live in the bit
    /// lanes of a `W`-word [`Lanes`] array, so the whole-circuit
    /// evaluation is amortized `~W * 64`× versus per-pair propagation
    /// (and the array ops vectorize to one AVX2/AVX-512 instruction per
    /// gate input at `W = 4` / `W = 8`). Follow with
    /// [`select_transition`](ArrivalKernel::select_transition) for each
    /// of the `count - 1` transitions; windows are independent (steady
    /// states are pure functions of each vector), so callers chain them
    /// by overlapping one vector.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or exceeds [`Self::WINDOW_VECTORS`], or
    /// if `flat.len() != count * input_count`.
    pub fn load_window(&mut self, c: &CompiledNetlist, flat: &[bool], count: usize) {
        let width = c.inputs.len();
        assert!((1..=Self::WINDOW_VECTORS).contains(&count), "window size");
        assert_eq!(flat.len(), count * width, "window buffer size");
        if self.val.len() != c.n {
            // Size per-pair scratch too: the settle machinery
            // (`settle`, `changed_list`) is shared with that path.
            self.reset(c, &vec![false; width]);
        }
        self.window_mode = true;
        self.win_count = count;
        self.view_t = 0;
        let n = c.n;
        let words = self.dirty.len();
        self.plane.resize(n, [0; W]);
        self.diffs.resize(n, [0; W]);
        self.diff_t.resize(words * Self::WINDOW_VECTORS, 0);
        // One sentinel entry past the end: the dense sweep redirects
        // self-pins there, and it stays permanently zero (the sweep
        // writes `[..n]`, the sparse full clear likewise).
        self.settle_w.resize(n + 1, [0.0; W]);
        // The old window's diffs are gone; force the first
        // `select_transition` to compute a fresh settle batch.
        self.batch_base = usize::MAX;
        // Pin table for the dense settle sweep: self/forward pins
        // (inputs and constants — anything not strictly below its gate
        // in topological order) redirect to the zero sentinel at `n`.
        // Rebuilt per window because the kernel may be reused across
        // netlists of equal size; the cost is noise next to the
        // window's gate evaluation.
        self.dense_pins.clear();
        self.dense_pins.extend((0..3 * n).map(|k| {
            let p = c.pins[k];
            if (p as usize) < k / 3 {
                p
            } else {
                n as u32
            }
        }));
        // Per-batch lane-mask table for the settle passes: entry `m` has
        // lane `j` all-ones iff bit `j` of `m` is set, turning the
        // per-gate keep-mask computation into one table load. Only
        // practical at the widths we dispatch (2^W entries).
        if W <= 8 && self.lane_masks.is_empty() {
            self.lane_masks.extend(
                (0..1usize << W)
                    .map(|m| std::array::from_fn(|j| ((m as u64 >> j) & 1).wrapping_neg())),
            );
        }

        // Pack each input's window values into its bit lane.
        for (k, &net) in c.inputs.iter().enumerate() {
            let mut lane = [0u64; W];
            for (v, chunk) in flat.chunks_exact(width).enumerate() {
                lane[v >> 6] |= u64::from(chunk[k]) << (v & 63);
            }
            self.plane[net as usize] = lane;
        }

        // Bit-sliced steady-state evaluation, all vectors at once. The
        // per-arm `from_fn` loops are over a compile-time-fixed W, so
        // they lower to straight-line vector code, not a runtime loop.
        use std::array::from_fn;
        for i in 0..n {
            let p = &c.pins[i * 3..i * 3 + 3];
            let v0 = self.plane[p[0] as usize];
            let v1 = self.plane[p[1] as usize];
            let v2 = self.plane[p[2] as usize];
            self.plane[i] = match c.kinds[i] {
                // Inputs self-pin, so v0 is already their packed lane.
                K_INPUT | K_BUF => v0,
                K_CONST0 => [0; W],
                K_CONST1 => [!0; W],
                K_NOT => from_fn(|w| !v0[w]),
                K_AND2 => from_fn(|w| v0[w] & v1[w]),
                K_OR2 => from_fn(|w| v0[w] | v1[w]),
                K_NAND2 => from_fn(|w| !(v0[w] & v1[w])),
                K_NOR2 => from_fn(|w| !(v0[w] | v1[w])),
                K_XOR2 => from_fn(|w| v0[w] ^ v1[w]),
                K_XNOR2 => from_fn(|w| !(v0[w] ^ v1[w])),
                // pins [sel, a, b]: b when sel is high
                K_MUX2 => from_fn(|w| (v0[w] & v2[w]) | (!v0[w] & v1[w])),
                K_MAJ3 => from_fn(|w| (v0[w] & v1[w]) | (v0[w] & v2[w]) | (v1[w] & v2[w])),
                _ => unreachable!("invalid opcode"),
            };
        }

        // Transition lanes: bit t set iff vectors t and t+1 disagree —
        // a W*64-bit-wide `plane ^ (plane >> 1)` whose right shift
        // borrows the low bit of the next word; lanes beyond the last
        // valid transition are masked off.
        let valid = count - 1; // number of transitions
        let tmask: Lanes<W> = from_fn(|w| {
            let lo = w * 64;
            if valid >= lo + 64 {
                !0
            } else if valid > lo {
                (1u64 << (valid - lo)) - 1
            } else {
                0
            }
        });
        for i in 0..n {
            let p = self.plane[i];
            self.diffs[i] = from_fn(|w| {
                let hi = if w + 1 < W { p[w + 1] } else { 0 };
                (p[w] ^ ((p[w] >> 1) | (hi << 63))) & tmask[w]
            });
        }

        // Transpose per-net transition lanes into per-transition gate
        // bitmasks, one 64×64 block per (gate word, lane word) pair.
        let mut block = [0u64; 64];
        for wi in 0..words {
            let base = wi << 6;
            let take = (n - base).min(64);
            for w in 0..W {
                for (g, b) in block[..take].iter_mut().enumerate() {
                    *b = self.diffs[base + g][w];
                }
                block[take..].fill(0);
                transpose64(&mut block);
                // Rows past the last valid transition of this lane word
                // stay unwritten (select_transition never reads them).
                let rows = valid.saturating_sub(w * 64).min(64);
                for (tl, &row) in block.iter().enumerate().take(rows) {
                    self.diff_t[(w * 64 + tl) * words + wi] = row;
                }
            }
        }
    }

    /// Number of transitions available in the loaded window.
    pub fn window_transitions(&self) -> usize {
        self.win_count.saturating_sub(1)
    }

    /// Focus the kernel on window transition `t` (vectors `t → t+1`);
    /// afterwards the accessors (`prev`/`cur`/`settle_of`/`latched`/…)
    /// report that transition exactly as a per-pair `advance` would.
    ///
    /// Settle times are computed one *batch* of `W` consecutive
    /// transitions at a time, as `[f64; W]` lane arrays masked by each
    /// gate's transition bits: the per-gate walk (pin loads, bit
    /// iteration, store) is amortized over `W` transitions and the
    /// max/add arithmetic autovectorizes, which is where the lane-width
    /// throughput gain actually comes from — the per-lane fold order is
    /// identical to the scalar pass, so settle times stay bit-exact.
    /// Selecting within the computed batch is free; campaign loops walk
    /// `t` in order, computing each batch exactly once.
    ///
    /// # Panics
    ///
    /// Panics if no window is loaded or `t` is out of range.
    pub fn select_transition(&mut self, c: &CompiledNetlist, t: usize) {
        assert!(self.window_mode, "no window loaded");
        assert!(t + 1 < self.win_count, "transition out of range");
        self.view_t = t;
        let base = t - (t % W);
        if self.batch_base == base {
            return;
        }
        self.batch_base = base;

        // Union of the batch's per-transition gate masks into the
        // `dirty` scratch, which window mode otherwise leaves idle
        // (rows past the last valid transition are unwritten — skip
        // them). The population count picks the walk strategy below.
        let valid = self.win_count - 1;
        let lanes = (valid - base).min(W);
        let words = self.dirty.len();
        let mut union_count = 0usize;
        for wi in 0..words {
            let mut word = 0u64;
            for j in 0..lanes {
                word |= self.diff_t[(base + j) * words + wi];
            }
            self.dirty[wi] = word;
            union_count += word.count_ones() as usize;
        }

        // `base` is a multiple of `W` and `W` divides 64, so a gate's
        // batch bits live in one word of its `diffs` lane.
        let lw = base >> 6;
        let ls = base & 63;
        if union_count * DENSE_BATCH_DIVISOR >= c.n {
            self.dense_settle_batch(c, lw, ls);
        } else {
            self.sparse_settle_batch(c, lw, ls);
        }
        #[cfg(feature = "sanitize-arrivals")]
        self.sanitize_settles(c);
    }

    /// Sparse settle batch: walk only the union of nets changed in any
    /// of the batch's transitions (set bits of the `dirty` scratch), in
    /// ascending (topological) index order. Inputs participate
    /// uniformly: their pins self-reference a permanently-zero settle
    /// entry and their compiled delay is zero, so they settle at t = 0.
    fn sparse_settle_batch(&mut self, c: &CompiledNetlist, lw: usize, ls: usize) {
        // Restore the all-zero settle invariant before this batch: a
        // preceding dense batch wrote every lane, so clear wholesale;
        // otherwise only the previous batch's union is non-zero.
        if self.batch_dense {
            self.settle_w[..c.n].fill([0.0; W]);
            self.batch_dense = false;
        } else {
            for &i in &self.changed_list[..self.changed_len] {
                self.settle_w[i as usize] = [0.0; W];
            }
        }
        self.changed_len = 0;
        use std::array::from_fn;
        for wi in 0..self.dirty.len() {
            let mut word = self.dirty[wi];
            while word != 0 {
                let i = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                // SAFETY: `i < n` (one mask bit per gate), pin indices
                // are `< n` by construction in `compile`, and
                // `changed_len < n` because each net enters the list at
                // most once per batch.
                unsafe {
                    let p0 = *c.pins.get_unchecked(i * 3) as usize;
                    let p1 = *c.pins.get_unchecked(i * 3 + 1) as usize;
                    let p2 = *c.pins.get_unchecked(i * 3 + 2) as usize;
                    // Per-lane changed bits; `diffs` is masked to valid
                    // transitions, so dead lanes select 0.0.
                    let bits = *self.diffs.get_unchecked(i).get_unchecked(lw) >> ls;
                    let s0 = *self.settle_w.get_unchecked(p0);
                    let s1 = *self.settle_w.get_unchecked(p1);
                    let s2 = *self.settle_w.get_unchecked(p2);
                    let d = *c.delays.get_unchecked(i);
                    // Unchanged fanins hold 0.0, so the plain fold
                    // equals ArrivalSim's changed-only fold; settle
                    // times are never NaN, so the comparison chain is
                    // exactly `f64::max`. Dead lanes are zeroed by an
                    // all-ones/all-zeros bitmask instead of a branch —
                    // the lane bits are data-random, and a per-lane
                    // branch would mispredict its way through the whole
                    // batch (masking `latest + d` to +0.0 is bit-exact
                    // with the scalar invariant's 0.0).
                    let keep = self.batch_keep(bits);
                    *self.settle_w.get_unchecked_mut(i) = from_fn(|j| {
                        let m = if s0[j] > s1[j] { s0[j] } else { s1[j] };
                        let latest = if m > s2[j] { m } else { s2[j] };
                        f64::from_bits((latest + d).to_bits() & keep[j])
                    });
                    *self.changed_list.get_unchecked_mut(self.changed_len) = i as u32;
                }
                self.changed_len += 1;
            }
        }
    }

    /// Dense settle batch: one branch-free sweep over *every* gate in
    /// topological order, writing all `W` lanes of every net (masked to
    /// 0.0 where the net does not toggle). Above the
    /// [`DENSE_BATCH_DIVISOR`] density the sweep beats the bitmask walk:
    /// stores stream sequentially, the hardware prefetcher covers the
    /// pin/delay/diff reads, and there is no trailing-zeros scan or
    /// changed-list traffic. Fanins always read fresh values — every
    /// lower-indexed net was rewritten earlier in this same sweep — so
    /// the fold matches the sparse batch bit for bit; self-pinned nets
    /// (inputs, constants) read 0.0 instead of their own stale entry.
    fn dense_settle_batch(&mut self, c: &CompiledNetlist, lw: usize, ls: usize) {
        self.batch_dense = true;
        self.changed_len = 0;
        use std::array::from_fn;
        for i in 0..c.n {
            // SAFETY: `dense_pins` entries are `< n` by construction in
            // `compile` or redirected to the sentinel at `n`, and
            // `settle_w` holds `n + 1` entries; the lane-mask index is
            // `< 2^W` by the `&`.
            unsafe {
                let p0 = *self.dense_pins.get_unchecked(i * 3) as usize;
                let p1 = *self.dense_pins.get_unchecked(i * 3 + 1) as usize;
                let p2 = *self.dense_pins.get_unchecked(i * 3 + 2) as usize;
                let bits = *self.diffs.get_unchecked(i).get_unchecked(lw) >> ls;
                // Self/forward pins (inputs and constants only) read
                // the permanently-zero sentinel — their own entry still
                // holds the previous batch.
                let s0 = *self.settle_w.get_unchecked(p0);
                let s1 = *self.settle_w.get_unchecked(p1);
                let s2 = *self.settle_w.get_unchecked(p2);
                let d = *c.delays.get_unchecked(i);
                let keep = self.batch_keep(bits);
                *self.settle_w.get_unchecked_mut(i) = from_fn(|j| {
                    let m = if s0[j] > s1[j] { s0[j] } else { s1[j] };
                    let latest = if m > s2[j] { m } else { s2[j] };
                    f64::from_bits((latest + d).to_bits() & keep[j])
                });
            }
        }
    }

    /// Per-lane keep masks for a gate's batch bits: all-ones where the
    /// gate toggles in that lane, all-zeros otherwise — one table load
    /// at the dispatched widths instead of a broadcast/shift/compare
    /// chain per gate.
    #[inline(always)]
    fn batch_keep(&self, bits: u64) -> Lanes<W> {
        if W <= 8 {
            // SAFETY: the table holds `2^W` entries and the index is
            // masked to `W` bits.
            unsafe {
                *self
                    .lane_masks
                    .get_unchecked((bits & ((1u64 << W) - 1)) as usize)
            }
        } else {
            std::array::from_fn(|j| ((bits >> j) & 1).wrapping_neg())
        }
    }

    /// Steady-state value of `net` under the current input vector.
    #[inline]
    pub fn cur(&self, net: NetId) -> bool {
        let i = net.index();
        if self.window_mode {
            lane_bit(&self.plane[i], self.view_t + 1)
        } else {
            self.val[i] != 0
        }
    }

    /// Steady-state value of `net` under the previous input vector.
    #[inline]
    pub fn prev(&self, net: NetId) -> bool {
        let i = net.index();
        if self.window_mode {
            lane_bit(&self.plane[i], self.view_t)
        } else {
            (self.val[i] != 0) ^ (self.changed_mark[i] == self.epoch)
        }
    }

    /// Whether `net` changed value in the last transition.
    #[inline]
    pub fn changed(&self, net: NetId) -> bool {
        let i = net.index();
        if self.window_mode {
            lane_bit(&self.diffs[i], self.view_t)
        } else {
            self.changed_mark[i] == self.epoch
        }
    }

    /// Profiling helper: toggle counts for the loaded window. Returns,
    /// per transition, the number of nets that change value, plus the
    /// union count over each W-aligned batch (the set the batched
    /// settle pass actually walks).
    pub fn toggle_profile(&self) -> (Vec<usize>, Vec<usize>) {
        assert!(self.window_mode, "no window loaded");
        let valid = self.win_count - 1;
        let words = self.dirty.len();
        let per_t: Vec<usize> = (0..valid)
            .map(|t| {
                self.diff_t[t * words..(t + 1) * words]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum()
            })
            .collect();
        let unions: Vec<usize> = (0..valid)
            .step_by(W)
            .map(|base| {
                let lanes = (valid - base).min(W);
                (0..words)
                    .map(|wi| {
                        let mut word = 0u64;
                        for j in 0..lanes {
                            word |= self.diff_t[(base + j) * words + wi];
                        }
                        word.count_ones() as usize
                    })
                    .sum()
            })
            .collect();
        (per_t, unions)
    }

    /// Settle time of `net` for the last transition (0 if unchanged).
    #[inline]
    pub fn settle_of(&self, net: NetId) -> f64 {
        let i = net.index();
        if self.window_mode {
            self.settle_w[i][self.view_t - self.batch_base]
        } else {
            self.settle[i]
        }
    }

    /// Latched value of `net` when the capturing edge arrives at `clk`
    /// with every delay inflated by `factor` (see
    /// [`TwoVectorResult::latched`]).
    #[inline]
    pub fn latched(&self, net: NetId, clk: f64, factor: f64) -> bool {
        if self.settle_of(net) * factor > clk {
            self.prev(net)
        } else {
            self.cur(net)
        }
    }

    /// Whether `net` latches an incorrect value at `clk` under `factor`.
    #[inline]
    pub fn is_error(&self, net: NetId, clk: f64, factor: f64) -> bool {
        self.latched(net, clk, factor) != self.cur(net)
    }

    /// The latest settle time over a set of nets (e.g. an output bus).
    pub fn max_settle(&self, nets: &[NetId]) -> f64 {
        nets.iter().map(|&n| self.settle_of(n)).fold(0.0, f64::max)
    }

    /// Dump the state of the last transition into `out`, producing the
    /// same contents [`ArrivalSim::run_into`] would for that
    /// `prev → cur` pair.
    ///
    /// [`ArrivalSim::run_into`]: crate::ArrivalSim::run_into
    pub fn snapshot_into(&self, out: &mut TwoVectorResult) {
        let n = self.val.len();
        out.prev.clear();
        out.cur.clear();
        out.settle.clear();
        if self.window_mode {
            let lane = self.view_t - self.batch_base;
            // `take(n)` skips the dense sweep's zero sentinel at `n`.
            out.settle
                .extend(self.settle_w.iter().take(n).map(|s| s[lane]));
        } else {
            out.settle.extend_from_slice(&self.settle);
        }
        out.prev.reserve(n);
        out.cur.reserve(n);
        if self.window_mode {
            for i in 0..n {
                out.cur.push(lane_bit(&self.plane[i], self.view_t + 1));
                out.prev.push(lane_bit(&self.plane[i], self.view_t));
            }
        } else {
            for i in 0..n {
                let cur = self.val[i] != 0;
                out.cur.push(cur);
                out.prev.push(cur ^ (self.changed_mark[i] == self.epoch));
            }
        }
    }

    /// One-shot `prev → cur` simulation (reset + advance), filling `out`
    /// with the same contents [`ArrivalSim::run_into`] would produce.
    /// Useful for drop-in validation; campaign loops should instead call
    /// [`advance`](ArrivalKernel::advance) per pair.
    ///
    /// [`ArrivalSim::run_into`]: crate::ArrivalSim::run_into
    pub fn run_into(
        &mut self,
        c: &CompiledNetlist,
        prev_inputs: &[bool],
        cur_inputs: &[bool],
        out: &mut TwoVectorResult,
    ) {
        self.reset(c, prev_inputs);
        self.advance(c, cur_inputs);
        self.snapshot_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ArrivalSim;
    use tei_netlist::CellLibrary;

    #[test]
    fn arity_table_matches_gate_kinds() {
        for &kind in GateKind::all_logic() {
            assert_eq!(
                ARITY[kind as u8 as usize] as usize,
                kind.arity(),
                "{kind:?} arity"
            );
        }
        assert_eq!(ARITY[GateKind::Input as u8 as usize], 0);
    }

    /// Every truth-table byte must reproduce the reference gate
    /// evaluation on all pin combinations, including the replication
    /// over unused high bits that makes pin padding safe.
    #[test]
    fn truth_tables_match_reference_eval() {
        let mut nl = Netlist::new("tt", CellLibrary::unit());
        let a = nl.add_input_bit();
        let b = nl.add_input_bit();
        let s = nl.add_input_bit();
        for &kind in GateKind::all_logic() {
            let pins: Vec<NetId> = [a, b, s][..kind.arity()].to_vec();
            let net = nl.add_gate(kind, &pins);
            let tt = TRUTH[kind as u8 as usize];
            for idx in 0u8..8 {
                let vals = [idx & 1 == 1, idx >> 1 & 1 == 1, idx >> 2 & 1 == 1];
                // Reference: steady-state eval through ArrivalSim.
                let res = ArrivalSim::run(&nl, &vals, &vals);
                let expect = res.cur[net.index()];
                // Replicated-table claim: the byte only depends on the
                // first `arity` bits.
                let masked = match kind.arity() {
                    1 => idx & 1,
                    2 => idx & 3,
                    _ => idx,
                };
                assert_eq!(
                    (tt >> idx) & 1,
                    (tt >> masked) & 1,
                    "{kind:?} table not replicated over unused bits"
                );
                assert_eq!((tt >> idx) & 1 == 1, expect, "{kind:?} at idx {idx}");
            }
        }
    }

    fn assert_matches_sim(nl: &Netlist, prev: &[bool], cur: &[bool]) {
        let reference = ArrivalSim::run(nl, prev, cur);
        let c = CompiledNetlist::compile(nl);
        let mut k = ArrivalKernel::new();
        let mut got = TwoVectorResult::default();
        k.run_into(&c, prev, cur, &mut got);
        assert_eq!(got.prev, reference.prev, "prev values");
        assert_eq!(got.cur, reference.cur, "cur values");
        for i in 0..nl.len() {
            assert!(
                got.settle[i].to_bits() == reference.settle[i].to_bits(),
                "settle[{i}]: kernel {} vs sim {}",
                got.settle[i],
                reference.settle[i]
            );
        }
    }

    #[test]
    fn unchanged_nets_settle_immediately() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let b = nl.add_input_bit();
        let x = nl.and(a, b);
        nl.mark_output_bus("x", &[x]);
        let c = CompiledNetlist::compile(&nl);
        let mut k = ArrivalKernel::new();
        k.reset(&c, &[false, false]);
        k.advance(&c, &[true, false]);
        assert_eq!(k.settle_of(x), 0.0);
        assert!(!k.is_error(x, 0.1, 1.0));
        assert_matches_sim(&nl, &[false, false], &[true, false]);
    }

    #[test]
    fn settle_accumulates_through_chain() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let mut cur = a;
        for _ in 0..4 {
            cur = nl.not(cur);
        }
        nl.mark_output_bus("o", &[cur]);
        let c = CompiledNetlist::compile(&nl);
        let mut k = ArrivalKernel::new();
        k.reset(&c, &[false]);
        k.advance(&c, &[true]);
        assert!((k.settle_of(cur) - 4.0).abs() < 1e-12);
        assert!(k.is_error(cur, 3.0, 1.0));
        assert!(!k.is_error(cur, 4.0, 1.0));
        assert!(k.is_error(cur, 4.5, 1.2));
        assert_matches_sim(&nl, &[false], &[true]);
    }

    /// Drive the same vector stream through both explicit strategies
    /// and the reference simulator; all three must agree bit-for-bit.
    /// (The public `advance` picks a strategy by toggle density; this
    /// pins down each path regardless of the heuristic.)
    #[test]
    fn dense_and_frontier_paths_agree_with_sim() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);

        let vec_of = |x: u64, y: u64| -> Vec<bool> {
            (0..8)
                .map(|i| (x >> i) & 1 == 1)
                .chain((0..8).map(|i| (y >> i) & 1 == 1))
                .collect()
        };
        let stream = [(0, 0), (255, 1), (1, 0), (170, 85), (255, 255), (0, 1)];
        let c = CompiledNetlist::compile(&nl);
        let mut kd = ArrivalKernel::new();
        let mut kf = ArrivalKernel::new();
        let mut snap_d = TwoVectorResult::default();
        let mut snap_f = TwoVectorResult::default();
        kd.reset(&c, &vec_of(stream[0].0, stream[0].1));
        kf.reset(&c, &vec_of(stream[0].0, stream[0].1));
        for w in stream.windows(2) {
            let prev = vec_of(w[0].0, w[0].1);
            let cur = vec_of(w[1].0, w[1].1);
            kd.advance_dense(&c, &cur);
            kf.advance_frontier(&c, &cur);
            kd.snapshot_into(&mut snap_d);
            kf.snapshot_into(&mut snap_f);
            let reference = ArrivalSim::run(&nl, &prev, &cur);
            for (label, snap) in [("dense", &snap_d), ("frontier", &snap_f)] {
                assert_eq!(snap.prev, reference.prev, "{label} prev values");
                assert_eq!(snap.cur, reference.cur, "{label} cur values");
                for i in 0..nl.len() {
                    assert_eq!(
                        snap.settle[i].to_bits(),
                        reference.settle[i].to_bits(),
                        "{label} settle[{i}]"
                    );
                }
            }
            assert!(
                (kd.max_settle(&[cout]) - reference.max_settle(&[cout])).abs() < 1e-15,
                "cout max_settle"
            );
        }
    }

    #[test]
    fn chained_advances_match_fresh_two_vector_runs() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);

        let vec_of = |x: u64, y: u64| -> Vec<bool> {
            (0..8)
                .map(|i| (x >> i) & 1 == 1)
                .chain((0..8).map(|i| (y >> i) & 1 == 1))
                .collect()
        };
        let stream = [(0, 0), (255, 1), (1, 0), (170, 85), (255, 255), (0, 1)];
        let c = CompiledNetlist::compile(&nl);
        let mut k = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        k.reset(&c, &vec_of(stream[0].0, stream[0].1));
        for w in stream.windows(2) {
            let prev = vec_of(w[0].0, w[0].1);
            let cur = vec_of(w[1].0, w[1].1);
            k.advance(&c, &cur);
            k.snapshot_into(&mut snap);
            let reference = ArrivalSim::run(&nl, &prev, &cur);
            assert_eq!(snap.prev, reference.prev, "prev values");
            assert_eq!(snap.cur, reference.cur, "cur values");
            for i in 0..nl.len() {
                assert_eq!(
                    snap.settle[i].to_bits(),
                    reference.settle[i].to_bits(),
                    "settle[{i}]"
                );
            }
            assert!(
                (k.max_settle(&[cout]) - reference.max_settle(&[cout])).abs() < 1e-15,
                "cout max_settle"
            );
        }
    }

    #[test]
    fn transpose64_matches_naive() {
        // Deterministic pseudo-random matrix (xorshift).
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut m = [0u64; 64];
        for row in m.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *row = x;
        }
        let mut t = m;
        transpose64(&mut t);
        for (r, &row) in t.iter().enumerate() {
            for (c, &col) in m.iter().enumerate() {
                assert_eq!(
                    (row >> c) & 1,
                    (col >> r) & 1,
                    "transpose mismatch at ({r},{c})"
                );
            }
        }
    }

    /// The bit-sliced window path must reproduce the reference
    /// simulator transition by transition, across window boundaries.
    #[test]
    fn window_transitions_match_sim() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);
        let c = CompiledNetlist::compile(&nl);

        // 11 vectors split into windows of 5/5/3 with one-vector
        // overlap (4 + 4 + 2 = 10 transitions).
        let mut x = 0x1234_5678u64;
        let vectors: Vec<Vec<bool>> = (0..11)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0..16).map(|i| (x >> (i + 20)) & 1 == 1).collect()
            })
            .collect();

        let mut k = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        let mut start = 0usize;
        let mut seen = 0usize;
        while start + 1 < vectors.len() {
            let count = (vectors.len() - start).min(5);
            let flat: Vec<bool> = vectors[start..start + count]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            k.load_window(&c, &flat, count);
            assert_eq!(k.window_transitions(), count - 1);
            for t in 0..count - 1 {
                k.select_transition(&c, t);
                k.snapshot_into(&mut snap);
                let reference = ArrivalSim::run(&nl, &vectors[start + t], &vectors[start + t + 1]);
                assert_eq!(snap.prev, reference.prev, "prev at transition {seen}");
                assert_eq!(snap.cur, reference.cur, "cur at transition {seen}");
                for i in 0..nl.len() {
                    assert_eq!(
                        snap.settle[i].to_bits(),
                        reference.settle[i].to_bits(),
                        "settle[{i}] at transition {seen}"
                    );
                }
                seen += 1;
            }
            start += count - 1;
        }
        assert_eq!(seen, 10);

        // A reset returns the kernel to per-pair mode.
        k.reset(&c, &vectors[0]);
        k.advance(&c, &vectors[1]);
        let reference = ArrivalSim::run(&nl, &vectors[0], &vectors[1]);
        assert!((k.max_settle(&[cout]) - reference.max_settle(&[cout])).abs() < 1e-15);
    }

    /// Drive the same vector stream through windows of every supported
    /// lane width; all widths must reproduce the reference simulator
    /// transition by transition, including windows that straddle the
    /// 64-vector word boundary of the multi-word lanes.
    fn window_width_matches_sim<const W: usize>() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);
        let c = CompiledNetlist::compile(&nl);

        let total = ArrivalKernel::<W>::WINDOW_VECTORS + 7;
        let mut x = 0x5eed_0123u64;
        let vectors: Vec<Vec<bool>> = (0..total)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0..16).map(|i| (x >> (i + 20)) & 1 == 1).collect()
            })
            .collect();

        let mut k = ArrivalKernel::<W>::default();
        let mut snap = TwoVectorResult::default();
        let mut start = 0usize;
        let mut seen = 0usize;
        while start + 1 < vectors.len() {
            let count = (vectors.len() - start).min(ArrivalKernel::<W>::WINDOW_VECTORS);
            let flat: Vec<bool> = vectors[start..start + count]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            k.load_window(&c, &flat, count);
            assert_eq!(k.window_transitions(), count - 1);
            for t in 0..count - 1 {
                k.select_transition(&c, t);
                k.snapshot_into(&mut snap);
                let reference = ArrivalSim::run(&nl, &vectors[start + t], &vectors[start + t + 1]);
                assert_eq!(snap.prev, reference.prev, "W={W} prev at transition {seen}");
                assert_eq!(snap.cur, reference.cur, "W={W} cur at transition {seen}");
                for i in 0..nl.len() {
                    assert_eq!(
                        snap.settle[i].to_bits(),
                        reference.settle[i].to_bits(),
                        "W={W} settle[{i}] at transition {seen}"
                    );
                }
                seen += 1;
            }
            start += count - 1;
        }
        assert_eq!(seen, total - 1);
    }

    #[test]
    fn multi_word_windows_match_sim() {
        window_width_matches_sim::<1>();
        window_width_matches_sim::<4>();
        window_width_matches_sim::<8>();
    }

    /// Partial windows at every count around the lane word boundaries
    /// (the `>> 1` diff borrow and the transpose row cutoff) must stay
    /// exact — these are the off-by-one hot spots of the W-word layout.
    #[test]
    fn word_boundary_window_counts_match_sim() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 6);
        let b = nl.add_input_bus("b", 6);
        let zero = nl.const_bit(false);
        let (sum, _) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        let c = CompiledNetlist::compile(&nl);
        let mut x = 0xabcd_ef01u64;
        let vectors: Vec<Vec<bool>> = (0..195)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0..12).map(|i| (x >> (i + 20)) & 1 == 1).collect()
            })
            .collect();
        let mut k = ArrivalKernel::<4>::default();
        let mut snap = TwoVectorResult::default();
        for count in [2usize, 63, 64, 65, 127, 128, 129, 192, 193, 195] {
            let flat: Vec<bool> = vectors[..count]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            k.load_window(&c, &flat, count);
            for t in 0..count - 1 {
                k.select_transition(&c, t);
                k.snapshot_into(&mut snap);
                let reference = ArrivalSim::run(&nl, &vectors[t], &vectors[t + 1]);
                assert_eq!(snap.prev, reference.prev, "count {count} prev at {t}");
                assert_eq!(snap.cur, reference.cur, "count {count} cur at {t}");
                for i in 0..nl.len() {
                    assert_eq!(
                        snap.settle[i].to_bits(),
                        reference.settle[i].to_bits(),
                        "count {count} settle[{i}] at {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn latched_error_matches_stale_value() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let x = nl.not(a);
        nl.mark_output_bus("x", &[x]);
        let c = CompiledNetlist::compile(&nl);
        let mut k = ArrivalKernel::new();
        k.reset(&c, &[false]);
        k.advance(&c, &[true]);
        assert!(k.latched(x, 0.5, 1.0));
        assert!(!k.latched(x, 1.0, 1.0));
    }

    /// The compiled static bounds must reproduce `Sta` exactly (same
    /// recurrence, same delay table) and dominate every dynamic settle
    /// time the kernel reports — the soundness fact behind safe-bit
    /// pruning and the `sanitize-arrivals` checks.
    #[test]
    fn static_bounds_match_sta_and_dominate_settles() {
        let mut nl = Netlist::new("t", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);
        let c = CompiledNetlist::compile(&nl);
        let sta = crate::Sta::analyze(&nl);
        for i in 0..nl.len() {
            assert_eq!(
                c.static_bounds()[i].to_bits(),
                sta.arrivals()[i].to_bits(),
                "bound[{i}] vs Sta arrival"
            );
        }
        let vec_of = |x: u64, y: u64| -> Vec<bool> {
            (0..8)
                .map(|i| (x >> i) & 1 == 1)
                .chain((0..8).map(|i| (y >> i) & 1 == 1))
                .collect()
        };
        let stream = [(0, 0), (255, 1), (1, 0), (170, 85), (255, 255), (0, 1)];
        let mut k = ArrivalKernel::new();
        let mut snap = TwoVectorResult::default();
        k.reset(&c, &vec_of(stream[0].0, stream[0].1));
        for w in stream.windows(2) {
            k.advance(&c, &vec_of(w[1].0, w[1].1));
            k.snapshot_into(&mut snap);
            for i in 0..nl.len() {
                assert!(
                    snap.settle[i] <= c.static_bounds()[i] + 1e-9,
                    "settle[{i}] {} exceeds static bound {}",
                    snap.settle[i],
                    c.static_bounds()[i]
                );
            }
        }
    }

    #[test]
    fn identical_vectors_leave_no_changed_nets() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let x = nl.not(a);
        nl.mark_output_bus("x", &[x]);
        let c = CompiledNetlist::compile(&nl);
        let mut k = ArrivalKernel::new();
        k.reset(&c, &[true]);
        k.advance(&c, &[true]);
        assert!(!k.changed(x));
        assert_eq!(k.settle_of(x), 0.0);
        assert_eq!(k.max_settle(&[x]), 0.0);
    }
}
