//! Fast two-vector dynamic timing simulation (arrival-time propagation).

use tei_netlist::{GateKind, NetId, Netlist};

/// Result of a two-vector timed simulation: steady-state values before and
/// after the input transition, and the per-net settle time.
///
/// `settle[net]` is the time (ns, at the nominal corner) at which the net
/// reaches its final value, under the glitch-free transition-propagation
/// approximation: a net that does not change value settles at t = 0; a net
/// that changes settles one gate delay after the latest-settling *changed*
/// fanin. Reconvergent glitches are not modeled — use
/// [`EventSim`](crate::EventSim) for the exact waveform; the `engine_ablation`
/// bench quantifies the difference.
#[derive(Debug, Clone, Default)]
pub struct TwoVectorResult {
    /// Steady-state value of every net under the previous input vector.
    pub prev: Vec<bool>,
    /// Steady-state value of every net under the current input vector.
    pub cur: Vec<bool>,
    /// Per-net settle time at the nominal corner (0 for unchanged nets).
    pub settle: Vec<f64>,
}

impl TwoVectorResult {
    /// Latched value of `net` when the capturing edge arrives at `clk`
    /// with every delay inflated by `factor`: the old value if the net has
    /// not settled, otherwise the new value.
    #[inline]
    pub fn latched(&self, net: NetId, clk: f64, factor: f64) -> bool {
        if self.settle[net.index()] * factor > clk {
            self.prev[net.index()]
        } else {
            self.cur[net.index()]
        }
    }

    /// Whether `net` latches an incorrect value at `clk` under `factor`.
    #[inline]
    pub fn is_error(&self, net: NetId, clk: f64, factor: f64) -> bool {
        self.latched(net, clk, factor) != self.cur[net.index()]
    }

    /// The latest settle time over a set of nets (e.g. an output bus).
    pub fn max_settle(&self, nets: &[NetId]) -> f64 {
        nets.iter()
            .map(|n| self.settle[n.index()])
            .fold(0.0, f64::max)
    }
}

/// Two-vector arrival-time simulator.
///
/// This is the fast engine used for the million-operand dynamic timing
/// analysis campaigns of the model development phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalSim;

impl ArrivalSim {
    /// Simulate the transition `prev_inputs → cur_inputs` on `nl`.
    ///
    /// # Panics
    ///
    /// Panics if an input slice length differs from the netlist input count.
    pub fn run(nl: &Netlist, prev_inputs: &[bool], cur_inputs: &[bool]) -> TwoVectorResult {
        let mut out = TwoVectorResult::default();
        Self::run_into(nl, prev_inputs, cur_inputs, &mut out);
        out
    }

    /// Like [`ArrivalSim::run`] but reusing the buffers of `out`, for
    /// allocation-free inner loops.
    pub fn run_into(
        nl: &Netlist,
        prev_inputs: &[bool],
        cur_inputs: &[bool],
        out: &mut TwoVectorResult,
    ) {
        let n = nl.len();
        assert_eq!(prev_inputs.len(), nl.inputs().len(), "prev input width");
        assert_eq!(cur_inputs.len(), nl.inputs().len(), "cur input width");
        out.prev.clear();
        out.prev.resize(n, false);
        out.cur.clear();
        out.cur.resize(n, false);
        out.settle.clear();
        out.settle.resize(n, 0.0);

        let mut next_input = 0usize;
        for (i, g) in nl.gates().iter().enumerate() {
            match g.kind {
                GateKind::Input => {
                    out.prev[i] = prev_inputs[next_input];
                    out.cur[i] = cur_inputs[next_input];
                    next_input += 1;
                    // Inputs transition at t = 0.
                }
                kind => {
                    let p = g.pins;
                    let (a0, b0, c0) = (
                        out.prev[p[0].index()],
                        out.prev[p[1].index()],
                        out.prev[p[2].index()],
                    );
                    let (a1, b1, c1) = (
                        out.cur[p[0].index()],
                        out.cur[p[1].index()],
                        out.cur[p[2].index()],
                    );
                    out.prev[i] = kind.eval(a0, b0, c0);
                    out.cur[i] = kind.eval(a1, b1, c1);
                    if out.prev[i] != out.cur[i] {
                        // Latest-settling changed fanin triggers the change.
                        let mut latest = 0.0f64;
                        for &pin in g.fanin() {
                            let j = pin.index();
                            if out.prev[j] != out.cur[j] {
                                latest = latest.max(out.settle[j]);
                            }
                        }
                        out.settle[i] = latest + g.delay;
                    }
                }
            }
        }
        // Sanitizer: dynamic settle times fold a max over *changed*
        // fanins — a subset of the fanins STA folds over — so every
        // settle time must respect the static arrival bound.
        #[cfg(feature = "sanitize-arrivals")]
        {
            let sta = crate::sta::Sta::analyze(nl);
            for i in 0..n {
                assert!(
                    out.settle[i] <= sta.arrivals()[i] + 1e-9,
                    "sanitize-arrivals: net n{i} settled at {} past its static bound {}",
                    out.settle[i],
                    sta.arrivals()[i]
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::CellLibrary;

    #[test]
    fn unchanged_nets_settle_immediately() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let b = nl.add_input_bit();
        let x = nl.and(a, b);
        nl.mark_output_bus("x", &[x]);
        // a: 0→1 but b stays 0, so x stays 0.
        let r = ArrivalSim::run(&nl, &[false, false], &[true, false]);
        assert_eq!(r.settle[x.index()], 0.0);
        assert!(!r.is_error(x, 0.1, 1.0));
    }

    #[test]
    fn settle_accumulates_through_chain() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let mut cur = a;
        for _ in 0..4 {
            cur = nl.not(cur);
        }
        nl.mark_output_bus("o", &[cur]);
        let r = ArrivalSim::run(&nl, &[false], &[true]);
        assert!((r.settle[cur.index()] - 4.0).abs() < 1e-12);
        // At clk = 3 the chain has not settled: latched value is stale.
        assert!(r.is_error(cur, 3.0, 1.0));
        assert!(!r.is_error(cur, 4.0, 1.0));
        // Derating pushes the same transition past a previously-safe clock.
        assert!(r.is_error(cur, 4.5, 1.2));
    }

    #[test]
    fn carry_chain_settle_is_data_dependent() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);

        let vec_of = |x: u64, y: u64| -> Vec<bool> {
            (0..8)
                .map(|i| (x >> i) & 1 == 1)
                .chain((0..8).map(|i| (y >> i) & 1 == 1))
                .collect()
        };
        // 0+0 → 255+1: full carry propagation, slow settle at cout.
        let slow = ArrivalSim::run(&nl, &vec_of(0, 0), &vec_of(255, 1));
        // 0+0 → 1+0: carry dies immediately.
        let fast = ArrivalSim::run(&nl, &vec_of(0, 0), &vec_of(1, 0));
        assert!(
            slow.max_settle(&[cout]) > fast.max_settle(&sum),
            "long carry {} should settle later than short {}",
            slow.max_settle(&[cout]),
            fast.max_settle(&sum)
        );
    }

    #[test]
    fn latched_error_matches_stale_value() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let x = nl.not(a);
        nl.mark_output_bus("x", &[x]);
        let r = ArrivalSim::run(&nl, &[false], &[true]);
        // Settles at t=1. At clk=0.5 the latch captures the stale 'true'.
        assert!(r.latched(x, 0.5, 1.0));
        assert!(!r.latched(x, 1.0, 1.0));
    }

    #[test]
    fn run_into_reuses_buffers() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let x = nl.not(a);
        nl.mark_output_bus("x", &[x]);
        let mut buf = TwoVectorResult::default();
        ArrivalSim::run_into(&nl, &[false], &[true], &mut buf);
        assert!((buf.settle[x.index()] - 1.0).abs() < 1e-12);
        ArrivalSim::run_into(&nl, &[true], &[true], &mut buf);
        assert_eq!(buf.settle[x.index()], 0.0);
    }
}
