//! The dynamic-timing-analysis driver of the model development phase.

use crate::derating::{DeratingModel, OperatingPoint};
use crate::event::{EventSim, FanoutTable};
use crate::oracle::{SafeBitSet, SlackOracle};
use crate::sim::{ArrivalSim, TwoVectorResult};
use serde::{Deserialize, Serialize};
use tei_netlist::{NetId, Netlist};

/// Which timed simulation engine a [`DtaEngine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingEngine {
    /// Fast two-vector arrival propagation (glitch-free approximation).
    Arrival,
    /// Exact event-driven simulation (reference).
    EventDriven,
}

/// Outcome of analyzing one consecutive operation pair at one operating
/// point: the golden output bits, the bits a register would actually latch,
/// and the per-bit error mask — the paper's Section III.A.1 XOR comparison
/// of the nominal and reduced-voltage simulations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DtaOutcome {
    /// Golden (fully settled) values of the output nets, in
    /// [`Netlist::output_nets`] order.
    pub golden: Vec<bool>,
    /// Latched values at the capturing clock edge.
    pub latched: Vec<bool>,
    /// `golden XOR latched` — 1 marks a timing-corrupted bit.
    pub mask: Vec<bool>,
}

impl DtaOutcome {
    /// True if any output bit was corrupted.
    pub fn has_error(&self) -> bool {
        self.mask.iter().any(|&b| b)
    }

    /// Number of corrupted output bits.
    pub fn flipped_bits(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// The mask as a little-endian u64 (for output buses of ≤ 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if the mask is wider than 64 bits.
    pub fn mask_u64(&self) -> u64 {
        assert!(self.mask.len() <= 64, "mask wider than u64");
        self.mask
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
    }
}

/// Dynamic timing analysis engine over one netlist.
///
/// Owns the netlist, its fanout table, and the derating model; exposes
/// per-operation-pair analysis at arbitrary operating points. Under a
/// uniform derating model the nominal settle times are computed once per
/// pair and re-thresholded for each corner (see DESIGN.md §5).
#[derive(Debug, Clone)]
pub struct DtaEngine {
    netlist: Netlist,
    fanouts: FanoutTable,
    derating: DeratingModel,
    engine: TimingEngine,
    outputs: Vec<NetId>,
    /// Static per-net arrival bounds; lets the arrival path skip the
    /// latched-value computation for provably safe output bits.
    oracle: SlackOracle,
}

impl DtaEngine {
    /// Build an engine around `netlist`.
    pub fn new(netlist: Netlist, engine: TimingEngine, derating: DeratingModel) -> Self {
        let fanouts = FanoutTable::build(&netlist);
        let outputs = netlist.output_nets();
        let oracle = SlackOracle::analyze(&netlist);
        DtaEngine {
            netlist,
            fanouts,
            derating,
            engine,
            outputs,
            oracle,
        }
    }

    /// The static slack oracle built over the engine's netlist.
    pub fn oracle(&self) -> &SlackOracle {
        &self.oracle
    }

    /// Classify the output bits at `op` under the engine's derating
    /// model (uniform models only; see [`SlackOracle::safe_bits`]).
    pub fn safe_bits(&self, op: OperatingPoint) -> SafeBitSet {
        self.oracle.safe_bits(op, &self.derating)
    }

    /// The analyzed netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The output nets examined by [`DtaEngine::analyze`], in mask order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The derating model in use.
    pub fn derating(&self) -> &DeratingModel {
        &self.derating
    }

    /// Analyze one `prev → cur` input transition at operating point `op`.
    pub fn analyze(&self, prev: &[bool], cur: &[bool], op: OperatingPoint) -> DtaOutcome {
        let out = match self.engine {
            TimingEngine::Arrival => {
                let mut buf = TwoVectorResult::default();
                self.analyze_arrival_into(prev, cur, op, &mut buf)
            }
            TimingEngine::EventDriven => self.analyze_event(prev, cur, op),
        };
        #[cfg(feature = "sanitize-arrivals")]
        self.sanitize_cross_check(prev, cur, op, &out);
        out
    }

    /// Sanitizer: run the *other* engine on the same transition and
    /// check the invariants that hold between them. Golden (steady
    /// state) values must agree bit for bit; the arrival engine's
    /// settle times must dominate the event engine's last-transition
    /// times (the arrival engine is conservative). Latched values may
    /// legitimately differ — glitches are visible only to the event
    /// engine — so they are not compared. Uniform derating only: a
    /// jitter model has no arrival-engine counterpart.
    #[cfg(feature = "sanitize-arrivals")]
    fn sanitize_cross_check(
        &self,
        prev: &[bool],
        cur: &[bool],
        op: OperatingPoint,
        out: &DtaOutcome,
    ) {
        if !self.derating.is_uniform() {
            return;
        }
        let factor = self.derating.factor_for(op.vdd, 0);
        let mut buf = TwoVectorResult::default();
        ArrivalSim::run_into(&self.netlist, prev, cur, &mut buf);
        let delays = EventSim::derated_delays(&self.netlist, factor);
        let ev = EventSim::run(&self.netlist, &self.fanouts, prev, cur, &delays, op.clk);
        for (bit, &n) in self.outputs.iter().enumerate() {
            let i = n.index();
            assert_eq!(
                buf.cur[i], ev.final_values[i],
                "sanitize-arrivals: engines disagree on golden bit {bit} (net n{i})"
            );
            assert_eq!(
                out.golden[bit], buf.cur[i],
                "sanitize-arrivals: reported golden bit {bit} (net n{i}) is not the steady state"
            );
            assert!(
                buf.settle[i] * factor >= ev.last_transition[i] - 1e-9,
                "sanitize-arrivals: arrival settle {} under-estimates event time {} \
                 at bit {bit} (net n{i})",
                buf.settle[i] * factor,
                ev.last_transition[i]
            );
        }
    }

    /// Arrival-engine analysis with a caller-provided buffer (hot loop API).
    pub fn analyze_arrival_into(
        &self,
        prev: &[bool],
        cur: &[bool],
        op: OperatingPoint,
        buf: &mut TwoVectorResult,
    ) -> DtaOutcome {
        ArrivalSim::run_into(&self.netlist, prev, cur, buf);
        // Uniform derating: settle times scale by one factor.
        let factor = self.derating.factor_for(op.vdd, 0);
        assert!(
            self.derating.is_uniform(),
            "the arrival engine requires a uniform derating model; \
             use TimingEngine::EventDriven for per-gate jitter"
        );
        self.outcome_from_arrival(buf, op.clk, factor)
    }

    /// Re-threshold an already-computed arrival result at another corner.
    /// Valid only for uniform derating (the default).
    ///
    /// Output bits the slack oracle proves safe at `(clk, factor)` skip
    /// the settle-time threshold: their latched value *is* the golden
    /// value (the derated worst-case arrival meets the clock edge, so
    /// the settle time — which the static bound dominates — cannot
    /// exceed it either). The pruned outcome is bit-identical to the
    /// unpruned one.
    pub fn outcome_from_arrival(&self, buf: &TwoVectorResult, clk: f64, factor: f64) -> DtaOutcome {
        let golden: Vec<bool> = self.outputs.iter().map(|n| buf.cur[n.index()]).collect();
        let latched: Vec<bool> = self
            .outputs
            .iter()
            .map(|&n| {
                if self.oracle.is_safe(n, clk, factor) {
                    let v = buf.cur[n.index()];
                    #[cfg(feature = "sanitize-arrivals")]
                    assert_eq!(
                        v,
                        buf.latched(n, clk, factor),
                        "sanitize-arrivals: statically-safe net n{} latched stale",
                        n.index()
                    );
                    v
                } else {
                    buf.latched(n, clk, factor)
                }
            })
            .collect();
        let mask = golden.iter().zip(&latched).map(|(g, l)| g != l).collect();
        DtaOutcome {
            golden,
            latched,
            mask,
        }
    }

    fn analyze_event(&self, prev: &[bool], cur: &[bool], op: OperatingPoint) -> DtaOutcome {
        let delays: Vec<f64> = self
            .netlist
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| g.delay * self.derating.factor_for(op.vdd, i))
            .collect();
        let r = EventSim::run(&self.netlist, &self.fanouts, prev, cur, &delays, op.clk);
        let golden: Vec<bool> = self
            .outputs
            .iter()
            .map(|n| r.final_values[n.index()])
            .collect();
        let latched: Vec<bool> = self.outputs.iter().map(|n| r.latched[n.index()]).collect();
        let mask = golden.iter().zip(&latched).map(|(g, l)| g != l).collect();
        DtaOutcome {
            golden,
            latched,
            mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derating::AlphaPowerLaw;
    use tei_netlist::CellLibrary;

    fn chain_netlist(depth: usize) -> Netlist {
        let mut nl = Netlist::new("chain", CellLibrary::unit());
        let a = nl.add_input_bit();
        let mut cur = a;
        for _ in 0..depth {
            cur = nl.not(cur);
        }
        nl.mark_output_bus("o", &[cur]);
        nl
    }

    #[test]
    fn no_error_at_relaxed_clock() {
        let eng = DtaEngine::new(
            chain_netlist(5),
            TimingEngine::Arrival,
            DeratingModel::default(),
        );
        let op = OperatingPoint {
            vdd: 1.1,
            clk: 10.0,
        };
        let out = eng.analyze(&[false], &[true], op);
        assert!(!out.has_error());
        assert_eq!(out.golden, out.latched);
    }

    #[test]
    fn undervolting_induces_error_then_engines_agree() {
        // Chain of depth 5 (5 ns nominal): meets a 6 ns clock nominally,
        // fails it at VR20 (5 × 1.52 ≈ 7.6 ns).
        let nl = chain_netlist(5);
        let op_lo = OperatingPoint {
            vdd: 0.88,
            clk: 6.0,
        };
        for engine in [TimingEngine::Arrival, TimingEngine::EventDriven] {
            let eng = DtaEngine::new(nl.clone(), engine, DeratingModel::default());
            let nominal = eng.analyze(&[false], &[true], OperatingPoint { vdd: 1.1, clk: 6.0 });
            assert!(!nominal.has_error(), "{engine:?} nominal");
            let low = eng.analyze(&[false], &[true], op_lo);
            assert!(low.has_error(), "{engine:?} undervolted");
            assert_eq!(low.flipped_bits(), 1);
            assert_eq!(low.mask_u64(), 1);
        }
    }

    #[test]
    fn rethresholding_matches_direct_analysis() {
        let eng = DtaEngine::new(
            chain_netlist(4),
            TimingEngine::Arrival,
            DeratingModel::default(),
        );
        let mut buf = TwoVectorResult::default();
        let op = OperatingPoint {
            vdd: 0.935,
            clk: 4.8,
        };
        let direct = eng.analyze_arrival_into(&[false], &[true], op, &mut buf);
        let k = AlphaPowerLaw::default().factor(0.935);
        let rethresh = eng.outcome_from_arrival(&buf, 4.8, k);
        assert_eq!(direct, rethresh);
    }

    /// Pruned outcomes (safe bits short-circuited through the oracle)
    /// must equal the unpruned per-bit threshold at every corner,
    /// including corners where some bits are safe and some are not.
    #[test]
    fn safe_bit_pruning_is_bit_identical() {
        let mut nl = Netlist::new("lop", CellLibrary::unit());
        let a = nl.add_input_bit();
        let shallow = nl.buf(a);
        let mut deep = a;
        for _ in 0..6 {
            deep = nl.not(deep);
        }
        nl.mark_output_bus("o", &[shallow, deep]);
        let eng = DtaEngine::new(nl, TimingEngine::Arrival, DeratingModel::default());
        let mut buf = TwoVectorResult::default();
        for &(vdd, clk) in &[(1.1, 10.0), (0.935, 4.0), (0.88, 6.0), (0.88, 2.0)] {
            let op = OperatingPoint { vdd, clk };
            let out = eng.analyze_arrival_into(&[false], &[true], op, &mut buf);
            let k = AlphaPowerLaw::default().factor(vdd);
            let set = eng.safe_bits(op);
            // Unpruned reference straight off the arrival buffer.
            for (bit, &n) in eng.outputs().iter().enumerate() {
                assert_eq!(
                    out.latched[bit],
                    buf.latched(n, clk, k),
                    "bit {bit} at vdd {vdd} clk {clk} (safe: {})",
                    set.is_safe(bit)
                );
            }
            // A bit the oracle calls safe must never carry an error.
            for (bit, &m) in out.mask.iter().enumerate() {
                assert!(!(set.is_safe(bit) && m), "safe bit {bit} flagged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "uniform derating")]
    fn arrival_engine_rejects_jitter_model() {
        let eng = DtaEngine::new(
            chain_netlist(3),
            TimingEngine::Arrival,
            DeratingModel::PerGateJitter {
                law: AlphaPowerLaw::default(),
                sigma: 0.05,
                seed: 1,
            },
        );
        eng.analyze(&[false], &[true], OperatingPoint { vdd: 1.0, clk: 5.0 });
    }

    #[test]
    fn event_engine_accepts_jitter_model() {
        let eng = DtaEngine::new(
            chain_netlist(3),
            TimingEngine::EventDriven,
            DeratingModel::PerGateJitter {
                law: AlphaPowerLaw::default(),
                sigma: 0.05,
                seed: 1,
            },
        );
        let out = eng.analyze(
            &[false],
            &[true],
            OperatingPoint {
                vdd: 1.1,
                clk: 50.0,
            },
        );
        assert!(!out.has_error());
    }
}
