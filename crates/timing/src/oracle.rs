//! Per-bit static slack oracle.
//!
//! Conventional STA answers one question — does the whole design meet
//! timing? — but its per-net arrival times prove something much finer:
//! any net whose worst-case arrival, inflated by the derating factor of
//! an operating point, still lands before the capturing clock edge can
//! *never* latch a stale value at that point, for any input pair. The
//! dynamic settle time of a net is bounded by its static arrival (the
//! dynamic fold maximizes over *changed* fanins, a subset of the fanins
//! STA maximizes over), so `arrival(net) × factor ≤ clk` is a sound
//! proof of per-bit safety.
//!
//! [`SlackOracle`] packages those per-net bounds; [`SafeBitSet`] is the
//! per-output-bit verdict at one `(clk, factor)` corner. The DTA paths
//! ([`DtaEngine`](crate::DtaEngine) and the compiled campaign loop in
//! `tei-core`) consult it to skip settle-time thresholding for provably
//! safe bits, and the `sanitize-arrivals` feature re-checks every
//! dynamic arrival against the static bound at runtime.

use crate::derating::{DeratingModel, OperatingPoint, VoltageReduction};
use crate::sta::Sta;
use tei_netlist::{NetId, Netlist};

/// Static per-net arrival bounds plus the output bus they gate.
///
/// Bounds are nominal-corner worst-case arrivals (identical recurrence
/// to [`Sta`]); corners are applied at query time by scaling with a
/// uniform derating factor.
#[derive(Debug, Clone)]
pub struct SlackOracle {
    bounds: Vec<f64>,
    outputs: Vec<NetId>,
}

impl SlackOracle {
    /// Run STA over `nl` and keep its per-net arrivals as bounds; the
    /// oracle's output bits are the netlist's declared outputs in
    /// [`Netlist::output_nets`] order.
    pub fn analyze(nl: &Netlist) -> Self {
        let sta = Sta::analyze(nl);
        SlackOracle {
            bounds: sta.arrivals().to_vec(),
            outputs: nl.output_nets(),
        }
    }

    /// Build from precomputed per-net bounds (e.g. the compiled
    /// kernel's [`static_bounds`](crate::CompiledNetlist::static_bounds))
    /// and an explicit output bus.
    ///
    /// # Panics
    ///
    /// Panics if an output net indexes past `bounds`.
    pub fn from_bounds(bounds: Vec<f64>, outputs: Vec<NetId>) -> Self {
        for n in &outputs {
            assert!(n.index() < bounds.len(), "output net outside bound table");
        }
        SlackOracle { bounds, outputs }
    }

    /// Worst-case static arrival of one net at the nominal corner.
    pub fn bound(&self, net: NetId) -> f64 {
        self.bounds[net.index()]
    }

    /// All per-net bounds, indexed by net.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The output bits the oracle reasons about, in mask order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Whether `net` is provably safe at clock `clk` with every delay
    /// inflated by `factor`: its derated worst-case arrival still meets
    /// the capturing edge, so no input pair can make it latch stale.
    #[inline]
    pub fn is_safe(&self, net: NetId, clk: f64, factor: f64) -> bool {
        self.bounds[net.index()] * factor <= clk
    }

    /// Classify every output bit at a `(clk, factor)` corner.
    pub fn safe_bits_at(&self, clk: f64, factor: f64) -> SafeBitSet {
        let safe: Vec<bool> = self
            .outputs
            .iter()
            .map(|&n| self.is_safe(n, clk, factor))
            .collect();
        SafeBitSet::new(safe, &self.outputs)
    }

    /// Classify every output bit at an operating point under `derating`.
    ///
    /// # Panics
    ///
    /// Panics for non-uniform derating models: per-gate jitter has no
    /// single scale factor, so the static bound would be unsound.
    pub fn safe_bits(&self, op: OperatingPoint, derating: &DeratingModel) -> SafeBitSet {
        assert!(
            derating.is_uniform(),
            "the slack oracle requires a uniform derating model"
        );
        self.safe_bits_at(op.clk, derating.factor_for(op.vdd, 0))
    }

    /// One [`SafeBitSet`] per voltage-reduction level at clock `clk`
    /// (the per-VR classification the DTA campaign pruning consumes).
    pub fn safe_bits_per_level(&self, clk: f64, levels: &[VoltageReduction]) -> Vec<SafeBitSet> {
        levels
            .iter()
            .map(|vr| self.safe_bits_at(clk, vr.derating_factor()))
            .collect()
    }
}

/// Per-output-bit safety verdict at one operating corner: bit `i` is
/// safe iff no input transition can make output net `i` latch a stale
/// value there.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeBitSet {
    safe: Vec<bool>,
    /// `(bit index, net)` of every *unsafe* bit, precomputed so hot
    /// loops iterate only the bits that still need dynamic evaluation.
    unsafe_bits: Vec<(usize, NetId)>,
}

impl SafeBitSet {
    /// Build from per-bit verdicts and the matching output nets.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn new(safe: Vec<bool>, outputs: &[NetId]) -> Self {
        assert_eq!(safe.len(), outputs.len(), "verdicts per output bit");
        let unsafe_bits = safe
            .iter()
            .zip(outputs)
            .enumerate()
            .filter(|(_, (&s, _))| !s)
            .map(|(bit, (_, &net))| (bit, net))
            .collect();
        SafeBitSet { safe, unsafe_bits }
    }

    /// Number of output bits covered.
    pub fn len(&self) -> usize {
        self.safe.len()
    }

    /// True when the verdict covers no bits.
    pub fn is_empty(&self) -> bool {
        self.safe.is_empty()
    }

    /// Whether output bit `bit` is provably safe.
    #[inline]
    pub fn is_safe(&self, bit: usize) -> bool {
        self.safe[bit]
    }

    /// Number of provably safe bits.
    pub fn count_safe(&self) -> usize {
        self.safe.len() - self.unsafe_bits.len()
    }

    /// True when every output bit is safe (DTA at this corner can skip
    /// the transition entirely).
    pub fn all_safe(&self) -> bool {
        self.unsafe_bits.is_empty()
    }

    /// The `(bit index, net)` pairs still needing dynamic evaluation.
    pub fn unsafe_bits(&self) -> &[(usize, NetId)] {
        &self.unsafe_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::CellLibrary;

    /// Two outputs of very different depth: a 1-deep buffer and a
    /// 6-deep inverter chain.
    fn lopsided() -> Netlist {
        let mut nl = Netlist::new("lop", CellLibrary::unit());
        let a = nl.add_input_bit();
        let shallow = nl.buf(a);
        let mut deep = a;
        for _ in 0..6 {
            deep = nl.not(deep);
        }
        nl.mark_output_bus("o", &[shallow, deep]);
        nl
    }

    #[test]
    fn bounds_match_sta_arrivals() {
        let nl = lopsided();
        let oracle = SlackOracle::analyze(&nl);
        let sta = Sta::analyze(&nl);
        for i in 0..nl.len() {
            assert_eq!(oracle.bounds()[i].to_bits(), sta.arrivals()[i].to_bits());
        }
        assert_eq!(oracle.outputs(), nl.output_nets().as_slice());
    }

    #[test]
    fn classifies_by_derated_arrival() {
        let nl = lopsided();
        let oracle = SlackOracle::analyze(&nl);
        // clk 4.0, factor 1.5: shallow bound 1.5 ≤ 4 safe, deep 9 > 4 unsafe.
        let set = oracle.safe_bits_at(4.0, 1.5);
        assert_eq!(set.len(), 2);
        assert!(set.is_safe(0));
        assert!(!set.is_safe(1));
        assert_eq!(set.count_safe(), 1);
        assert!(!set.all_safe());
        assert_eq!(set.unsafe_bits().len(), 1);
        assert_eq!(set.unsafe_bits()[0].0, 1);
        // Relaxed clock: everything safe.
        assert!(oracle.safe_bits_at(10.0, 1.5).all_safe());
    }

    #[test]
    fn per_level_sets_tighten_with_voltage() {
        let nl = lopsided();
        let oracle = SlackOracle::analyze(&nl);
        let levels = [VoltageReduction::VR15, VoltageReduction::VR20];
        let sets = oracle.safe_bits_per_level(8.5, &levels);
        assert_eq!(sets.len(), 2);
        // Deep chain: 6 × 1.33 ≈ 8.0 ≤ 8.5 safe at VR15, 6 × 1.52 ≈ 9.1
        // unsafe at VR20; lower voltage can only shrink the safe set.
        assert!(sets[0].is_safe(1));
        assert!(!sets[1].is_safe(1));
        assert!(sets[0].count_safe() >= sets[1].count_safe());
    }

    #[test]
    #[should_panic(expected = "uniform derating")]
    fn rejects_jitter_models() {
        let nl = lopsided();
        let oracle = SlackOracle::analyze(&nl);
        let jitter = DeratingModel::PerGateJitter {
            law: crate::derating::AlphaPowerLaw::default(),
            sigma: 0.05,
            seed: 1,
        };
        oracle.safe_bits(OperatingPoint { vdd: 1.0, clk: 5.0 }, &jitter);
    }
}
