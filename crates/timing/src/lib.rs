//! # tei-timing
//!
//! Static and dynamic timing analysis over `tei-netlist` circuits, plus the
//! voltage→delay derating models that turn supply-voltage reduction into
//! path-delay inflation.
//!
//! This crate substitutes the commercial timing flow of the paper
//! (PrimeTime-style STA, ModelSim gate-level dynamic timing analysis with
//! SDF back-annotation, and SiliconSmart library re-characterization at
//! reduced voltage):
//!
//! * [`Sta`] — static timing analysis: per-net arrival times, per-endpoint
//!   worst paths, slack, and the top-K lowest-slack path census behind the
//!   paper's Figure 4.
//! * [`ArrivalSim`] — fast two-vector *dynamic* timing simulation using
//!   transition-propagation arrival times (glitch-free approximation; the
//!   Razor-style "latch keeps the old value" error model).
//! * [`CompiledNetlist`] / [`ArrivalKernel`] — the same model compiled to
//!   structure-of-arrays tables with a changed-net frontier and bit-sliced
//!   multi-word window lanes (`W * 64` vectors per pass, autovectorized):
//!   bit-identical results, built for million-pair campaign throughput.
//! * [`EventSim`] — exact event-driven timed simulation with transport
//!   delays (models glitches); the reference engine the fast one is
//!   validated against.
//! * [`DeratingModel`] / [`VoltageReduction`] — the alpha-power-law supply
//!   voltage derating used to model VR15/VR20 corners.
//! * [`DtaEngine`] — the dynamic-timing-analysis driver used by the model
//!   development phase: consecutive operand pairs in, per-output-bit error
//!   masks out.
//!
//! ## Example
//!
//! ```
//! use tei_netlist::{Netlist, CellLibrary};
//! use tei_timing::{Sta, VoltageReduction};
//!
//! let mut nl = Netlist::new("inc", CellLibrary::nangate45_like());
//! let a = nl.add_input_bus("a", 8);
//! let (r, _) = nl.incrementer(&a);
//! nl.mark_output_bus("r", &r);
//! let sta = Sta::analyze(&nl);
//! let clk = 4.5;
//! assert!(sta.max_delay() < clk, "circuit meets timing at nominal");
//! let k = VoltageReduction::VR20.derating_factor();
//! assert!(k > 1.0, "reduced voltage inflates delay");
//! ```

pub mod codegen;
mod derating;
mod dta;
mod engine;
mod event;
mod kernel;
mod oracle;
mod sim;
mod sta;
mod vcd;

pub use codegen::{emit_program, DynProgram, NetlistProgram, SettlePlan, SpecializedKernel};
pub use derating::{
    overclock_factor, AgingModel, AlphaPowerLaw, DeratingModel, OperatingPoint, TemperatureModel,
    VoltageReduction,
};
pub use dta::{DtaEngine, DtaOutcome, TimingEngine};
pub use engine::{interpreted_engine, ArrivalEngine, InterpretedEngine};
pub use event::{EventSim, EventSimResult, FanoutTable};
pub use kernel::{ArrivalKernel, CompiledNetlist, Lanes, WINDOW_VECTORS};
pub use oracle::{SafeBitSet, SlackOracle};
pub use sim::{ArrivalSim, TwoVectorResult};
pub use sta::{PathCensus, PathInfo, Sta};
pub use vcd::{dump_vcd, Change, Waveform};
