//! Voltage → delay derating models.
//!
//! The paper re-characterizes its 45 nm library at 15 % and 20 % supply
//! reduction with SiliconSmart. We substitute the standard alpha-power-law
//! MOSFET delay model: gate delay is proportional to
//! `V / (V − Vth)^α`, so reducing the supply from `Vnom` to `V` inflates
//! every delay by
//!
//! ```text
//! k(V) = (V / Vnom) · ((Vnom − Vth) / (V − Vth))^α
//! ```
//!
//! With the 45 nm-class defaults (`Vnom = 1.1 V`, `Vth = 0.5 V`,
//! `α = 1.4`), the paper's two corners come out to `k(VR15) ≈ 1.33` and
//! `k(VR20) ≈ 1.52`.

use serde::{Deserialize, Serialize};

/// Nominal supply voltage of the modeled library corner (volts).
pub const V_NOMINAL: f64 = 1.1;

/// The supply-voltage reduction levels studied in the paper, plus an
/// arbitrary level for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VoltageReduction {
    /// Nominal operation (no reduction).
    Nominal,
    /// 15 % supply reduction (the paper's VR15, 0.935 V).
    VR15,
    /// 20 % supply reduction (the paper's VR20, 0.88 V).
    VR20,
    /// An arbitrary fractional reduction in `(0, 0.5]`, e.g. `0.10` for 10 %.
    Custom(f64),
}

impl VoltageReduction {
    /// The reduction as a fraction of nominal (0.15 for VR15).
    pub fn fraction(self) -> f64 {
        match self {
            VoltageReduction::Nominal => 0.0,
            VoltageReduction::VR15 => 0.15,
            VoltageReduction::VR20 => 0.20,
            VoltageReduction::Custom(f) => f,
        }
    }

    /// The resulting supply voltage in volts.
    pub fn vdd(self) -> f64 {
        V_NOMINAL * (1.0 - self.fraction())
    }

    /// Delay inflation factor at this corner under the default
    /// [`AlphaPowerLaw`].
    pub fn derating_factor(self) -> f64 {
        AlphaPowerLaw::default().factor(self.vdd())
    }

    /// Short label used in reports ("VR15", "VR20", ...).
    pub fn label(self) -> String {
        match self {
            VoltageReduction::Nominal => "nominal".to_string(),
            VoltageReduction::VR15 => "VR15".to_string(),
            VoltageReduction::VR20 => "VR20".to_string(),
            VoltageReduction::Custom(f) => format!("VR{:02.0}", f * 100.0),
        }
    }
}

/// An operating point: supply voltage and clock period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock period in nanoseconds.
    pub clk: f64,
}

impl OperatingPoint {
    /// The paper's design point: 1.1 V, 4.5 ns minimum clock.
    pub fn paper_nominal() -> Self {
        OperatingPoint {
            vdd: V_NOMINAL,
            clk: 4.5,
        }
    }

    /// Same clock, reduced voltage.
    pub fn with_reduction(self, vr: VoltageReduction) -> Self {
        OperatingPoint {
            vdd: V_NOMINAL * (1.0 - vr.fraction()),
            clk: self.clk,
        }
    }
}

/// Alpha-power-law delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerLaw {
    /// Nominal supply (volts).
    pub vnom: f64,
    /// Effective threshold voltage (volts).
    pub vth: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
}

impl Default for AlphaPowerLaw {
    fn default() -> Self {
        AlphaPowerLaw {
            vnom: V_NOMINAL,
            vth: 0.5,
            alpha: 1.4,
        }
    }
}

impl AlphaPowerLaw {
    /// Delay inflation factor at supply `vdd` relative to `vnom`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not above the threshold voltage (the circuit
    /// would not switch at all).
    pub fn factor(&self, vdd: f64) -> f64 {
        assert!(
            vdd > self.vth,
            "supply {vdd} V at or below threshold {} V",
            self.vth
        );
        (vdd / self.vnom) * ((self.vnom - self.vth) / (vdd - self.vth)).powf(self.alpha)
    }
}

/// How per-gate delays are inflated at a reduced-voltage corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeratingModel {
    /// Every gate scales by the same alpha-power-law factor. Under this
    /// model nominal arrival times scale uniformly, so dynamic timing
    /// analysis can be performed once and re-thresholded per corner.
    Uniform(AlphaPowerLaw),
    /// Uniform scaling plus deterministic per-gate jitter of relative
    /// magnitude `sigma` (a ±sigma triangular perturbation seeded by the
    /// gate index), modeling within-die process variation. Used by the
    /// ablation benches.
    PerGateJitter {
        /// The underlying uniform law.
        law: AlphaPowerLaw,
        /// Relative jitter magnitude (e.g. 0.05 for ±5 %).
        sigma: f64,
        /// Seed decorrelating different fabricated instances.
        seed: u64,
    },
}

impl Default for DeratingModel {
    fn default() -> Self {
        DeratingModel::Uniform(AlphaPowerLaw::default())
    }
}

impl DeratingModel {
    /// Derating factor for gate `gate_index` at supply `vdd`.
    pub fn factor_for(&self, vdd: f64, gate_index: usize) -> f64 {
        match self {
            DeratingModel::Uniform(law) => law.factor(vdd),
            DeratingModel::PerGateJitter { law, sigma, seed } => {
                let base = law.factor(vdd);
                // SplitMix64 over (seed, gate) → deterministic jitter in [-1, 1).
                let mut z = seed
                    .wrapping_add(0x9e3779b97f4a7c15)
                    .wrapping_add((gate_index as u64).wrapping_mul(0xbf58476d1ce4e5b9));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                let unit = (z as f64 / u64::MAX as f64) * 2.0 - 1.0;
                base * (1.0 + sigma * unit)
            }
        }
    }

    /// True when the factor is identical for every gate, enabling the
    /// compute-once / re-threshold-per-corner optimization.
    pub fn is_uniform(&self) -> bool {
        matches!(self, DeratingModel::Uniform(_))
    }
}

// ---------------------------------------------------------------------
// Additional delay-increase sources (the paper's future-work extensions:
// temperature variation, transistor aging, overclocking).
// ---------------------------------------------------------------------

/// Temperature-dependent delay model for a low-voltage 45 nm-class corner.
///
/// Two competing effects: carrier mobility degrades with temperature
/// (slower), while the threshold voltage drops (faster at low supply).
/// Near and below the nominal supply this model is mobility-dominated,
/// with the threshold shift folded into the alpha-power law:
/// `Vth(T) = Vth(T0) − kt·(T − T0)`, `μ(T) ∝ (T/T0)^−m`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureModel {
    /// The base alpha-power law (characterized at `t0`).
    pub law: AlphaPowerLaw,
    /// Characterization temperature in °C (the paper's 25 °C).
    pub t0: f64,
    /// Threshold-voltage temperature coefficient (V/°C), typically ~1 mV/°C.
    pub vth_slope: f64,
    /// Mobility exponent `m` (typically 1.2–1.5).
    pub mobility_exp: f64,
}

impl Default for TemperatureModel {
    fn default() -> Self {
        TemperatureModel {
            law: AlphaPowerLaw::default(),
            t0: 25.0,
            vth_slope: 1.0e-3,
            mobility_exp: 1.3,
        }
    }
}

impl TemperatureModel {
    /// Delay inflation factor at supply `vdd` and temperature `celsius`,
    /// relative to the nominal supply at the characterization temperature.
    ///
    /// # Panics
    ///
    /// Panics if the effective supply falls to the shifted threshold.
    pub fn factor(&self, vdd: f64, celsius: f64) -> f64 {
        let vth = self.law.vth - self.vth_slope * (celsius - self.t0);
        assert!(vdd > vth, "supply at or below the shifted threshold");
        // Delay relative to (vnom, t0, vth(t0)) reference conditions.
        let ref_drive = (self.law.vnom - self.law.vth).powf(self.law.alpha);
        let drive = (vdd - vth).powf(self.law.alpha);
        let kelvin0 = self.t0 + 273.15;
        let kelvin = celsius + 273.15;
        let mobility = (kelvin / kelvin0).powf(self.mobility_exp);
        (vdd / self.law.vnom) * (ref_drive / drive) * mobility
    }
}

/// NBTI-style transistor aging: threshold voltage drifts upward with a
/// fractional-power law of operational time,
/// `ΔVth(t) = a · (t/1yr)^n` (n ≈ 0.16–0.25).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// The fresh-silicon alpha-power law.
    pub law: AlphaPowerLaw,
    /// Threshold shift after one year of stress (V), typically 10–30 mV.
    pub dvth_1y: f64,
    /// Time exponent `n`.
    pub exponent: f64,
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel {
            law: AlphaPowerLaw::default(),
            dvth_1y: 0.02,
            exponent: 0.2,
        }
    }
}

impl AgingModel {
    /// Delay inflation factor at supply `vdd` after `years` of operation,
    /// relative to fresh silicon at the nominal supply.
    pub fn factor(&self, vdd: f64, years: f64) -> f64 {
        assert!(years >= 0.0, "negative age");
        let dvth = if years == 0.0 {
            0.0
        } else {
            self.dvth_1y * years.powf(self.exponent)
        };
        let vth = self.law.vth + dvth;
        assert!(vdd > vth, "supply at or below the aged threshold");
        // Delay relative to fresh silicon at the nominal supply.
        let ref_drive = (self.law.vnom - self.law.vth).powf(self.law.alpha);
        let drive = (vdd - vth).powf(self.law.alpha);
        (vdd / self.law.vnom) * (ref_drive / drive)
    }
}

/// Overclocking expressed in the same "delay-vs-period" frame the rest of
/// the toolflow uses: raising the frequency by `fraction` is equivalent to
/// shrinking the clock period, i.e. inflating every relative delay by
/// `1 / (1 − fraction)` at an unchanged supply.
pub fn overclock_factor(fraction: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&fraction),
        "overclock fraction out of range"
    );
    1.0 / (1.0 - fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_factor_is_one() {
        let law = AlphaPowerLaw::default();
        assert!((law.factor(V_NOMINAL) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_corners_inflate_delay_monotonically() {
        let k15 = VoltageReduction::VR15.derating_factor();
        let k20 = VoltageReduction::VR20.derating_factor();
        assert!(k15 > 1.0 && k20 > k15, "k15={k15} k20={k20}");
        // Calibration band documented in DESIGN.md.
        assert!((1.25..1.45).contains(&k15), "k15={k15}");
        assert!((1.40..1.65).contains(&k20), "k20={k20}");
    }

    #[test]
    fn vdd_values_match_paper() {
        assert!((VoltageReduction::VR15.vdd() - 0.935).abs() < 1e-9);
        assert!((VoltageReduction::VR20.vdd() - 0.88).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn sub_threshold_supply_rejected() {
        AlphaPowerLaw::default().factor(0.4);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let model = DeratingModel::PerGateJitter {
            law: AlphaPowerLaw::default(),
            sigma: 0.05,
            seed: 42,
        };
        let base = AlphaPowerLaw::default().factor(0.88);
        for g in 0..1000 {
            let f1 = model.factor_for(0.88, g);
            let f2 = model.factor_for(0.88, g);
            assert_eq!(f1, f2, "deterministic");
            assert!(
                (f1 / base - 1.0).abs() <= 0.05 + 1e-12,
                "bounded at gate {g}"
            );
        }
        // Jitter actually varies between gates.
        let a = model.factor_for(0.88, 1);
        let b = model.factor_for(0.88, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn custom_reduction_label() {
        assert_eq!(VoltageReduction::Custom(0.10).label(), "VR10");
        assert_eq!(VoltageReduction::VR15.label(), "VR15");
    }

    #[test]
    fn temperature_slows_low_voltage_circuits() {
        let m = TemperatureModel::default();
        let base = m.factor(0.88, 25.0);
        assert!((base - AlphaPowerLaw::default().factor(0.88)).abs() < 1e-12);
        // Hotter silicon at low voltage: mobility loss dominates but the
        // threshold drop pulls the other way; both effects are modeled.
        let hot = m.factor(0.88, 85.0);
        assert!(hot != base);
        // Mobility-only comparison: disable the threshold shift.
        let mobility_only = TemperatureModel {
            vth_slope: 0.0,
            ..m
        };
        assert!(mobility_only.factor(0.88, 85.0) > base, "hotter ⇒ slower");
    }

    #[test]
    fn aging_monotonically_slows_the_core() {
        let m = AgingModel::default();
        let fresh = m.factor(1.1, 0.0);
        assert!((fresh - 1.0).abs() < 1e-12);
        let y1 = m.factor(1.1, 1.0);
        let y5 = m.factor(1.1, 5.0);
        let y10 = m.factor(1.1, 10.0);
        assert!(y1 > fresh && y5 > y1 && y10 > y5);
        // Aging bites harder at reduced voltage (smaller overdrive).
        let low_y5 = m.factor(0.88, 5.0) / m.factor(0.88, 0.0);
        let nom_y5 = y5 / fresh;
        assert!(
            low_y5 > nom_y5,
            "low-voltage aging penalty {low_y5} vs {nom_y5}"
        );
    }

    #[test]
    fn overclocking_maps_to_delay_inflation() {
        assert!((overclock_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((overclock_factor(0.10) - 1.0 / 0.9).abs() < 1e-12);
        assert!(overclock_factor(0.25) > overclock_factor(0.10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn silly_overclock_rejected() {
        overclock_factor(1.0);
    }
}
