//! The generated kernels are only trustworthy if they are (a) emitted
//! from the netlists this build actually ships and (b) byte-identical
//! to the interpreted `ArrivalKernel` on real operand traffic. Both are
//! asserted here against a freshly regenerated bank.
//!
//! Debug builds drive a reduced matrix (fewer units × lane widths ×
//! windows) to keep `cargo test -q` quick; release builds sweep every
//! unit at every supported width.

use std::sync::OnceLock;

use tei_fpu::{FpuBank, FpuTimingSpec, FpuUnit};
use tei_kernels::registry;
use tei_timing::interpreted_engine;

fn bank() -> &'static FpuBank {
    static BANK: OnceLock<FpuBank> = OnceLock::new();
    BANK.get_or_init(|| FpuBank::generate(&FpuTimingSpec::paper_calibrated()))
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Every registry entry must carry the fingerprint of the unit's
/// *current* compiled netlist — i.e. the shipped kernels were emitted
/// from exactly the circuits this build generates. A mismatch here
/// means the generated sources are stale relative to the datapath
/// builders or calibration.
#[test]
fn registry_is_fresh_for_regenerated_bank() {
    for unit in bank().iter() {
        let entry = registry()
            .entry_for_tag(unit.tag())
            .unwrap_or_else(|| panic!("no generated kernel registered for {}", unit.tag()));
        assert_eq!(
            entry.fingerprint,
            unit.dta_compiled().fingerprint(),
            "generated kernel for {} is stale (regenerate tei-kernels)",
            unit.tag()
        );
        assert!(registry().covers(unit));
    }
}

/// Drive the interpreted and generated engines through the same
/// operand windows and require bit-exact agreement at every
/// transition: every net's value and toggle flag, and the settle time
/// of every net the generated kernel exposes — which must include the
/// full result port, the set the campaign thresholds (internal nets
/// have their settle slots recycled by the emitter's liveness
/// compaction; see `tei_timing::codegen`).
fn assert_engines_match(unit: &FpuUnit, lanes: usize, windows: usize, seed: u64) {
    let compiled = unit.dta_compiled();
    let mut interp = interpreted_engine(compiled, lanes).expect("supported lane width");
    let mut gen = registry()
        .make_engine(unit, lanes)
        .unwrap_or_else(|| panic!("no fresh kernel for {} at W={lanes}", unit.tag()));
    assert_eq!(gen.lanes(), lanes);
    for &net in unit.result_port() {
        assert!(
            gen.settle_exposed(net),
            "{}: result-port net {} must stay exposed",
            unit.tag(),
            net.index()
        );
    }

    let width = unit.input_width();
    let vectors = interp.window_vectors();
    assert_eq!(vectors, gen.window_vectors());
    let mut rng = SplitMix(seed);
    let mut flat = vec![false; vectors * width];
    for _ in 0..windows {
        for v in 0..vectors {
            let (a, b) = (rng.next(), rng.next());
            unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
        }
        interp.load_window(&flat, vectors);
        gen.load_window(&flat, vectors);
        assert_eq!(interp.window_transitions(), gen.window_transitions());
        for t in 0..interp.window_transitions() {
            interp.select_transition(t);
            gen.select_transition(t);
            for net in 0..compiled.len() {
                let id = tei_netlist::NetId::from_index(net);
                assert_eq!(
                    interp.cur(id),
                    gen.cur(id),
                    "{} W={lanes} t={t} net {net}: value",
                    unit.tag()
                );
                assert_eq!(
                    interp.changed(id),
                    gen.changed(id),
                    "{} W={lanes} t={t} net {net}: toggle",
                    unit.tag()
                );
                if gen.settle_exposed(id) {
                    assert_eq!(
                        interp.settle_of(id).to_bits(),
                        gen.settle_of(id).to_bits(),
                        "{} W={lanes} t={t} net {net}: settle",
                        unit.tag()
                    );
                }
            }
        }
    }
}

#[test]
fn generated_kernels_match_interpreter_bit_exactly() {
    let (units, lane_widths, windows): (&[&str], &[usize], usize) = if cfg!(debug_assertions) {
        (&["fp-add-s", "i2f-s", "f2i-s"], &[1, 4], 1)
    } else {
        (
            &[
                "fp-add-s", "fp-add-d", "fp-sub-s", "fp-sub-d", "fp-mul-s", "fp-mul-d", "fp-div-s",
                "fp-div-d", "i2f-s", "i2f-d", "f2i-s", "f2i-d",
            ],
            &[1, 4, 8],
            2,
        )
    };
    for unit in bank().iter() {
        if !units.contains(&unit.tag()) {
            continue;
        }
        for (k, &lanes) in lane_widths.iter().enumerate() {
            assert_engines_match(unit, lanes, windows, 0xD7A5_0000 + k as u64);
        }
    }
}
