//! Phase-level timing probe for the generated kernels: times the
//! plane pass and the settle pass of the generated program, the
//! `DynProgram` control (same pass structure, interpreted loop, same
//! crate and opt-level), and the interpreted engine's full
//! `select_transition` walk, on the d-mul unit at W = 4 and W = 8.
//!
//! ```text
//! cargo run --release -p tei-kernels --example phase_timing
//! ```

use std::time::Instant;
use tei_fpu::{FpuBank, FpuTimingSpec, FpuUnit};
use tei_timing::{interpreted_engine, ArrivalEngine, DynProgram, SpecializedKernel};

fn drive(
    engine: &mut dyn ArrivalEngine,
    probe: tei_netlist::NetId,
    flat: &[bool],
    count: usize,
    windows: usize,
) -> f64 {
    // Phase split: windows/sec of the plane pass alone (load_window),
    // then the settle walk on a loaded window.
    let start = Instant::now();
    for _ in 0..windows {
        engine.load_window(flat, count);
        std::hint::black_box(engine.window_transitions());
    }
    let plane_secs = start.elapsed().as_secs_f64() / windows as f64;

    let start = Instant::now();
    let mut transitions = 0usize;
    for _ in 0..windows {
        engine.load_window(flat, count);
        for t in 0..engine.window_transitions() {
            engine.select_transition(t);
            std::hint::black_box(engine.settle_of(probe));
        }
        transitions += engine.window_transitions();
    }
    let rate = transitions as f64 / start.elapsed().as_secs_f64();
    println!("    plane pass: {:.1} ms/window", plane_secs * 1e3);
    rate
}

fn probe_width<const W: usize>(unit: &FpuUnit) {
    let compiled = unit.dta_compiled();
    let width = unit.input_width();
    let vectors = W * 64;

    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut flat = vec![false; vectors * width];
    for v in 0..vectors {
        let (a, b) = (rng(), rng());
        unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
    }

    let windows = 8;
    // Probe an output-port settle — the access the campaign makes and
    // the one every engine (including compacted plans) must expose.
    let probe = unit.result_port()[0];
    println!("== {} W={W} ==", unit.tag());
    let mut interp = interpreted_engine(compiled, W).expect("interp engine");
    let rate = drive(interp.as_mut(), probe, &flat, vectors, windows);
    println!("interp       full walk: {rate:>10.0} transitions/s");

    let mut dynk = SpecializedKernel::<_, W>::new(DynProgram::new(compiled));
    let rate = drive(&mut dynk, probe, &flat, vectors, windows);
    println!("dyn-full     full walk: {rate:>10.0} transitions/s");

    let keep: Vec<u32> = unit
        .result_port()
        .iter()
        .map(|n| n.index() as u32)
        .collect();
    let mut dync = SpecializedKernel::<_, W>::new(DynProgram::compacted(compiled, &keep));
    println!(
        "    compacted slots: {} of {} dense",
        dync.program().plan().slot_count,
        compiled.len() + 1
    );
    let rate = drive(&mut dync, probe, &flat, vectors, windows);
    println!("dyn-compact  full walk: {rate:>10.0} transitions/s");

    let mut genk = tei_kernels::registry()
        .make_engine(unit, W)
        .expect("generated engine");
    let rate = drive(genk.as_mut(), probe, &flat, vectors, windows);
    println!("generated    full walk: {rate:>10.0} transitions/s");
}

fn main() {
    let bank = FpuBank::generate(&FpuTimingSpec::paper_calibrated());
    let unit = bank
        .iter()
        .find(|u| u.tag() == "fp-mul-d")
        .expect("d-mul unit");
    probe_width::<4>(unit);
    probe_width::<8>(unit);
}
