//! # tei-kernels
//!
//! Netlist-specialized arrival kernels for the shipped FPU bank.
//!
//! The build script regenerates the bank from `tei-fpu`, runs the
//! `tei_timing::codegen` emitter over each unit's compiled DTA netlist,
//! and compiles the result into this crate: one module per unit
//! (`fp_add_d`, `fp_mul_s`, …) holding a table-compiled [`Program`] —
//! opcode/pin/delay tables baked into static data, with the settle
//! pass slot-allocated at emission time so internal nets recycle
//! scratch storage and only the unit's observable outputs keep
//! dedicated slots (see `tei_timing::codegen` for the design and the
//! measured case against straight-line unrolling).
//!
//! Consumers never name the generated modules directly — they go
//! through [`registry()`], which returns a fingerprint-checked
//! [`KernelRegistry`]: a kernel is only handed out when the structural
//! fingerprint of the unit's *current* compiled netlist matches the one
//! the kernel was emitted from, so stale kernels degrade to the
//! interpreted fallback instead of computing against the wrong circuit.
//!
//! [`Program`]: tei_timing::NetlistProgram

use std::sync::OnceLock;

use tei_fpu::KernelRegistry;
use tei_timing::{ArrivalEngine, NetlistProgram, SpecializedKernel};

include!(concat!(env!("OUT_DIR"), "/registry.rs"));

/// Boxed specialized engine over program `P` at `lanes` lane words —
/// the `make` constructor every generated registry entry points at.
/// Returns `None` for lane widths the kernel surface does not support
/// (anything outside {1, 4, 8}).
pub fn specialized_engine<P: NetlistProgram + Default + 'static>(
    lanes: usize,
) -> Option<Box<dyn ArrivalEngine>> {
    match lanes {
        1 => Some(Box::new(SpecializedKernel::<P, 1>::new(P::default()))),
        4 => Some(Box::new(SpecializedKernel::<P, 4>::new(P::default()))),
        8 => Some(Box::new(SpecializedKernel::<P, 8>::new(P::default()))),
        _ => None,
    }
}

/// The process-wide registry of generated kernels, one entry per
/// shipped FPU unit, built on first use.
pub fn registry() -> &'static KernelRegistry {
    static REGISTRY: OnceLock<KernelRegistry> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_one_entry_per_unit_with_unique_tags() {
        let reg = registry();
        let entries = reg.entries();
        assert_eq!(entries.len(), 12, "twelve shipped FPU units");
        for (i, e) in entries.iter().enumerate() {
            assert!(
                entries[..i].iter().all(|prev| prev.tag != e.tag),
                "duplicate registry tag {}",
                e.tag
            );
        }
    }

    #[test]
    fn every_entry_constructs_supported_widths_only() {
        for e in registry().entries() {
            for lanes in [1usize, 4, 8] {
                let engine = (e.make)(lanes).expect("supported lane width");
                assert_eq!(engine.lanes(), lanes);
                assert_eq!(engine.name(), "codegen");
            }
            assert!((e.make)(2).is_none());
            assert!((e.make)(0).is_none());
        }
    }
}
