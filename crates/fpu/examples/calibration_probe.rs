//! Calibration probe: per-unit error ratios of the double-precision FPU
//! datapaths under a synthetic workload mixture — the tool used to tune
//! `FpuTimingSpec::paper_calibrated` (run with `--release`).
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind};
use tei_timing::{ArrivalSim, TwoVectorResult, VoltageReduction};

fn main() {
    let spec = FpuTimingSpec::paper_calibrated();
    let k15 = VoltageReduction::VR15.derating_factor();
    let k20 = VoltageReduction::VR20.derating_factor();
    let clk = 4.5;
    let mut rng = StdRng::seed_from_u64(1);
    for op in FpOp::all().into_iter().take(6) {
        let unit = FpuUnit::generate(op, &spec);
        let dta = unit.dta_netlist();
        let n = 3000;
        // Workload-like mixture: mostly full-width values, some narrow.
        let mk = |rng: &mut StdRng| -> u64 {
            let widths = [0u32, 4, 13, 26, 52, 52, 52, 52];
            let w = widths[rng.gen_range(0..widths.len())];
            let s = (rng.gen::<bool>() as u64) << 63;
            let e = rng.gen_range(950u64..1150) << 52;
            let f = if w == 0 {
                0
            } else {
                ((rng.gen::<u64>() | (1 << 63)) >> (64 - w)) << (52 - w)
            };
            s | e | (f & ((1 << 52) - 1))
        };
        let is_i2f = op.kind == FpOpKind::ItoF;
        let gen = |rng: &mut StdRng| if is_i2f { rng.gen::<u64>() } else { mk(rng) };
        // Pair generator with occasional near-equal operands, as stencil and
        // reduction kernels produce.
        let pair = |rng: &mut StdRng| -> (u64, u64) {
            let a = gen(rng);
            let b = if !is_i2f && rng.gen_ratio(1, 8) {
                // Near-equal magnitude, either sign: stencil differences and
                // mixed-sign accumulations.
                let sign = (rng.gen::<bool>() as u64) << 63;
                (a ^ rng.gen_range(1u64..64)) ^ sign
            } else {
                mk(rng)
            };
            (a, b)
        };
        let (a0, b0) = pair(&mut rng);
        let mut prev = unit.encode_inputs(a0, b0);
        let mut buf = TwoVectorResult::default();
        let (mut e0, mut e15, mut e20) = (0, 0, 0);
        let mut smax = 0.0f64;
        for _ in 0..n {
            let (a, b) = pair(&mut rng);
            let cur = unit.encode_inputs(a, b);
            ArrivalSim::run_into(&dta, &prev, &cur, &mut buf);
            let s = buf.max_settle(unit.result_port());
            smax = smax.max(s);
            if s > clk {
                e0 += 1;
            }
            if s * k15 > clk {
                e15 += 1;
            }
            if s * k20 > clk {
                e20 += 1;
            }
            prev = cur;
        }
        println!(
            "{:12} gamma {:.2} target {:.2} dynmax {:.2}  ER_nom {:.4} ER15 {:.4} ER20 {:.4}",
            op.to_string(),
            unit.gamma(),
            spec.target(op),
            smax,
            e0 as f64 / n as f64,
            e15 as f64 / n as f64,
            e20 as f64 / n as f64
        );
    }
}
