//! Gate-level floating-point divider datapath (non-restoring mantissa
//! divider array with preloaded partial remainder).

use crate::common::{
    add_const, classify, cond_increment, priority_mux, round_pack_block, special_consts, sub_wide,
};
use tei_netlist::Netlist;
use tei_softfloat::Format;

/// Build a divider datapath into `nl`.
///
/// Ports: `{tag}/a` (dividend), `{tag}/b` (divisor) → `{tag}/result`.
pub fn build_div(nl: &mut Netlist, fmt: Format, tag: &str) {
    let w = fmt.width() as usize;
    let f = fmt.frac_bits as usize;
    let a = nl.add_input_bus(&format!("{tag}/a"), w);
    let b = nl.add_input_bus(&format!("{tag}/b"), w);

    nl.begin_block(&format!("{tag}/s1-classify"));
    let ca = classify(nl, &a, fmt);
    let cb = classify(nl, &b, fmt);
    let sign = nl.xor(ca.sign, cb.sign);

    nl.begin_block(&format!("{tag}/s2-mantissa-div"));
    // Quotient of sig_a · 2^(f+4) / sig_b, using a preloaded remainder:
    // high = sig_a >> 1 (< 2^f ≤ sig_b), low streams sig_a[0] then f+4 zeros.
    let zero = nl.const_bit(false);
    let high: Vec<_> = ca.sig[1..].to_vec();
    let mut low = vec![zero; f + 4];
    low.push(ca.sig[0]); // low value = sig_a[0] << (f+4)
    let (q, rem) = nl.nonrestoring_divider_preloaded(&high, &low, &cb.sig);
    debug_assert_eq!(q.len(), f + 5);
    let r_nonzero = nl.or_reduce(&rem);

    nl.begin_block(&format!("{tag}/s3-normalize"));
    let c = q[f + 4]; // quotient in [1, 2) when set, else [1/2, 1)
    let mut opt_hi: Vec<_> = q[1..f + 5].to_vec();
    opt_hi[0] = nl.or(opt_hi[0], q[0]);
    let opt_lo: Vec<_> = q[..f + 4].to_vec();
    let mut mant_grs = nl.mux_bus(c, &opt_lo, &opt_hi);
    mant_grs[0] = nl.or(mant_grs[0], r_nonzero);
    let ediff = sub_wide(nl, &ca.exp, &cb.exp);
    let ebase = add_const(nl, &ediff, fmt.bias() as i64 - 1);
    let (exp13, _) = cond_increment(nl, &ebase, c);

    nl.begin_block(&format!("{tag}/s4-round"));
    let rounded = round_pack_block(nl, fmt, sign, &exp13, &mant_grs);

    nl.begin_block(&format!("{tag}/s5-pack"));
    let consts = special_consts(nl, fmt);
    let inf_inf = nl.and(ca.is_inf, cb.is_inf);
    let zero_zero = nl.and(ca.is_zero, cb.is_zero);
    let bad = nl.or(inf_inf, zero_zero);
    let some_nan = nl.or(ca.is_nan, cb.is_nan);
    let nan_sel = nl.or(some_nan, bad);
    let mut inf_res = consts.inf_mag.clone();
    inf_res.push(sign);
    let mut zero_res = vec![zero; w - 1];
    zero_res.push(sign);
    let zero_sel = nl.or(ca.is_zero, cb.is_inf); // 0/x or x/inf
    let result = priority_mux(
        nl,
        &rounded.packed,
        &[
            (nan_sel, &consts.qnan),
            (ca.is_inf, &inf_res), // inf / finite
            (zero_sel, &zero_res),
            (cb.is_zero, &inf_res), // finite nonzero / 0
        ],
    );
    nl.mark_output_bus(&format!("{tag}/result"), &result);
}
