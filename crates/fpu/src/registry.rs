//! Per-unit registry of netlist-specialized arrival kernels.
//!
//! The `tei-kernels` crate emits one straight-line kernel per shipped
//! FPU unit at build time (see `tei_timing::codegen`) and registers a
//! constructor for each here. The registry lives in this crate — not in
//! the generated-kernels crate — because generation *build-depends* on
//! `tei-fpu` (the build script regenerates the bank to emit from), so
//! the type the generated table populates must sit below it in the
//! crate graph.
//!
//! Lookup is fingerprint-checked: an entry only matches when both the
//! unit tag and the structural fingerprint of the unit's compiled DTA
//! netlist agree with what the kernel was emitted from. A stale kernel
//! (datapath builder changed, delays recalibrated, γ shifted) therefore
//! never silently computes against the wrong circuit — callers fall
//! back to the interpreted kernel, and the CI staleness check turns the
//! mismatch into a hard failure.

use crate::FpuUnit;
use tei_timing::ArrivalEngine;

/// One generated kernel: its unit tag, the fingerprint of the compiled
/// netlist it was emitted from, and a constructor producing a boxed
/// engine at a requested lane width (1, 4, or 8; `None` for widths the
/// kernel was not instantiated at).
pub struct KernelEntry {
    /// Unit tag the kernel was generated for (e.g. `fp-mul-d`).
    pub tag: &'static str,
    /// [`CompiledNetlist::fingerprint`](tei_timing::CompiledNetlist::fingerprint)
    /// of the netlist the kernel was emitted from.
    pub fingerprint: u64,
    /// Build an engine at the given lane width.
    pub make: fn(usize) -> Option<Box<dyn ArrivalEngine>>,
}

/// The set of generated kernels shipped with a build, queried by the
/// campaign dispatch in `tei-core` and the `tei codegen` CLI checks.
#[derive(Default)]
pub struct KernelRegistry {
    entries: Vec<KernelEntry>,
}

impl KernelRegistry {
    /// A registry over `entries`.
    pub fn new(entries: Vec<KernelEntry>) -> Self {
        KernelRegistry { entries }
    }

    /// All registered kernels.
    pub fn entries(&self) -> &[KernelEntry] {
        &self.entries
    }

    /// The entry generated for `tag`, regardless of freshness — used by
    /// staleness checks that want to *report* a fingerprint mismatch.
    pub fn entry_for_tag(&self, tag: &str) -> Option<&KernelEntry> {
        self.entries.iter().find(|e| e.tag == tag)
    }

    /// The entry matching both `tag` and `fingerprint`, i.e. a kernel
    /// provably emitted from that exact compiled netlist.
    pub fn lookup(&self, tag: &str, fingerprint: u64) -> Option<&KernelEntry> {
        self.entries
            .iter()
            .find(|e| e.tag == tag && e.fingerprint == fingerprint)
    }

    /// A generated engine for `unit` at `lanes` lane words, or `None`
    /// when no fresh kernel exists (unknown tag, stale fingerprint, or
    /// unsupported width) — the caller's cue to fall back to the
    /// interpreter.
    pub fn make_engine(&self, unit: &FpuUnit, lanes: usize) -> Option<Box<dyn ArrivalEngine>> {
        let entry = self.lookup(unit.tag(), unit.dta_compiled().fingerprint())?;
        (entry.make)(lanes)
    }

    /// Whether a fresh generated kernel exists for `unit`.
    pub fn covers(&self, unit: &FpuUnit) -> bool {
        self.lookup(unit.tag(), unit.dta_compiled().fingerprint())
            .is_some()
    }
}
