//! # tei-fpu
//!
//! Gate-level IEEE-754 FPU datapath generators with calibrated,
//! post-place-and-route-style timing.
//!
//! This crate substitutes the marocchino OpenRISC FPU netlist of the paper:
//! for each of the twelve modeled operations (add/sub/mul/div/I2F/F2I ×
//! single/double) it generates a complete combinational datapath out of
//! `tei-netlist` primitives — classification, alignment, mantissa
//! arithmetic, LZC normalization, round-to-nearest-even, and special-case
//! selection — organized into the six stage blocks of the paper's Figure 3.
//!
//! Every datapath is functionally bit-exact against `tei-softfloat` in
//! flush-to-zero mode (enforced by this crate's tests), and each netlist's
//! static critical path is calibrated to a published-corner target delay
//! ([`FpuTimingSpec`]), so dynamic timing analysis over these circuits
//! reproduces the paper's per-instruction criticality ordering.
//!
//! ## Example
//!
//! ```
//! use tei_fpu::{FpuTimingSpec, FpuUnit};
//! use tei_softfloat::{FpOp, FpOpKind, Precision};
//!
//! let spec = FpuTimingSpec::paper_calibrated();
//! let unit = FpuUnit::generate(FpOp::new(FpOpKind::Mul, Precision::Double), &spec);
//! let r = unit.eval_bits(2.5f64.to_bits(), 4.0f64.to_bits());
//! assert_eq!(f64::from_bits(r), 10.0);
//! ```

mod addsub;
mod common;
mod core_blocks;
mod cvt;
mod div;
mod mul;
mod registry;
mod unit;

pub use core_blocks::{whole_core, AGEN_TARGET, ALU_TARGET, BRANCH_TARGET, DECODE_TARGET};
pub use registry::{KernelEntry, KernelRegistry};
pub use unit::{build_datapath, short_tag, FpuBank, FpuTimingSpec, FpuUnit};
