//! FPU unit generation and post-P&R-style delay calibration.

use crate::{addsub, cvt, div, mul};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use tei_netlist::{CellLibrary, NetId, Netlist};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{CompiledNetlist, Sta};

/// Calibration targets: the nominal critical delay of each FPU datapath,
/// in nanoseconds, plus the core clock period.
///
/// The defaults reproduce the paper's published corner: 4.5 ns minimum
/// clock; only double-precision arithmetic paths are near-critical, ordered
/// `mul > sub > div ≈ add`, with conversions and all single-precision paths
/// short enough to stay safe at both studied voltage-reduction levels
/// (Figure 4 / Figure 7 structure). Each generated netlist is scaled so its
/// static critical path matches its target exactly — the substitution for
/// the NanGate 45 nm post-place-and-route data we do not have (DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpuTimingSpec {
    /// Clock period in nanoseconds (the paper's 4.5 ns).
    pub clk: f64,
    targets: [f64; 12],
}

impl FpuTimingSpec {
    /// The paper-calibrated defaults described above.
    pub fn paper_calibrated() -> Self {
        let mut targets = [0.0; 12];
        let set = |targets: &mut [f64; 12], kind, precision, v| {
            targets[FpOp::new(kind, precision).index()] = v;
        };
        use FpOpKind::*;
        use Precision::*;
        set(&mut targets, Add, Double, 3.35);
        set(&mut targets, Sub, Double, 4.10);
        set(&mut targets, Mul, Double, 4.40);
        set(&mut targets, Div, Double, 3.30);
        set(&mut targets, ItoF, Double, 2.40);
        set(&mut targets, FtoI, Double, 2.30);
        set(&mut targets, Add, Single, 2.45);
        set(&mut targets, Sub, Single, 2.50);
        set(&mut targets, Mul, Single, 2.65);
        set(&mut targets, Div, Single, 2.55);
        set(&mut targets, ItoF, Single, 1.90);
        set(&mut targets, FtoI, Single, 1.85);
        FpuTimingSpec { clk: 4.5, targets }
    }

    /// Critical-delay target for `op` in nanoseconds.
    pub fn target(&self, op: FpOp) -> f64 {
        self.targets[op.index()]
    }

    /// Override the target for `op`.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not finite and positive.
    pub fn set_target(&mut self, op: FpOp, ns: f64) {
        assert!(ns.is_finite() && ns > 0.0, "invalid target {ns}");
        self.targets[op.index()] = ns;
    }
}

impl Default for FpuTimingSpec {
    fn default() -> Self {
        FpuTimingSpec::paper_calibrated()
    }
}

/// A filesystem-safe short tag for an operation, used in port and block
/// names: `fp-mul-d`, `i2f-s`, ...
pub fn short_tag(op: FpOp) -> String {
    let p = match op.precision {
        Precision::Single => "s",
        Precision::Double => "d",
    };
    match op.kind {
        FpOpKind::Add => format!("fp-add-{p}"),
        FpOpKind::Sub => format!("fp-sub-{p}"),
        FpOpKind::Mul => format!("fp-mul-{p}"),
        FpOpKind::Div => format!("fp-div-{p}"),
        FpOpKind::ItoF => format!("i2f-{p}"),
        FpOpKind::FtoI => format!("f2i-{p}"),
    }
}

/// Build the datapath for `op` into `nl` under the given `tag` (creates
/// ports `{tag}/a`, optionally `{tag}/b`, and `{tag}/result`).
pub fn build_datapath(nl: &mut Netlist, op: FpOp, tag: &str) {
    let fmt = op.format();
    match op.kind {
        FpOpKind::Add => addsub::build_addsub(nl, fmt, false, tag),
        FpOpKind::Sub => addsub::build_addsub(nl, fmt, true, tag),
        FpOpKind::Mul => mul::build_mul(nl, fmt, tag),
        FpOpKind::Div => div::build_div(nl, fmt, tag),
        FpOpKind::ItoF => cvt::build_i2f(nl, op.precision, tag),
        FpOpKind::FtoI => cvt::build_f2i(nl, op.precision, tag),
    }
}

/// One generated, delay-calibrated FPU unit.
///
/// Two calibrations are applied (see DESIGN.md):
///
/// 1. **Static** — every gate delay is scaled so the netlist's STA critical
///    path equals the published target for this operation. This is what the
///    whole-core Figure 4 census sees.
/// 2. **Dynamic** — the glitch-free arrival engine under-sensitizes paths
///    relative to glitch-accurate gate-level simulation, so a per-unit
///    correction factor γ = target / (observed dynamic settle maximum ×
///    margin) is derived from a fixed reference operand ensemble. The
///    DTA-facing netlist ([`FpuUnit::dta_netlist`]) carries delays × γ, which
///    places the dynamically excited tail at the published corner while the
///    exponential carry-run tail of the ripple structures supplies the
///    paper's thin error-rate tails.
#[derive(Debug, Clone)]
pub struct FpuUnit {
    op: FpOp,
    tag: String,
    netlist: Netlist,
    gamma: f64,
    a_width: usize,
    b_width: usize,
    /// Lazily compiled γ-scaled DTA netlist, shared by every campaign
    /// touching this unit (cloning the unit restarts the cache).
    dta_compiled: OnceLock<CompiledNetlist>,
}

/// Safety margin keeping workload operands that settle slightly later than
/// the reference ensemble free of errors at the nominal voltage.
const GAMMA_MARGIN: f64 = 1.05;

/// Number of operand pairs in the γ-calibration reference ensemble.
/// Debug builds use a reduced ensemble to keep test turnaround fast; the
/// released (optimized) calibration is the 1024-pair ensemble.
const GAMMA_SAMPLES: usize = if cfg!(debug_assertions) { 128 } else { 1024 };

impl FpuUnit {
    /// Generate and calibrate the unit for `op`.
    pub fn generate(op: FpOp, spec: &FpuTimingSpec) -> Self {
        let tag = short_tag(op);
        let mut nl = Netlist::new(&tag, CellLibrary::nangate45_like());
        build_datapath(&mut nl, op, &tag);
        // Static calibration: pin the STA critical delay to the target.
        let sta = Sta::analyze(&nl);
        let max = sta.max_delay();
        assert!(max > 0.0, "degenerate datapath for {op}");
        nl.scale_all_delays(spec.target(op) / max);
        // Sweep logic outside the result cone, as synthesis would before
        // handoff. The sweep preserves the output cone (and so every
        // downstream timing result) exactly; it runs after the static
        // calibration so the scale factor is still derived from the
        // as-built datapath.
        let nl = nl.sweep_dead();
        let a_width = nl.input_port(&format!("{tag}/a")).expect("a port").len();
        let b_width = nl.input_port(&format!("{tag}/b")).map_or(0, <[NetId]>::len);
        let mut unit = FpuUnit {
            op,
            tag,
            netlist: nl,
            gamma: 1.0,
            a_width,
            b_width,
            dta_compiled: OnceLock::new(),
        };
        // Dynamic calibration: measure the arrival-engine settle maximum on
        // the reference ensemble and derive γ.
        let dyn_max = unit.reference_dynamic_max();
        assert!(dyn_max > 0.0, "no dynamic activity for {op}");
        unit.gamma = spec.target(op) / (dyn_max * GAMMA_MARGIN);
        unit
    }

    /// Maximum output settle time over the fixed reference ensemble.
    fn reference_dynamic_max(&self) -> f64 {
        use tei_timing::ArrivalKernel;
        let mut rng = SplitMix::new(0x5eed_0000 + self.op.index() as u64);
        let compiled = CompiledNetlist::compile(&self.netlist);
        let mut kernel = ArrivalKernel::new();
        let port = self.result_port().to_vec();
        let mut cur = vec![false; self.input_width()];
        let (a, b) = reference_pair(&mut rng, self.op);
        self.encode_inputs_into(a, b, &mut cur);
        kernel.reset(&compiled, &cur);
        let mut max = 0.0f64;
        for _ in 0..GAMMA_SAMPLES {
            let (a, b) = reference_pair(&mut rng, self.op);
            self.encode_inputs_into(a, b, &mut cur);
            kernel.advance(&compiled, &cur);
            max = max.max(kernel.max_settle(&port));
        }
        max
    }

    /// The dynamic sensitization correction factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// A copy of the netlist with delays scaled by γ — the netlist dynamic
    /// timing analysis should run on.
    pub fn dta_netlist(&self) -> Netlist {
        let mut nl = self.netlist.clone();
        nl.scale_all_delays(self.gamma);
        nl
    }

    /// The γ-scaled DTA netlist in compiled (structure-of-arrays) form,
    /// built on first use and cached for the lifetime of the unit.
    pub fn dta_compiled(&self) -> &CompiledNetlist {
        self.dta_compiled
            .get_or_init(|| CompiledNetlist::compile(&self.dta_netlist()))
    }

    /// The modeled operation.
    pub fn op(&self) -> FpOp {
        self.op
    }

    /// The unit's port/block tag.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The calibrated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the unit, returning the netlist (e.g. to build a
    /// [`DtaEngine`](tei_timing::DtaEngine)).
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The result port nets.
    pub fn result_port(&self) -> &[NetId] {
        self.netlist
            .output_port(&format!("{}/result", self.tag))
            .expect("result port")
    }

    /// Result width in bits.
    pub fn result_width(&self) -> usize {
        self.result_port().len()
    }

    /// Primary-input vector width (`a` bits followed by `b` bits).
    pub fn input_width(&self) -> usize {
        self.a_width + self.b_width
    }

    /// Encode raw operand bits into the netlist's primary-input vector.
    /// Unary operations ignore `b`.
    pub fn encode_inputs(&self, a: u64, b: u64) -> Vec<bool> {
        let mut bits = vec![false; self.input_width()];
        self.encode_inputs_into(a, b, &mut bits);
        bits
    }

    /// Allocation-free [`encode_inputs`](FpuUnit::encode_inputs): write
    /// the encoding into `out`, which must be
    /// [`input_width`](FpuUnit::input_width) long.
    ///
    /// # Panics
    ///
    /// Panics when `out` has the wrong length.
    pub fn encode_inputs_into(&self, a: u64, b: u64, out: &mut [bool]) {
        assert_eq!(out.len(), self.input_width(), "encode buffer width");
        for (i, slot) in out[..self.a_width].iter_mut().enumerate() {
            *slot = (a >> i) & 1 == 1;
        }
        for (i, slot) in out[self.a_width..].iter_mut().enumerate() {
            *slot = (b >> i) & 1 == 1;
        }
    }

    /// Functionally evaluate the unit (no timing).
    pub fn eval_bits(&self, a: u64, b: u64) -> u64 {
        let values = self.netlist.eval(&self.encode_inputs(a, b));
        let port = self.result_port();
        tei_netlist::bus_value_u64(&values, port)
    }
}

/// Minimal deterministic RNG (SplitMix64) so unit generation needs no
/// external randomness and is reproducible across builds.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// One operand of the γ-calibration reference ensemble: a mix of
/// significant-mantissa widths and exponents representative of numeric
/// workloads (narrow "round" values through full-width irrationals).
fn reference_operand(rng: &mut SplitMix, op: FpOp) -> u64 {
    if op.kind == FpOpKind::ItoF {
        // Mixed-magnitude integers.
        let bits = rng.range(1, op.precision.int_bits() as u64 + 1);
        let raw = rng.next() >> (64 - bits);
        let v = if rng.next() & 1 == 1 {
            (raw as i64).wrapping_neg()
        } else {
            raw as i64
        };
        match op.precision {
            Precision::Double => v as u64,
            Precision::Single => (v as i32) as u32 as u64,
        }
    } else {
        let fmt = op.format();
        let f = fmt.frac_bits as u64;
        let widths = [0, 2, 4, 8, f / 4, f / 2, 3 * f / 4, f, f, f];
        let w = widths[rng.range(0, widths.len() as u64) as usize].min(f);
        let frac = if w == 0 {
            0
        } else {
            ((rng.next() | (1 << 63)) >> (64 - w)) << (f - w)
        };
        let e_lo = (fmt.bias() as u64).saturating_sub(120).max(1);
        let e_hi = fmt.bias() as u64 + 120;
        let exp = rng.range(e_lo, e_hi);
        let sign = rng.next() & 1;
        (sign << (fmt.width() - 1)) | (exp << f) | (frac & ((1u64 << f) - 1))
    }
}

/// One operand pair of the calibration ensemble. Most pairs are
/// independent mixed-width values; a fraction are adversarial
/// (near-cancellation and matched-exponent pairs) so the ensemble reaches
/// the deep normalization and carry paths that rare workload data excites.
fn reference_pair(rng: &mut SplitMix, op: FpOp) -> (u64, u64) {
    let a = reference_operand(rng, op);
    if op.kind == FpOpKind::ItoF || op.kind == FpOpKind::FtoI {
        return (a, 0);
    }
    let fmt = op.format();
    let f = fmt.frac_bits as u64;
    let b = match rng.range(0, 8) {
        // Near-cancellation: same magnitude, a few low bits perturbed,
        // both sign agreements.
        0 => (a ^ rng.range(1, 16)) ^ (1u64 << (fmt.width() - 1)),
        1 => a ^ rng.range(1, 16),
        // Matched exponent, independent mantissa (long alignment-free adds).
        2 => {
            let other = reference_operand(rng, op);
            (other & !(((1u64 << fmt.exp_bits) - 1) << f))
                | (a & (((1u64 << fmt.exp_bits) - 1) << f))
        }
        _ => reference_operand(rng, op),
    };
    (a, b)
}

/// All twelve generated units, indexable by [`FpOp::index`].
#[derive(Debug, Clone)]
pub struct FpuBank {
    units: Vec<FpuUnit>,
}

impl FpuBank {
    /// Generate all twelve units under `spec`.
    pub fn generate(spec: &FpuTimingSpec) -> Self {
        FpuBank {
            units: FpOp::all()
                .into_iter()
                .map(|op| FpuUnit::generate(op, spec))
                .collect(),
        }
    }

    /// The unit implementing `op`.
    pub fn unit(&self, op: FpOp) -> &FpuUnit {
        &self.units[op.index()]
    }

    /// Iterate over all units.
    pub fn iter(&self) -> impl Iterator<Item = &FpuUnit> {
        self.units.iter()
    }
}
