//! Gate-level floating-point adder/subtracter datapath.
//!
//! Mirrors the six-stage organization of the paper's Figure 3: operand
//! classification and pre-normalization, exponent compare and alignment
//! (with sticky collection), mantissa add/subtract, leading-zero-count
//! normalization, rounding, and packing with special-case selection.

use crate::common::{
    add_const, classify, priority_mux, round_pack_block, special_consts, sub_wide,
};
use tei_netlist::Netlist;
use tei_softfloat::Format;

/// Build an add (or, with `is_sub`, subtract) datapath into `nl`.
///
/// Creates input ports `{tag}/a`, `{tag}/b` and output port `{tag}/result`,
/// all `fmt.width()` bits. Gates are attributed to stage blocks named
/// `{tag}/s1-prenorm` … `{tag}/s6-pack`.
pub fn build_addsub(nl: &mut Netlist, fmt: Format, is_sub: bool, tag: &str) {
    let w = fmt.width() as usize;
    let f = fmt.frac_bits as usize;
    let a = nl.add_input_bus(&format!("{tag}/a"), w);
    let b = nl.add_input_bus(&format!("{tag}/b"), w);

    // Stage 1: classification / pre-normalization (paper: OCB + Pre-Normalize).
    nl.begin_block(&format!("{tag}/s1-prenorm"));
    let ca = classify(nl, &a, fmt);
    let cb = classify(nl, &b, fmt);
    let sb_eff = if is_sub {
        nl.not(cb.sign)
    } else {
        nl.buf(cb.sign)
    };
    let eff_sub = nl.xor(ca.sign, sb_eff);

    // Stage 2: magnitude compare and alignment shift.
    nl.begin_block(&format!("{tag}/s2-align"));
    // FTZ-flushed magnitude compare: (exp, gated frac) as one integer.
    let mut mag_a = ca.sig[..f].to_vec();
    mag_a.extend_from_slice(&ca.exp);
    let mut mag_b = cb.sig[..f].to_vec();
    mag_b.extend_from_slice(&cb.exp);
    let b_gt_a = nl.ult(&mag_a, &mag_b);
    let a_ge_b = nl.not(b_gt_a);

    let sign_big = nl.mux(a_ge_b, sb_eff, ca.sign);
    let sign_small = nl.mux(a_ge_b, ca.sign, sb_eff);
    let exp_big = nl.mux_bus(a_ge_b, &cb.exp, &ca.exp);
    let exp_small = nl.mux_bus(a_ge_b, &ca.exp, &cb.exp);
    let sig_big = nl.mux_bus(a_ge_b, &cb.sig, &ca.sig);
    let sig_small = nl.mux_bus(a_ge_b, &ca.sig, &cb.sig);
    let _ = sign_small;

    let ediff = sub_wide(nl, &exp_big, &exp_small); // non-negative
    let zero = nl.const_bit(false);
    let mut small_grs = vec![zero; 3];
    small_grs.extend_from_slice(&sig_small); // f+4 bits
    let (mut aligned, sticky) = nl.barrel_shift_right_sticky(&small_grs, &ediff[..6], zero);
    // Shift amounts ≥ 64 flush the whole operand into the sticky bit.
    let far = nl.or_reduce(&ediff[6..crate::common::EXPW - 1]);
    let all_sticky = nl.or_reduce(&small_grs);
    let far_sticky = nl.and(far, all_sticky);
    let zero_bus = vec![zero; aligned.len()];
    aligned = nl.mux_bus(far, &aligned, &zero_bus);
    let sticky = nl.or(sticky, far_sticky);
    aligned[0] = nl.or(aligned[0], sticky);

    // Stage 3: mantissa addition / subtraction.
    nl.begin_block(&format!("{tag}/s3-addsub"));
    let mut big_grs = vec![zero; 3];
    big_grs.extend_from_slice(&sig_big); // f+4 bits
    let op2 = nl.xor_bit_bus(&aligned, eff_sub);
    let (sum, cout) = nl.ripple_add(&big_grs, &op2, eff_sub);
    let eff_add = nl.not(eff_sub);
    let carry = nl.and(cout, eff_add);
    let mut sum5 = sum;
    sum5.push(carry); // f+5 bits

    // Stage 4: normalization (LZC + left shift).
    nl.begin_block(&format!("{tag}/s4-normalize"));
    let z = nl.leading_zero_count(&sum5);
    let shifted = nl.barrel_shift_left(&sum5, &z[..6.min(z.len())]);
    let mut mant_grs = shifted[1..].to_vec(); // f+4 bits
    mant_grs[0] = nl.or(mant_grs[0], shifted[0]);
    let e_plus1 = add_const(nl, &exp_big, 1);
    let exp13 = sub_wide(nl, &e_plus1, &z);
    let sum_zero = nl.is_zero(&sum5);

    // Stages 5–6: round, pack, and special-case selection.
    nl.begin_block(&format!("{tag}/s5-round"));
    let rounded = round_pack_block(nl, fmt, sign_big, &exp13, &mant_grs);

    nl.begin_block(&format!("{tag}/s6-pack"));
    let consts = special_consts(nl, fmt);
    let inf_inf = nl.and(ca.is_inf, cb.is_inf);
    let opposite = nl.xor(ca.sign, sb_eff);
    let inf_minus_inf = nl.and(inf_inf, opposite);
    let some_nan = nl.or(ca.is_nan, cb.is_nan);
    let nan_sel = nl.or(some_nan, inf_minus_inf);
    let mut inf_a = consts.inf_mag.clone();
    inf_a.push(ca.sign);
    let mut inf_b = consts.inf_mag.clone();
    inf_b.push(sb_eff);
    // Exact cancellation yields +0; 0 + 0 keeps -0 only when both are -0.
    let both_zero = nl.and(ca.is_zero, cb.is_zero);
    let sign_z = nl.and3(both_zero, ca.sign, sb_eff);
    let mut zero_res = vec![zero; w - 1];
    zero_res.push(sign_z);
    let result = priority_mux(
        nl,
        &rounded.packed,
        &[
            (nan_sel, &consts.qnan),
            (ca.is_inf, &inf_a),
            (cb.is_inf, &inf_b),
            (sum_zero, &zero_res),
        ],
    );
    nl.mark_output_bus(&format!("{tag}/result"), &result);
}
