//! Gate-level integer ↔ floating-point conversion datapaths.

use crate::common::{
    classify, priority_mux, round_pack_block, special_consts, sub_wide, zext, EXPW,
};
use tei_netlist::Netlist;
use tei_softfloat::Precision;

/// Build a signed-integer → float datapath into `nl`.
///
/// Port `{tag}/a` is the integer operand (`precision.int_bits()` bits,
/// two's complement); `{tag}/result` is the packed float.
pub fn build_i2f(nl: &mut Netlist, precision: Precision, tag: &str) {
    let fmt = precision.format();
    let wi = precision.int_bits() as usize;
    let w = fmt.width() as usize;
    let f = fmt.frac_bits as usize;
    let a = nl.add_input_bus(&format!("{tag}/a"), wi);

    nl.begin_block(&format!("{tag}/s1-absolute"));
    let sign = a[wi - 1];
    let neg = nl.negate(&a);
    let mag = nl.mux_bus(sign, &a, &neg);
    let is_zero = nl.is_zero(&a);

    nl.begin_block(&format!("{tag}/s2-normalize"));
    let z = nl.leading_zero_count(&mag);
    let shifted = nl.barrel_shift_left(&mag, &z[..6.min(z.len())]);
    // Top f+4 bits become mantissa+GRS; the rest fold into sticky.
    let cut = wi - (f + 4); // 8 for i64→f64, 5 for i32→f32
    let mut mant_grs: Vec<_> = shifted[cut..].to_vec();
    let sticky = nl.or_reduce(&shifted[..cut]);
    mant_grs[0] = nl.or(mant_grs[0], sticky);
    let top = nl.const_bus((fmt.bias() + wi as i32 - 1) as u64, EXPW);
    let exp13 = sub_wide(nl, &top, &z);

    nl.begin_block(&format!("{tag}/s3-round"));
    let rounded = round_pack_block(nl, fmt, sign, &exp13, &mant_grs);

    nl.begin_block(&format!("{tag}/s4-pack"));
    let zero = nl.const_bit(false);
    let zero_res = vec![zero; w];
    let result = priority_mux(nl, &rounded.packed, &[(is_zero, &zero_res)]);
    nl.mark_output_bus(&format!("{tag}/result"), &result);
}

/// Build a float → signed-integer datapath (truncate toward zero,
/// saturating; NaN → 0) into `nl`.
///
/// Port `{tag}/a` is the packed float; `{tag}/result` is the
/// `precision.int_bits()`-bit two's-complement integer.
pub fn build_f2i(nl: &mut Netlist, precision: Precision, tag: &str) {
    let fmt = precision.format();
    let wi = precision.int_bits() as usize;
    let f = fmt.frac_bits as usize;
    let a = nl.add_input_bus(&format!("{tag}/a"), fmt.width() as usize);
    let amt_bits = wi.trailing_zeros() as usize; // 6 for 64, 5 for 32

    nl.begin_block(&format!("{tag}/s1-classify"));
    let ca = classify(nl, &a, fmt);
    let bias = nl.const_bus(fmt.bias() as u64, EXPW);
    let eu = sub_wide(nl, &ca.exp, &bias);
    let eu_neg = eu[EXPW - 1];
    // eu ≥ wi ⇒ certain overflow (bits above the shifter's reach).
    let high = nl.or_reduce(&eu[amt_bits..EXPW - 1]);
    let eu_pos = nl.not(eu_neg);
    let too_big = nl.and(high, eu_pos);

    nl.begin_block(&format!("{tag}/s2-shift"));
    let wide = zext(nl, &ca.sig, f + wi);
    let shifted = nl.barrel_shift_left(&wide, &eu[..amt_bits]);
    let mag: Vec<_> = shifted[f..].to_vec(); // wi bits: floor(sig·2^(eu-f))

    nl.begin_block(&format!("{tag}/s3-saturate"));
    let mag_top = mag[wi - 1];
    let low_nonzero = nl.or_reduce(&mag[..wi - 1]);
    let not_sign = nl.not(ca.sign);
    let pos_ovf = nl.and(not_sign, mag_top);
    let neg_ovf = nl.and3(ca.sign, mag_top, low_nonzero);
    let ovf = nl.or3(too_big, pos_ovf, neg_ovf);
    let saturate = nl.or(ovf, ca.is_inf);
    let neg = nl.negate(&mag);
    let value = nl.mux_bus(ca.sign, &mag, &neg);

    nl.begin_block(&format!("{tag}/s4-pack"));
    let _ = special_consts(nl, fmt); // keep special constants co-located
                                     // MAX = 0111…1, MIN = 1000…0, selected by sign.
    let max_c = nl.const_bus(((1u128 << (wi - 1)) - 1) as u64, wi);
    let min_c = nl.const_bus(1u64 << (wi - 1), wi);
    let sat_val = nl.mux_bus(ca.sign, &max_c, &min_c);
    let zero = nl.const_bit(false);
    let zero_res = vec![zero; wi];
    // |value| < 1 (negative unbiased exponent) or a zero operand → 0.
    let small = nl.or(eu_neg, ca.is_zero);
    let result = priority_mux(
        nl,
        &value,
        &[
            (ca.is_nan, &zero_res),
            // |value| < 1 must win before overflow: with a negative shift
            // amount the barrel shifter's output is meaningless.
            (small, &zero_res),
            (saturate, &sat_val),
        ],
    );
    nl.mark_output_bus(&format!("{tag}/result"), &result);
}
