//! Gate-level floating-point multiplier datapath (array multiplier with
//! carry-save reduction, normalization, rounding, special selection).

use crate::common::{
    add_const, add_wide, classify, cond_increment, priority_mux, round_pack_block, special_consts,
};
use tei_netlist::Netlist;
use tei_softfloat::Format;

/// Build a multiplier datapath into `nl`.
///
/// Ports: `{tag}/a`, `{tag}/b` → `{tag}/result`, all `fmt.width()` bits.
pub fn build_mul(nl: &mut Netlist, fmt: Format, tag: &str) {
    let w = fmt.width() as usize;
    let f = fmt.frac_bits as usize;
    let a = nl.add_input_bus(&format!("{tag}/a"), w);
    let b = nl.add_input_bus(&format!("{tag}/b"), w);

    nl.begin_block(&format!("{tag}/s1-classify"));
    let ca = classify(nl, &a, fmt);
    let cb = classify(nl, &b, fmt);
    let sign = nl.xor(ca.sign, cb.sign);

    nl.begin_block(&format!("{tag}/s2-mantissa-mul"));
    let p = nl.array_multiplier(&ca.sig, &cb.sig); // 2f+2 bits

    nl.begin_block(&format!("{tag}/s3-normalize"));
    let c = p[2 * f + 1];
    // Product in [2, 4): take p[f-2 .. 2f+2); product in [1, 2): p[f-3 .. 2f+1).
    let opt_hi: Vec<_> = p[f - 2..2 * f + 2].to_vec();
    let sticky_hi = nl.or_reduce(&p[..f - 2]);
    let opt_lo: Vec<_> = p[f - 3..2 * f + 1].to_vec();
    let sticky_lo = nl.or_reduce(&p[..f - 3]);
    let mut mant_grs = nl.mux_bus(c, &opt_lo, &opt_hi);
    let sticky = nl.mux(c, sticky_lo, sticky_hi);
    mant_grs[0] = nl.or(mant_grs[0], sticky);
    let esum = add_wide(nl, &ca.exp, &cb.exp);
    let ebase = add_const(nl, &esum, -fmt.bias() as i64);
    let (exp13, _) = cond_increment(nl, &ebase, c);

    nl.begin_block(&format!("{tag}/s4-round"));
    let rounded = round_pack_block(nl, fmt, sign, &exp13, &mant_grs);

    nl.begin_block(&format!("{tag}/s5-pack"));
    let consts = special_consts(nl, fmt);
    let inf_zero_a = nl.and(ca.is_inf, cb.is_zero);
    let inf_zero_b = nl.and(ca.is_zero, cb.is_inf);
    let bad = nl.or(inf_zero_a, inf_zero_b);
    let some_nan = nl.or(ca.is_nan, cb.is_nan);
    let nan_sel = nl.or(some_nan, bad);
    let some_inf = nl.or(ca.is_inf, cb.is_inf);
    let some_zero = nl.or(ca.is_zero, cb.is_zero);
    let mut inf_res = consts.inf_mag.clone();
    inf_res.push(sign);
    let zero = nl.const_bit(false);
    let mut zero_res = vec![zero; w - 1];
    zero_res.push(sign);
    let result = priority_mux(
        nl,
        &rounded.packed,
        &[
            (nan_sel, &consts.qnan),
            (some_inf, &inf_res),
            (some_zero, &zero_res),
        ],
    );
    nl.mark_output_bus(&format!("{tag}/result"), &result);
}
