//! Shared gate-level FPU building blocks: operand classification, exponent
//! arithmetic, and the round/normalize/pack back-end.
//!
//! All datapaths mirror `tei-softfloat` with `ftz = true` bit-for-bit; the
//! correctness tests in this crate enforce that equivalence exhaustively on
//! random and corner inputs.

use tei_netlist::{NetId, Netlist};
use tei_softfloat::Format;

/// Width of the signed exponent working buses. 13 bits comfortably hold
/// `±(2·max_exp + lzc)` for binary64.
pub const EXPW: usize = 13;

/// Classified operand fields, flush-to-zero semantics: an operand with a
/// zero exponent field is treated as ±0 regardless of its fraction.
pub struct FpClass {
    /// Sign bit net.
    pub sign: NetId,
    /// Raw exponent field (LSB-first).
    pub exp: Vec<NetId>,
    /// Exponent field is all zeros (value treated as zero under FTZ).
    pub is_zero: NetId,
    /// Any NaN.
    pub is_nan: NetId,
    /// ±infinity.
    pub is_inf: NetId,
    /// Significand with implicit bit, `f+1` bits; zero when `is_zero`.
    pub sig: Vec<NetId>,
}

/// Split and classify a floating-point operand bus.
pub fn classify(nl: &mut Netlist, bits: &[NetId], fmt: Format) -> FpClass {
    let f = fmt.frac_bits as usize;
    let e = fmt.exp_bits as usize;
    assert_eq!(bits.len(), (1 + e + f), "operand width mismatch");
    let frac: Vec<NetId> = bits[..f].to_vec();
    let exp: Vec<NetId> = bits[f..f + e].to_vec();
    let sign = bits[f + e];
    let exp_zero = nl.is_zero(&exp);
    let exp_ones = nl.and_reduce(&exp);
    let frac_nonzero = nl.or_reduce(&frac);
    let is_nan = nl.and(exp_ones, frac_nonzero);
    let frac_zero = nl.not(frac_nonzero);
    let is_inf = nl.and(exp_ones, frac_zero);
    let implicit = nl.not(exp_zero);
    // FTZ: gate the fraction so a subnormal's significand reads as zero.
    let mut sig = nl.and_bit_bus(&frac, implicit);
    sig.push(implicit);
    let _ = exp_ones; // folded into is_nan / is_inf
    FpClass {
        sign,
        exp,
        is_zero: exp_zero,
        is_nan,
        is_inf,
        sig,
    }
}

/// Zero-extend a bus to `w` bits.
pub fn zext(nl: &mut Netlist, bus: &[NetId], w: usize) -> Vec<NetId> {
    assert!(bus.len() <= w, "bus wider than target");
    let zero = nl.const_bit(false);
    let mut out = bus.to_vec();
    out.resize(w, zero);
    out
}

/// `bus + c` over an `EXPW`-bit signed working bus (two's complement).
pub fn add_const(nl: &mut Netlist, bus: &[NetId], c: i64) -> Vec<NetId> {
    let cb = nl.const_bus((c as u64) & ((1u64 << EXPW) - 1), EXPW);
    let a = zext(nl, bus, EXPW);
    let zero = nl.const_bit(false);
    nl.ripple_add(&a, &cb, zero).0
}

/// `a - b` over `EXPW`-bit working buses (inputs zero-extended).
pub fn sub_wide(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let ax = zext(nl, a, EXPW);
    let bx = zext(nl, b, EXPW);
    nl.ripple_sub(&ax, &bx).0
}

/// `a + b` over `EXPW`-bit working buses (inputs zero-extended).
pub fn add_wide(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let ax = zext(nl, a, EXPW);
    let bx = zext(nl, b, EXPW);
    let zero = nl.const_bit(false);
    nl.ripple_add(&ax, &bx, zero).0
}

/// Conditionally increment `bus` by `inc` (a single bit).
pub fn cond_increment(nl: &mut Netlist, bus: &[NetId], inc: NetId) -> (Vec<NetId>, NetId) {
    let mut carry = inc;
    let mut out = Vec::with_capacity(bus.len());
    for &b in bus {
        out.push(nl.xor(b, carry));
        carry = nl.and(b, carry);
    }
    (out, carry)
}

/// The packed constant encodings a special-case mux needs.
pub struct SpecialConsts {
    /// Canonical quiet NaN.
    pub qnan: Vec<NetId>,
    /// `|+inf|` without the sign bit (exponent ones, fraction zero), `w-1` bits.
    pub inf_mag: Vec<NetId>,
}

/// Build the special constants for `fmt`.
pub fn special_consts(nl: &mut Netlist, fmt: Format) -> SpecialConsts {
    let w = fmt.width() as usize;
    let qnan_bits = fmt.quiet_nan();
    let qnan = nl.const_bus(qnan_bits, w);
    let inf_bits = fmt.infinity(false);
    let inf_mag = nl.const_bus(inf_bits, w - 1);
    SpecialConsts { qnan, inf_mag }
}

/// Outcome of the shared round/pack back-end.
pub struct RoundedResult {
    /// Packed `w`-bit result for the ordinary (finite, non-special) path,
    /// already handling FTZ underflow (→ signed zero) and overflow
    /// (→ signed infinity).
    pub packed: Vec<NetId>,
}

/// Round-to-nearest-even and pack.
///
/// * `sign` — result sign.
/// * `exp13` — candidate biased exponent, `EXPW`-bit two's complement,
///   matching `tei-softfloat::round_pack`'s pre-round exponent.
/// * `mant_grs` — `f+4`-bit significand: bit 0 sticky, bit 1 round,
///   bit 2 guard, bits `3..f+4` the `f+1`-bit mantissa (MSB = implicit 1).
///
/// Underflow (`exp13 <= 0` pre-rounding) flushes to signed zero (FTZ);
/// overflow after rounding saturates to signed infinity, mirroring the
/// softfloat reference exactly.
pub fn round_pack_block(
    nl: &mut Netlist,
    fmt: Format,
    sign: NetId,
    exp13: &[NetId],
    mant_grs: &[NetId],
) -> RoundedResult {
    let f = fmt.frac_bits as usize;
    let e = fmt.exp_bits as usize;
    assert_eq!(exp13.len(), EXPW);
    assert_eq!(mant_grs.len(), f + 4);

    // Underflow test on the pre-round exponent: sign bit set or value zero.
    let exp_neg = exp13[EXPW - 1];
    let exp_zero = nl.is_zero(exp13);
    let underflow = nl.or(exp_neg, exp_zero);

    // RNE increment: guard & (round | sticky | lsb).
    let s = mant_grs[0];
    let r = mant_grs[1];
    let g = mant_grs[2];
    let lsb = mant_grs[3];
    let rs = nl.or(r, s);
    let rsl = nl.or(rs, lsb);
    let inc = nl.and(g, rsl);
    let mant = &mant_grs[3..]; // f+1 bits
    let (mant_r, carry) = cond_increment(nl, mant, inc);
    // carry ⇒ mantissa rolled over to zero; exponent gains one.
    let (exp_r, _) = cond_increment(nl, exp13, carry);

    // Overflow: non-negative exponent ≥ max_exp.
    let maxexp = nl.const_bus(fmt.max_exp() as u64, EXPW);
    let exp_r_neg = exp_r[EXPW - 1];
    let lt_max = nl.ult(&exp_r, &maxexp);
    let ge_max = nl.not(lt_max);
    let exp_r_pos = nl.not(exp_r_neg);
    let overflow = nl.and(exp_r_pos, ge_max);

    // Ordinary packed encoding (exponent truncated to field width).
    let mut packed_mag: Vec<NetId> = Vec::with_capacity(f + e);
    packed_mag.extend_from_slice(&mant_r[..f]);
    packed_mag.extend_from_slice(&exp_r[..e]);

    // Priority: underflow → zero magnitude; overflow → inf magnitude.
    let zero = nl.const_bit(false);
    let zero_mag = vec![zero; f + e];
    let consts = special_consts(nl, fmt);
    let after_uf = nl.mux_bus(underflow, &packed_mag, &zero_mag);
    let after_ov = nl.mux_bus(overflow, &after_uf, &consts.inf_mag);
    let mut packed = after_ov;
    packed.push(sign);
    RoundedResult { packed }
}

/// Cascade a priority list of `(select, value)` pairs over a default bus.
/// The first asserted select (lowest index) wins.
pub fn priority_mux(
    nl: &mut Netlist,
    default: &[NetId],
    cases: &[(NetId, &[NetId])],
) -> Vec<NetId> {
    let mut out = default.to_vec();
    for (sel, value) in cases.iter().rev() {
        out = nl.mux_bus(*sel, &out, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_netlist::CellLibrary;

    #[test]
    fn classify_flags_specials() {
        let fmt = Format::F32;
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 32);
        let c = classify(&mut nl, &a, fmt);
        nl.mark_output_bus("nan", &[c.is_nan]);
        nl.mark_output_bus("inf", &[c.is_inf]);
        nl.mark_output_bus("zero", &[c.is_zero]);
        nl.mark_output_bus("sig", &c.sig);
        for (bits, nan, inf, zero) in [
            (1.0f32.to_bits(), 0u64, 0u64, 0u64),
            (f32::NAN.to_bits(), 1, 0, 0),
            (f32::INFINITY.to_bits(), 0, 1, 0),
            ((-0.0f32).to_bits(), 0, 0, 1),
            (1u32, 0, 0, 1), // subnormal treated as zero under FTZ
        ] {
            let out = nl.eval_u64(&[("a", bits as u64)]);
            assert_eq!(out["nan"], nan, "{bits:#x}");
            assert_eq!(out["inf"], inf, "{bits:#x}");
            assert_eq!(out["zero"], zero, "{bits:#x}");
            if zero == 1 {
                assert_eq!(out["sig"], 0, "FTZ significand");
            }
        }
        // Normal significand carries the implicit bit.
        let out = nl.eval_u64(&[("a", 1.5f32.to_bits() as u64)]);
        assert_eq!(out["sig"], (1 << 23) | (1 << 22));
    }

    #[test]
    fn exponent_helpers() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let s = add_const(&mut nl, &a, -5);
        let d = sub_wide(&mut nl, &a, &b);
        let t = add_wide(&mut nl, &a, &b);
        nl.mark_output_bus("s", &s);
        nl.mark_output_bus("d", &d);
        nl.mark_output_bus("t", &t);
        let out = nl.eval_u64(&[("a", 3), ("b", 10)]);
        let mask = (1u64 << EXPW) - 1;
        assert_eq!(out["s"], (3i64 - 5) as u64 & mask);
        assert_eq!(out["d"], (3i64 - 10) as u64 & mask);
        assert_eq!(out["t"], 13);
    }

    #[test]
    fn cond_increment_behaves() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 4);
        let i = nl.add_input_bus("i", 1);
        let (r, c) = cond_increment(&mut nl, &a, i[0]);
        nl.mark_output_bus("r", &r);
        nl.mark_output_bus("c", &[c]);
        let out = nl.eval_u64(&[("a", 15), ("i", 1)]);
        assert_eq!(out["r"], 0);
        assert_eq!(out["c"], 1);
        let out = nl.eval_u64(&[("a", 7), ("i", 0)]);
        assert_eq!(out["r"], 7);
        assert_eq!(out["c"], 0);
    }

    #[test]
    fn priority_mux_prefers_first_case() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let s = nl.add_input_bus("s", 2);
        let d = nl.const_bus(0b00, 2);
        let v1 = nl.const_bus(0b01, 2);
        let v2 = nl.const_bus(0b10, 2);
        let out = priority_mux(&mut nl, &d, &[(s[0], &v1), (s[1], &v2)]);
        nl.mark_output_bus("o", &out);
        assert_eq!(nl.eval_u64(&[("s", 0b00)])["o"], 0b00);
        assert_eq!(nl.eval_u64(&[("s", 0b01)])["o"], 0b01);
        assert_eq!(nl.eval_u64(&[("s", 0b10)])["o"], 0b10);
        assert_eq!(nl.eval_u64(&[("s", 0b11)])["o"], 0b01, "first case wins");
    }

    #[test]
    fn round_pack_matches_reference_cases() {
        // Round a fixed mantissa layout and compare against manual RNE.
        let fmt = Format::F32;
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let m = nl.add_input_bus("m", 27); // f+4 = 27
        let e = nl.add_input_bus("e", EXPW);
        let sign = nl.const_bit(false);
        let r = round_pack_block(&mut nl, fmt, sign, &e, &m);
        nl.mark_output_bus("r", &r.packed);
        // 1.0 with GRS = 0 → exact.
        let mant = 1u64 << 26; // implicit bit only
        let out = nl.eval_u64(&[("m", mant), ("e", 127)]);
        assert_eq!(out["r"], 1.0f32.to_bits() as u64);
        // GRS = 0b100 with LSB 0 → tie to even, stays.
        let out = nl.eval_u64(&[("m", mant | 0b100), ("e", 127)]);
        assert_eq!(out["r"], 1.0f32.to_bits() as u64);
        // GRS = 0b101 → round up one ulp.
        let out = nl.eval_u64(&[("m", mant | 0b101), ("e", 127)]);
        assert_eq!(out["r"], (1.0f32.to_bits() + 1) as u64);
        // All-ones mantissa + round up ⇒ carries into the exponent.
        let all = ((1u64 << 24) - 1) << 3 | 0b111;
        let out = nl.eval_u64(&[("m", all), ("e", 127)]);
        assert_eq!(out["r"], 2.0f32.to_bits() as u64);
        // exp <= 0 pre-round flushes to zero (FTZ).
        let out = nl.eval_u64(&[("m", mant), ("e", 0)]);
        assert_eq!(out["r"], 0);
        // exp at max_exp overflows to +inf.
        let out = nl.eval_u64(&[("m", mant), ("e", 255)]);
        assert_eq!(out["r"], f32::INFINITY.to_bits() as u64);
    }
}
