//! Whole-core netlist assembly for the paper's Figure 4 path census:
//! all twelve FPU datapaths plus the short non-FPU pipeline blocks
//! (decode, integer ALU, address generation, branch compare).

use crate::unit::{build_datapath, short_tag, FpuTimingSpec};
use tei_netlist::{CellLibrary, Netlist};
use tei_softfloat::FpOp;
use tei_timing::Sta;

/// Nominal critical-delay targets for the non-FPU blocks (ns). All sit
/// comfortably below the voltage-reduction failure thresholds, reproducing
/// the paper's observation that only FPU paths are error-prone.
pub const DECODE_TARGET: f64 = 1.30;
/// Integer ALU target delay (ns).
pub const ALU_TARGET: f64 = 2.30;
/// Load/store address-generation target delay (ns).
pub const AGEN_TARGET: f64 = 2.00;
/// Branch-compare target delay (ns).
pub const BRANCH_TARGET: f64 = 1.60;

fn scale_new_blocks(nl: &mut Netlist, from_block: usize, endpoint_port: &str, target: f64) {
    let sta = Sta::analyze(nl);
    let max = nl
        .output_port(endpoint_port)
        .expect("endpoint port")
        .iter()
        .map(|&n| sta.arrival(n))
        .fold(0.0f64, f64::max);
    assert!(max > 0.0, "degenerate block at {endpoint_port}");
    let factor = target / max;
    let upto = nl.block_names().len();
    for b in from_block..upto {
        let id = nl.intern_block(&nl.block_names()[b].clone());
        nl.scale_block_delays(id, factor);
    }
}

fn build_decode(nl: &mut Netlist) {
    let start = nl.block_names().len();
    nl.begin_block("core/decode");
    let instr = nl.add_input_bus("decode/instr", 32);
    // A few layers of mixing logic standing in for opcode decode trees.
    let mut layer = instr.clone();
    for round in 0..3 {
        let mut next = Vec::new();
        for i in 0..layer.len() / 2 {
            let a = layer[i];
            let b = layer[layer.len() - 1 - i];
            next.push(if (i + round) % 2 == 0 {
                nl.and(a, b)
            } else {
                nl.xor(a, b)
            });
        }
        layer = next;
    }
    nl.mark_output_bus("decode/ctrl", &layer);
    scale_new_blocks(nl, start, "decode/ctrl", DECODE_TARGET);
}

fn build_alu(nl: &mut Netlist) {
    let start = nl.block_names().len();
    nl.begin_block("core/alu");
    let a = nl.add_input_bus("alu/a", 32);
    let b = nl.add_input_bus("alu/b", 32);
    let op = nl.add_input_bus("alu/op", 2);
    let zero = nl.const_bit(false);
    let (sum, _) = nl.ripple_add(&a, &b, zero);
    let (diff, _) = nl.ripple_sub(&a, &b);
    let conj = nl.and_bus(&a, &b);
    let xo = nl.xor_bus(&a, &b);
    let lo = nl.mux_bus(op[0], &sum, &diff);
    let hi = nl.mux_bus(op[0], &conj, &xo);
    let result = nl.mux_bus(op[1], &lo, &hi);
    nl.mark_output_bus("alu/result", &result);
    scale_new_blocks(nl, start, "alu/result", ALU_TARGET);
}

fn build_agen(nl: &mut Netlist) {
    let start = nl.block_names().len();
    nl.begin_block("core/lsu-agen");
    let base = nl.add_input_bus("agen/base", 32);
    let off = nl.add_input_bus("agen/offset", 32);
    let zero = nl.const_bit(false);
    let (addr, _) = nl.ripple_add(&base, &off, zero);
    nl.mark_output_bus("agen/addr", &addr);
    scale_new_blocks(nl, start, "agen/addr", AGEN_TARGET);
}

fn build_branch(nl: &mut Netlist) {
    let start = nl.block_names().len();
    nl.begin_block("core/branch");
    let a = nl.add_input_bus("branch/a", 32);
    let b = nl.add_input_bus("branch/b", 32);
    let eq = nl.eq_bus(&a, &b);
    let lt = nl.ult(&a, &b);
    let taken = nl.or(eq, lt);
    nl.mark_output_bus("branch/taken", &[taken]);
    scale_new_blocks(nl, start, "branch/taken", BRANCH_TARGET);
}

/// Assemble the whole-core netlist: every FPU datapath plus the non-FPU
/// pipeline blocks, each calibrated to its published critical delay. The
/// result feeds [`PathCensus`](tei_timing::PathCensus) for Figure 4.
pub fn whole_core(spec: &FpuTimingSpec) -> Netlist {
    let mut nl = Netlist::new("marocchino-like-core", CellLibrary::nangate45_like());
    build_decode(&mut nl);
    build_alu(&mut nl);
    build_agen(&mut nl);
    build_branch(&mut nl);
    for op in FpOp::all() {
        let tag = short_tag(op);
        let start = nl.block_names().len();
        build_datapath(&mut nl, op, &tag);
        scale_new_blocks(&mut nl, start, &format!("{tag}/result"), spec.target(op));
    }
    nl
}
