//! Gate-level ↔ softfloat conformance: every generated datapath must match
//! the `tei-softfloat` reference (flush-to-zero mode) bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{Flags, FpOp, FpOpKind, FpuConfig, Precision};

const FTZ: FpuConfig = FpuConfig { ftz: true };

fn reference(op: FpOp, a: u64, b: u64) -> u64 {
    let mut flags = Flags::default();
    let mask = if op.result_bits() == 64 {
        u64::MAX
    } else {
        (1u64 << op.result_bits()) - 1
    };
    tei_softfloat::apply_op(op, a, b, FTZ, &mut flags) & mask
}

fn corner_f64() -> Vec<u64> {
    let mut v: Vec<u64> = [
        0.0f64,
        -0.0,
        1.0,
        -1.0,
        1.5,
        0.1,
        2.0,
        1e300,
        -1e300,
        1e-300,
        f64::MAX,
        f64::MIN_POSITIVE,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        std::f64::consts::PI,
    ]
    .iter()
    .map(|x| x.to_bits())
    .collect();
    v.push(1); // subnormal
    v.push(0x8000_0000_0000_0001); // negative subnormal
    v.push(0x7ff0_0000_0000_0001); // signaling NaN
    v
}

fn corner_f32() -> Vec<u64> {
    let mut v: Vec<u64> = [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        1.5,
        0.1,
        1e38,
        -1e38,
        1e-38,
        f32::MAX,
        f32::MIN_POSITIVE,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
    ]
    .iter()
    .map(|x| x.to_bits() as u64)
    .collect();
    v.push(1);
    v.push(0x8000_0001);
    v
}

fn random_operand(rng: &mut StdRng, precision: Precision) -> u64 {
    match precision {
        Precision::Double => {
            // Mix of raw patterns and exponent-structured values.
            if rng.gen_bool(0.5) {
                rng.gen::<u64>()
            } else {
                let s = (rng.gen::<bool>() as u64) << 63;
                let e = rng.gen_range(0u64..2048) << 52;
                let f = rng.gen::<u64>() & ((1 << 52) - 1);
                s | e | f
            }
        }
        Precision::Single => {
            if rng.gen_bool(0.5) {
                rng.gen::<u32>() as u64
            } else {
                let s = (rng.gen::<bool>() as u32) << 31;
                let e = rng.gen_range(0u32..256) << 23;
                let f = rng.gen::<u32>() & ((1 << 23) - 1);
                (s | e | f) as u64
            }
        }
    }
}

fn check_unit(op: FpOp, random_cases: usize) {
    let unit = FpuUnit::generate(op, &FpuTimingSpec::paper_calibrated());
    let corners = match op.precision {
        Precision::Double => corner_f64(),
        Precision::Single => corner_f32(),
    };
    let int_corners: Vec<u64> = [
        0i64,
        1,
        -1,
        42,
        -42,
        i64::MAX,
        i64::MIN,
        1 << 52,
        -(1 << 40),
    ]
    .iter()
    .map(|&x| match op.precision {
        Precision::Double => x as u64,
        Precision::Single => (x as i32) as u32 as u64,
    })
    .collect();
    let a_pool: &[u64] = if op.kind == FpOpKind::ItoF {
        &int_corners
    } else {
        &corners
    };
    let mut cases: Vec<(u64, u64)> = Vec::new();
    for &a in a_pool {
        if op.is_binary() {
            for &b in &corners {
                cases.push((a, b));
            }
        } else {
            cases.push((a, 0));
        }
    }
    let mut rng = StdRng::seed_from_u64(0xF00D + op.index() as u64);
    for _ in 0..random_cases {
        let a = if op.kind == FpOpKind::ItoF {
            match op.precision {
                Precision::Double => rng.gen::<u64>(),
                Precision::Single => rng.gen::<u32>() as u64,
            }
        } else {
            random_operand(&mut rng, op.precision)
        };
        let b = if op.is_binary() {
            random_operand(&mut rng, op.precision)
        } else {
            0
        };
        cases.push((a, b));
    }
    for (a, b) in cases {
        let gate = unit.eval_bits(a, b);
        let gold = reference(op, a, b);
        assert_eq!(
            gate, gold,
            "{op}: a={a:#018x} b={b:#018x} gate={gate:#018x} gold={gold:#018x}"
        );
    }
}

// Case counts are kept moderate per unit so the whole suite stays fast in
// debug builds; the nightly-style exhaustive sweep lives in the benches.
#[test]
fn fp_add_double_conforms() {
    check_unit(FpOp::new(FpOpKind::Add, Precision::Double), 400);
}

#[test]
fn fp_sub_double_conforms() {
    check_unit(FpOp::new(FpOpKind::Sub, Precision::Double), 400);
}

#[test]
fn fp_mul_double_conforms() {
    check_unit(FpOp::new(FpOpKind::Mul, Precision::Double), 300);
}

#[test]
fn fp_div_double_conforms() {
    check_unit(FpOp::new(FpOpKind::Div, Precision::Double), 200);
}

#[test]
fn i2f_double_conforms() {
    check_unit(FpOp::new(FpOpKind::ItoF, Precision::Double), 400);
}

#[test]
fn f2i_double_conforms() {
    check_unit(FpOp::new(FpOpKind::FtoI, Precision::Double), 400);
}

#[test]
fn fp_add_single_conforms() {
    check_unit(FpOp::new(FpOpKind::Add, Precision::Single), 400);
}

#[test]
fn fp_sub_single_conforms() {
    check_unit(FpOp::new(FpOpKind::Sub, Precision::Single), 400);
}

#[test]
fn fp_mul_single_conforms() {
    check_unit(FpOp::new(FpOpKind::Mul, Precision::Single), 400);
}

#[test]
fn fp_div_single_conforms() {
    check_unit(FpOp::new(FpOpKind::Div, Precision::Single), 300);
}

#[test]
fn i2f_single_conforms() {
    check_unit(FpOp::new(FpOpKind::ItoF, Precision::Single), 400);
}

#[test]
fn f2i_single_conforms() {
    check_unit(FpOp::new(FpOpKind::FtoI, Precision::Single), 400);
}
