//! The shipped FPU netlists must be structurally clean: every logic
//! gate reaches an output, every logic gate carries a library delay,
//! and the Verilog export round-trips through the parser without any
//! structural finding.

use tei_fpu::{FpuBank, FpuTimingSpec};
use tei_netlist::{lint_module, lint_netlist, parse_verilog, to_verilog};

#[test]
fn every_unit_is_lint_clean() {
    let bank = FpuBank::generate(&FpuTimingSpec::paper_calibrated());
    for unit in bank.iter() {
        let diags = lint_netlist(unit.netlist());
        assert!(
            diags.is_empty(),
            "{:?}: {}",
            unit.op(),
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        let dta = unit.dta_netlist();
        let diags = lint_netlist(&dta);
        assert!(diags.is_empty(), "{:?} (DTA): {diags:?}", unit.op());
    }
}

#[test]
fn exported_verilog_round_trips_lint_clean() {
    let bank = FpuBank::generate(&FpuTimingSpec::paper_calibrated());
    // One representative unit keeps the test fast; the module-level
    // lints cover what lint_netlist cannot see (port bindings).
    let unit = bank.iter().next().expect("bank is non-empty");
    let nl = unit.netlist();
    let m = parse_verilog(&to_verilog(nl)).expect("export parses back");
    let diags = lint_module(&m, nl.library());
    assert!(
        diags.is_empty(),
        "{:?}: {}",
        unit.op(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}
