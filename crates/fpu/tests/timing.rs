//! Timing-structure tests: the calibrated datapaths must reproduce the
//! paper's criticality ordering and voltage-reduction error structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_fpu::{whole_core, FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{
    ArrivalSim, DeratingModel, DtaEngine, OperatingPoint, PathCensus, Sta, TimingEngine,
    VoltageReduction,
};

#[test]
fn calibrated_sta_matches_targets() {
    let spec = FpuTimingSpec::paper_calibrated();
    for op in FpOp::all() {
        let unit = FpuUnit::generate(op, &spec);
        let sta = Sta::analyze(unit.netlist());
        let max = sta.max_delay();
        assert!(
            (max - spec.target(op)).abs() < 1e-9,
            "{op}: calibrated max {max} != target {}",
            spec.target(op)
        );
        assert!(max < spec.clk, "{op} must meet timing at nominal voltage");
    }
}

#[test]
fn criticality_ordering_matches_paper() {
    let spec = FpuTimingSpec::paper_calibrated();
    use FpOpKind::*;
    use Precision::*;
    let t = |k, p| spec.target(FpOp::new(k, p));
    // Double precision: mul > sub > div ≈ add > conversions.
    assert!(t(Mul, Double) > t(Sub, Double));
    assert!(t(Sub, Double) > t(Div, Double));
    assert!(t(Sub, Double) > t(Add, Double));
    assert!(t(Add, Double) > t(ItoF, Double));
    // Every single-precision path is shorter than every error-prone
    // double-precision path.
    for k in [Add, Sub, Mul, Div] {
        assert!(t(k, Single) < t(Add, Double), "{k:?}");
    }
    // Only d-mul and d-sub can exceed the clock at VR15; d-add and d-div
    // join at VR20; conversions and single precision never fail.
    let clk = spec.clk;
    let k15 = VoltageReduction::VR15.derating_factor();
    let k20 = VoltageReduction::VR20.derating_factor();
    for op in FpOp::all() {
        let reach15 = spec.target(op) * k15 > clk;
        let reach20 = spec.target(op) * k20 > clk;
        let expect15 = matches!((op.kind, op.precision), (Mul, Double) | (Sub, Double));
        let expect20 = matches!(
            (op.kind, op.precision),
            (Mul, Double) | (Sub, Double) | (Add, Double) | (Div, Double)
        );
        assert_eq!(reach15, expect15, "{op} VR15 static reach");
        assert_eq!(reach20, expect20, "{op} VR20 static reach");
    }
}

fn random_normal_f64(rng: &mut StdRng) -> u64 {
    // Normal-range doubles as workloads produce them.
    let s = (rng.gen::<bool>() as u64) << 63;
    let e = rng.gen_range(900u64..1200) << 52;
    let f = rng.gen::<u64>() & ((1 << 52) - 1);
    s | e | f
}

/// Measured error ratio of an operation under consecutive random operands.
fn error_ratio(op: FpOp, vr: VoltageReduction, samples: usize) -> f64 {
    let unit = FpuUnit::generate(op, &FpuTimingSpec::paper_calibrated());
    let clk = 4.5;
    let engine = DtaEngine::new(
        unit.dta_netlist(),
        TimingEngine::Arrival,
        DeratingModel::default(),
    );
    let mut rng = StdRng::seed_from_u64(0xA11CE + op.index() as u64);
    let pair = |rng: &mut StdRng| {
        let a = random_normal_f64(rng);
        let b = if rng.gen_ratio(1, 8) {
            (a ^ rng.gen_range(1u64..64)) ^ ((rng.gen::<bool>() as u64) << 63)
        } else {
            random_normal_f64(rng)
        };
        (a, b)
    };
    let (a0, b0) = pair(&mut rng);
    let mut prev = unit.encode_inputs(a0, b0);
    let mut errors = 0usize;
    let op_pt = OperatingPoint { vdd: vr.vdd(), clk };
    for _ in 0..samples {
        let (a, b) = pair(&mut rng);
        let cur = unit.encode_inputs(a, b);
        let out = engine.analyze(&prev, &cur, op_pt);
        if out.has_error() {
            errors += 1;
        }
        prev = cur;
    }
    errors as f64 / samples as f64
}

#[test]
fn dmul_errors_grow_with_voltage_reduction() {
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let nominal = error_ratio(op, VoltageReduction::Nominal, 400);
    let er20 = error_ratio(op, VoltageReduction::VR20, 400);
    assert_eq!(nominal, 0.0, "no timing errors at the nominal corner");
    assert!(er20 > 0.0, "d-mul must be error-prone at VR20");
}

#[test]
fn single_precision_is_error_free_at_vr20() {
    for kind in [FpOpKind::Add, FpOpKind::Mul] {
        let op = FpOp::new(kind, Precision::Single);
        let unit = FpuUnit::generate(op, &FpuTimingSpec::paper_calibrated());
        let engine = DtaEngine::new(
            unit.dta_netlist(),
            TimingEngine::Arrival,
            DeratingModel::default(),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let mk = |rng: &mut StdRng| {
            let s = (rng.gen::<bool>() as u32) << 31;
            let e = rng.gen_range(60u32..190) << 23;
            let f = rng.gen::<u32>() & ((1 << 23) - 1);
            (s | e | f) as u64
        };
        let mut prev = unit.encode_inputs(mk(&mut rng), mk(&mut rng));
        let op_pt = OperatingPoint {
            vdd: VoltageReduction::VR20.vdd(),
            clk: 4.5,
        };
        for _ in 0..150 {
            let cur = unit.encode_inputs(mk(&mut rng), mk(&mut rng));
            let out = engine.analyze(&prev, &cur, op_pt);
            assert!(!out.has_error(), "{op} erred at VR20");
            prev = cur;
        }
    }
}

#[test]
fn timing_errors_are_data_dependent() {
    // The same instruction type shows different settle times for different
    // operands — the core premise of workload-aware modeling (§II.D).
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let unit = FpuUnit::generate(op, &FpuTimingSpec::paper_calibrated());
    let mut rng = StdRng::seed_from_u64(99);
    let mut settles = Vec::new();
    let mut prev = unit.encode_inputs(random_normal_f64(&mut rng), random_normal_f64(&mut rng));
    for _ in 0..60 {
        let cur = unit.encode_inputs(random_normal_f64(&mut rng), random_normal_f64(&mut rng));
        let r = ArrivalSim::run(unit.netlist(), &prev, &cur);
        settles.push(r.max_settle(unit.result_port()));
        prev = cur;
    }
    let min = settles.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = settles.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max > min * 1.05,
        "settle times should spread with operands (min={min}, max={max})"
    );
}

#[test]
fn whole_core_census_is_fpu_dominated() {
    // Figure 4: among the 1000 lowest-slack paths, only FPU paths appear
    // near-critical; non-FPU blocks stay safe.
    let core = whole_core(&FpuTimingSpec::paper_calibrated());
    let census = PathCensus::top_k(&core, 4.5, 1000);
    assert_eq!(census.paths.len(), 1000);
    let worst100_nonfpu = census.paths[..100]
        .iter()
        .filter(|p| p.dominant_block.starts_with("core/"))
        .count();
    assert_eq!(worst100_nonfpu, 0, "non-FPU blocks must not be critical");
    // The single most critical path belongs to the double-precision FPU.
    assert!(
        census.paths[0].dominant_block.contains("-d/"),
        "worst path in {}",
        census.paths[0].dominant_block
    );
    // Non-FPU paths keep healthy slack even at VR20 derating.
    let k20 = VoltageReduction::VR20.derating_factor();
    for p in census
        .paths
        .iter()
        .filter(|p| p.dominant_block.starts_with("core/"))
    {
        assert!(p.delay * k20 < 4.5, "{} unsafe at VR20", p.dominant_block);
    }
}
