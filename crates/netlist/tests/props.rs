//! Property-based tests: every datapath builder must agree with integer
//! arithmetic on random operands and widths.

use proptest::prelude::*;
use tei_netlist::{bus_value_u128, bus_value_u64, CellLibrary, Netlist};

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_adder(w in 1usize..20, a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let mask = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let ab = nl.add_input_bus("a", w);
        let bb = nl.add_input_bus("b", w);
        let c = nl.const_bit(cin);
        let (sum, cout) = nl.ripple_add(&ab, &bb, c);
        let mut bits = to_bits(a, w);
        bits.extend(to_bits(b, w));
        let v = nl.eval(&bits);
        let full = a as u128 + b as u128 + cin as u128;
        prop_assert_eq!(bus_value_u64(&v, &sum), (full as u64) & mask);
        prop_assert_eq!(v[cout.index()] as u128, full >> w);
    }

    #[test]
    fn prop_multiplier(wa in 1usize..12, wb in 1usize..12, a in any::<u64>(), b in any::<u64>()) {
        let ma = (1u64 << wa) - 1;
        let mb = (1u64 << wb) - 1;
        let (a, b) = (a & ma, b & mb);
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let ab = nl.add_input_bus("a", wa);
        let bb = nl.add_input_bus("b", wb);
        let p = nl.array_multiplier(&ab, &bb);
        let mut bits = to_bits(a, wa);
        bits.extend(to_bits(b, wb));
        let v = nl.eval(&bits);
        prop_assert_eq!(bus_value_u128(&v, &p), (a as u128) * (b as u128));
    }

    #[test]
    fn prop_divider(wn in 2usize..14, wd in 1usize..8, n in any::<u64>(), d in any::<u64>()) {
        let n = n & ((1 << wn) - 1);
        let d = (d & ((1 << wd) - 1)).max(1);
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let nb = nl.add_input_bus("n", wn);
        let db = nl.add_input_bus("d", wd);
        let (q, r) = nl.nonrestoring_divider(&nb, &db);
        let mut bits = to_bits(n, wn);
        bits.extend(to_bits(d, wd));
        let v = nl.eval(&bits);
        prop_assert_eq!(bus_value_u64(&v, &q), n / d, "{}/{} quotient", n, d);
        prop_assert_eq!(bus_value_u64(&v, &r), n % d, "{}%{} remainder", n, d);
    }

    #[test]
    fn prop_shifts(w in 1usize..24, x in any::<u64>(), s in 0u64..32) {
        let mask = (1u64 << w) - 1;
        let x = x & mask;
        let amt_w = 6;
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let xb = nl.add_input_bus("x", w);
        let sb = nl.add_input_bus("s", amt_w);
        let zero = nl.const_bit(false);
        let (right, sticky) = nl.barrel_shift_right_sticky(&xb, &sb, zero);
        let left = nl.barrel_shift_left(&xb, &sb);
        let mut bits = to_bits(x, w);
        bits.extend(to_bits(s, amt_w));
        let v = nl.eval(&bits);
        let er = if s as usize >= w { 0 } else { x >> s };
        let el = if s as usize >= w { 0 } else { (x << s) & mask };
        let es = x & ((1u64 << s.min(63)).wrapping_sub(1)) != 0;
        prop_assert_eq!(bus_value_u64(&v, &right), er);
        prop_assert_eq!(bus_value_u64(&v, &left), el);
        prop_assert_eq!(v[sticky.index()], es);
    }

    #[test]
    fn prop_lzc_popcount(w in 1usize..33, x in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let x = x & mask;
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let xb = nl.add_input_bus("x", w);
        let lzc = nl.leading_zero_count(&xb);
        let pc = nl.popcount(&xb);
        let v = nl.eval(&to_bits(x, w));
        let expect_lzc = if x == 0 { w as u64 } else { w as u64 - (64 - x.leading_zeros() as u64) };
        prop_assert_eq!(bus_value_u64(&v, &lzc), expect_lzc);
        prop_assert_eq!(bus_value_u64(&v, &pc), x.count_ones() as u64);
    }

    #[test]
    fn prop_compare_and_negate(w in 1usize..16, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let ab = nl.add_input_bus("a", w);
        let bb = nl.add_input_bus("b", w);
        let lt = nl.ult(&ab, &bb);
        let eq = nl.eq_bus(&ab, &bb);
        let neg = nl.negate(&ab);
        let mut bits = to_bits(a, w);
        bits.extend(to_bits(b, w));
        let v = nl.eval(&bits);
        prop_assert_eq!(v[lt.index()], a < b);
        prop_assert_eq!(v[eq.index()], a == b);
        prop_assert_eq!(bus_value_u64(&v, &neg), a.wrapping_neg() & mask);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_preloaded_divider(wd in 2usize..8, wl in 1usize..10, h in any::<u64>(), l in any::<u64>(), d in any::<u64>()) {
        let d = (d & ((1 << wd) - 1)).max(1);
        let h = h % d; // preload must be < divisor
        let l = l & ((1 << wl) - 1);
        let wh = wd; // high bus width (values constrained < d)
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let hb = nl.add_input_bus("h", wh);
        let lb = nl.add_input_bus("l", wl);
        let db = nl.add_input_bus("d", wd);
        let (q, r) = nl.nonrestoring_divider_preloaded(&hb, &lb, &db);
        let mut bits = to_bits(h, wh);
        bits.extend(to_bits(l, wl));
        bits.extend(to_bits(d, wd));
        let v = nl.eval(&bits);
        let n = (h << wl) | l;
        prop_assert_eq!(bus_value_u64(&v, &q) , (n / d) & ((1 << wl) - 1), "{}/{} q", n, d);
        prop_assert_eq!(bus_value_u64(&v, &r), n % d, "{}%{} r", n, d);
    }
}
