// Deliberately defective netlist for the `tei lint` golden test.
// Seeded defects:
//   * floating net      — `ghost[0]` is read but never driven
//   * combinational loop — n[2] and n[3] feed each other
//   * multi-driver net  — n[4] is assigned twice
//   * unreachable gate  — n[5] drives nothing on the path to `y`
module broken (
  input  wire [1:0] a,
  output wire [0:0] y
);
  wire [6:0] n;
  wire [0:0] ghost;
  assign n[0] = a[0]; // Buf 0.045 ns input
  assign n[1] = a[1]; // Buf 0.045 ns input
  assign n[2] = n[3] & n[0]; // And2 0.080 ns loop
  assign n[3] = n[2] | n[1]; // Or2 0.075 ns loop
  assign n[4] = n[0] ^ ghost[0]; // Xor2 0.110 ns floating fanin
  assign n[4] = ~n[1]; // Not 0.050 ns second driver
  assign n[5] = n[0] & n[1]; // And2 0.080 ns dead
  assign n[6] = n[4] | n[2]; // Or2 0.075 ns
  assign y[0] = n[6]; // Buf 0.045 ns output
endmodule
