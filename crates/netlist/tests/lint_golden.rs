//! Golden test for the structural lints: a checked-in Verilog fixture
//! with seeded defects must produce *exactly* the expected diagnostic
//! set — same kinds, same net names, same order — through the full
//! parse → lint pipeline the `tei lint` CLI uses.

use tei_netlist::{lint_module, parse_verilog, CellLibrary, LintKind};

const BROKEN: &str = include_str!("fixtures/broken.v");

#[test]
fn broken_fixture_yields_exact_diagnostic_set() {
    let module = parse_verilog(BROKEN).expect("fixture parses");
    assert_eq!(module.name, "broken");
    let diags = lint_module(&module, &CellLibrary::nangate45_like());
    let got: Vec<(LintKind, Vec<String>)> =
        diags.iter().map(|d| (d.kind, d.nets.clone())).collect();
    let expect = vec![
        (
            LintKind::CombinationalLoop,
            vec!["n[2]".to_string(), "n[3]".to_string()],
        ),
        (LintKind::FloatingNet, vec!["ghost[0]".to_string()]),
        (LintKind::MultiDriverNet, vec!["n[4]".to_string()]),
        (LintKind::UnreachableGate, vec!["n[5]".to_string()]),
    ];
    assert_eq!(got, expect, "diagnostics: {diags:#?}");
}

#[test]
fn broken_fixture_diagnostics_render_for_the_cli() {
    let module = parse_verilog(BROKEN).expect("fixture parses");
    let rendered: Vec<String> = lint_module(&module, &CellLibrary::nangate45_like())
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        rendered,
        [
            "combinational-loop: n[2], n[3]",
            "floating-net: ghost[0]",
            "multi-driver-net: n[4]",
            "unreachable-gate: n[5]",
        ]
    );
}

#[test]
fn fixing_the_defects_makes_the_fixture_clean() {
    // The same module with the seeded defects repaired lints clean —
    // guards against the lints firing on healthy idioms.
    let fixed = "\
module fixed (
  input  wire [1:0] a,
  output wire [0:0] y
);
  wire [4:0] n;
  assign n[0] = a[0];
  assign n[1] = a[1];
  assign n[2] = n[1] & n[0];
  assign n[3] = n[2] | n[1];
  assign n[4] = n[3] ^ n[0];
  assign y[0] = n[4];
endmodule
";
    let module = parse_verilog(fixed).expect("fixed module parses");
    let diags = lint_module(&module, &CellLibrary::nangate45_like());
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}
