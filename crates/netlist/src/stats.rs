//! Netlist size and composition statistics.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Gate counts for one functional block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Block name.
    pub name: String,
    /// Total gates attributed to this block (excluding primary inputs).
    pub gates: usize,
}

/// Summary statistics over a whole netlist.
///
/// ```
/// use tei_netlist::{Netlist, CellLibrary, NetlistStats};
/// let mut nl = Netlist::new("x", CellLibrary::unit());
/// let a = nl.add_input_bus("a", 2);
/// let y = nl.and(a[0], a[1]);
/// nl.mark_output_bus("y", &[y]);
/// let stats = NetlistStats::of(&nl);
/// assert_eq!(stats.inputs, 2);
/// assert_eq!(stats.logic_gates, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Output net count.
    pub outputs: usize,
    /// Logic gate count (everything except inputs and constants).
    pub logic_gates: usize,
    /// Gates per kind.
    pub by_kind: BTreeMap<String, usize>,
    /// Gates per block.
    pub by_block: Vec<BlockStats>,
}

impl NetlistStats {
    /// Compute statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut per_block = vec![0usize; nl.block_names().len()];
        let mut logic = 0usize;
        for g in nl.gates() {
            match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => continue,
                kind => {
                    *by_kind.entry(format!("{kind:?}")).or_default() += 1;
                    per_block[g.block.index()] += 1;
                    logic += 1;
                }
            }
        }
        NetlistStats {
            name: nl.name().to_string(),
            inputs: nl.inputs().len(),
            outputs: nl.output_nets().len(),
            logic_gates: logic,
            by_kind,
            by_block: nl
                .block_names()
                .iter()
                .zip(per_block)
                .map(|(name, gates)| BlockStats {
                    name: name.clone(),
                    gates,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    #[test]
    fn counts_by_block_and_kind() {
        let mut nl = Netlist::new("s", CellLibrary::unit());
        let a = nl.add_input_bus("a", 4);
        nl.begin_block("alpha");
        let x = nl.and(a[0], a[1]);
        let _ = nl.or(x, a[2]);
        nl.begin_block("beta");
        let n = nl.not(a[3]);
        nl.mark_output_bus("o", &[n]);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.inputs, 4);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.logic_gates, 3);
        assert_eq!(s.by_kind["And2"], 1);
        assert_eq!(s.by_kind["Or2"], 1);
        assert_eq!(s.by_kind["Not"], 1);
        let alpha = s.by_block.iter().find(|b| b.name == "alpha").unwrap();
        assert_eq!(alpha.gates, 2);
        let beta = s.by_block.iter().find(|b| b.name == "beta").unwrap();
        assert_eq!(beta.gates, 1);
    }
}
