//! Delay-annotated standard-cell library.

use crate::gate::GateKind;
use serde::{Deserialize, Serialize};

/// A standard-cell library: one nominal propagation delay per cell kind, in
/// nanoseconds.
///
/// This substitutes the NanGate 45 nm CCS library of the paper's flow. The
/// [`CellLibrary::nangate45_like`] corner uses delays representative of a
/// 45 nm process at 1.1 V / 25 °C, including an average fanout/wire load
/// (post-place-and-route netlists fold interconnect delay into effective
/// cell delay, which is the abstraction `tei-timing` consumes).
///
/// ```
/// use tei_netlist::{CellLibrary, GateKind};
/// let lib = CellLibrary::nangate45_like();
/// assert!(lib.delay(GateKind::Xor2) > lib.delay(GateKind::Not));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    delays: [f64; 13],
}

fn slot(kind: GateKind) -> usize {
    match kind {
        GateKind::Input => 0,
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Buf => 3,
        GateKind::Not => 4,
        GateKind::And2 => 5,
        GateKind::Or2 => 6,
        GateKind::Nand2 => 7,
        GateKind::Nor2 => 8,
        GateKind::Xor2 => 9,
        GateKind::Xnor2 => 10,
        GateKind::Mux2 => 11,
        GateKind::Maj3 => 12,
    }
}

impl CellLibrary {
    /// Build a library from an explicit `(kind, delay_ns)` table. Kinds not
    /// listed default to zero delay.
    ///
    /// # Panics
    ///
    /// Panics if any delay is negative or not finite.
    pub fn from_table(name: impl Into<String>, table: &[(GateKind, f64)]) -> Self {
        let mut delays = [0.0; 13];
        for &(kind, d) in table {
            assert!(d.is_finite() && d >= 0.0, "invalid delay {d} for {kind:?}");
            delays[slot(kind)] = d;
        }
        CellLibrary {
            name: name.into(),
            delays,
        }
    }

    /// A 45 nm-class typical corner (1.1 V, 25 °C) with averaged wire load.
    pub fn nangate45_like() -> Self {
        use GateKind::*;
        CellLibrary::from_table(
            "nangate45-like-tt-1v1-25c",
            &[
                (Buf, 0.045),
                (Not, 0.030),
                (And2, 0.050),
                (Or2, 0.055),
                (Nand2, 0.035),
                (Nor2, 0.040),
                (Xor2, 0.075),
                (Xnor2, 0.075),
                (Mux2, 0.070),
                (Maj3, 0.085),
            ],
        )
    }

    /// A unit-delay library (all logic cells 1.0 ns); handy for depth checks.
    pub fn unit() -> Self {
        use GateKind::*;
        let table: Vec<(GateKind, f64)> =
            [Buf, Not, And2, Or2, Nand2, Nor2, Xor2, Xnor2, Mux2, Maj3]
                .into_iter()
                .map(|k| (k, 1.0))
                .collect();
        CellLibrary::from_table("unit", &table)
    }

    /// Library name (corner identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal propagation delay of `kind`, in nanoseconds.
    #[inline]
    pub fn delay(&self, kind: GateKind) -> f64 {
        self.delays[slot(kind)]
    }

    /// A copy of this library with every delay multiplied by `factor`,
    /// e.g. to model a slower corner.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        let mut out = self.clone();
        for d in &mut out.delays {
            *d *= factor;
        }
        out.name = format!("{}*{factor}", self.name);
        out
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::nangate45_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_and_constants_are_free() {
        let lib = CellLibrary::nangate45_like();
        assert_eq!(lib.delay(GateKind::Input), 0.0);
        assert_eq!(lib.delay(GateKind::Const0), 0.0);
        assert_eq!(lib.delay(GateKind::Const1), 0.0);
    }

    #[test]
    fn all_logic_cells_have_positive_delay() {
        let lib = CellLibrary::nangate45_like();
        for &k in GateKind::all_logic() {
            if matches!(k, GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            assert!(lib.delay(k) > 0.0, "{k:?}");
        }
    }

    #[test]
    fn scaling_scales_every_delay() {
        let lib = CellLibrary::nangate45_like();
        let double = lib.scaled(2.0);
        for &k in GateKind::all_logic() {
            assert!((double.delay(k) - 2.0 * lib.delay(k)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_rejected() {
        CellLibrary::from_table("bad", &[(GateKind::Not, -1.0)]);
    }
}
