//! The netlist DAG: gates, ports, blocks, and functional evaluation.

use crate::gate::{Gate, GateKind};
use crate::library::CellLibrary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a net (and of the single gate driving it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Index into the netlist's gate array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The net at gate-array index `i` — inverse of [`NetId::index`].
    /// Nets are densely numbered in creation (= topological) order, so
    /// sweeping `0..netlist.len()` visits every net exactly once.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NetId(u32::try_from(i).expect("net index fits in u32"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a functional block / pipeline stage tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u16);

impl BlockId {
    /// The default block every netlist starts with.
    pub const TOP: BlockId = BlockId(0);

    /// Index into the netlist's block-name table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate-level combinational netlist.
///
/// See the [crate-level documentation](crate) for the construction model and
/// an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    library: CellLibrary,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    input_ports: Vec<(String, Vec<NetId>)>,
    output_ports: Vec<(String, Vec<NetId>)>,
    blocks: Vec<String>,
    current_block: BlockId,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl Netlist {
    /// Create an empty netlist using `library` for gate delays.
    pub fn new(name: impl Into<String>, library: CellLibrary) -> Self {
        Netlist {
            name: name.into(),
            library,
            gates: Vec::new(),
            inputs: Vec::new(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            blocks: vec!["top".to_string()],
            current_block: BlockId::TOP,
            const0: None,
            const1: None,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library delays were drawn from.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Number of gates (including primary inputs and constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// All gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `net`.
    #[inline]
    pub fn gate(&self, net: NetId) -> &Gate {
        &self.gates[net.index()]
    }

    /// Per-net logic depth: inputs and constants at level 0, every
    /// other gate one past its deepest fanin. Computed in one pass over
    /// the (topologically ordered) gate list, so the result is a
    /// deterministic function of the netlist structure — the stable
    /// gate/level order the codegen emitter annotates its straight-line
    /// blocks with.
    pub fn levelize(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let deepest = g.fanin().iter().map(|p| levels[p.index()]).max();
            if let Some(d) = deepest {
                debug_assert!(
                    g.fanin().iter().all(|p| p.index() < i),
                    "netlist must be topologically ordered"
                );
                levels[i] = d + 1;
            }
        }
        levels
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Named input buses in declaration order (LSB-first bit order).
    pub fn input_ports(&self) -> &[(String, Vec<NetId>)] {
        &self.input_ports
    }

    /// Named output buses in declaration order (LSB-first bit order).
    pub fn output_ports(&self) -> &[(String, Vec<NetId>)] {
        &self.output_ports
    }

    /// Look up an input bus by name.
    pub fn input_port(&self, name: &str) -> Option<&[NetId]> {
        self.input_ports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Look up an output bus by name.
    pub fn output_port(&self, name: &str) -> Option<&[NetId]> {
        self.output_ports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// All nets marked as outputs, flattened in port order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.output_ports
            .iter()
            .flat_map(|(_, b)| b.iter().copied())
            .collect()
    }

    // ------------------------------------------------------------------
    // Blocks
    // ------------------------------------------------------------------

    /// Register (or look up) a block tag and make it current: gates created
    /// afterwards are attributed to it. Returns the block id.
    pub fn begin_block(&mut self, name: &str) -> BlockId {
        let id = self.intern_block(name);
        self.current_block = id;
        id
    }

    /// Register a block name without switching to it.
    pub fn intern_block(&mut self, name: &str) -> BlockId {
        if let Some(pos) = self.blocks.iter().position(|b| b == name) {
            return BlockId(pos as u16);
        }
        assert!(self.blocks.len() < u16::MAX as usize, "too many blocks");
        self.blocks.push(name.to_string());
        BlockId((self.blocks.len() - 1) as u16)
    }

    /// Name of a block.
    pub fn block_name(&self, id: BlockId) -> &str {
        &self.blocks[id.index()]
    }

    /// All registered block names, indexed by [`BlockId::index`].
    pub fn block_names(&self) -> &[String] {
        &self.blocks
    }

    /// The block new gates are currently attributed to.
    pub fn current_block(&self) -> BlockId {
        self.current_block
    }

    /// Multiply the delay of every gate in `block` by `factor`.
    ///
    /// This is the calibration hook used by `tei-fpu` to pin each datapath's
    /// static critical delay to its published post-P&R value.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_block_delays(&mut self, block: BlockId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        for g in &mut self.gates {
            if g.block == block {
                g.delay *= factor;
            }
        }
    }

    /// Multiply the delay of every gate by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_all_delays(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        for g in &mut self.gates {
            g.delay *= factor;
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Add a gate of `kind` fed by `pins`. Returns the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the pin count differs from the kind's arity or any pin
    /// refers to a not-yet-created net (which would break the topological
    /// construction invariant).
    pub fn add_gate(&mut self, kind: GateKind, pins: &[NetId]) -> NetId {
        assert_eq!(
            pins.len(),
            kind.arity(),
            "{kind:?} expects {} pins, got {}",
            kind.arity(),
            pins.len()
        );
        let id = NetId(u32::try_from(self.gates.len()).expect("netlist too large"));
        let mut fixed = [NetId(0); 3];
        for (i, &p) in pins.iter().enumerate() {
            assert!(p.0 < id.0, "pin {p} references a future net (gate {id})");
            fixed[i] = p;
        }
        self.gates.push(Gate {
            kind,
            pins: fixed,
            delay: self.library.delay(kind),
            block: self.current_block,
        });
        id
    }

    /// Add one anonymous primary input bit.
    pub fn add_input_bit(&mut self) -> NetId {
        let id = self.add_gate(GateKind::Input, &[]);
        self.inputs.push(id);
        id
    }

    /// Add a named input bus of `width` bits (LSB first). Returns the bus.
    ///
    /// # Panics
    ///
    /// Panics if a port with the same name already exists or `width` is 0.
    pub fn add_input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        assert!(width > 0, "zero-width bus {name}");
        assert!(
            self.input_port(name).is_none(),
            "duplicate input port {name}"
        );
        let bus: Vec<NetId> = (0..width).map(|_| self.add_input_bit()).collect();
        self.input_ports.push((name.to_string(), bus.clone()));
        bus
    }

    /// Declare `bits` (LSB first) as the named output bus.
    ///
    /// # Panics
    ///
    /// Panics if a port with the same name already exists or `bits` is empty.
    pub fn mark_output_bus(&mut self, name: &str, bits: &[NetId]) {
        assert!(!bits.is_empty(), "empty output bus {name}");
        assert!(
            self.output_port(name).is_none(),
            "duplicate output port {name}"
        );
        self.output_ports.push((name.to_string(), bits.to_vec()));
    }

    /// The (cached) constant-0 or constant-1 net.
    pub fn const_bit(&mut self, value: bool) -> NetId {
        if value {
            if let Some(id) = self.const1 {
                return id;
            }
            let id = self.add_gate(GateKind::Const1, &[]);
            self.const1 = Some(id);
            id
        } else {
            if let Some(id) = self.const0 {
                return id;
            }
            let id = self.add_gate(GateKind::Const0, &[]);
            self.const0 = Some(id);
            id
        }
    }

    /// A bus of constant bits encoding `value` (LSB first).
    pub fn const_bus(&mut self, value: u64, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.const_bit((value >> i) & 1 == 1))
            .collect()
    }

    /// A copy of this netlist with every logic gate outside the output
    /// cone removed and nets renumbered densely.
    ///
    /// Primary inputs are always kept (input encoding is positional, so
    /// dropping an unused input bit would shift every caller's vectors);
    /// constants survive only if something in the cone reads them. The
    /// surviving gates keep their delays, block attribution, and
    /// relative (topological) order, and every port is remapped, so any
    /// static or dynamic timing analysis of the output ports is
    /// unchanged — only dead logic disappears. This mirrors the
    /// dead-cell sweep a synthesis flow performs before handoff.
    #[must_use]
    pub fn sweep_dead(&self) -> Netlist {
        let n = self.gates.len();
        let mut live = vec![false; n];
        for (_, bus) in &self.output_ports {
            for b in bus {
                live[b.index()] = true;
            }
        }
        // Pins only reference earlier nets, so one reverse pass closes
        // the cone.
        for i in (0..n).rev() {
            if live[i] {
                for p in self.gates[i].fanin() {
                    live[p.index()] = true;
                }
            }
        }
        for inp in &self.inputs {
            live[inp.index()] = true;
        }
        let mut remap = vec![NetId(0); n];
        let mut gates = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        for (i, g) in self.gates.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let mut ng = *g;
            // Remap all three pin slots; slots beyond the arity are
            // padding whose value is never observed, and the default
            // remap target (net 0) keeps them in bounds.
            for p in &mut ng.pins {
                *p = remap[p.index()];
            }
            remap[i] = NetId(gates.len() as u32);
            gates.push(ng);
        }
        let map_bus =
            |bus: &[NetId]| -> Vec<NetId> { bus.iter().map(|b| remap[b.index()]).collect() };
        let map_const =
            |c: Option<NetId>| c.filter(|id| live[id.index()]).map(|id| remap[id.index()]);
        Netlist {
            name: self.name.clone(),
            library: self.library.clone(),
            inputs: map_bus(&self.inputs),
            input_ports: self
                .input_ports
                .iter()
                .map(|(n, b)| (n.clone(), map_bus(b)))
                .collect(),
            output_ports: self
                .output_ports
                .iter()
                .map(|(n, b)| (n.clone(), map_bus(b)))
                .collect(),
            blocks: self.blocks.clone(),
            current_block: self.current_block,
            const0: map_const(self.const0),
            const1: map_const(self.const1),
            gates,
        }
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Functionally evaluate the netlist given values for every primary
    /// input (in [`Netlist::inputs`] order). Returns per-net values.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the input count.
    pub fn eval(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input bits, got {}",
            self.inputs.len(),
            input_values.len()
        );
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0;
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g.kind {
                GateKind::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                kind => {
                    let a = g.pins[0].index();
                    let b = g.pins[1].index();
                    let c = g.pins[2].index();
                    kind.eval(values[a], values[b], values[c])
                }
            };
        }
        values
    }

    /// Evaluate with named bus values (≤ 64 bits each) and return named
    /// output bus values.
    ///
    /// # Panics
    ///
    /// Panics if a named port is missing, a value overflows its bus, or any
    /// declared input port is left unset.
    pub fn eval_u64(&self, port_values: &[(&str, u64)]) -> BTreeMap<String, u64> {
        let mut input_values = vec![None; self.inputs.len()];
        let index_of: BTreeMap<NetId, usize> = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for &(name, value) in port_values {
            let bus = self
                .input_port(name)
                .unwrap_or_else(|| panic!("no input port {name}"));
            if bus.len() < 64 {
                assert!(
                    value < (1u64 << bus.len()),
                    "value {value:#x} overflows {}-bit port {name}",
                    bus.len()
                );
            }
            for (i, &net) in bus.iter().enumerate() {
                input_values[index_of[&net]] = Some((value >> i) & 1 == 1);
            }
        }
        let resolved: Vec<bool> = input_values
            .into_iter()
            .map(|v| v.expect("unset input bit; pass every declared input port"))
            .collect();
        let values = self.eval(&resolved);
        self.output_ports
            .iter()
            .map(|(name, bus)| (name.clone(), bus_value_u64(&values, bus)))
            .collect()
    }
}

/// Read a bus (≤ 64 bits) out of a per-net value vector.
///
/// # Panics
///
/// Panics if the bus is wider than 64 bits.
pub fn bus_value_u64(values: &[bool], bus: &[NetId]) -> u64 {
    assert!(bus.len() <= 64, "bus too wide for u64");
    bus.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &n)| acc | ((values[n.index()] as u64) << i))
}

/// Read a bus (≤ 128 bits) out of a per-net value vector.
///
/// # Panics
///
/// Panics if the bus is wider than 128 bits.
pub fn bus_value_u128(values: &[bool], bus: &[NetId]) -> u128 {
    assert!(bus.len() <= 128, "bus too wide for u128");
    bus.iter().enumerate().fold(0u128, |acc, (i, &n)| {
        acc | ((values[n.index()] as u128) << i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topological_invariant_enforced() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let b = nl.add_gate(GateKind::Not, &[a]);
        assert_eq!(b.index(), 1);
    }

    #[test]
    #[should_panic(expected = "future net")]
    fn forward_reference_panics() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        // Fabricate a reference to a net that does not exist yet.
        nl.add_gate(GateKind::And2, &[a, NetId(7)]);
    }

    #[test]
    fn constants_are_cached() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let z1 = nl.const_bit(false);
        let z2 = nl.const_bit(false);
        let o1 = nl.const_bit(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
    }

    #[test]
    fn eval_simple_logic() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 1)[0];
        let b = nl.add_input_bus("b", 1)[0];
        let x = nl.add_gate(GateKind::Xor2, &[a, b]);
        nl.mark_output_bus("x", &[x]);
        for (av, bv) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let out = nl.eval_u64(&[("a", av), ("b", bv)]);
            assert_eq!(out["x"], av ^ bv);
        }
    }

    #[test]
    fn block_scaling_only_touches_that_block() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let fast = nl.begin_block("fast");
        let g1 = nl.add_gate(GateKind::Not, &[a]);
        nl.begin_block("slow");
        let g2 = nl.add_gate(GateKind::Not, &[a]);
        nl.scale_block_delays(fast, 0.5);
        assert!((nl.gate(g1).delay - 0.5).abs() < 1e-12);
        assert!((nl.gate(g2).delay - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_dead_preserves_outputs_and_inputs() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 2);
        let b = nl.add_input_bus("b", 2);
        let x = nl.add_gate(GateKind::Xor2, &[a[0], b[0]]);
        // Dead cone: computed, never marked as output.
        let d1 = nl.add_gate(GateKind::And2, &[a[1], b[1]]);
        let _d2 = nl.add_gate(GateKind::Not, &[d1]);
        let y = nl.add_gate(GateKind::Or2, &[x, a[1]]);
        nl.mark_output_bus("y", &[y]);
        let swept = nl.sweep_dead();
        assert_eq!(swept.len(), nl.len() - 2, "two dead gates removed");
        assert_eq!(swept.inputs().len(), 4, "unused inputs survive");
        for (av, bv) in [(0u64, 0u64), (1, 3), (2, 1), (3, 3)] {
            assert_eq!(
                nl.eval_u64(&[("a", av), ("b", bv)]),
                swept.eval_u64(&[("a", av), ("b", bv)]),
            );
        }
        // Delays and block names survive the renumbering.
        let oy = swept.output_port("y").expect("port")[0];
        assert_eq!(swept.gate(oy).kind, GateKind::Or2);
        assert_eq!(swept.gate(oy).delay, nl.gate(y).delay);
        assert_eq!(swept.block_names(), nl.block_names());
        // Sweeping an already-clean netlist is the identity on size.
        assert_eq!(swept.sweep_dead().len(), swept.len());
    }

    #[test]
    fn levelize_tracks_logic_depth() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bit();
        let b = nl.add_input_bit();
        let x = nl.and(a, b); // level 1
        let y = nl.xor(x, a); // level 2
        let k = nl.const_bit(true); // level 0
        let z = nl.or(y, k); // level 3
        nl.mark_output_bus("o", &[z]);
        let levels = nl.levelize();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[k.index()], 0);
        assert_eq!(levels[x.index()], 1);
        assert_eq!(levels[y.index()], 2);
        assert_eq!(levels[z.index()], 3);
        assert_eq!(nl.levelize(), levels, "deterministic");
    }

    #[test]
    #[should_panic(expected = "duplicate input port")]
    fn duplicate_port_rejected() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        nl.add_input_bus("a", 2);
        nl.add_input_bus("a", 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn eval_overflow_rejected() {
        let mut nl = Netlist::new("t", CellLibrary::unit());
        let a = nl.add_input_bus("a", 2);
        nl.mark_output_bus("o", &a);
        nl.eval_u64(&[("a", 4)]);
    }
}
