//! # tei-netlist
//!
//! Gate-level netlist representation and combinational datapath builders.
//!
//! This crate is the circuit substrate of the `tei` cross-layer timing-error
//! framework. It plays the role that a synthesized, placed-and-routed Verilog
//! netlist plays in the paper's EDA flow: a directed acyclic graph of
//! primitive logic cells, each annotated with a propagation delay drawn from
//! a [`CellLibrary`]. Higher layers perform static and dynamic timing
//! analysis over it (`tei-timing`) and generate whole functional-unit
//! datapaths from it (`tei-fpu`).
//!
//! ## Model
//!
//! * Every gate drives exactly one net, identified by a [`NetId`] equal to
//!   the gate's index. Primary inputs are gates of kind [`GateKind::Input`].
//! * Construction order is topological by construction: a gate may only
//!   reference already-created nets. Evaluation and timing analysis are
//!   therefore single forward passes.
//! * Gates carry a [`BlockId`] tag naming the pipeline stage / functional
//!   block they belong to, which the paper's Figure 4 path census groups by.
//!
//! ## Example
//!
//! ```
//! use tei_netlist::{Netlist, CellLibrary};
//!
//! let mut nl = Netlist::new("adder4", CellLibrary::nangate45_like());
//! let a = nl.add_input_bus("a", 4);
//! let b = nl.add_input_bus("b", 4);
//! let zero = nl.const_bit(false);
//! let (sum, carry) = nl.ripple_add(&a, &b, zero);
//! nl.mark_output_bus("sum", &sum);
//! nl.mark_output_bus("carry", &[carry]);
//! let out = nl.eval_u64(&[("a", 7), ("b", 9)]);
//! assert_eq!(out["sum"], (7 + 9) & 0xf);
//! assert_eq!(out["carry"], 1);
//! ```

mod build;
mod gate;
mod library;
mod lint;
mod netlist;
mod stats;
mod verilog;

pub use gate::{Gate, GateKind};
pub use library::CellLibrary;
pub use lint::{lint_module, lint_netlist, LintDiagnostic, LintKind};
pub use netlist::{bus_value_u128, bus_value_u64, BlockId, NetId, Netlist};
pub use stats::{BlockStats, NetlistStats};
pub use verilog::{parse_verilog, to_verilog, ParseError, RawAssign, RawModule, RawNetDecl};
