//! Structural netlist lints.
//!
//! Two entry points share one diagnostic vocabulary:
//!
//! * [`lint_module`] checks a [`RawModule`](crate::RawModule) parsed from
//!   Verilog — the pre-validation form that can still express broken
//!   designs — for combinational loops, floating (referenced but
//!   undriven) nets, multiply-driven nets, logic unreachable from any
//!   output port, and cells without a usable library delay.
//! * [`lint_netlist`] checks a constructed [`Netlist`], where loops,
//!   floating nets and multiple drivers are impossible by construction,
//!   so only the reachability and delay lints apply.
//!
//! Diagnostics are deterministic: within a run they are ordered by
//! [`LintKind`] and then by net name, so golden tests can assert exact
//! sets.

use crate::gate::GateKind;
use crate::library::CellLibrary;
use crate::netlist::Netlist;
use crate::verilog::RawModule;
use std::collections::BTreeMap;

/// The category of a structural lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintKind {
    /// A cycle through combinational cells (no netlist evaluation order
    /// exists; hardware would oscillate or latch).
    CombinationalLoop,
    /// A net that is read by a gate or bound to an output port but has
    /// no driver.
    FloatingNet,
    /// A net driven by more than one source (bus contention).
    MultiDriverNet,
    /// A logic cell whose output cannot reach any output port.
    UnreachableGate,
    /// A cell with no usable delay entry: either an expression that maps
    /// to no library cell at all, or a logic cell whose library delay is
    /// zero (timing analysis would treat it as free).
    MissingDelay,
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LintKind::CombinationalLoop => "combinational-loop",
            LintKind::FloatingNet => "floating-net",
            LintKind::MultiDriverNet => "multi-driver-net",
            LintKind::UnreachableGate => "unreachable-gate",
            LintKind::MissingDelay => "missing-delay",
        };
        f.write_str(s)
    }
}

/// One structural lint finding, naming the nets involved.
///
/// For [`LintKind::CombinationalLoop`] the nets are every member of one
/// strongly-connected component; for the other kinds there is exactly
/// one net per diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintDiagnostic {
    /// Finding category.
    pub kind: LintKind,
    /// Nets involved, sorted by name.
    pub nets: Vec<String>,
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.nets.join(", "))
    }
}

/// Nontrivial strongly-connected components of `adj` (size > 1, or a
/// single node with a self-edge), via iterative Tarjan.
fn nontrivial_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let trivial = scc.len() == 1 && !adj[scc[0]].contains(&scc[0]);
                    if !trivial {
                        out.push(scc);
                    }
                }
            }
        }
    }
    out
}

/// Nets reaching an output: reverse BFS over `rev` (driven → drivers)
/// from the `seeds`.
fn live_from(rev: &[Vec<usize>], seeds: impl Iterator<Item = usize>, n: usize) -> Vec<bool> {
    let mut live = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for s in seeds {
        if !live[s] {
            live[s] = true;
            work.push(s);
        }
    }
    while let Some(v) = work.pop() {
        for &w in &rev[v] {
            if !live[w] {
                live[w] = true;
                work.push(w);
            }
        }
    }
    live
}

fn sort_diags(diags: &mut Vec<LintDiagnostic>) {
    diags.sort();
    diags.dedup();
}

/// Lint a parsed [`RawModule`] against `lib`.
///
/// Checks, in [`LintKind`] order: combinational loops over the
/// assign-graph, floating nets (read by an assign or bound to an output
/// port, but never driven by an assign or input port), multiply-driven
/// nets, assigns whose driven net cannot reach any output-port bit
/// (input-port bindings are exempt, matching the [`lint_netlist`]
/// treatment of unused primary inputs), and assigns with no usable
/// delay (unrecognized expressions, or recognized logic cells with a
/// zero library delay; constants are exempt).
pub fn lint_module(m: &RawModule, lib: &CellLibrary) -> Vec<LintDiagnostic> {
    // Net universe: declared bits plus anything an assign mentions.
    let mut ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut id_of = |name: &str, names: &mut Vec<String>| -> usize {
        if let Some(&i) = ids.get(name) {
            return i;
        }
        let i = names.len();
        ids.insert(name.to_string(), i);
        names.push(name.to_string());
        i
    };
    let mut input_bits: Vec<usize> = Vec::new();
    let mut output_bits: Vec<usize> = Vec::new();
    for d in &m.inputs {
        for b in d.bits() {
            input_bits.push(id_of(&b, &mut names));
        }
    }
    for d in &m.outputs {
        for b in d.bits() {
            output_bits.push(id_of(&b, &mut names));
        }
    }
    for d in &m.wires {
        for b in d.bits() {
            id_of(&b, &mut names);
        }
    }
    struct AssignInfo {
        lhs: usize,
        pins: Vec<usize>,
        cell: Option<GateKind>,
    }
    let assigns: Vec<AssignInfo> = m
        .assigns
        .iter()
        .map(|a| AssignInfo {
            lhs: id_of(&a.lhs, &mut names),
            pins: a.pins.iter().map(|p| id_of(p, &mut names)).collect(),
            cell: a.cell,
        })
        .collect();
    let n = names.len();

    // Driver census: input-port bits count as drivers alongside assigns.
    let mut driver_count = vec![0usize; n];
    for &i in &input_bits {
        driver_count[i] += 1;
    }
    for a in &assigns {
        driver_count[a.lhs] += 1;
    }
    // Read census: assign pins and output-port bindings consume nets.
    let mut read = vec![false; n];
    for a in &assigns {
        for &p in &a.pins {
            read[p] = true;
        }
    }

    // Net graph: pin → lhs per assign; reverse for liveness.
    let mut adj = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for a in &assigns {
        for &p in &a.pins {
            adj[p].push(a.lhs);
            rev[a.lhs].push(p);
        }
    }

    let mut diags = Vec::new();
    for scc in nontrivial_sccs(&adj) {
        let mut nets: Vec<String> = scc.iter().map(|&i| names[i].clone()).collect();
        nets.sort();
        diags.push(LintDiagnostic {
            kind: LintKind::CombinationalLoop,
            nets,
        });
    }
    for i in 0..n {
        let consumed = read[i] || output_bits.contains(&i);
        if consumed && driver_count[i] == 0 {
            diags.push(LintDiagnostic {
                kind: LintKind::FloatingNet,
                nets: vec![names[i].clone()],
            });
        }
        if driver_count[i] > 1 {
            diags.push(LintDiagnostic {
                kind: LintKind::MultiDriverNet,
                nets: vec![names[i].clone()],
            });
        }
    }
    let live = live_from(&rev, output_bits.iter().copied(), n);
    for a in &assigns {
        // Buffers straight off an input-port bit are port bindings, the
        // module-level counterpart of `GateKind::Input` gates: an unused
        // input bit is the caller's business, not dead logic.
        let is_input_binding =
            a.cell == Some(GateKind::Buf) && a.pins.len() == 1 && input_bits.contains(&a.pins[0]);
        if !live[a.lhs] && !is_input_binding {
            diags.push(LintDiagnostic {
                kind: LintKind::UnreachableGate,
                nets: vec![names[a.lhs].clone()],
            });
        }
        let missing = match a.cell {
            None => true,
            Some(GateKind::Const0) | Some(GateKind::Const1) => false,
            Some(kind) => lib.delay(kind) == 0.0,
        };
        if missing {
            diags.push(LintDiagnostic {
                kind: LintKind::MissingDelay,
                nets: vec![names[a.lhs].clone()],
            });
        }
    }
    sort_diags(&mut diags);
    diags
}

/// Lint a constructed [`Netlist`].
///
/// [`Netlist`] construction already rules out loops, floating nets and
/// multiple drivers (gates reference only existing nets and each gate
/// drives exactly its own net), so this pass checks what construction
/// cannot: logic gates whose output reaches no marked output bus, and
/// logic gates carrying a zero delay. Primary inputs and constants are
/// exempt from both (unused input bits of a shared port template and
/// shared constant nets are normal, and both are free by definition).
pub fn lint_netlist(nl: &Netlist) -> Vec<LintDiagnostic> {
    let n = nl.len();
    let mut rev = vec![Vec::new(); n];
    for (i, g) in nl.gates().iter().enumerate() {
        for &p in g.fanin() {
            rev[i].push(p.index());
        }
    }
    let live = live_from(&rev, nl.output_nets().iter().map(|o| o.index()), n);
    let mut diags = Vec::new();
    for (i, g) in nl.gates().iter().enumerate() {
        if matches!(
            g.kind,
            GateKind::Input | GateKind::Const0 | GateKind::Const1
        ) {
            continue;
        }
        if !live[i] {
            diags.push(LintDiagnostic {
                kind: LintKind::UnreachableGate,
                nets: vec![format!("n{i}")],
            });
        }
        if g.delay == 0.0 {
            diags.push(LintDiagnostic {
                kind: LintKind::MissingDelay,
                nets: vec![format!("n{i}")],
            });
        }
    }
    sort_diags(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::{parse_verilog, to_verilog};

    fn kinds(diags: &[LintDiagnostic]) -> Vec<(LintKind, Vec<String>)> {
        diags.iter().map(|d| (d.kind, d.nets.clone())).collect()
    }

    #[test]
    fn clean_module_round_trip() {
        let mut nl = Netlist::new("clean", CellLibrary::nangate45_like());
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        nl.mark_output_bus("sum", &sum);
        nl.mark_output_bus("cout", &[cout]);
        assert_eq!(lint_netlist(&nl), Vec::new());
        let m = parse_verilog(&to_verilog(&nl)).expect("round trip parses");
        assert_eq!(lint_module(&m, &CellLibrary::nangate45_like()), Vec::new());
    }

    #[test]
    fn detects_floating_and_multi_driver() {
        let src = "\
module broken (
  input  wire a,
  output wire y
);
  wire f;
  wire u;
  assign y = a & f; // f floats
  assign u = a;
  assign u = ~a;    // u is driven twice
endmodule
";
        let m = parse_verilog(src).expect("parses");
        let diags = lint_module(&m, &CellLibrary::unit());
        assert_eq!(
            kinds(&diags),
            vec![
                (LintKind::FloatingNet, vec!["f".to_string()]),
                (LintKind::MultiDriverNet, vec!["u".to_string()]),
                // Both drivers of `u` are dead logic; the diagnostics
                // dedup to one finding for the net.
                (LintKind::UnreachableGate, vec!["u".to_string()]),
            ]
        );
    }

    #[test]
    fn detects_combinational_loop() {
        let src = "\
module looped (
  input  wire a,
  output wire y
);
  wire p;
  wire q;
  assign p = q & a;
  assign q = ~p;
  assign y = q;
endmodule
";
        let m = parse_verilog(src).expect("parses");
        let diags = lint_module(&m, &CellLibrary::unit());
        assert_eq!(
            diags,
            vec![LintDiagnostic {
                kind: LintKind::CombinationalLoop,
                nets: vec!["p".to_string(), "q".to_string()],
            }]
        );
    }

    #[test]
    fn unreachable_gate_and_missing_delay() {
        let src = "\
module dead (
  input  wire a,
  input  wire b,
  output wire y
);
  wire d;
  wire z;
  assign d = a & b;  // never reaches y
  assign z = a ^ b;
  assign y = ~z;
endmodule
";
        let m = parse_verilog(src).expect("parses");
        // unit() has real delays: only the dead gate fires.
        let diags = lint_module(&m, &CellLibrary::unit());
        assert_eq!(
            diags,
            vec![LintDiagnostic {
                kind: LintKind::UnreachableGate,
                nets: vec!["d".to_string()],
            }]
        );
        // A zero-delay library additionally flags every logic cell.
        let zero = CellLibrary::from_table("zero", &[]);
        let missing: Vec<Vec<String>> = lint_module(&m, &zero)
            .into_iter()
            .filter(|d| d.kind == LintKind::MissingDelay)
            .map(|d| d.nets)
            .collect();
        assert_eq!(
            missing,
            vec![
                vec!["d".to_string()],
                vec!["y".to_string()],
                vec!["z".to_string()]
            ]
        );
    }

    #[test]
    fn diagnostics_render_with_net_names() {
        let d = LintDiagnostic {
            kind: LintKind::CombinationalLoop,
            nets: vec!["p".into(), "q".into()],
        };
        assert_eq!(d.to_string(), "combinational-loop: p, q");
    }

    use crate::CellLibrary;
}
