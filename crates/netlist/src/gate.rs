//! Primitive gate kinds and single-gate evaluation.

use crate::netlist::NetId;
use serde::{Deserialize, Serialize};

/// Primitive combinational cell kinds.
///
/// Each kind has a fixed arity (number of input pins). [`GateKind::Mux2`]
/// evaluates pin order `[sel, a, b]` to `if sel { b } else { a }`;
/// [`GateKind::Maj3`] is the three-input majority function (a full adder's
/// carry).
///
/// ```
/// use tei_netlist::GateKind;
/// assert_eq!(GateKind::Maj3.arity(), 3);
/// assert!(GateKind::Xor2.eval(true, false, false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input pin (no fanin; value supplied by the testbench).
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer, pins `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
    /// 3-input majority (full-adder carry).
    Maj3,
}

impl GateKind {
    /// Number of input pins this cell kind reads.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::Mux2 | GateKind::Maj3 => 3,
        }
    }

    /// Evaluate the cell function. Unused pins are ignored.
    ///
    /// # Panics
    ///
    /// Panics when called on [`GateKind::Input`], which has no function.
    #[inline]
    pub fn eval(self, a: bool, b: bool, c: bool) -> bool {
        match self {
            GateKind::Input => panic!("primary inputs have no logic function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And2 => a && b,
            GateKind::Or2 => a || b,
            GateKind::Nand2 => !(a && b),
            GateKind::Nor2 => !(a || b),
            GateKind::Xor2 => a ^ b,
            GateKind::Xnor2 => !(a ^ b),
            // pins [sel, a, b]
            GateKind::Mux2 => {
                if a {
                    c
                } else {
                    b
                }
            }
            // Canonical majority form (clippy would rewrite it opaquely).
            #[allow(clippy::nonminimal_bool)]
            GateKind::Maj3 => (a && b) || (a && c) || (b && c),
        }
    }

    /// All evaluable (non-input) kinds, useful for exhaustive tests.
    pub fn all_logic() -> &'static [GateKind] {
        &[
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
            GateKind::Maj3,
        ]
    }
}

/// One instantiated cell. The gate at index `i` of a netlist drives net `i`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Gate {
    /// Cell kind.
    pub kind: GateKind,
    /// Input pins; only the first [`GateKind::arity`] entries are meaningful.
    pub pins: [NetId; 3],
    /// Propagation delay in nanoseconds at the nominal corner.
    pub delay: f64,
    /// Functional block / pipeline stage this gate belongs to.
    pub block: crate::netlist::BlockId,
}

impl Gate {
    /// The meaningful input pins of this gate.
    #[inline]
    pub fn fanin(&self) -> &[NetId] {
        &self.pins[..self.kind.arity()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_sensitivity() {
        // Gates must not depend on pins beyond their arity.
        for &kind in GateKind::all_logic() {
            let ar = kind.arity();
            for bits in 0u8..8 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                let c = bits & 4 != 0;
                let base = kind.eval(a, b, c);
                if ar < 3 {
                    assert_eq!(base, kind.eval(a, b, !c), "{kind:?} reads pin 2");
                }
                if ar < 2 {
                    assert_eq!(base, kind.eval(a, !b, c), "{kind:?} reads pin 1");
                }
                if ar < 1 {
                    assert_eq!(base, kind.eval(!a, b, c), "{kind:?} reads pin 0");
                }
            }
        }
    }

    #[test]
    fn truth_tables() {
        use GateKind::*;
        assert!(!And2.eval(true, false, false));
        assert!(And2.eval(true, true, false));
        assert!(Or2.eval(true, false, false));
        assert!(!Nor2.eval(true, false, false));
        assert!(Nand2.eval(true, false, false));
        assert!(Xor2.eval(true, false, false));
        assert!(!Xor2.eval(true, true, false));
        assert!(Xnor2.eval(true, true, false));
        // Mux2: pins [sel, a, b]
        assert!(!Mux2.eval(false, false, true), "sel=0 picks a");
        assert!(Mux2.eval(true, false, true), "sel=1 picks b");
        // Maj3
        assert!(Maj3.eval(true, true, false));
        assert!(!Maj3.eval(true, false, false));
        assert!(Maj3.eval(true, true, true));
    }

    #[test]
    #[should_panic(expected = "no logic function")]
    fn input_eval_panics() {
        GateKind::Input.eval(false, false, false);
    }
}
