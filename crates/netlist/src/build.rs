//! Combinational datapath builders.
//!
//! These methods extend [`Netlist`] with the RTL-style building blocks the
//! gate-level FPU generators are assembled from: adders, shifters,
//! leading-zero counters, multiplier and divider arrays, and reductions.
//!
//! Buses are `Vec<NetId>` in LSB-first order throughout.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};

impl Netlist {
    // ------------------------------------------------------------------
    // Single-bit primitives
    // ------------------------------------------------------------------

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Not, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Buf, &[a])
    }

    /// 2-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Or2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Xnor2, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Nand2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Nor2, &[a, b])
    }

    /// 2:1 mux: `sel ? b : a`.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Mux2, &[sel, a, b])
    }

    /// 3-input majority.
    pub fn maj(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.add_gate(GateKind::Maj3, &[a, b, c])
    }

    /// 3-input AND.
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let ab = self.and(a, b);
        self.and(ab, c)
    }

    /// 3-input OR.
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let ab = self.or(a, b);
        self.or(ab, c)
    }

    // ------------------------------------------------------------------
    // Bitwise bus operations
    // ------------------------------------------------------------------

    /// Bitwise NOT of a bus.
    pub fn not_bus(&mut self, a: &[NetId]) -> Vec<NetId> {
        a.iter().map(|&x| self.not(x)).collect()
    }

    /// Bitwise AND of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch (also true of the other bitwise bus ops).
    pub fn and_bus(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect()
    }

    /// Bitwise OR of two equal-width buses.
    pub fn or_bus(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.or(x, y)).collect()
    }

    /// Bitwise XOR of two equal-width buses.
    pub fn xor_bus(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// XOR every bit of `a` with the single bit `s` (conditional invert).
    pub fn xor_bit_bus(&mut self, a: &[NetId], s: NetId) -> Vec<NetId> {
        a.iter().map(|&x| self.xor(x, s)).collect()
    }

    /// AND every bit of `a` with the single bit `s` (bus gating).
    pub fn and_bit_bus(&mut self, a: &[NetId], s: NetId) -> Vec<NetId> {
        a.iter().map(|&x| self.and(x, s)).collect()
    }

    /// Per-bit 2:1 mux between equal-width buses: `sel ? b : a`.
    pub fn mux_bus(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    fn reduce(&mut self, bits: &[NetId], kind: GateKind) -> NetId {
        assert!(!bits.is_empty(), "empty reduction");
        let mut layer = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.add_gate(kind, &[pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Balanced OR-reduction tree.
    pub fn or_reduce(&mut self, bits: &[NetId]) -> NetId {
        self.reduce(bits, GateKind::Or2)
    }

    /// Balanced AND-reduction tree.
    pub fn and_reduce(&mut self, bits: &[NetId]) -> NetId {
        self.reduce(bits, GateKind::And2)
    }

    /// Balanced XOR-reduction tree (parity).
    pub fn xor_reduce(&mut self, bits: &[NetId]) -> NetId {
        self.reduce(bits, GateKind::Xor2)
    }

    /// 1 iff the bus is all zeros.
    pub fn is_zero(&mut self, bits: &[NetId]) -> NetId {
        let any = self.or_reduce(bits);
        self.not(any)
    }

    /// 1 iff the two equal-width buses are bit-for-bit equal.
    pub fn eq_bus(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let eq: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_reduce(&eq)
    }

    // ------------------------------------------------------------------
    // Addition and subtraction
    // ------------------------------------------------------------------

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let carry = self.maj(a, b, cin);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Ripple-carry adder over equal-width buses. Returns `(sum, carry_out)`.
    ///
    /// The serial carry chain is deliberate: its data-dependent carry
    /// propagation length is what makes dynamic timing analysis interesting.
    pub fn ripple_add(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// `a - b` over equal-width buses (two's complement).
    /// Returns `(difference, no_borrow)`; `no_borrow == 1` iff `a >= b`.
    pub fn ripple_sub(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        let nb = self.not_bus(b);
        let one = self.const_bit(true);
        self.ripple_add(a, &nb, one)
    }

    /// Increment a bus by one. Returns `(result, carry_out)`.
    pub fn incrementer(&mut self, a: &[NetId]) -> (Vec<NetId>, NetId) {
        let mut carry = self.const_bit(true);
        let mut out = Vec::with_capacity(a.len());
        for &x in a {
            out.push(self.xor(x, carry));
            carry = self.and(x, carry);
        }
        (out, carry)
    }

    /// Two's-complement negation of a bus.
    pub fn negate(&mut self, a: &[NetId]) -> Vec<NetId> {
        let inv = self.not_bus(a);
        self.incrementer(&inv).0
    }

    /// Unsigned `a < b` for equal-width buses.
    pub fn ult(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (_, no_borrow) = self.ripple_sub(a, b);
        self.not(no_borrow)
    }

    /// Inclusive prefix-OR scan (log depth): `out[i] = bits[0] | … | bits[i]`.
    pub fn prefix_or(&mut self, bits: &[NetId]) -> Vec<NetId> {
        self.prefix_scan(bits, GateKind::Or2)
    }

    /// Inclusive prefix-AND scan (log depth): `out[i] = bits[0] & … & bits[i]`.
    pub fn prefix_and(&mut self, bits: &[NetId]) -> Vec<NetId> {
        self.prefix_scan(bits, GateKind::And2)
    }

    /// Kogge-Stone-style inclusive scan with an associative 2-input gate.
    fn prefix_scan(&mut self, bits: &[NetId], kind: GateKind) -> Vec<NetId> {
        assert!(!bits.is_empty(), "empty prefix scan");
        let mut cur = bits.to_vec();
        let mut dist = 1usize;
        while dist < cur.len() {
            let mut next = cur.clone();
            for i in dist..cur.len() {
                next[i] = self.add_gate(kind, &[cur[i], cur[i - dist]]);
            }
            cur = next;
            dist *= 2;
        }
        cur
    }

    /// Kogge-Stone carry-lookahead adder: log-depth carry network, so its
    /// dynamically excited paths track the static critical path closely —
    /// the structure real timing-critical datapaths use. Returns
    /// `(sum, carry_out)`.
    pub fn kogge_stone_add(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let n = a.len();
        let p: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect();
        let mut g: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect();
        let mut gp = p.clone();
        // Parallel-prefix combine: (G, P) ∘ (G', P') = (G | P·G', P·P').
        let mut dist = 1usize;
        while dist < n {
            let (g_prev, p_prev) = (g.clone(), gp.clone());
            for i in dist..n {
                let t = self.and(p_prev[i], g_prev[i - dist]);
                g[i] = self.or(g_prev[i], t);
                gp[i] = self.and(p_prev[i], p_prev[i - dist]);
            }
            dist *= 2;
        }
        // Carry into bit i: G(i-1:0) | P(i-1:0)·cin; carry into bit 0: cin.
        let mut sum = Vec::with_capacity(n);
        let mut carry_in = cin;
        for i in 0..n {
            sum.push(self.xor(p[i], carry_in));
            let pc = self.and(gp[i], cin);
            carry_in = self.or(g[i], pc);
        }
        (sum, carry_in)
    }

    /// Log-depth conditional incrementer: `bus + inc`. Returns
    /// `(result, carry_out)`.
    pub fn fast_increment(&mut self, bus: &[NetId], inc: NetId) -> (Vec<NetId>, NetId) {
        // Carry into bit i = inc & AND(bus[0..i]).
        let scans = self.prefix_and(bus);
        let mut out = Vec::with_capacity(bus.len());
        let mut carry = inc;
        for (i, &b) in bus.iter().enumerate() {
            out.push(self.xor(b, carry));
            carry = self.and(inc, scans[i]);
        }
        (out, carry)
    }

    /// `a - b` with a Kogge-Stone carry network.
    /// Returns `(difference, no_borrow)`; `no_borrow == 1` iff `a >= b`.
    pub fn fast_sub(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        let nb = self.not_bus(b);
        let one = self.const_bit(true);
        self.kogge_stone_add(a, &nb, one)
    }

    /// Unsigned `a < b` with a log-depth comparator.
    pub fn fast_ult(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (_, no_borrow) = self.fast_sub(a, b);
        self.not(no_borrow)
    }

    // ------------------------------------------------------------------
    // Shifters
    // ------------------------------------------------------------------

    /// Logical barrel shifter right by a variable amount; shifted-in bits are
    /// `fill`. Also returns the OR ("sticky") of all shifted-out bits, which
    /// floating-point alignment needs for round/sticky computation.
    ///
    /// Amounts ≥ the bus width shift everything out.
    pub fn barrel_shift_right_sticky(
        &mut self,
        bus: &[NetId],
        amount: &[NetId],
        fill: NetId,
    ) -> (Vec<NetId>, NetId) {
        let w = bus.len();
        let mut cur = bus.to_vec();
        let mut sticky = self.const_bit(false);
        for (stage, &sel) in amount.iter().enumerate() {
            let shift = 1usize << stage;
            // Bits dropped by this stage if it is enabled.
            let dropped: Vec<NetId> = cur.iter().take(shift.min(w)).copied().collect();
            let stage_sticky = self.or_reduce(&dropped);
            let gated = self.and(stage_sticky, sel);
            sticky = self.or(sticky, gated);
            // Shifted version of the current bus.
            let shifted: Vec<NetId> = (0..w)
                .map(|i| if i + shift < w { cur[i + shift] } else { fill })
                .collect();
            cur = self.mux_bus(sel, &cur, &shifted);
            if shift >= w {
                // Further stages shift everything out; keep folding sticky
                // but the data pattern no longer changes shape.
            }
        }
        (cur, sticky)
    }

    /// Logical barrel shifter right (fill = 0), without sticky collection.
    pub fn barrel_shift_right(&mut self, bus: &[NetId], amount: &[NetId]) -> Vec<NetId> {
        let zero = self.const_bit(false);
        self.barrel_shift_right_sticky(bus, amount, zero).0
    }

    /// Logical barrel shifter left by a variable amount (fill = 0).
    ///
    /// Amounts ≥ the bus width shift everything out.
    pub fn barrel_shift_left(&mut self, bus: &[NetId], amount: &[NetId]) -> Vec<NetId> {
        let w = bus.len();
        let zero = self.const_bit(false);
        let mut cur = bus.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            let shift = 1usize << stage;
            let shifted: Vec<NetId> = (0..w)
                .map(|i| if i >= shift { cur[i - shift] } else { zero })
                .collect();
            cur = self.mux_bus(sel, &cur, &shifted);
        }
        cur
    }

    // ------------------------------------------------------------------
    // Counting
    // ------------------------------------------------------------------

    /// Population count. Output width is `ceil(log2(n+1))`.
    pub fn popcount(&mut self, bits: &[NetId]) -> Vec<NetId> {
        assert!(!bits.is_empty(), "empty popcount");
        match bits.len() {
            1 => vec![bits[0]],
            2 => {
                let (s, c) = self.half_adder(bits[0], bits[1]);
                vec![s, c]
            }
            3 => {
                let (s, c) = self.full_adder(bits[0], bits[1], bits[2]);
                vec![s, c]
            }
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let a = self.popcount(lo);
                let b = self.popcount(hi);
                self.add_unequal(&a, &b)
            }
        }
    }

    /// Add two buses of possibly different widths; result is
    /// `max(width) + 1` bits.
    pub fn add_unequal(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        let w = a.len().max(b.len());
        let zero = self.const_bit(false);
        let ax: Vec<NetId> = (0..w).map(|i| a.get(i).copied().unwrap_or(zero)).collect();
        let bx: Vec<NetId> = (0..w).map(|i| b.get(i).copied().unwrap_or(zero)).collect();
        let (mut sum, cout) = self.ripple_add(&ax, &bx, zero);
        sum.push(cout);
        sum
    }

    /// Leading-zero count of a bus (zeros from the MSB end; bus is
    /// LSB-first, so the MSB is the last element). Output width is
    /// `ceil(log2(n+1))`; an all-zero input yields `n`.
    pub fn leading_zero_count(&mut self, bus: &[NetId]) -> Vec<NetId> {
        assert!(!bus.is_empty(), "empty lzc");
        // prefix[k] = OR of the k+1 most significant bits. The serial scan
        // is deliberate: its settle time tracks the leading-zero run length,
        // a key source of data-dependent timing spread in normalization.
        let mut flags = Vec::with_capacity(bus.len());
        let mut prefix: Option<NetId> = None;
        for &bit in bus.iter().rev() {
            let p = match prefix {
                None => bit,
                Some(prev) => self.or(prev, bit),
            };
            prefix = Some(p);
            flags.push(self.not(p));
        }
        self.popcount(&flags)
    }

    // ------------------------------------------------------------------
    // Multiplication
    // ------------------------------------------------------------------

    /// Unsigned array multiplier with carry-save column reduction and a
    /// final ripple adder. Result width is `a.len() + b.len()`.
    pub fn array_multiplier(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert!(!a.is_empty() && !b.is_empty(), "empty multiplier operand");
        let wa = a.len();
        let wb = b.len();
        let wout = wa + wb;
        // Partial products, bucketed by output column.
        let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); wout];
        for (i, &bi) in b.iter().enumerate() {
            for (j, &aj) in a.iter().enumerate() {
                let pp = self.and(aj, bi);
                columns[i + j].push(pp);
            }
        }
        // Carry-save reduction until every column holds at most 2 bits.
        loop {
            let max = columns.iter().map(Vec::len).max().unwrap_or(0);
            if max <= 2 {
                break;
            }
            let mut next: Vec<Vec<NetId>> = vec![Vec::new(); wout + 1];
            for (col, bits) in columns.iter().enumerate() {
                let mut it = bits.chunks(3);
                for chunk in &mut it {
                    match chunk.len() {
                        3 => {
                            let (s, c) = self.full_adder(chunk[0], chunk[1], chunk[2]);
                            next[col].push(s);
                            next[col + 1].push(c);
                        }
                        2 => {
                            let (s, c) = self.half_adder(chunk[0], chunk[1]);
                            next[col].push(s);
                            next[col + 1].push(c);
                        }
                        _ => next[col].push(chunk[0]),
                    }
                }
            }
            next.truncate(wout);
            columns = next;
        }
        // Final carry-propagate add of the two remaining rows.
        let zero = self.const_bit(false);
        let row0: Vec<NetId> = columns
            .iter()
            .map(|c| c.first().copied().unwrap_or(zero))
            .collect();
        let row1: Vec<NetId> = columns
            .iter()
            .map(|c| c.get(1).copied().unwrap_or(zero))
            .collect();
        let (sum, _) = self.ripple_add(&row0, &row1, zero);
        sum
    }

    // ------------------------------------------------------------------
    // Division
    // ------------------------------------------------------------------

    /// Unsigned non-restoring array divider.
    ///
    /// Divides an `n`-bit dividend by an `m`-bit divisor, producing an
    /// `n`-bit quotient and an `m`-bit remainder.
    ///
    /// The divisor must be non-zero for meaningful results (a zero divisor
    /// produces unspecified quotient/remainder values, as in hardware; the
    /// FPU layer detects division by zero before the array).
    pub fn nonrestoring_divider(
        &mut self,
        dividend: &[NetId],
        divisor: &[NetId],
    ) -> (Vec<NetId>, Vec<NetId>) {
        assert!(
            !dividend.is_empty() && !divisor.is_empty(),
            "empty divider operand"
        );
        let n = dividend.len();
        let m = divisor.len();
        let w = m + 2; // partial remainder width (signed)
        let zero = self.const_bit(false);
        // Sign/zero-extended divisor.
        let dext: Vec<NetId> = (0..w)
            .map(|i| divisor.get(i).copied().unwrap_or(zero))
            .collect();
        let mut r: Vec<NetId> = vec![zero; w];
        let mut sign = zero; // R starts at 0 (non-negative)
        let mut quotient = vec![zero; n];
        for i in (0..n).rev() {
            // R = (R << 1) | dividend[i], keeping width w.
            let mut shifted = Vec::with_capacity(w);
            shifted.push(dividend[i]);
            shifted.extend_from_slice(&r[..w - 1]);
            // If R >= 0 subtract the divisor, else add it:
            // operand = D ^ s, cin = s with s = !sign.
            let s = self.not(sign);
            let operand = self.xor_bit_bus(&dext, s);
            let (next, _) = self.ripple_add(&shifted, &operand, s);
            sign = next[w - 1];
            quotient[i] = self.not(sign);
            r = next;
        }
        // Remainder correction: if R is negative, add D back once.
        let gated = self.and_bit_bus(&dext, sign);
        let (fixed, _) = self.ripple_add(&r, &gated, zero);
        (quotient, fixed[..m].to_vec())
    }

    /// Non-restoring divider with a preloaded partial remainder.
    ///
    /// Divides the value `(high << low.len()) | low` by `divisor`, where the
    /// caller guarantees `high < divisor` numerically. Only `low.len()`
    /// array rows are generated (one per quotient bit), which is how the
    /// FPU mantissa divider avoids rows for the quotient bits that are
    /// structurally zero. Returns `(quotient, remainder)` of widths
    /// `low.len()` and `divisor.len()`.
    pub fn nonrestoring_divider_preloaded(
        &mut self,
        high: &[NetId],
        low: &[NetId],
        divisor: &[NetId],
    ) -> (Vec<NetId>, Vec<NetId>) {
        assert!(
            !low.is_empty() && !divisor.is_empty(),
            "empty divider operand"
        );
        let m = divisor.len();
        let n = low.len();
        let w = m + 2;
        assert!(high.len() <= m, "preload must be narrower than the divisor");
        let zero = self.const_bit(false);
        let dext: Vec<NetId> = (0..w)
            .map(|i| divisor.get(i).copied().unwrap_or(zero))
            .collect();
        let mut r: Vec<NetId> = (0..w)
            .map(|i| high.get(i).copied().unwrap_or(zero))
            .collect();
        let mut sign = zero; // high < divisor, so R starts non-negative
        let mut quotient = vec![zero; n];
        for i in (0..n).rev() {
            let mut shifted = Vec::with_capacity(w);
            shifted.push(low[i]);
            shifted.extend_from_slice(&r[..w - 1]);
            let s = self.not(sign);
            let operand = self.xor_bit_bus(&dext, s);
            let (next, _) = self.ripple_add(&shifted, &operand, s);
            sign = next[w - 1];
            quotient[i] = self.not(sign);
            r = next;
        }
        let gated = self.and_bit_bus(&dext, sign);
        let (fixed, _) = self.ripple_add(&r, &gated, zero);
        (quotient, fixed[..m].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::netlist::bus_value_u64;

    fn fresh() -> Netlist {
        Netlist::new("t", CellLibrary::unit())
    }

    /// Evaluate a netlist whose inputs were declared as buses `a` then `b`.
    fn eval2(nl: &Netlist, wa: usize, wb: usize, a: u64, b: u64) -> Vec<bool> {
        let mut bits = Vec::new();
        for i in 0..wa {
            bits.push((a >> i) & 1 == 1);
        }
        for i in 0..wb {
            bits.push((b >> i) & 1 == 1);
        }
        nl.eval(&bits)
    }

    #[test]
    fn ripple_add_matches_integer_add() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let zero = nl.const_bit(false);
        let (sum, cout) = nl.ripple_add(&a, &b, zero);
        for (x, y) in [(0u64, 0u64), (255, 1), (127, 128), (200, 100), (13, 42)] {
            let v = eval2(&nl, 8, 8, x, y);
            assert_eq!(bus_value_u64(&v, &sum), (x + y) & 0xff);
            assert_eq!(v[cout.index()] as u64, (x + y) >> 8);
        }
    }

    #[test]
    fn ripple_sub_matches_integer_sub() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let (diff, no_borrow) = nl.ripple_sub(&a, &b);
        for (x, y) in [(5u64, 3u64), (3, 5), (255, 255), (0, 1), (128, 127)] {
            let v = eval2(&nl, 8, 8, x, y);
            assert_eq!(bus_value_u64(&v, &diff), x.wrapping_sub(y) & 0xff);
            assert_eq!(v[no_borrow.index()], x >= y);
        }
    }

    #[test]
    fn ult_orders_correctly() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 6);
        let b = nl.add_input_bus("b", 6);
        let lt = nl.ult(&a, &b);
        for (x, y) in [(0u64, 0u64), (1, 2), (2, 1), (63, 62), (31, 32)] {
            let v = eval2(&nl, 6, 6, x, y);
            assert_eq!(v[lt.index()], x < y, "{x} < {y}");
        }
    }

    #[test]
    fn incrementer_and_negate() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 8);
        let (inc, _) = nl.incrementer(&a);
        let neg = nl.negate(&a);
        for x in [0u64, 1, 127, 128, 254, 255] {
            let v = eval2(&nl, 8, 0, x, 0);
            assert_eq!(bus_value_u64(&v, &inc), (x + 1) & 0xff);
            assert_eq!(bus_value_u64(&v, &neg), x.wrapping_neg() & 0xff);
        }
    }

    #[test]
    fn shifters_match_integer_shifts() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 16);
        let amt = nl.add_input_bus("amt", 5);
        let right = nl.barrel_shift_right(&a, &amt);
        let left = nl.barrel_shift_left(&a, &amt);
        for (x, s) in [
            (0xffffu64, 4u64),
            (0x8001, 1),
            (0x1234, 12),
            (0xbeef, 0),
            (0xbeef, 16),
            (0xbeef, 31),
        ] {
            let mut bits = Vec::new();
            for i in 0..16 {
                bits.push((x >> i) & 1 == 1);
            }
            for i in 0..5 {
                bits.push((s >> i) & 1 == 1);
            }
            let v = nl.eval(&bits);
            let expect_r = if s >= 16 { 0 } else { x >> s };
            let expect_l = if s >= 16 { 0 } else { (x << s) & 0xffff };
            assert_eq!(bus_value_u64(&v, &right), expect_r, "{x:#x} >> {s}");
            assert_eq!(bus_value_u64(&v, &left), expect_l, "{x:#x} << {s}");
        }
    }

    #[test]
    fn right_shift_sticky_collects_dropped_bits() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 8);
        let amt = nl.add_input_bus("amt", 4);
        let zero = nl.const_bit(false);
        let (_, sticky) = nl.barrel_shift_right_sticky(&a, &amt, zero);
        for (x, s) in [
            (0b0000_0100u64, 2u64),
            (0b0000_0100, 3),
            (0b0000_0011, 2),
            (0b1000_0000, 8),
            (0, 7),
        ] {
            let mut bits = Vec::new();
            for i in 0..8 {
                bits.push((x >> i) & 1 == 1);
            }
            for i in 0..4 {
                bits.push((s >> i) & 1 == 1);
            }
            let v = nl.eval(&bits);
            let dropped_mask = if s >= 64 {
                u64::MAX
            } else {
                (1u64 << s.min(63)) - 1
            };
            let expect = (x & dropped_mask) != 0;
            assert_eq!(v[sticky.index()], expect, "x={x:#b} s={s}");
        }
    }

    #[test]
    fn popcount_small_and_large() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 13);
        let pc = nl.popcount(&a);
        for x in [0u64, 1, 0b1010101010101, 0x1fff, 0b11, 0b1000000000000] {
            let v = eval2(&nl, 13, 0, x, 0);
            assert_eq!(bus_value_u64(&v, &pc), x.count_ones() as u64, "{x:#b}");
        }
    }

    #[test]
    fn lzc_counts_from_msb() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 10);
        let lzc = nl.leading_zero_count(&a);
        for x in [0u64, 1, 0x200, 0x3ff, 0x100, 0x0ff] {
            let v = eval2(&nl, 10, 0, x, 0);
            let expect = if x == 0 {
                10
            } else {
                10 - (64 - x.leading_zeros() as u64)
            };
            assert_eq!(bus_value_u64(&v, &lzc), expect, "{x:#x}");
        }
    }

    #[test]
    fn multiplier_matches_integer_multiply() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 7);
        let b = nl.add_input_bus("b", 9);
        let p = nl.array_multiplier(&a, &b);
        assert_eq!(p.len(), 16);
        for (x, y) in [
            (0u64, 0u64),
            (1, 1),
            (127, 511),
            (100, 300),
            (85, 170),
            (127, 1),
        ] {
            let v = eval2(&nl, 7, 9, x, y);
            assert_eq!(bus_value_u64(&v, &p), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn divider_matches_integer_division() {
        let mut nl = fresh();
        let n = nl.add_input_bus("n", 12);
        let d = nl.add_input_bus("d", 6);
        let (q, r) = nl.nonrestoring_divider(&n, &d);
        assert_eq!(q.len(), 12);
        assert_eq!(r.len(), 6);
        for (x, y) in [
            (0u64, 1u64),
            (100, 7),
            (4095, 63),
            (4095, 1),
            (63, 63),
            (62, 63),
            (1000, 3),
            (2048, 32),
        ] {
            let v = eval2(&nl, 12, 6, x, y);
            assert_eq!(bus_value_u64(&v, &q), x / y, "{x}/{y} quotient");
            assert_eq!(bus_value_u64(&v, &r), x % y, "{x}%{y} remainder");
        }
    }

    #[test]
    fn reductions() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 5);
        let o = nl.or_reduce(&a);
        let an = nl.and_reduce(&a);
        let x = nl.xor_reduce(&a);
        let z = nl.is_zero(&a);
        for v in [0u64, 1, 0b11111, 0b10101, 0b01000] {
            let vals = eval2(&nl, 5, 0, v, 0);
            assert_eq!(vals[o.index()], v != 0);
            assert_eq!(vals[an.index()], v == 0b11111);
            assert_eq!(vals[x.index()], v.count_ones() % 2 == 1);
            assert_eq!(vals[z.index()], v == 0);
        }
    }

    #[test]
    fn eq_bus_detects_equality() {
        let mut nl = fresh();
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let eq = nl.eq_bus(&a, &b);
        for (x, y) in [(1u64, 1u64), (1, 2), (255, 255), (0, 128)] {
            let v = eval2(&nl, 8, 8, x, y);
            assert_eq!(v[eq.index()], x == y);
        }
    }
}
