//! Architectural register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer register (`x0`–`x31`); `x0` is hardwired to zero.
///
/// ABI aliases follow RISC-V conventions (`a0`–`a7` arguments, `t*`
/// temporaries, `s*` saved, `sp` stack pointer, `ra` return address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Construct from a register number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "register number out of range");
        Reg(n)
    }

    /// The register number (0–31).
    pub const fn num(self) -> u8 {
        self.0
    }

    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7 / syscall number.
    pub const A7: Reg = Reg(17);
    /// Saved 2.
    pub const S2: Reg = Reg(18);
    /// Saved 3.
    pub const S3: Reg = Reg(19);
    /// Saved 4.
    pub const S4: Reg = Reg(20);
    /// Saved 5.
    pub const S5: Reg = Reg(21);
    /// Saved 6.
    pub const S6: Reg = Reg(22);
    /// Saved 7.
    pub const S7: Reg = Reg(23);
    /// Saved 8.
    pub const S8: Reg = Reg(24);
    /// Saved 9.
    pub const S9: Reg = Reg(25);
    /// Saved 10.
    pub const S10: Reg = Reg(26);
    /// Saved 11.
    pub const S11: Reg = Reg(27);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// Parse an assembler name (`x7`, `a0`, `sp`, ...).
    pub fn parse(s: &str) -> Option<Reg> {
        let names = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        if let Some(pos) = names.iter().position(|&n| n == s) {
            return Some(Reg(pos as u8));
        }
        let n: u8 = s.strip_prefix('x')?.parse().ok()?;
        (n < 32).then_some(Reg(n))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point register (`f0`–`f31`), holding 64 raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FReg(u8);

impl FReg {
    /// Construct from a register number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> FReg {
        assert!(n < 32, "fp register number out of range");
        FReg(n)
    }

    /// The register number (0–31).
    pub const fn num(self) -> u8 {
        self.0
    }

    /// Parse an assembler name (`f3`).
    pub fn parse(s: &str) -> Option<FReg> {
        let n: u8 = s.strip_prefix('f')?.parse().ok()?;
        (n < 32).then_some(FReg(n))
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// All 32 FP register constants `F0`..`F31` are available via [`FReg::new`];
/// a few common ones are named for convenience.
impl FReg {
    /// FP temporary 0.
    pub const F0: FReg = FReg(0);
    /// FP temporary 1.
    pub const F1: FReg = FReg(1);
    /// FP temporary 2.
    pub const F2: FReg = FReg(2);
    /// FP temporary 3.
    pub const F3: FReg = FReg(3);
    /// FP temporary 4.
    pub const F4: FReg = FReg(4);
    /// FP temporary 5.
    pub const F5: FReg = FReg(5);
    /// FP temporary 6.
    pub const F6: FReg = FReg(6);
    /// FP temporary 7.
    pub const F7: FReg = FReg(7);
    /// FP saved 0.
    pub const F8: FReg = FReg(8);
    /// FP saved 1.
    pub const F9: FReg = FReg(9);
    /// FP argument 0.
    pub const F10: FReg = FReg(10);
    /// FP argument 1.
    pub const F11: FReg = FReg(11);
    /// FP argument 2.
    pub const F12: FReg = FReg(12);
    /// FP argument 3.
    pub const F13: FReg = FReg(13);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_aliases_and_numbers() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("a0"), Some(Reg::A0));
        assert_eq!(Reg::parse("x31"), Some(Reg::T6));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("f1"), None);
        assert_eq!(FReg::parse("f9"), Some(FReg::new(9)));
        assert_eq!(FReg::parse("f32"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_bounds_checked() {
        Reg::new(32);
    }
}
