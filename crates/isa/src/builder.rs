//! Programmatic assembler: the API the benchmark kernels are written in.

use crate::instr::Instr;
use crate::program::{Program, Syscall, DATA_BASE};
use crate::reg::{FReg, Reg};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Fix {
    Branch,
    Jal,
}

/// Builds a [`Program`] instruction by instruction, with labels, data
/// directives, and pseudo-instructions.
///
/// ```
/// use tei_isa::{ProgramBuilder, Reg};
///
/// let mut p = ProgramBuilder::new();
/// let done = p.label();
/// p.li(Reg::T0, 10);
/// let head = p.here();
/// p.addi(Reg::T1, Reg::T1, 1);
/// p.addi(Reg::T0, Reg::T0, -1);
/// p.bne(Reg::T0, Reg::ZERO, head);
/// p.bind(done);
/// p.halt();
/// let prog = p.finish();
/// assert!(prog.len() > 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    text: Vec<Instr>,
    data: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, Fix)>,
}

impl ProgramBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.text.len());
    }

    /// A label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current instruction index.
    pub fn pc(&self) -> usize {
        self.text.len()
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) {
        self.text.push(i);
    }

    /// Finalize: patch label references and return the program.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or branch offsets that overflow their field.
    pub fn finish(self) -> Program {
        let ProgramBuilder {
            mut text,
            data,
            labels,
            fixups,
        } = self;
        for (at, label, kind) in fixups {
            let target = labels[label.0].expect("unbound label") as i64;
            let off = target - at as i64;
            match (&mut text[at], kind) {
                (Instr::Beq { off: o, .. }, Fix::Branch)
                | (Instr::Bne { off: o, .. }, Fix::Branch)
                | (Instr::Blt { off: o, .. }, Fix::Branch)
                | (Instr::Bge { off: o, .. }, Fix::Branch)
                | (Instr::Bltu { off: o, .. }, Fix::Branch)
                | (Instr::Bgeu { off: o, .. }, Fix::Branch) => {
                    *o = i16::try_from(off).expect("branch offset overflow");
                }
                (Instr::Jal { off: o, .. }, Fix::Jal) => {
                    *o = i32::try_from(off).expect("jump offset overflow");
                }
                other => panic!("fixup on non-branch {other:?}"),
            }
        }
        Program {
            text,
            data,
            entry: 0,
        }
    }

    // ---------------- data directives ----------------

    /// Align the data cursor to `n` bytes.
    pub fn align(&mut self, n: usize) {
        while !self.data.len().is_multiple_of(n) {
            self.data.push(0);
        }
    }

    /// Current data address.
    pub fn data_addr(&self) -> u64 {
        DATA_BASE + self.data.len() as u64
    }

    /// Append raw bytes; returns their address.
    pub fn bytes(&mut self, b: &[u8]) -> u64 {
        let addr = self.data_addr();
        self.data.extend_from_slice(b);
        addr
    }

    /// Append a 64-bit little-endian word; returns its address.
    pub fn dword(&mut self, x: u64) -> u64 {
        self.align(8);
        self.bytes(&x.to_le_bytes())
    }

    /// Append an `f64`; returns its address.
    pub fn double(&mut self, x: f64) -> u64 {
        self.dword(x.to_bits())
    }

    /// Append a slice of `f64`s; returns the base address.
    pub fn doubles(&mut self, xs: &[f64]) -> u64 {
        self.align(8);
        let addr = self.data_addr();
        for &x in xs {
            self.bytes(&x.to_bits().to_le_bytes());
        }
        addr
    }

    /// Append a slice of `u64`s; returns the base address.
    pub fn dwords(&mut self, xs: &[u64]) -> u64 {
        self.align(8);
        let addr = self.data_addr();
        for &x in xs {
            self.bytes(&x.to_le_bytes());
        }
        addr
    }

    /// Reserve `n` zero bytes; returns the base address.
    pub fn zeros(&mut self, n: usize) -> u64 {
        let addr = self.data_addr();
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    // ---------------- pseudo-instructions ----------------

    /// Load an arbitrary 64-bit immediate (1–6 instructions).
    pub fn li(&mut self, rd: Reg, imm: i64) {
        if let Ok(small) = i16::try_from(imm) {
            self.addi(rd, Reg::ZERO, small);
            return;
        }
        let u = imm as u64;
        if u <= u32::MAX as u64 {
            self.movhi(rd, (u >> 16) as u16);
            self.ori(rd, rd, (u & 0xffff) as u16 as i16);
            return;
        }
        self.movhi(rd, (u >> 48) as u16);
        self.ori(rd, rd, (u >> 32 & 0xffff) as u16 as i16);
        self.slli(rd, rd, 16);
        self.ori(rd, rd, (u >> 16 & 0xffff) as u16 as i16);
        self.slli(rd, rd, 16);
        self.ori(rd, rd, (u & 0xffff) as u16 as i16);
    }

    /// Load an address (alias of [`ProgramBuilder::li`]).
    pub fn la(&mut self, rd: Reg, addr: u64) {
        self.li(rd, addr as i64);
    }

    /// Load an `f64` constant into an FP register via `tmp`.
    pub fn fli(&mut self, fd: FReg, value: f64, tmp: Reg) {
        self.li(tmp, value.to_bits() as i64);
        self.push(Instr::FmvDX { fd, rs1: tmp });
    }

    /// Register move.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// No-operation.
    pub fn nop(&mut self) {
        self.addi(Reg::ZERO, Reg::ZERO, 0);
    }

    /// Call a label (link in `ra`).
    pub fn call(&mut self, target: Label) {
        let at = self.text.len();
        self.push(Instr::Jal {
            rd: Reg::RA,
            off: 0,
        });
        self.fixups.push((at, target, Fix::Jal));
    }

    /// Return through `ra`.
    pub fn ret(&mut self) {
        self.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            imm: 0,
        });
    }

    /// Unconditional jump to a label.
    pub fn j(&mut self, target: Label) {
        let at = self.text.len();
        self.push(Instr::Jal {
            rd: Reg::ZERO,
            off: 0,
        });
        self.fixups.push((at, target, Fix::Jal));
    }

    /// Invoke environment service `s` (clobbers `a7`).
    pub fn syscall(&mut self, s: Syscall) {
        self.li(Reg::A7, s as i64);
        self.push(Instr::Ecall);
    }

    /// Exit with a constant code (clobbers `a0`, `a7`).
    pub fn exit(&mut self, code: i64) {
        self.li(Reg::A0, code);
        self.syscall(Syscall::Exit);
    }

    /// Stop the machine.
    pub fn halt(&mut self) {
        self.push(Instr::Halt);
    }
}

macro_rules! r_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, rs1, rs2`.")]
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                    self.push(Instr::$variant { rd, rs1, rs2 });
                }
            )*
        }
    };
}

r_type! {
    add => Add, sub => Sub, and => And, or => Or, xor => Xor,
    sll => Sll, srl => Srl, sra => Sra, slt => Slt, sltu => Sltu,
    mul => Mul, div => Div, rem => Rem,
}

macro_rules! i_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, rs1, imm`.")]
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i16) {
                    self.push(Instr::$variant { rd, rs1, imm });
                }
            )*
        }
    };
}

i_type! {
    addi => Addi, andi => Andi, ori => Ori, xori => Xori, slti => Slti,
}

macro_rules! sh_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, rs1, shamt`.")]
                pub fn $name(&mut self, rd: Reg, rs1: Reg, shamt: u8) {
                    self.push(Instr::$variant { rd, rs1, shamt });
                }
            )*
        }
    };
}

sh_type! { slli => Slli, srli => Srli, srai => Srai }

macro_rules! load_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, off(rs1)`.")]
                pub fn $name(&mut self, rd: Reg, off: i16, rs1: Reg) {
                    self.push(Instr::$variant { rd, rs1, off });
                }
            )*
        }
    };
}

load_type! { ld => Ld, lw => Lw, lwu => Lwu, lb => Lb, lbu => Lbu }

macro_rules! store_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rs2, off(rs1)`.")]
                pub fn $name(&mut self, rs2: Reg, off: i16, rs1: Reg) {
                    self.push(Instr::$variant { rs2, rs1, off });
                }
            )*
        }
    };
}

store_type! { sd => Sd, sw => Sw, sb => Sb }

macro_rules! branch_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rs1, rs2, label`.")]
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: Label) {
                    let at = self.text.len();
                    self.push(Instr::$variant { rs1, rs2, off: 0 });
                    self.fixups.push((at, target, Fix::Branch));
                }
            )*
        }
    };
}

branch_type! {
    beq => Beq, bne => Bne, blt => Blt, bge => Bge, bltu => Bltu, bgeu => Bgeu,
}

macro_rules! fp_r_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " fd, fs1, fs2`.")]
                pub fn $name(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
                    self.push(Instr::$variant { fd, fs1, fs2 });
                }
            )*
        }
    };
}

fp_r_type! {
    fadd_d => FaddD, fsub_d => FsubD, fmul_d => FmulD, fdiv_d => FdivD,
    fadd_s => FaddS, fsub_s => FsubS, fmul_s => FmulS, fdiv_s => FdivS,
}

macro_rules! fp_cmp_type {
    ($($name:ident => $variant:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, fs1, fs2`.")]
                pub fn $name(&mut self, rd: Reg, fs1: FReg, fs2: FReg) {
                    self.push(Instr::$variant { rd, fs1, fs2 });
                }
            )*
        }
    };
}

fp_cmp_type! { feq_d => FeqD, flt_d => FltD, fle_d => FleD }

impl ProgramBuilder {
    /// Emit `movhi rd, imm` (`rd = imm << 16`).
    pub fn movhi(&mut self, rd: Reg, imm: u16) {
        self.push(Instr::Movhi { rd, imm });
    }

    /// Emit `fld fd, off(rs1)`.
    pub fn fld(&mut self, fd: FReg, off: i16, rs1: Reg) {
        self.push(Instr::Fld { fd, rs1, off });
    }

    /// Emit `flw fd, off(rs1)`.
    pub fn flw(&mut self, fd: FReg, off: i16, rs1: Reg) {
        self.push(Instr::Flw { fd, rs1, off });
    }

    /// Emit `fsd fs, off(rs1)`.
    pub fn fsd(&mut self, fs: FReg, off: i16, rs1: Reg) {
        self.push(Instr::Fsd { fs, rs1, off });
    }

    /// Emit `fsw fs, off(rs1)`.
    pub fn fsw(&mut self, fs: FReg, off: i16, rs1: Reg) {
        self.push(Instr::Fsw { fs, rs1, off });
    }

    /// Emit `fcvt.d.l fd, rs1` (signed i64 → f64).
    pub fn fcvt_d_l(&mut self, fd: FReg, rs1: Reg) {
        self.push(Instr::FcvtDL { fd, rs1 });
    }

    /// Emit `fcvt.l.d rd, fs1` (f64 → signed i64, truncating).
    pub fn fcvt_l_d(&mut self, rd: Reg, fs1: FReg) {
        self.push(Instr::FcvtLD { rd, fs1 });
    }

    /// Emit `fcvt.s.w fd, rs1` (signed i32 → f32).
    pub fn fcvt_s_w(&mut self, fd: FReg, rs1: Reg) {
        self.push(Instr::FcvtSW { fd, rs1 });
    }

    /// Emit `fcvt.w.s rd, fs1` (f32 → signed i32, truncating).
    pub fn fcvt_w_s(&mut self, rd: Reg, fs1: FReg) {
        self.push(Instr::FcvtWS { rd, fs1 });
    }

    /// Emit `fmv.d fd, fs1`.
    pub fn fmv_d(&mut self, fd: FReg, fs1: FReg) {
        self.push(Instr::FmvD { fd, fs1 });
    }

    /// Emit `fneg.d fd, fs1`.
    pub fn fneg_d(&mut self, fd: FReg, fs1: FReg) {
        self.push(Instr::FnegD { fd, fs1 });
    }

    /// Emit `fabs.d fd, fs1`.
    pub fn fabs_d(&mut self, fd: FReg, fs1: FReg) {
        self.push(Instr::FabsD { fd, fs1 });
    }

    /// Emit `fmv.x.d rd, fs1` (raw bits f→x).
    pub fn fmv_x_d(&mut self, rd: Reg, fs1: FReg) {
        self.push(Instr::FmvXD { rd, fs1 });
    }

    /// Emit `fmv.d.x fd, rs1` (raw bits x→f).
    pub fn fmv_d_x(&mut self, fd: FReg, rs1: Reg) {
        self.push(Instr::FmvDX { fd, rs1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_fixups_resolve_both_directions() {
        let mut p = ProgramBuilder::new();
        let fwd = p.label();
        let back = p.here(); // pc 0
        p.nop(); // 0 actually: here() binds before nop... pc of nop = 0
        p.beq(Reg::ZERO, Reg::ZERO, fwd); // pc 1
        p.bne(Reg::T0, Reg::T1, back); // pc 2
        p.bind(fwd); // pc 3
        p.halt();
        let prog = p.finish();
        match prog.text[1] {
            Instr::Beq { off, .. } => assert_eq!(off, 2, "forward to pc 3"),
            ref other => panic!("{other:?}"),
        }
        match prog.text[2] {
            Instr::Bne { off, .. } => assert_eq!(off, -2, "backward to pc 0"),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.label();
        p.j(l);
        p.finish();
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let mut p = ProgramBuilder::new();
        let a = p.bytes(&[1, 2, 3]);
        let b = p.dword(0xdead_beef);
        let c = p.double(1.5);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b, DATA_BASE + 8, "aligned to 8");
        assert_eq!(c, b + 8);
        let prog = p.finish();
        assert_eq!(&prog.data[8..16], &0xdead_beefu64.to_le_bytes());
        assert_eq!(&prog.data[16..24], &1.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn li_picks_minimal_sequences() {
        let count = |imm: i64| {
            let mut p = ProgramBuilder::new();
            p.li(Reg::T0, imm);
            p.finish().len()
        };
        assert_eq!(count(7), 1);
        assert_eq!(count(-5), 1);
        assert_eq!(count(0x1234_5678), 2);
        assert_eq!(count(0x1234_5678_9abc_def0), 6);
        assert_eq!(count(-1), 1, "sign-extending addi covers -1");
        assert_eq!(count(i64::MIN), 6);
    }
}
