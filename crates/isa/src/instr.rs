//! The instruction set.
//!
//! A RISC-style 64-bit ISA with exactly the twelve floating-point
//! arithmetic operations the paper models (add/sub/mul/div/I2F/F2I in
//! single and double precision), plus the integer, memory, and control
//! instructions the benchmark kernels need. Branch and jump offsets are in
//! units of instructions, relative to the branch itself.

use crate::reg::{FReg, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;
use tei_softfloat::{FpOp, FpOpKind, Precision};

/// One architectural instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings follow standard RISC conventions
pub enum Instr {
    // ---- integer register-register -------------------------------------
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Slt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sltu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Div {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Rem {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },

    // ---- integer immediate ----------------------------------------------
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    Slti {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    Slli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Srli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Srai {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    /// `rd = zext(imm) << 16`.
    Movhi {
        rd: Reg,
        imm: u16,
    },

    // ---- memory -----------------------------------------------------------
    Ld {
        rd: Reg,
        rs1: Reg,
        off: i16,
    },
    Lw {
        rd: Reg,
        rs1: Reg,
        off: i16,
    },
    Lwu {
        rd: Reg,
        rs1: Reg,
        off: i16,
    },
    Lb {
        rd: Reg,
        rs1: Reg,
        off: i16,
    },
    Lbu {
        rd: Reg,
        rs1: Reg,
        off: i16,
    },
    Sd {
        rs2: Reg,
        rs1: Reg,
        off: i16,
    },
    Sw {
        rs2: Reg,
        rs1: Reg,
        off: i16,
    },
    Sb {
        rs2: Reg,
        rs1: Reg,
        off: i16,
    },
    Fld {
        fd: FReg,
        rs1: Reg,
        off: i16,
    },
    Flw {
        fd: FReg,
        rs1: Reg,
        off: i16,
    },
    Fsd {
        fs: FReg,
        rs1: Reg,
        off: i16,
    },
    Fsw {
        fs: FReg,
        rs1: Reg,
        off: i16,
    },

    // ---- control ----------------------------------------------------------
    Beq {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Bne {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Blt {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Bge {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Bltu {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Bgeu {
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },
    Jal {
        rd: Reg,
        off: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },

    // ---- the twelve modeled FP operations ---------------------------------
    FaddD {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FsubD {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FmulD {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FdivD {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `fd = (f64) rs1` (signed 64-bit integer to double).
    FcvtDL {
        fd: FReg,
        rs1: Reg,
    },
    /// `rd = (i64) fs1` (double to signed integer, truncating).
    FcvtLD {
        rd: Reg,
        fs1: FReg,
    },
    FaddS {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FsubS {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FmulS {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    FdivS {
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    /// `fd = (f32) rs1` (signed 32-bit integer to single).
    FcvtSW {
        fd: FReg,
        rs1: Reg,
    },
    /// `rd = (i32) fs1` (single to signed integer, truncating).
    FcvtWS {
        rd: Reg,
        fs1: FReg,
    },

    // ---- FP support ---------------------------------------------------------
    FmvD {
        fd: FReg,
        fs1: FReg,
    },
    FnegD {
        fd: FReg,
        fs1: FReg,
    },
    FabsD {
        fd: FReg,
        fs1: FReg,
    },
    /// Raw bit move f→x.
    FmvXD {
        rd: Reg,
        fs1: FReg,
    },
    /// Raw bit move x→f.
    FmvDX {
        fd: FReg,
        rs1: Reg,
    },
    FeqD {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    FltD {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    FleD {
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },

    // ---- system -------------------------------------------------------------
    /// Environment call; `a7` selects the service (see `tei-uarch`).
    Ecall,
    /// Stop the machine.
    Halt,
}

impl Instr {
    /// If this instruction is one of the twelve modeled FPU operations,
    /// return it — the hook the timing-error injector keys on.
    pub fn fp_op(&self) -> Option<FpOp> {
        use FpOpKind::*;
        use Precision::*;
        Some(match self {
            Instr::FaddD { .. } => FpOp::new(Add, Double),
            Instr::FsubD { .. } => FpOp::new(Sub, Double),
            Instr::FmulD { .. } => FpOp::new(Mul, Double),
            Instr::FdivD { .. } => FpOp::new(Div, Double),
            Instr::FcvtDL { .. } => FpOp::new(ItoF, Double),
            Instr::FcvtLD { .. } => FpOp::new(FtoI, Double),
            Instr::FaddS { .. } => FpOp::new(Add, Single),
            Instr::FsubS { .. } => FpOp::new(Sub, Single),
            Instr::FmulS { .. } => FpOp::new(Mul, Single),
            Instr::FdivS { .. } => FpOp::new(Div, Single),
            Instr::FcvtSW { .. } => FpOp::new(ItoF, Single),
            Instr::FcvtWS { .. } => FpOp::new(FtoI, Single),
            _ => return None,
        })
    }

    /// True for conditional branches and jumps.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blt { .. }
                | Instr::Bge { .. }
                | Instr::Bltu { .. }
                | Instr::Bgeu { .. }
                | Instr::Jal { .. }
                | Instr::Jalr { .. }
        )
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. }
                | Instr::Lw { .. }
                | Instr::Lwu { .. }
                | Instr::Lb { .. }
                | Instr::Lbu { .. }
                | Instr::Sd { .. }
                | Instr::Sw { .. }
                | Instr::Sb { .. }
                | Instr::Fld { .. }
                | Instr::Flw { .. }
                | Instr::Fsd { .. }
                | Instr::Fsw { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Rem { rd, rs1, rs2 } => write!(f, "rem {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Movhi { rd, imm } => write!(f, "movhi {rd}, {imm:#x}"),
            Ld { rd, rs1, off } => write!(f, "ld {rd}, {off}({rs1})"),
            Lw { rd, rs1, off } => write!(f, "lw {rd}, {off}({rs1})"),
            Lwu { rd, rs1, off } => write!(f, "lwu {rd}, {off}({rs1})"),
            Lb { rd, rs1, off } => write!(f, "lb {rd}, {off}({rs1})"),
            Lbu { rd, rs1, off } => write!(f, "lbu {rd}, {off}({rs1})"),
            Sd { rs2, rs1, off } => write!(f, "sd {rs2}, {off}({rs1})"),
            Sw { rs2, rs1, off } => write!(f, "sw {rs2}, {off}({rs1})"),
            Sb { rs2, rs1, off } => write!(f, "sb {rs2}, {off}({rs1})"),
            Fld { fd, rs1, off } => write!(f, "fld {fd}, {off}({rs1})"),
            Flw { fd, rs1, off } => write!(f, "flw {fd}, {off}({rs1})"),
            Fsd { fs, rs1, off } => write!(f, "fsd {fs}, {off}({rs1})"),
            Fsw { fs, rs1, off } => write!(f, "fsw {fs}, {off}({rs1})"),
            Beq { rs1, rs2, off } => write!(f, "beq {rs1}, {rs2}, {off}"),
            Bne { rs1, rs2, off } => write!(f, "bne {rs1}, {rs2}, {off}"),
            Blt { rs1, rs2, off } => write!(f, "blt {rs1}, {rs2}, {off}"),
            Bge { rs1, rs2, off } => write!(f, "bge {rs1}, {rs2}, {off}"),
            Bltu { rs1, rs2, off } => write!(f, "bltu {rs1}, {rs2}, {off}"),
            Bgeu { rs1, rs2, off } => write!(f, "bgeu {rs1}, {rs2}, {off}"),
            Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            FaddD { fd, fs1, fs2 } => write!(f, "fadd.d {fd}, {fs1}, {fs2}"),
            FsubD { fd, fs1, fs2 } => write!(f, "fsub.d {fd}, {fs1}, {fs2}"),
            FmulD { fd, fs1, fs2 } => write!(f, "fmul.d {fd}, {fs1}, {fs2}"),
            FdivD { fd, fs1, fs2 } => write!(f, "fdiv.d {fd}, {fs1}, {fs2}"),
            FcvtDL { fd, rs1 } => write!(f, "fcvt.d.l {fd}, {rs1}"),
            FcvtLD { rd, fs1 } => write!(f, "fcvt.l.d {rd}, {fs1}"),
            FaddS { fd, fs1, fs2 } => write!(f, "fadd.s {fd}, {fs1}, {fs2}"),
            FsubS { fd, fs1, fs2 } => write!(f, "fsub.s {fd}, {fs1}, {fs2}"),
            FmulS { fd, fs1, fs2 } => write!(f, "fmul.s {fd}, {fs1}, {fs2}"),
            FdivS { fd, fs1, fs2 } => write!(f, "fdiv.s {fd}, {fs1}, {fs2}"),
            FcvtSW { fd, rs1 } => write!(f, "fcvt.s.w {fd}, {rs1}"),
            FcvtWS { rd, fs1 } => write!(f, "fcvt.w.s {rd}, {fs1}"),
            FmvD { fd, fs1 } => write!(f, "fmv.d {fd}, {fs1}"),
            FnegD { fd, fs1 } => write!(f, "fneg.d {fd}, {fs1}"),
            FabsD { fd, fs1 } => write!(f, "fabs.d {fd}, {fs1}"),
            FmvXD { rd, fs1 } => write!(f, "fmv.x.d {rd}, {fs1}"),
            FmvDX { fd, rs1 } => write!(f, "fmv.d.x {fd}, {rs1}"),
            FeqD { rd, fs1, fs2 } => write!(f, "feq.d {rd}, {fs1}, {fs2}"),
            FltD { rd, fs1, fs2 } => write!(f, "flt.d {rd}, {fs1}, {fs2}"),
            FleD { rd, fs1, fs2 } => write!(f, "fle.d {rd}, {fs1}, {fs2}"),
            Ecall => write!(f, "ecall"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_op_mapping_covers_exactly_twelve() {
        let r = Reg::A0;
        let fr = FReg::new(1);
        let samples = [
            Instr::FaddD {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FsubD {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FmulD {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FdivD {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FcvtDL { fd: fr, rs1: r },
            Instr::FcvtLD { rd: r, fs1: fr },
            Instr::FaddS {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FsubS {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FmulS {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FdivS {
                fd: fr,
                fs1: fr,
                fs2: fr,
            },
            Instr::FcvtSW { fd: fr, rs1: r },
            Instr::FcvtWS { rd: r, fs1: fr },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for s in samples {
            let op = s.fp_op().expect("modeled op");
            seen.insert(op.index());
        }
        assert_eq!(seen.len(), 12);
        // Support instructions are not modeled FPU operations.
        assert!(Instr::FmvD { fd: fr, fs1: fr }.fp_op().is_none());
        assert!(Instr::FeqD {
            rd: r,
            fs1: fr,
            fs2: fr
        }
        .fp_op()
        .is_none());
        assert!(Instr::Add {
            rd: r,
            rs1: r,
            rs2: r
        }
        .fp_op()
        .is_none());
    }

    #[test]
    fn display_is_assembler_like() {
        let i = Instr::FmulD {
            fd: FReg::new(3),
            fs1: FReg::new(1),
            fs2: FReg::new(2),
        };
        assert_eq!(i.to_string(), "fmul.d f3, f1, f2");
        let i = Instr::Ld {
            rd: Reg::A0,
            rs1: Reg::SP,
            off: -8,
        };
        assert_eq!(i.to_string(), "ld x10, -8(x2)");
    }

    #[test]
    fn classification_helpers() {
        let r = Reg::A0;
        assert!(Instr::Beq {
            rs1: r,
            rs2: r,
            off: 1
        }
        .is_control());
        assert!(Instr::Ld {
            rd: r,
            rs1: r,
            off: 0
        }
        .is_mem());
        assert!(!Instr::Add {
            rd: r,
            rs1: r,
            rs2: r
        }
        .is_control());
    }
}
