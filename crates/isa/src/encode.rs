//! Binary instruction encoding (32-bit words, OpenRISC-like layout).
//!
//! Layout: opcode in bits `[31:26]`; register fields `rd [25:21]`,
//! `rs1 [20:16]`, `rs2 [15:11]`; 16-bit immediates in `[15:0]`;
//! `jal` carries a 21-bit offset in `[20:0]`.

use crate::instr::Instr;
use crate::reg::{FReg, Reg};

/// An undecodable instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub u32);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

const fn op(word: u32) -> u32 {
    word >> 26
}

fn rd_of(word: u32) -> Reg {
    Reg::new(((word >> 21) & 31) as u8)
}
fn rs1_of(word: u32) -> Reg {
    Reg::new(((word >> 16) & 31) as u8)
}
fn rs2_of(word: u32) -> Reg {
    Reg::new(((word >> 11) & 31) as u8)
}
fn fd_of(word: u32) -> FReg {
    FReg::new(((word >> 21) & 31) as u8)
}
fn fs1_of(word: u32) -> FReg {
    FReg::new(((word >> 16) & 31) as u8)
}
fn fs2_of(word: u32) -> FReg {
    FReg::new(((word >> 11) & 31) as u8)
}
fn imm_of(word: u32) -> i16 {
    (word & 0xffff) as u16 as i16
}

fn enc3(opcode: u32, rd: u8, rs1: u8, rs2: u8) -> u32 {
    (opcode << 26) | ((rd as u32) << 21) | ((rs1 as u32) << 16) | ((rs2 as u32) << 11)
}

fn enc_imm(opcode: u32, rd: u8, rs1: u8, imm: i16) -> u32 {
    (opcode << 26) | ((rd as u32) << 21) | ((rs1 as u32) << 16) | (imm as u16 as u32)
}

macro_rules! opcodes {
    ($($name:ident = $val:expr),* $(,)?) => {
        $(const $name: u32 = $val;)*
    };
}

opcodes! {
    OP_ADD = 0, OP_SUB = 1, OP_AND = 2, OP_OR = 3, OP_XOR = 4, OP_SLL = 5,
    OP_SRL = 6, OP_SRA = 7, OP_SLT = 8, OP_SLTU = 9, OP_MUL = 10, OP_DIV = 11,
    OP_REM = 12, OP_ADDI = 13, OP_ANDI = 14, OP_ORI = 15, OP_XORI = 16,
    OP_SLTI = 17, OP_SLLI = 18, OP_SRLI = 19, OP_SRAI = 20, OP_MOVHI = 21,
    OP_LD = 22, OP_LW = 23, OP_LWU = 24, OP_LB = 25, OP_LBU = 26, OP_SD = 27,
    OP_SW = 28, OP_SB = 29, OP_FLD = 30, OP_FLW = 31, OP_FSD = 32, OP_FSW = 33,
    OP_BEQ = 34, OP_BNE = 35, OP_BLT = 36, OP_BGE = 37, OP_BLTU = 38,
    OP_BGEU = 39, OP_JAL = 40, OP_JALR = 41, OP_FADD_D = 42, OP_FSUB_D = 43,
    OP_FMUL_D = 44, OP_FDIV_D = 45, OP_FCVT_DL = 46, OP_FCVT_LD = 47,
    OP_FADD_S = 48, OP_FSUB_S = 49, OP_FMUL_S = 50, OP_FDIV_S = 51,
    OP_FCVT_SW = 52, OP_FCVT_WS = 53, OP_FMV_D = 54, OP_FNEG_D = 55,
    OP_FABS_D = 56, OP_FMV_XD = 57, OP_FMV_DX = 58, OP_FEQ_D = 59,
    OP_FLT_D = 60, OP_FLE_D = 61, OP_ECALL = 62, OP_HALT = 63,
}

/// Encode one instruction to its 32-bit word.
pub fn encode(i: Instr) -> u32 {
    use Instr::*;
    match i {
        Add { rd, rs1, rs2 } => enc3(OP_ADD, rd.num(), rs1.num(), rs2.num()),
        Sub { rd, rs1, rs2 } => enc3(OP_SUB, rd.num(), rs1.num(), rs2.num()),
        And { rd, rs1, rs2 } => enc3(OP_AND, rd.num(), rs1.num(), rs2.num()),
        Or { rd, rs1, rs2 } => enc3(OP_OR, rd.num(), rs1.num(), rs2.num()),
        Xor { rd, rs1, rs2 } => enc3(OP_XOR, rd.num(), rs1.num(), rs2.num()),
        Sll { rd, rs1, rs2 } => enc3(OP_SLL, rd.num(), rs1.num(), rs2.num()),
        Srl { rd, rs1, rs2 } => enc3(OP_SRL, rd.num(), rs1.num(), rs2.num()),
        Sra { rd, rs1, rs2 } => enc3(OP_SRA, rd.num(), rs1.num(), rs2.num()),
        Slt { rd, rs1, rs2 } => enc3(OP_SLT, rd.num(), rs1.num(), rs2.num()),
        Sltu { rd, rs1, rs2 } => enc3(OP_SLTU, rd.num(), rs1.num(), rs2.num()),
        Mul { rd, rs1, rs2 } => enc3(OP_MUL, rd.num(), rs1.num(), rs2.num()),
        Div { rd, rs1, rs2 } => enc3(OP_DIV, rd.num(), rs1.num(), rs2.num()),
        Rem { rd, rs1, rs2 } => enc3(OP_REM, rd.num(), rs1.num(), rs2.num()),
        Addi { rd, rs1, imm } => enc_imm(OP_ADDI, rd.num(), rs1.num(), imm),
        Andi { rd, rs1, imm } => enc_imm(OP_ANDI, rd.num(), rs1.num(), imm),
        Ori { rd, rs1, imm } => enc_imm(OP_ORI, rd.num(), rs1.num(), imm),
        Xori { rd, rs1, imm } => enc_imm(OP_XORI, rd.num(), rs1.num(), imm),
        Slti { rd, rs1, imm } => enc_imm(OP_SLTI, rd.num(), rs1.num(), imm),
        Slli { rd, rs1, shamt } => enc_imm(OP_SLLI, rd.num(), rs1.num(), shamt as i16),
        Srli { rd, rs1, shamt } => enc_imm(OP_SRLI, rd.num(), rs1.num(), shamt as i16),
        Srai { rd, rs1, shamt } => enc_imm(OP_SRAI, rd.num(), rs1.num(), shamt as i16),
        Movhi { rd, imm } => enc_imm(OP_MOVHI, rd.num(), 0, imm as i16),
        Ld { rd, rs1, off } => enc_imm(OP_LD, rd.num(), rs1.num(), off),
        Lw { rd, rs1, off } => enc_imm(OP_LW, rd.num(), rs1.num(), off),
        Lwu { rd, rs1, off } => enc_imm(OP_LWU, rd.num(), rs1.num(), off),
        Lb { rd, rs1, off } => enc_imm(OP_LB, rd.num(), rs1.num(), off),
        Lbu { rd, rs1, off } => enc_imm(OP_LBU, rd.num(), rs1.num(), off),
        Sd { rs2, rs1, off } => enc_imm(OP_SD, rs2.num(), rs1.num(), off),
        Sw { rs2, rs1, off } => enc_imm(OP_SW, rs2.num(), rs1.num(), off),
        Sb { rs2, rs1, off } => enc_imm(OP_SB, rs2.num(), rs1.num(), off),
        Fld { fd, rs1, off } => enc_imm(OP_FLD, fd.num(), rs1.num(), off),
        Flw { fd, rs1, off } => enc_imm(OP_FLW, fd.num(), rs1.num(), off),
        Fsd { fs, rs1, off } => enc_imm(OP_FSD, fs.num(), rs1.num(), off),
        Fsw { fs, rs1, off } => enc_imm(OP_FSW, fs.num(), rs1.num(), off),
        Beq { rs1, rs2, off } => enc_imm(OP_BEQ, rs1.num(), rs2.num(), off),
        Bne { rs1, rs2, off } => enc_imm(OP_BNE, rs1.num(), rs2.num(), off),
        Blt { rs1, rs2, off } => enc_imm(OP_BLT, rs1.num(), rs2.num(), off),
        Bge { rs1, rs2, off } => enc_imm(OP_BGE, rs1.num(), rs2.num(), off),
        Bltu { rs1, rs2, off } => enc_imm(OP_BLTU, rs1.num(), rs2.num(), off),
        Bgeu { rs1, rs2, off } => enc_imm(OP_BGEU, rs1.num(), rs2.num(), off),
        Jal { rd, off } => {
            let field = (off as u32) & 0x1f_ffff;
            assert!(
                (-(1 << 20)..(1 << 20)).contains(&off),
                "jal offset out of range"
            );
            (OP_JAL << 26) | ((rd.num() as u32) << 21) | field
        }
        Jalr { rd, rs1, imm } => enc_imm(OP_JALR, rd.num(), rs1.num(), imm),
        FaddD { fd, fs1, fs2 } => enc3(OP_FADD_D, fd.num(), fs1.num(), fs2.num()),
        FsubD { fd, fs1, fs2 } => enc3(OP_FSUB_D, fd.num(), fs1.num(), fs2.num()),
        FmulD { fd, fs1, fs2 } => enc3(OP_FMUL_D, fd.num(), fs1.num(), fs2.num()),
        FdivD { fd, fs1, fs2 } => enc3(OP_FDIV_D, fd.num(), fs1.num(), fs2.num()),
        FcvtDL { fd, rs1 } => enc3(OP_FCVT_DL, fd.num(), rs1.num(), 0),
        FcvtLD { rd, fs1 } => enc3(OP_FCVT_LD, rd.num(), fs1.num(), 0),
        FaddS { fd, fs1, fs2 } => enc3(OP_FADD_S, fd.num(), fs1.num(), fs2.num()),
        FsubS { fd, fs1, fs2 } => enc3(OP_FSUB_S, fd.num(), fs1.num(), fs2.num()),
        FmulS { fd, fs1, fs2 } => enc3(OP_FMUL_S, fd.num(), fs1.num(), fs2.num()),
        FdivS { fd, fs1, fs2 } => enc3(OP_FDIV_S, fd.num(), fs1.num(), fs2.num()),
        FcvtSW { fd, rs1 } => enc3(OP_FCVT_SW, fd.num(), rs1.num(), 0),
        FcvtWS { rd, fs1 } => enc3(OP_FCVT_WS, rd.num(), fs1.num(), 0),
        FmvD { fd, fs1 } => enc3(OP_FMV_D, fd.num(), fs1.num(), 0),
        FnegD { fd, fs1 } => enc3(OP_FNEG_D, fd.num(), fs1.num(), 0),
        FabsD { fd, fs1 } => enc3(OP_FABS_D, fd.num(), fs1.num(), 0),
        FmvXD { rd, fs1 } => enc3(OP_FMV_XD, rd.num(), fs1.num(), 0),
        FmvDX { fd, rs1 } => enc3(OP_FMV_DX, fd.num(), rs1.num(), 0),
        FeqD { rd, fs1, fs2 } => enc3(OP_FEQ_D, rd.num(), fs1.num(), fs2.num()),
        FltD { rd, fs1, fs2 } => enc3(OP_FLT_D, rd.num(), fs1.num(), fs2.num()),
        FleD { rd, fs1, fs2 } => enc3(OP_FLE_D, rd.num(), fs1.num(), fs2.num()),
        Ecall => OP_ECALL << 26,
        Halt => OP_HALT << 26,
    }
}

/// Decode a 32-bit word back to an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for words whose opcode or fields are invalid
/// (in this encoding, only out-of-range shift amounts qualify, since all
/// 64 opcodes are assigned).
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let (rd, rs1, rs2) = (rd_of(word), rs1_of(word), rs2_of(word));
    let (fd, fs1, fs2) = (fd_of(word), fs1_of(word), fs2_of(word));
    let imm = imm_of(word);
    let shamt = (word & 0x3f) as u8;
    let shamt_ok = (word & 0xffff) < 64;
    Ok(match op(word) {
        OP_ADD => Add { rd, rs1, rs2 },
        OP_SUB => Sub { rd, rs1, rs2 },
        OP_AND => And { rd, rs1, rs2 },
        OP_OR => Or { rd, rs1, rs2 },
        OP_XOR => Xor { rd, rs1, rs2 },
        OP_SLL => Sll { rd, rs1, rs2 },
        OP_SRL => Srl { rd, rs1, rs2 },
        OP_SRA => Sra { rd, rs1, rs2 },
        OP_SLT => Slt { rd, rs1, rs2 },
        OP_SLTU => Sltu { rd, rs1, rs2 },
        OP_MUL => Mul { rd, rs1, rs2 },
        OP_DIV => Div { rd, rs1, rs2 },
        OP_REM => Rem { rd, rs1, rs2 },
        OP_ADDI => Addi { rd, rs1, imm },
        OP_ANDI => Andi { rd, rs1, imm },
        OP_ORI => Ori { rd, rs1, imm },
        OP_XORI => Xori { rd, rs1, imm },
        OP_SLTI => Slti { rd, rs1, imm },
        OP_SLLI if shamt_ok => Slli { rd, rs1, shamt },
        OP_SRLI if shamt_ok => Srli { rd, rs1, shamt },
        OP_SRAI if shamt_ok => Srai { rd, rs1, shamt },
        OP_MOVHI => Movhi {
            rd,
            imm: imm as u16,
        },
        OP_LD => Ld { rd, rs1, off: imm },
        OP_LW => Lw { rd, rs1, off: imm },
        OP_LWU => Lwu { rd, rs1, off: imm },
        OP_LB => Lb { rd, rs1, off: imm },
        OP_LBU => Lbu { rd, rs1, off: imm },
        OP_SD => Sd {
            rs2: rd,
            rs1,
            off: imm,
        },
        OP_SW => Sw {
            rs2: rd,
            rs1,
            off: imm,
        },
        OP_SB => Sb {
            rs2: rd,
            rs1,
            off: imm,
        },
        OP_FLD => Fld { fd, rs1, off: imm },
        OP_FLW => Flw { fd, rs1, off: imm },
        OP_FSD => Fsd {
            fs: fd,
            rs1,
            off: imm,
        },
        OP_FSW => Fsw {
            fs: fd,
            rs1,
            off: imm,
        },
        OP_BEQ => Beq {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_BNE => Bne {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_BLT => Blt {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_BGE => Bge {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_BLTU => Bltu {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_BGEU => Bgeu {
            rs1: rd,
            rs2: rs1,
            off: imm,
        },
        OP_JAL => {
            let raw = word & 0x1f_ffff;
            // Sign-extend the 21-bit field.
            let off = ((raw << 11) as i32) >> 11;
            Jal { rd, off }
        }
        OP_JALR => Jalr { rd, rs1, imm },
        OP_FADD_D => FaddD { fd, fs1, fs2 },
        OP_FSUB_D => FsubD { fd, fs1, fs2 },
        OP_FMUL_D => FmulD { fd, fs1, fs2 },
        OP_FDIV_D => FdivD { fd, fs1, fs2 },
        OP_FCVT_DL => FcvtDL { fd, rs1 },
        OP_FCVT_LD => FcvtLD { rd, fs1 },
        OP_FADD_S => FaddS { fd, fs1, fs2 },
        OP_FSUB_S => FsubS { fd, fs1, fs2 },
        OP_FMUL_S => FmulS { fd, fs1, fs2 },
        OP_FDIV_S => FdivS { fd, fs1, fs2 },
        OP_FCVT_SW => FcvtSW { fd, rs1 },
        OP_FCVT_WS => FcvtWS { rd, fs1 },
        OP_FMV_D => FmvD { fd, fs1 },
        OP_FNEG_D => FnegD { fd, fs1 },
        OP_FABS_D => FabsD { fd, fs1 },
        OP_FMV_XD => FmvXD { rd, fs1 },
        OP_FMV_DX => FmvDX { fd, rs1 },
        OP_FEQ_D => FeqD { rd, fs1, fs2 },
        OP_FLT_D => FltD { rd, fs1, fs2 },
        OP_FLE_D => FleD { rd, fs1, fs2 },
        OP_ECALL => Ecall,
        OP_HALT => Halt,
        _ => return Err(DecodeError(word)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_roundtrips() {
        let r = Reg::A3;
        let r2 = Reg::T1;
        let fr = FReg::new(7);
        let fr2 = FReg::new(30);
        let samples = [
            Instr::Add {
                rd: r,
                rs1: r2,
                rs2: Reg::S5,
            },
            Instr::Addi {
                rd: r,
                rs1: r2,
                imm: -1234,
            },
            Instr::Movhi { rd: r, imm: 0xbeef },
            Instr::Slli {
                rd: r,
                rs1: r2,
                shamt: 63,
            },
            Instr::Ld {
                rd: r,
                rs1: r2,
                off: -8,
            },
            Instr::Sd {
                rs2: r,
                rs1: r2,
                off: 4096,
            },
            Instr::Fld {
                fd: fr,
                rs1: r2,
                off: 16,
            },
            Instr::Fsw {
                fs: fr2,
                rs1: r2,
                off: -2,
            },
            Instr::Beq {
                rs1: r,
                rs2: r2,
                off: -100,
            },
            Instr::Jal {
                rd: Reg::RA,
                off: -123456,
            },
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                imm: 0,
            },
            Instr::FmulD {
                fd: fr,
                fs1: fr2,
                fs2: FReg::new(15),
            },
            Instr::FcvtLD { rd: r, fs1: fr },
            Instr::FeqD {
                rd: r,
                fs1: fr,
                fs2: fr2,
            },
            Instr::Ecall,
            Instr::Halt,
        ];
        for i in samples {
            let w = encode(i);
            assert_eq!(decode(w), Ok(i), "{i}");
        }
    }

    #[test]
    fn invalid_shift_amount_rejected() {
        let w = encode(Instr::Slli {
            rd: Reg::A0,
            rs1: Reg::A0,
            shamt: 0,
        }) | 0x40; // force shamt field to 64
        assert!(decode(w).is_err());
    }

    #[test]
    fn jal_offset_sign_extension() {
        for off in [-(1 << 20), -1, 0, 1, (1 << 20) - 1] {
            let w = encode(Instr::Jal { rd: Reg::RA, off });
            match decode(w).unwrap() {
                Instr::Jal { off: d, .. } => assert_eq!(d, off),
                other => panic!("{other:?}"),
            }
        }
    }
}
