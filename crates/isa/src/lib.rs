//! # tei-isa
//!
//! The instruction set of the simulated core: a RISC-style 64-bit ISA
//! carrying exactly the twelve floating-point operations the paper models,
//! with a binary encoding, a text assembler, and a programmatic builder API
//! the benchmark kernels are written in.
//!
//! ## Example
//!
//! ```
//! use tei_isa::{assemble, encode, decode};
//!
//! let p = assemble("li a0, 42\nhalt").expect("valid assembly");
//! assert_eq!(p.len(), 2);
//! let word = encode(p.text[0]);
//! assert_eq!(decode(word).unwrap(), p.text[0]);
//! ```

mod asm;
mod builder;
mod encode;
mod instr;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use builder::{Label, ProgramBuilder};
pub use encode::{decode, encode, DecodeError};
pub use instr::Instr;
pub use program::{Program, Syscall, DATA_BASE, DEFAULT_MEM_BYTES, STACK_TOP};
pub use reg::{FReg, Reg};
