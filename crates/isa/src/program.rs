//! Program container and memory-map constants.

use crate::instr::Instr;
use serde::{Deserialize, Serialize};

/// Base address of the initialized data segment.
pub const DATA_BASE: u64 = 0x0001_0000;

/// Default total data-memory size in bytes (data + heap + stack).
pub const DEFAULT_MEM_BYTES: u64 = 64 << 20;

/// Initial stack pointer (grows downward from the top of memory).
pub const STACK_TOP: u64 = DATA_BASE + DEFAULT_MEM_BYTES - 16;

/// An executable program: instruction text (fetched by index, Harvard
/// style), an initialized data image loaded at [`DATA_BASE`], and an entry
/// point.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    /// Instruction memory; the PC indexes this vector.
    pub text: Vec<Instr>,
    /// Initial data image, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry PC (index into `text`).
    pub entry: usize,
}

impl Program {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Disassemble to a listing with one instruction per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (pc, i) in self.text.iter().enumerate() {
            writeln!(out, "{pc:6}: {i}").expect("write to string");
        }
        out
    }
}

/// Environment-call service numbers (`a7` selects, `a0..` carry arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u64)]
pub enum Syscall {
    /// Terminate with exit code in `a0`.
    Exit = 0,
    /// Append the low byte of `a0` to the output stream.
    PutByte = 1,
    /// Append the decimal rendering of `a0` (as i64) to the output stream.
    PutInt = 2,
    /// Append the raw 8 bytes of `f10` (little-endian) to the output stream.
    PutF64 = 3,
}

impl Syscall {
    /// Decode a service number.
    pub fn from_u64(x: u64) -> Option<Syscall> {
        Some(match x {
            0 => Syscall::Exit,
            1 => Syscall::PutByte,
            2 => Syscall::PutInt,
            3 => Syscall::PutF64,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = Program {
            text: vec![
                Instr::Addi {
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: 7,
                },
                Instr::Halt,
            ],
            data: vec![],
            entry: 0,
        };
        let d = p.disassemble();
        assert!(d.contains("addi x10, x0, 7"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn syscall_roundtrip() {
        for s in [
            Syscall::Exit,
            Syscall::PutByte,
            Syscall::PutInt,
            Syscall::PutF64,
        ] {
            assert_eq!(Syscall::from_u64(s as u64), Some(s));
        }
        assert_eq!(Syscall::from_u64(99), None);
    }
}
