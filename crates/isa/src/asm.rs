//! Text assembler for the `tei` ISA.
//!
//! Two-pass: data labels are resolved in a pre-scan, text labels through
//! the builder's fixup machinery. Syntax follows common RISC assembler
//! conventions:
//!
//! ```text
//! # comments run to end of line
//!         li   t0, 10
//!         la   a0, table        # data label -> address
//! loop:   fld  f1, 0(a0)
//!         fadd.d f2, f2, f1
//!         addi a0, a0, 8
//!         addi t0, t0, -1
//!         bne  t0, zero, loop
//!         halt
//! table:  .double 1.0, 2.5, -3.25
//! ```

use crate::builder::{Label, ProgramBuilder};
use crate::instr::Instr;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::collections::HashMap;

/// An assembly failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assemble a source listing into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// unknown mnemonic, bad operand, or undefined label.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pre-scan: data label addresses (data layout is position-independent
    // of code, so it can be computed up front).
    let mut data_labels: HashMap<String, u64> = HashMap::new();
    {
        let mut scratch = ProgramBuilder::new();
        for (ln, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim();
            let (label, rest) = split_label(line);
            if let Some(rest) = rest.strip_prefix('.') {
                if let Some(name) = label {
                    scratch.align(directive_align(rest));
                    data_labels.insert(name.to_string(), scratch.data_addr());
                }
                emit_directive(&mut scratch, rest, ln + 1)?;
            } else if let (Some(_), "") = (label, rest) {
                // bare label: could be code or data; resolved in main pass
            }
        }
    }

    let mut b = ProgramBuilder::new();
    let mut text_labels: HashMap<String, Label> = HashMap::new();
    let mut bound: Vec<String> = Vec::new();
    let get_label = |b: &mut ProgramBuilder, name: &str, map: &mut HashMap<String, Label>| {
        *map.entry(name.to_string()).or_insert_with(|| b.label())
    };

    for (ln, raw) in src.lines().enumerate() {
        let lineno = ln + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = split_label(line);
        if let Some(rest_dir) = rest.strip_prefix('.') {
            emit_directive(&mut b, rest_dir, lineno)?;
            continue;
        }
        if let Some(name) = label {
            if !data_labels.contains_key(name) {
                let l = get_label(&mut b, name, &mut text_labels);
                if bound.contains(&name.to_string()) {
                    return err(lineno, format!("label {name} bound twice"));
                }
                b.bind(l);
                bound.push(name.to_string());
            }
        }
        if rest.is_empty() {
            continue;
        }
        emit_instr(
            &mut b,
            rest,
            lineno,
            &data_labels,
            &mut text_labels,
            &mut bound,
        )?;
    }
    // Undefined text labels surface as builder panics; check eagerly.
    for name in text_labels.keys() {
        if !bound.contains(name) {
            return err(0, format!("undefined label {name}"));
        }
    }
    Ok(b.finish())
}

fn strip_comment(line: &str) -> &str {
    match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn split_label(line: &str) -> (Option<&str>, &str) {
    if let Some(i) = line.find(':') {
        let (l, rest) = line.split_at(i);
        let l = l.trim();
        if !l.is_empty() && l.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return (Some(l), rest[1..].trim());
        }
    }
    (None, line)
}

fn directive_align(rest: &str) -> usize {
    let word = rest.split_whitespace().next().unwrap_or("");
    match word {
        "dword" | "double" => 8,
        _ => 1,
    }
}

fn emit_directive(b: &mut ProgramBuilder, rest: &str, line: usize) -> Result<(), AsmError> {
    let (word, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    match word {
        "double" => {
            for a in args.split(',') {
                let v: f64 = a.trim().parse().map_err(|_| AsmError {
                    line,
                    message: format!("bad float {a:?}"),
                })?;
                b.double(v);
            }
            Ok(())
        }
        "dword" => {
            for a in args.split(',') {
                let v = parse_int(a.trim(), line)?;
                b.dword(v as u64);
            }
            Ok(())
        }
        "byte" => {
            for a in args.split(',') {
                let v = parse_int(a.trim(), line)?;
                b.bytes(&[v as u8]);
            }
            Ok(())
        }
        "zero" => {
            let n = parse_int(args.trim(), line)? as usize;
            b.zeros(n);
            Ok(())
        }
        other => err(line, format!("unknown directive .{other}")),
    }
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad integer {s:?}")),
    }
}

fn reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s.trim()).ok_or(AsmError {
        line,
        message: format!("bad register {s:?}"),
    })
}

fn freg(s: &str, line: usize) -> Result<FReg, AsmError> {
    FReg::parse(s.trim()).ok_or(AsmError {
        line,
        message: format!("bad fp register {s:?}"),
    })
}

/// Parse `off(reg)`.
fn mem(s: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let s = s.trim();
    let open = s.find('(').ok_or(AsmError {
        line,
        message: format!("expected off(reg), got {s:?}"),
    })?;
    let close = s.rfind(')').ok_or(AsmError {
        line,
        message: "missing )".to_string(),
    })?;
    let off = if s[..open].trim().is_empty() {
        0
    } else {
        parse_int(&s[..open], line)?
    };
    let off = i16::try_from(off).map_err(|_| AsmError {
        line,
        message: format!("offset {off} out of range"),
    })?;
    Ok((off, reg(&s[open + 1..close], line)?))
}

#[allow(clippy::too_many_lines)]
fn emit_instr(
    b: &mut ProgramBuilder,
    text: &str,
    line: usize,
    data_labels: &HashMap<String, u64>,
    text_labels: &mut HashMap<String, Label>,
    bound: &mut Vec<String>,
) -> Result<(), AsmError> {
    let _ = bound;
    let (mn, args) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let a: Vec<&str> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if a.len() == n {
            Ok(())
        } else {
            err(line, format!("{mn} expects {n} operands, got {}", a.len()))
        }
    };
    let imm16 = |s: &str| -> Result<i16, AsmError> {
        let v = parse_int(s, line)?;
        i16::try_from(v).map_err(|_| AsmError {
            line,
            message: format!("immediate {v} out of i16 range"),
        })
    };
    let lab = |b: &mut ProgramBuilder, text_labels: &mut HashMap<String, Label>, s: &str| {
        *text_labels
            .entry(s.to_string())
            .or_insert_with(|| b.label())
    };

    match mn {
        // R-type
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" | "mul"
        | "div" | "rem" => {
            need(3)?;
            let (rd, rs1, rs2) = (reg(a[0], line)?, reg(a[1], line)?, reg(a[2], line)?);
            match mn {
                "add" => b.add(rd, rs1, rs2),
                "sub" => b.sub(rd, rs1, rs2),
                "and" => b.and(rd, rs1, rs2),
                "or" => b.or(rd, rs1, rs2),
                "xor" => b.xor(rd, rs1, rs2),
                "sll" => b.sll(rd, rs1, rs2),
                "srl" => b.srl(rd, rs1, rs2),
                "sra" => b.sra(rd, rs1, rs2),
                "slt" => b.slt(rd, rs1, rs2),
                "sltu" => b.sltu(rd, rs1, rs2),
                "mul" => b.mul(rd, rs1, rs2),
                "div" => b.div(rd, rs1, rs2),
                _ => b.rem(rd, rs1, rs2),
            }
        }
        "addi" | "andi" | "ori" | "xori" | "slti" => {
            need(3)?;
            let (rd, rs1, imm) = (reg(a[0], line)?, reg(a[1], line)?, imm16(a[2])?);
            match mn {
                "addi" => b.addi(rd, rs1, imm),
                "andi" => b.andi(rd, rs1, imm),
                "ori" => b.ori(rd, rs1, imm),
                "xori" => b.xori(rd, rs1, imm),
                _ => b.slti(rd, rs1, imm),
            }
        }
        "slli" | "srli" | "srai" => {
            need(3)?;
            let (rd, rs1) = (reg(a[0], line)?, reg(a[1], line)?);
            let sh = parse_int(a[2], line)?;
            if !(0..64).contains(&sh) {
                return err(line, format!("shift amount {sh} out of range"));
            }
            match mn {
                "slli" => b.slli(rd, rs1, sh as u8),
                "srli" => b.srli(rd, rs1, sh as u8),
                _ => b.srai(rd, rs1, sh as u8),
            }
        }
        "movhi" => {
            need(2)?;
            let rd = reg(a[0], line)?;
            let v = parse_int(a[1], line)?;
            b.movhi(rd, v as u16);
        }
        "ld" | "lw" | "lwu" | "lb" | "lbu" => {
            need(2)?;
            let rd = reg(a[0], line)?;
            let (off, rs1) = mem(a[1], line)?;
            match mn {
                "ld" => b.ld(rd, off, rs1),
                "lw" => b.lw(rd, off, rs1),
                "lwu" => b.lwu(rd, off, rs1),
                "lb" => b.lb(rd, off, rs1),
                _ => b.lbu(rd, off, rs1),
            }
        }
        "sd" | "sw" | "sb" => {
            need(2)?;
            let rs2 = reg(a[0], line)?;
            let (off, rs1) = mem(a[1], line)?;
            match mn {
                "sd" => b.sd(rs2, off, rs1),
                "sw" => b.sw(rs2, off, rs1),
                _ => b.sb(rs2, off, rs1),
            }
        }
        "fld" | "flw" => {
            need(2)?;
            let fd = freg(a[0], line)?;
            let (off, rs1) = mem(a[1], line)?;
            if mn == "fld" {
                b.fld(fd, off, rs1);
            } else {
                b.flw(fd, off, rs1);
            }
        }
        "fsd" | "fsw" => {
            need(2)?;
            let fs = freg(a[0], line)?;
            let (off, rs1) = mem(a[1], line)?;
            if mn == "fsd" {
                b.fsd(fs, off, rs1);
            } else {
                b.fsw(fs, off, rs1);
            }
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            need(3)?;
            let (rs1, rs2) = (reg(a[0], line)?, reg(a[1], line)?);
            let l = lab(b, text_labels, a[2]);
            match mn {
                "beq" => b.beq(rs1, rs2, l),
                "bne" => b.bne(rs1, rs2, l),
                "blt" => b.blt(rs1, rs2, l),
                "bge" => b.bge(rs1, rs2, l),
                "bltu" => b.bltu(rs1, rs2, l),
                _ => b.bgeu(rs1, rs2, l),
            }
        }
        "j" => {
            need(1)?;
            let l = lab(b, text_labels, a[0]);
            b.j(l);
        }
        "call" => {
            need(1)?;
            let l = lab(b, text_labels, a[0]);
            b.call(l);
        }
        "ret" => {
            need(0)?;
            b.ret();
        }
        "jalr" => {
            need(2)?;
            let rd = reg(a[0], line)?;
            let (imm, rs1) = mem(a[1], line)?;
            b.push(Instr::Jalr { rd, rs1, imm });
        }
        "fadd.d" | "fsub.d" | "fmul.d" | "fdiv.d" | "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" => {
            need(3)?;
            let (fd, f1, f2) = (freg(a[0], line)?, freg(a[1], line)?, freg(a[2], line)?);
            match mn {
                "fadd.d" => b.fadd_d(fd, f1, f2),
                "fsub.d" => b.fsub_d(fd, f1, f2),
                "fmul.d" => b.fmul_d(fd, f1, f2),
                "fdiv.d" => b.fdiv_d(fd, f1, f2),
                "fadd.s" => b.fadd_s(fd, f1, f2),
                "fsub.s" => b.fsub_s(fd, f1, f2),
                "fmul.s" => b.fmul_s(fd, f1, f2),
                _ => b.fdiv_s(fd, f1, f2),
            }
        }
        "feq.d" | "flt.d" | "fle.d" => {
            need(3)?;
            let (rd, f1, f2) = (reg(a[0], line)?, freg(a[1], line)?, freg(a[2], line)?);
            match mn {
                "feq.d" => b.feq_d(rd, f1, f2),
                "flt.d" => b.flt_d(rd, f1, f2),
                _ => b.fle_d(rd, f1, f2),
            }
        }
        "fcvt.d.l" => {
            need(2)?;
            let (fd, rs1) = (freg(a[0], line)?, reg(a[1], line)?);
            b.fcvt_d_l(fd, rs1);
        }
        "fcvt.l.d" => {
            need(2)?;
            let (rd, fs1) = (reg(a[0], line)?, freg(a[1], line)?);
            b.fcvt_l_d(rd, fs1);
        }
        "fcvt.s.w" => {
            need(2)?;
            let (fd, rs1) = (freg(a[0], line)?, reg(a[1], line)?);
            b.fcvt_s_w(fd, rs1);
        }
        "fcvt.w.s" => {
            need(2)?;
            let (rd, fs1) = (reg(a[0], line)?, freg(a[1], line)?);
            b.fcvt_w_s(rd, fs1);
        }
        "fmv.d" | "fneg.d" | "fabs.d" => {
            need(2)?;
            let (fd, fs1) = (freg(a[0], line)?, freg(a[1], line)?);
            match mn {
                "fmv.d" => b.fmv_d(fd, fs1),
                "fneg.d" => b.fneg_d(fd, fs1),
                _ => b.fabs_d(fd, fs1),
            }
        }
        "fmv.x.d" => {
            need(2)?;
            let (rd, fs1) = (reg(a[0], line)?, freg(a[1], line)?);
            b.fmv_x_d(rd, fs1);
        }
        "fmv.d.x" => {
            need(2)?;
            let (fd, rs1) = (freg(a[0], line)?, reg(a[1], line)?);
            b.fmv_d_x(fd, rs1);
        }
        // pseudo-instructions
        "li" => {
            need(2)?;
            let rd = reg(a[0], line)?;
            b.li(rd, parse_int(a[1], line)?);
        }
        "la" => {
            need(2)?;
            let rd = reg(a[0], line)?;
            let addr = *data_labels.get(a[1]).ok_or(AsmError {
                line,
                message: format!("unknown data label {:?}", a[1]),
            })?;
            b.la(rd, addr);
        }
        "mv" => {
            need(2)?;
            let (rd, rs) = (reg(a[0], line)?, reg(a[1], line)?);
            b.mv(rd, rs);
        }
        "nop" => {
            need(0)?;
            b.nop();
        }
        "ecall" => {
            need(0)?;
            b.push(Instr::Ecall);
        }
        "halt" => {
            need(0)?;
            b.halt();
        }
        other => return err(line, format!("unknown mnemonic {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_with_data() {
        let src = r"
            # sum a table of doubles
                    li   t0, 3
                    la   a0, table
                    fmv.d.x f2, zero
            loop:   fld  f1, 0(a0)
                    fadd.d f2, f2, f1
                    addi a0, a0, 8
                    addi t0, t0, -1
                    bne  t0, zero, loop
                    halt
            table:  .double 1.0, 2.5, -3.25
        ";
        let p = assemble(src).expect("assembles");
        assert!(p.text.iter().any(|i| matches!(i, Instr::FaddD { .. })));
        assert!(p.text.iter().any(|i| matches!(i, Instr::Halt)));
        assert_eq!(p.data.len(), 24);
        assert_eq!(
            &p.data[..8],
            &1.0f64.to_bits().to_le_bytes(),
            "first table entry"
        );
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = assemble("  nop\n  frobnicate a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_bad_register() {
        let e = assemble("add q1, t0, t1").unwrap_err();
        assert!(e.message.contains("bad register"));
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble("ld a0, (sp)\nld a1, -16(s0)\nhalt").unwrap();
        assert_eq!(
            p.text[0],
            Instr::Ld {
                rd: Reg::A0,
                rs1: Reg::SP,
                off: 0
            }
        );
        assert_eq!(
            p.text[1],
            Instr::Ld {
                rd: Reg::A1,
                rs1: Reg::S0,
                off: -16
            }
        );
    }

    #[test]
    fn forward_branch_resolves() {
        let p = assemble("beq zero, zero, end\nnop\nend: halt").unwrap();
        match p.text[0] {
            Instr::Beq { off, .. } => assert_eq!(off, 2),
            ref o => panic!("{o:?}"),
        }
    }
}
