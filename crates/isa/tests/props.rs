//! Property tests: encode/decode roundtrip over randomly generated
//! instructions of every class.

use proptest::prelude::*;
use tei_isa::{decode, encode, FReg, Instr, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let r = any_reg;
    let f = any_freg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        (r(), r(), 0u8..64).prop_map(|(rd, rs1, shamt)| Instr::Slli { rd, rs1, shamt }),
        (r(), any::<u16>()).prop_map(|(rd, imm)| Instr::Movhi { rd, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Ld { rd, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs2, rs1, off)| Instr::Sd { rs2, rs1, off }),
        (f(), r(), any::<i16>()).prop_map(|(fd, rs1, off)| Instr::Fld { fd, rs1, off }),
        (f(), r(), any::<i16>()).prop_map(|(fs, rs1, off)| Instr::Fsd { fs, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, off)| Instr::Blt { rs1, rs2, off }),
        (r(), -(1i32 << 20)..(1 << 20)).prop_map(|(rd, off)| Instr::Jal { rd, off }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Jalr { rd, rs1, imm }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::FmulD { fd, fs1, fs2 }),
        (f(), f(), f()).prop_map(|(fd, fs1, fs2)| Instr::FsubS { fd, fs1, fs2 }),
        (f(), r()).prop_map(|(fd, rs1)| Instr::FcvtDL { fd, rs1 }),
        (r(), f()).prop_map(|(rd, fs1)| Instr::FcvtWS { rd, fs1 }),
        (r(), f(), f()).prop_map(|(rd, fs1, fs2)| Instr::FleD { rd, fs1, fs2 }),
        (f(), r()).prop_map(|(fd, rs1)| Instr::FmvDX { fd, rs1 }),
        Just(Instr::Ecall),
        Just(Instr::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn prop_encode_decode_roundtrip(i in any_instr()) {
        let w = encode(i);
        prop_assert_eq!(decode(w), Ok(i));
    }

    #[test]
    fn prop_display_reassembles(i in any_instr()) {
        // Every displayable instruction (except raw-offset branches, which
        // the assembler expresses via labels) must reassemble from its own
        // disassembly.
        let skip = i.is_control();
        if !skip {
            let src = format!("{i}\nhalt");
            let p = tei_isa::assemble(&src)
                .unwrap_or_else(|e| panic!("{i} did not reassemble: {e}"));
            prop_assert_eq!(p.text[0], i);
        }
    }
}
