//! Thermal simulation (Rodinia's `hotspot`).
//!
//! Explicit finite-difference heat diffusion over a 2-D die grid with a
//! per-cell power map; interior cells update each step, borders stay fixed.
//! Output is every temperature quantized to millikelvin — the paper's
//! "File Output" classification criterion.

use crate::helpers::{emit_put_f64_scaled, put_f64_scaled_native};
use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg};

/// (width, height, steps) per scale.
pub fn params(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Test => (10, 8, 4),
        Scale::Small => (30, 24, 10),
        Scale::Full => (64, 64, 16),
    }
}

const C_POWER: f64 = 0.1;
const C_NEIGHBOR: f64 = 0.125;
const C_AMBIENT: f64 = 0.05;
const AMBIENT: f64 = 80.0;

/// Initial temperature and power maps (deterministic synthetic die).
pub fn inputs(scale: Scale) -> (Vec<f64>, Vec<f64>) {
    let (w, h, _) = params(scale);
    let mut temp = Vec::with_capacity(w * h);
    let mut power = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            temp.push(320.0 + ((x * 31 + y * 17) % 16) as f64 * 0.5);
            // Two hot functional blocks on the die.
            let hot = ((x > w / 5 && x < w / 2 && y > h / 4 && y < h / 2) as u64) as f64;
            let hot2 = ((x > w / 2 && y > 2 * h / 3) as u64) as f64;
            power.push(hot * 6.0 + hot2 * 4.0 + ((x + y) % 5) as f64 * 0.1);
        }
    }
    (temp, power)
}

/// Build the simulator program.
pub fn build(scale: Scale) -> Benchmark {
    let (w, h, steps) = params(scale);
    let (temp, power) = inputs(scale);
    let mut p = ProgramBuilder::new();
    let t_addr = p.doubles(&temp);
    let t2_addr = p.doubles(&temp); // ping-pong buffer starts as a copy
    let p_addr = p.doubles(&power);
    let row_bytes = (8 * w) as i16;

    let (ft, fn_, fs, fe, fw_) = (
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
    );
    let (acc, tmp, fpw) = (FReg::new(6), FReg::new(7), FReg::new(8));
    let (cp, cn, ca, amb) = (FReg::new(20), FReg::new(21), FReg::new(22), FReg::new(23));
    p.fli(cp, C_POWER, Reg::T6);
    p.fli(cn, C_NEIGHBOR, Reg::T6);
    p.fli(ca, C_AMBIENT, Reg::T6);
    p.fli(amb, AMBIENT, Reg::T6);

    p.la(Reg::S0, t_addr); // source buffer
    p.la(Reg::S1, t2_addr); // destination buffer
    p.la(Reg::S2, p_addr);
    p.li(Reg::S5, steps as i64);
    let step_loop = p.here();
    p.li(Reg::S3, 1); // y
    let y_loop = p.here();
    p.li(Reg::T0, w as i64);
    p.mul(Reg::T0, Reg::S3, Reg::T0);
    p.slli(Reg::T0, Reg::T0, 3);
    p.add(Reg::S6, Reg::S0, Reg::T0); // src row
    p.add(Reg::S7, Reg::S1, Reg::T0); // dst row
    p.add(Reg::S8, Reg::S2, Reg::T0); // power row
    p.li(Reg::S4, 1); // x
    let x_loop = p.here();
    p.slli(Reg::T1, Reg::S4, 3);
    p.add(Reg::T2, Reg::S6, Reg::T1);
    p.fld(ft, 0, Reg::T2);
    p.fld(fn_, -row_bytes, Reg::T2);
    p.fld(fs, row_bytes, Reg::T2);
    p.fld(fw_, -8, Reg::T2);
    p.fld(fe, 8, Reg::T2);
    p.add(Reg::T3, Reg::S8, Reg::T1);
    p.fld(fpw, 0, Reg::T3);
    // acc = t + cp*pw + cn*(n+s+e+w - 4t) + ca*(amb - t)
    p.fadd_d(tmp, fn_, fs);
    p.fadd_d(tmp, tmp, fe);
    p.fadd_d(tmp, tmp, fw_);
    p.fadd_d(acc, ft, ft);
    p.fadd_d(acc, acc, acc); // 4t
    p.fsub_d(tmp, tmp, acc);
    p.fmul_d(tmp, tmp, cn);
    p.fmul_d(acc, fpw, cp);
    p.fadd_d(acc, acc, tmp);
    p.fsub_d(tmp, amb, ft);
    p.fmul_d(tmp, tmp, ca);
    p.fadd_d(acc, acc, tmp);
    p.fadd_d(acc, acc, ft);
    p.add(Reg::T3, Reg::S7, Reg::T1);
    p.fsd(acc, 0, Reg::T3);
    p.addi(Reg::S4, Reg::S4, 1);
    p.li(Reg::T0, w as i64 - 1);
    p.blt(Reg::S4, Reg::T0, x_loop);
    p.addi(Reg::S3, Reg::S3, 1);
    p.li(Reg::T0, h as i64 - 1);
    p.blt(Reg::S3, Reg::T0, y_loop);
    // Swap buffers.
    p.mv(Reg::T0, Reg::S0);
    p.mv(Reg::S0, Reg::S1);
    p.mv(Reg::S1, Reg::T0);
    p.addi(Reg::S5, Reg::S5, -1);
    p.bne(Reg::S5, Reg::ZERO, step_loop);

    // Emit the final grid (source buffer after the last swap).
    p.li(Reg::S3, 0);
    let out_loop = p.here();
    p.slli(Reg::T0, Reg::S3, 3);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.fld(FReg::new(9), 0, Reg::T1);
    emit_put_f64_scaled(&mut p, FReg::new(9), 1000.0);
    p.addi(Reg::S3, Reg::S3, 1);
    p.li(Reg::T0, (w * h) as i64);
    p.blt(Reg::S3, Reg::T0, out_loop);
    p.halt();

    Benchmark {
        id: BenchmarkId::Hotspot,
        input_desc: format!("{w} {h} {steps}"),
        classification: "File Output",
        program: p.finish(),
    }
}

/// Native reference (identical operation order and quantization).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (w, h, steps) = params(scale);
    let (temp, power) = inputs(scale);
    let mut src = temp.clone();
    let mut dst = temp;
    for _ in 0..steps {
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                let t = src[i];
                let sum = src[i - w] + src[i + w] + src[i + 1] + src[i - 1];
                let four_t = {
                    let acc = t + t;
                    acc + acc
                };
                let conduct = (sum - four_t) * C_NEIGHBOR;
                let acc = power[i] * C_POWER + conduct;
                let acc = acc + (AMBIENT - t) * C_AMBIENT;
                dst[i] = acc + t;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    let mut out = Vec::new();
    for &t in &src {
        put_f64_scaled_native(&mut out, t, 1000.0);
    }
    out
}
