//! Speckle-reducing anisotropic diffusion (Rodinia's `srad_v1`).
//!
//! Per iteration: image statistics (mean/variance → q0²), per-pixel
//! diffusion coefficient from the normalized gradient (division-heavy), and
//! an explicit diffusion update. Borders clamp. Output is the image
//! quantized to u8 — the paper's "Image Output" criterion.
//!
//! Relative to Rodinia this folds the two-pass divergence into a single
//! pass using the local coefficient (documented simplification; the
//! instruction mix — fp-div/fp-mul dominated — is preserved).

use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg, Syscall};

/// (width, height, iterations, lambda) per scale — paper input
/// `100 0.5 502 458 1` uses λ = 0.5.
pub fn params(scale: Scale) -> (usize, usize, usize, f64) {
    match scale {
        Scale::Test => (10, 8, 3, 0.5),
        Scale::Small => (30, 22, 8, 0.5),
        Scale::Full => (62, 44, 16, 0.5),
    }
}

/// Synthetic speckled image, values in [1, 256].
pub fn input_image(scale: Scale) -> Vec<f64> {
    let (w, h, _, _) = params(scale);
    let mut img = Vec::with_capacity(w * h);
    let mut state = 0xfeed_beef_cafe_f00du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for y in 0..h {
        for x in 0..w {
            let base = if x < w / 2 { 60.0 } else { 180.0 };
            let stripe = if y % 6 < 3 { 20.0 } else { -10.0 };
            img.push((base + stripe + next() * 30.0).max(1.0));
        }
    }
    img
}

/// Build the simulator program.
#[allow(clippy::too_many_lines)]
pub fn build(scale: Scale) -> Benchmark {
    let (w, h, iters, lambda) = params(scale);
    let img = input_image(scale);
    let mut p = ProgramBuilder::new();
    let j_addr = p.doubles(&img);
    let size = (w * h) as i64;
    let row = (8 * w) as i16;

    let (fj, dn, ds, dw, de) = (
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
    );
    let (g2, l, num, den, q) = (
        FReg::new(6),
        FReg::new(7),
        FReg::new(8),
        FReg::new(9),
        FReg::new(10),
    );
    let (sum, sum2, mean, var, q0) = (
        FReg::new(11),
        FReg::new(12),
        FReg::new(13),
        FReg::new(14),
        FReg::new(15),
    );
    let (c, t1, t2) = (FReg::new(16), FReg::new(17), FReg::new(18));
    let (one, quarter, sixteenth, flam, fhalf, fzero) = (
        FReg::new(20),
        FReg::new(21),
        FReg::new(22),
        FReg::new(23),
        FReg::new(24),
        FReg::new(25),
    );
    p.fli(one, 1.0, Reg::T6);
    p.fli(quarter, 0.25, Reg::T6);
    p.fli(sixteenth, 1.0 / 16.0, Reg::T6);
    p.fli(flam, lambda * 0.25, Reg::T6);
    p.fli(fhalf, 0.5, Reg::T6);
    p.fli(fzero, 0.0, Reg::T6);

    p.la(Reg::S0, j_addr);
    p.li(Reg::S11, iters as i64);
    let iter_loop = p.here();

    // Statistics pass: sum, sum of squares.
    p.fmv_d(sum, fzero);
    p.fmv_d(sum2, fzero);
    p.li(Reg::S6, 0);
    let stat_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 3);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.fld(fj, 0, Reg::T1);
    p.fadd_d(sum, sum, fj);
    p.fmul_d(t1, fj, fj);
    p.fadd_d(sum2, sum2, t1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.li(Reg::T0, size);
    p.blt(Reg::S6, Reg::T0, stat_loop);
    // mean = sum/size; var = sum2/size - mean²; q0 = var/mean².
    p.li(Reg::T0, size);
    p.fcvt_d_l(t1, Reg::T0);
    p.fdiv_d(mean, sum, t1);
    p.fdiv_d(var, sum2, t1);
    p.fmul_d(t2, mean, mean);
    p.fsub_d(var, var, t2);
    p.fdiv_d(q0, var, t2);

    // Diffusion pass over interior pixels.
    p.li(Reg::S3, 1); // y
    let y_loop = p.here();
    p.li(Reg::T0, w as i64);
    p.mul(Reg::T0, Reg::S3, Reg::T0);
    p.slli(Reg::T0, Reg::T0, 3);
    p.add(Reg::S5, Reg::S0, Reg::T0);
    p.li(Reg::S4, 1); // x
    let x_loop = p.here();
    p.slli(Reg::T1, Reg::S4, 3);
    p.add(Reg::T2, Reg::S5, Reg::T1);
    p.fld(fj, 0, Reg::T2);
    p.fld(dn, -row, Reg::T2);
    p.fsub_d(dn, dn, fj);
    p.fld(ds, row, Reg::T2);
    p.fsub_d(ds, ds, fj);
    p.fld(dw, -8, Reg::T2);
    p.fsub_d(dw, dw, fj);
    p.fld(de, 8, Reg::T2);
    p.fsub_d(de, de, fj);
    // G² = (dn²+ds²+dw²+de²)/J² ; L = (dn+ds+dw+de)/J
    p.fmul_d(g2, dn, dn);
    p.fmul_d(t1, ds, ds);
    p.fadd_d(g2, g2, t1);
    p.fmul_d(t1, dw, dw);
    p.fadd_d(g2, g2, t1);
    p.fmul_d(t1, de, de);
    p.fadd_d(g2, g2, t1);
    p.fmul_d(t2, fj, fj);
    p.fdiv_d(g2, g2, t2);
    p.fadd_d(l, dn, ds);
    p.fadd_d(l, l, dw);
    p.fadd_d(l, l, de);
    p.fdiv_d(l, l, fj);
    // q = (G²/2 − L²/16) / (1 + L/4)²
    p.fmul_d(num, g2, fhalf);
    p.fmul_d(t1, l, l);
    p.fmul_d(t1, t1, sixteenth);
    p.fsub_d(num, num, t1);
    p.fmul_d(den, l, quarter);
    p.fadd_d(den, den, one);
    p.fmul_d(den, den, den);
    p.fdiv_d(q, num, den);
    // c = 1 / (1 + (q − q0)/(q0·(1 + q0))), clamped to [0, 1]
    p.fsub_d(t1, q, q0);
    p.fadd_d(t2, one, q0);
    p.fmul_d(t2, t2, q0);
    p.fdiv_d(t1, t1, t2);
    p.fadd_d(t1, t1, one);
    p.fdiv_d(c, one, t1);
    let not_low = p.label();
    p.flt_d(Reg::T3, c, fzero);
    p.beq(Reg::T3, Reg::ZERO, not_low);
    p.fmv_d(c, fzero);
    p.bind(not_low);
    let not_high = p.label();
    p.flt_d(Reg::T3, one, c);
    p.beq(Reg::T3, Reg::ZERO, not_high);
    p.fmv_d(c, one);
    p.bind(not_high);
    // J += λ/4 · c · (dn+ds+dw+de)
    p.fadd_d(t1, dn, ds);
    p.fadd_d(t1, t1, dw);
    p.fadd_d(t1, t1, de);
    p.fmul_d(t1, t1, c);
    p.fmul_d(t1, t1, flam);
    p.fadd_d(fj, fj, t1);
    p.fsd(fj, 0, Reg::T2);
    p.addi(Reg::S4, Reg::S4, 1);
    p.li(Reg::T0, w as i64 - 1);
    p.blt(Reg::S4, Reg::T0, x_loop);
    p.addi(Reg::S3, Reg::S3, 1);
    p.li(Reg::T0, h as i64 - 1);
    p.blt(Reg::S3, Reg::T0, y_loop);
    p.addi(Reg::S11, Reg::S11, -1);
    p.bne(Reg::S11, Reg::ZERO, iter_loop);

    // Output: u8-quantized image.
    p.li(Reg::S6, 0);
    let out_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 3);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.fld(fj, 0, Reg::T1);
    p.fcvt_l_d(Reg::T2, fj);
    p.li(Reg::T3, 255);
    let no_hi = p.label();
    p.blt(Reg::T2, Reg::T3, no_hi);
    p.mv(Reg::T2, Reg::T3);
    p.bind(no_hi);
    let no_lo = p.label();
    p.bge(Reg::T2, Reg::ZERO, no_lo);
    p.li(Reg::T2, 0);
    p.bind(no_lo);
    p.mv(Reg::A0, Reg::T2);
    p.syscall(Syscall::PutByte);
    p.addi(Reg::S6, Reg::S6, 1);
    p.li(Reg::T0, size);
    p.blt(Reg::S6, Reg::T0, out_loop);
    p.halt();

    Benchmark {
        id: BenchmarkId::SradV1,
        input_desc: format!("{iters} {lambda} {h} {w} 1"),
        classification: "Image Output",
        program: p.finish(),
    }
}

/// Native reference (identical operation order).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (w, h, iters, lambda) = params(scale);
    let mut img = input_image(scale);
    let size = (w * h) as f64;
    for _ in 0..iters {
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for &v in &img {
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / size;
        let var = sum2 / size - mean * mean;
        let q0 = var / (mean * mean);
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                let j = img[i];
                let dn = img[i - w] - j;
                let ds = img[i + w] - j;
                let dw = img[i - 1] - j;
                let de = img[i + 1] - j;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j * j);
                let l = (dn + ds + dw + de) / j;
                let num = g2 * 0.5 - (l * l) * (1.0 / 16.0);
                let den = {
                    let d = l * 0.25 + 1.0;
                    d * d
                };
                let q = num / den;
                let t = (q - q0) / ((1.0 + q0) * q0) + 1.0;
                // Mirrors the two emitted compare-and-select instructions
                // (not `clamp`, to keep operation order identical).
                #[allow(clippy::manual_clamp)]
                let c = {
                    let mut c = 1.0 / t;
                    if c < 0.0 {
                        c = 0.0;
                    }
                    if 1.0 < c {
                        c = 1.0;
                    }
                    c
                };
                img[i] = j + (dn + ds + dw + de) * c * (lambda * 0.25);
            }
        }
    }
    img.iter()
        .map(|&v| (v as i64).clamp(0, 255) as u8)
        .collect()
}
