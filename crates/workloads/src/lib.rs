//! # tei-workloads
//!
//! The seven benchmark kernels of the paper's Table II — `sobel`, `cg`,
//! `k-means`, `srad_v1`, `hotspot`, `is`, and `mg` — written against the
//! `tei-isa` program builder, with deterministic synthetic inputs, native
//! Rust reference implementations (bit-exact mirrors used by the test
//! suite), and the per-benchmark outcome-classification criteria.
//!
//! Sizes are scaled for simulator throughput ([`Scale`]); EXPERIMENTS.md
//! records the mapping to the paper's inputs.
//!
//! ## Example
//!
//! ```
//! use tei_workloads::{build, BenchmarkId, Scale};
//! use tei_uarch::FuncCore;
//!
//! let bench = build(BenchmarkId::Sobel, Scale::Test);
//! let mut core = FuncCore::with_memory(&bench.program, 1 << 20);
//! let r = core.run(10_000_000);
//! assert!(r.exit.is_success());
//! assert_eq!(core.output, tei_workloads::sobel::native_output(Scale::Test));
//! ```

pub mod cg;
pub mod helpers;
pub mod hotspot;
pub mod is;
pub mod kmeans;
pub mod mg;
pub mod sobel;
pub mod srad;

use serde::{Deserialize, Serialize};
use tei_isa::Program;

/// Benchmark identifiers, in the paper's Table II order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Sobel image filter (Image Detection domain).
    Sobel,
    /// NAS conjugate gradient (HPC).
    Cg,
    /// Rodinia k-means (Data Mining).
    Kmeans,
    /// Rodinia srad_v1 (Medical Imaging).
    SradV1,
    /// Rodinia hotspot (Physics simulation).
    Hotspot,
    /// NAS integer sort (HPC).
    Is,
    /// NAS multigrid (HPC).
    Mg,
}

impl BenchmarkId {
    /// All seven benchmarks in Table II order.
    pub fn all() -> [BenchmarkId; 7] {
        [
            BenchmarkId::Sobel,
            BenchmarkId::Cg,
            BenchmarkId::Kmeans,
            BenchmarkId::SradV1,
            BenchmarkId::Hotspot,
            BenchmarkId::Is,
            BenchmarkId::Mg,
        ]
    }

    /// The paper's name for this benchmark.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Sobel => "sobel",
            BenchmarkId::Cg => "cg",
            BenchmarkId::Kmeans => "k-means",
            BenchmarkId::SradV1 => "srad_v1",
            BenchmarkId::Hotspot => "hotspot",
            BenchmarkId::Is => "is",
            BenchmarkId::Mg => "mg",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem-size scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (debug-build friendly).
    Test,
    /// Default campaign inputs (hundreds of thousands of instructions).
    #[default]
    Small,
    /// Larger inputs for full experiments.
    Full,
}

/// A built benchmark: the program plus its Table II metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Table II "Input" column (actual scaled parameters).
    pub input_desc: String,
    /// Table II "Classification Criteria" column.
    pub classification: &'static str,
    /// The executable program.
    pub program: Program,
}

/// Build a benchmark at the given scale.
pub fn build(id: BenchmarkId, scale: Scale) -> Benchmark {
    match id {
        BenchmarkId::Sobel => sobel::build(scale),
        BenchmarkId::Cg => cg::build(scale),
        BenchmarkId::Kmeans => kmeans::build(scale),
        BenchmarkId::SradV1 => srad::build(scale),
        BenchmarkId::Hotspot => hotspot::build(scale),
        BenchmarkId::Is => is::build(scale),
        BenchmarkId::Mg => mg::build(scale),
    }
}

/// The bit-exact native reference output for a benchmark at a scale.
pub fn native_output(id: BenchmarkId, scale: Scale) -> Vec<u8> {
    match id {
        BenchmarkId::Sobel => sobel::native_output(scale),
        BenchmarkId::Cg => cg::native_output(scale),
        BenchmarkId::Kmeans => kmeans::native_output(scale),
        BenchmarkId::SradV1 => srad::native_output(scale),
        BenchmarkId::Hotspot => hotspot::native_output(scale),
        BenchmarkId::Is => is::native_output(scale),
        BenchmarkId::Mg => mg::native_output(scale),
    }
}
