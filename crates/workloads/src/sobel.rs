//! Sobel edge-detection filter (the paper's open-source image filter).
//!
//! Integer 3×3 gradients, floating-point magnitude `sqrt(gx² + gy²)` via
//! Newton iteration (fp-mul/fp-add/fp-div heavy), output quantized to u8 —
//! the paper's "Image Output" classification criterion.

use crate::helpers::{emit_half_constant, emit_newton_sqrt, newton_sqrt_native};
use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg, Syscall};

/// Newton iterations in the magnitude square root.
const SQRT_ITERS: usize = 6;

/// Image dimensions per scale.
pub fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (12, 10),
        Scale::Small => (36, 28),
        Scale::Full => (123, 96),
    }
}

/// Deterministic synthetic image (smooth gradients + texture), u8 pixels.
pub fn input_image(scale: Scale) -> Vec<u8> {
    let (w, h) = dims(scale);
    let mut img = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            // A blob plus diagonal texture: gives edges of varied strength.
            let cx = x as f64 - w as f64 / 2.0;
            let cy = y as f64 - h as f64 / 2.0;
            let blob = 200.0 * (-((cx * cx + cy * cy) / (w as f64 * 2.0))).exp();
            let texture = (((x * 7 + y * 13) % 32) as f64) * 1.5;
            img.push((blob + texture).min(255.0) as u8);
        }
    }
    img
}

/// Build the simulator program.
pub fn build(scale: Scale) -> Benchmark {
    let (w, h) = dims(scale);
    let img = input_image(scale);
    let mut p = ProgramBuilder::new();
    let img_addr = p.bytes(&img);
    let wi = w as i16;

    emit_half_constant(&mut p);
    p.la(Reg::S0, img_addr);
    p.li(Reg::S1, w as i64);
    p.li(Reg::S2, h as i64);
    p.li(Reg::S3, 1); // y
    let y_loop = p.here();
    // s5 = row pointer = img + y*w
    p.mul(Reg::T0, Reg::S3, Reg::S1);
    p.add(Reg::S5, Reg::S0, Reg::T0);
    p.li(Reg::S4, 1); // x
    let x_loop = p.here();
    p.add(Reg::T1, Reg::S5, Reg::S4);
    // Neighborhood loads.
    p.lbu(Reg::T2, -wi - 1, Reg::T1); // nw
    p.lbu(Reg::T3, -wi, Reg::T1); // n
    p.lbu(Reg::T4, -wi + 1, Reg::T1); // ne
    p.lbu(Reg::T5, -1, Reg::T1); // w
    p.lbu(Reg::T6, 1, Reg::T1); // e
    p.lbu(Reg::A1, wi - 1, Reg::T1); // sw
    p.lbu(Reg::A2, wi, Reg::T1); // s
    p.lbu(Reg::A3, wi + 1, Reg::T1); // se
                                     // gx = (ne + 2e + se) - (nw + 2w + sw)
    p.slli(Reg::T0, Reg::T6, 1);
    p.add(Reg::A4, Reg::T4, Reg::T0);
    p.add(Reg::A4, Reg::A4, Reg::A3);
    p.slli(Reg::T0, Reg::T5, 1);
    p.add(Reg::T0, Reg::T0, Reg::T2);
    p.add(Reg::T0, Reg::T0, Reg::A1);
    p.sub(Reg::A4, Reg::A4, Reg::T0);
    // gy = (sw + 2s + se) - (nw + 2n + ne)
    p.slli(Reg::T0, Reg::A2, 1);
    p.add(Reg::A5, Reg::A1, Reg::T0);
    p.add(Reg::A5, Reg::A5, Reg::A3);
    p.slli(Reg::T0, Reg::T3, 1);
    p.add(Reg::T0, Reg::T0, Reg::T2);
    p.add(Reg::T0, Reg::T0, Reg::T4);
    p.sub(Reg::A5, Reg::A5, Reg::T0);
    // m = sqrt(gx² + gy²) in floating point.
    let (f11, f12, f13, f10) = (FReg::new(11), FReg::new(12), FReg::new(13), FReg::new(10));
    p.fcvt_d_l(f11, Reg::A4);
    p.fcvt_d_l(f12, Reg::A5);
    p.fmul_d(f11, f11, f11);
    p.fmul_d(f12, f12, f12);
    p.fadd_d(f13, f11, f12);
    emit_newton_sqrt(&mut p, f10, f13, SQRT_ITERS);
    p.fcvt_l_d(Reg::T2, f10);
    // Clamp to 255 and emit.
    p.li(Reg::T3, 255);
    let no_clamp = p.label();
    p.blt(Reg::T2, Reg::T3, no_clamp);
    p.mv(Reg::T2, Reg::T3);
    p.bind(no_clamp);
    p.mv(Reg::A0, Reg::T2);
    p.syscall(Syscall::PutByte);
    // Loop control.
    p.addi(Reg::S4, Reg::S4, 1);
    p.li(Reg::T0, w as i64 - 1);
    p.blt(Reg::S4, Reg::T0, x_loop);
    p.addi(Reg::S3, Reg::S3, 1);
    p.li(Reg::T0, h as i64 - 1);
    p.blt(Reg::S3, Reg::T0, y_loop);
    p.halt();

    Benchmark {
        id: BenchmarkId::Sobel,
        input_desc: format!("{w} x {h}"),
        classification: "Image Output",
        program: p.finish(),
    }
}

/// Native reference (identical operation order and quantization).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (w, h) = dims(scale);
    let img = input_image(scale);
    let px = |x: usize, y: usize| img[y * w + x] as i64;
    let mut out = Vec::new();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let gx = (px(x + 1, y - 1) + 2 * px(x + 1, y) + px(x + 1, y + 1))
                - (px(x - 1, y - 1) + 2 * px(x - 1, y) + px(x - 1, y + 1));
            let gy = (px(x - 1, y + 1) + 2 * px(x, y + 1) + px(x + 1, y + 1))
                - (px(x - 1, y - 1) + 2 * px(x, y - 1) + px(x + 1, y - 1));
            let (fx, fy) = (gx as f64, gy as f64);
            let m = newton_sqrt_native(fx * fx + fy * fy, SQRT_ITERS);
            out.push((m as i64).min(255) as u8);
        }
    }
    out
}
