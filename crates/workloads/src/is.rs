//! Integer sort (NAS `is`).
//!
//! Key generation uses the NAS floating-point `randlc` chain (fp-mul and
//! conversion heavy — the workload behind the paper's Figure 6), followed
//! by an integer counting sort and the NAS-style self-verification. Keys
//! index the count array directly, so a corrupted key value can fault —
//! the Crash path of this benchmark.

use crate::helpers::{
    emit_put_int, emit_randlc_constants, emit_randlc_subroutine, put_int_native, randlc_native,
    RANDLC_A,
};
use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg};

/// (keys, key range) per scale.
pub fn params(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 256),
        Scale::Small => (4096, 2048),
        Scale::Full => (32768, 8192),
    }
}

const SEED: f64 = 314159265.0;

/// Build the simulator program.
pub fn build(scale: Scale) -> Benchmark {
    let (n, range) = params(scale);
    let mut p = ProgramBuilder::new();
    let counts = p.zeros(8 * range);

    // Jump over the subroutine body.
    let start = p.label();
    p.j(start);
    let randlc = emit_randlc_subroutine(&mut p);
    p.bind(start);

    emit_randlc_constants(&mut p);
    p.fli(FReg::new(20), SEED, Reg::T6); // x state
    p.fli(FReg::new(22), range as f64, Reg::T6);
    p.la(Reg::S0, counts);
    p.li(Reg::S1, n as i64);

    // Generation + counting.
    p.li(Reg::S6, 0);
    let gen_loop = p.here();
    // key = trunc(range * ((r1 + r2) * 0.5)) — two draws per key.
    p.call(randlc);
    p.fmv_d(FReg::new(10), FReg::new(19));
    p.call(randlc);
    p.fadd_d(FReg::new(10), FReg::new(10), FReg::new(19));
    p.fli(FReg::new(11), 0.5, Reg::T6);
    p.fmul_d(FReg::new(10), FReg::new(10), FReg::new(11));
    p.fmul_d(FReg::new(10), FReg::new(10), FReg::new(22));
    p.fcvt_l_d(Reg::T2, FReg::new(10));
    // counts[key]++ — unguarded, as in the original.
    p.slli(Reg::T0, Reg::T2, 3);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.ld(Reg::T3, 0, Reg::T1);
    p.addi(Reg::T3, Reg::T3, 1);
    p.sd(Reg::T3, 0, Reg::T1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S1, gen_loop);

    // Verification: total count == n and weighted checksum.
    p.li(Reg::S7, 0); // total
    p.li(Reg::S8, 0); // checksum
    p.li(Reg::S6, 0);
    let ver_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 3);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.ld(Reg::T2, 0, Reg::T1);
    p.add(Reg::S7, Reg::S7, Reg::T2);
    p.mul(Reg::T3, Reg::T2, Reg::S6);
    p.add(Reg::S8, Reg::S8, Reg::T3);
    p.addi(Reg::S6, Reg::S6, 1);
    p.li(Reg::T0, range as i64);
    p.blt(Reg::S6, Reg::T0, ver_loop);
    // verdict: total == n
    p.li(Reg::T0, n as i64);
    p.sub(Reg::T1, Reg::S7, Reg::T0);
    p.sltu(Reg::T2, Reg::ZERO, Reg::T1);
    p.xori(Reg::T2, Reg::T2, 1);
    emit_put_int(&mut p, Reg::T2);
    emit_put_int(&mut p, Reg::S8);
    p.halt();

    Benchmark {
        id: BenchmarkId::Is,
        input_desc: format!("{n} keys in [0, {range})"),
        classification: "Verification checking",
        program: p.finish(),
    }
}

/// Native reference (identical operation order).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (n, range) = params(scale);
    let mut counts = vec![0i64; range];
    let mut x = SEED;
    for _ in 0..n {
        let r1 = randlc_native(&mut x, RANDLC_A);
        let r2 = randlc_native(&mut x, RANDLC_A);
        let key = (((r1 + r2) * 0.5) * range as f64) as i64;
        counts[key as usize] += 1;
    }
    let mut total = 0i64;
    let mut checksum = 0i64;
    for (i, &c) in counts.iter().enumerate() {
        total += c;
        checksum += c * i as i64;
    }
    let mut out = Vec::new();
    put_int_native(&mut out, (total == n as i64) as i64);
    put_int_native(&mut out, checksum);
    out
}
