//! Conjugate gradient (NAS `cg`).
//!
//! CG iterations on a dense symmetric positive-definite system, followed by
//! the NAS-style self-verification step — the paper's "Verification
//! checking" classification criterion. The output carries the verdict plus
//! quantized solution statistics, so both caught and silent corruptions
//! surface as output differences.

use crate::helpers::{
    emit_half_constant, emit_newton_sqrt, emit_put_f64_scaled, emit_put_int, newton_sqrt_native,
    put_f64_scaled_native, put_int_native,
};
use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg};

/// (matrix dimension, CG iterations) per scale.
pub fn params(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (8, 12),
        Scale::Small => (28, 25),
        Scale::Full => (64, 60),
    }
}

const SQRT_ITERS: usize = 5;
const EPS: f64 = 1e-8;

/// The SPD system: `A = N·I + M^T M`-style diagonally dominant matrix and
/// right-hand side `b = A · 1`, so the exact solution is all-ones.
pub fn inputs(scale: Scale) -> (Vec<f64>, Vec<f64>) {
    let (n, _) = params(scale);
    let mut a = vec![0f64; n * n];
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
        a[i * n + i] += n as f64; // diagonal dominance → SPD
    }
    let mut b = vec![0f64; n];
    for i in 0..n {
        b[i] = a[i * n..i * n + n].iter().sum();
    }
    (a, b)
}

/// Build the simulator program.
pub fn build(scale: Scale) -> Benchmark {
    let (n, iters) = params(scale);
    let (a, b) = inputs(scale);
    let mut p = ProgramBuilder::new();
    let a_addr = p.doubles(&a);
    let b_addr = p.doubles(&b);
    let x_addr = p.zeros(8 * n);
    p.align(8);
    let r_addr = p.zeros(8 * n);
    let p_addr = p.zeros(8 * n);
    let q_addr = p.zeros(8 * n);

    let (acc, t1, t2) = (FReg::new(1), FReg::new(2), FReg::new(3));
    let (rho, alpha, beta, rho_new) = (FReg::new(10), FReg::new(11), FReg::new(12), FReg::new(13));

    emit_half_constant(&mut p);
    p.la(Reg::S0, a_addr);
    p.la(Reg::S1, x_addr);
    p.la(Reg::S2, r_addr);
    p.la(Reg::S3, p_addr);
    p.la(Reg::S4, q_addr);
    p.la(Reg::S5, b_addr);
    p.li(Reg::S10, n as i64);

    // r = b; p = b; rho = r·r
    let mk_idx8 = |pb: &mut ProgramBuilder, i: Reg, base: Reg, dst: Reg| {
        pb.slli(Reg::T0, i, 3);
        pb.add(dst, base, Reg::T0);
    };
    p.li(Reg::S6, 0);
    p.fli(rho, 0.0, Reg::T6);
    let init_loop = p.here();
    mk_idx8(&mut p, Reg::S6, Reg::S5, Reg::T1);
    p.fld(t1, 0, Reg::T1);
    mk_idx8(&mut p, Reg::S6, Reg::S2, Reg::T1);
    p.fsd(t1, 0, Reg::T1);
    mk_idx8(&mut p, Reg::S6, Reg::S3, Reg::T1);
    p.fsd(t1, 0, Reg::T1);
    p.fmul_d(t2, t1, t1);
    p.fadd_d(rho, rho, t2);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S10, init_loop);

    p.li(Reg::S11, iters as i64);
    let cg_loop = p.here();
    // q = A p  and  pq = p·q
    let pq = FReg::new(14);
    p.fli(pq, 0.0, Reg::T6);
    p.li(Reg::S6, 0); // i
    let mv_i = p.here();
    p.fli(acc, 0.0, Reg::T6);
    p.li(Reg::S7, 0); // j
                      // row pointer = A + i*n*8
    p.li(Reg::T0, (8 * n) as i64);
    p.mul(Reg::T0, Reg::S6, Reg::T0);
    p.add(Reg::S8, Reg::S0, Reg::T0);
    let mv_j = p.here();
    p.slli(Reg::T0, Reg::S7, 3);
    p.add(Reg::T1, Reg::S8, Reg::T0);
    p.fld(t1, 0, Reg::T1);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.fld(t2, 0, Reg::T1);
    p.fmul_d(t1, t1, t2);
    p.fadd_d(acc, acc, t1);
    p.addi(Reg::S7, Reg::S7, 1);
    p.blt(Reg::S7, Reg::S10, mv_j);
    mk_idx8(&mut p, Reg::S6, Reg::S4, Reg::T1);
    p.fsd(acc, 0, Reg::T1);
    mk_idx8(&mut p, Reg::S6, Reg::S3, Reg::T1);
    p.fld(t2, 0, Reg::T1);
    p.fmul_d(t2, t2, acc);
    p.fadd_d(pq, pq, t2);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S10, mv_i);
    // alpha = rho / pq
    p.fdiv_d(alpha, rho, pq);
    // x += alpha p; r -= alpha q; rho_new = r·r
    p.fli(rho_new, 0.0, Reg::T6);
    p.li(Reg::S6, 0);
    let upd_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 3);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.fld(t1, 0, Reg::T1);
    p.fmul_d(t1, t1, alpha);
    p.add(Reg::T1, Reg::S1, Reg::T0);
    p.fld(t2, 0, Reg::T1);
    p.fadd_d(t2, t2, t1);
    p.fsd(t2, 0, Reg::T1);
    p.add(Reg::T1, Reg::S4, Reg::T0);
    p.fld(t1, 0, Reg::T1);
    p.fmul_d(t1, t1, alpha);
    p.add(Reg::T1, Reg::S2, Reg::T0);
    p.fld(t2, 0, Reg::T1);
    p.fsub_d(t2, t2, t1);
    p.fsd(t2, 0, Reg::T1);
    p.fmul_d(t1, t2, t2);
    p.fadd_d(rho_new, rho_new, t1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S10, upd_loop);
    // beta = rho_new/rho; rho = rho_new; p = r + beta p
    p.fdiv_d(beta, rho_new, rho);
    p.fmv_d(rho, rho_new);
    p.li(Reg::S6, 0);
    let pup_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 3);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.fld(t1, 0, Reg::T1);
    p.fmul_d(t1, t1, beta);
    p.add(Reg::T2, Reg::S2, Reg::T0);
    p.fld(t2, 0, Reg::T2);
    p.fadd_d(t1, t2, t1);
    p.fsd(t1, 0, Reg::T1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S10, pup_loop);
    p.addi(Reg::S11, Reg::S11, -1);
    p.bne(Reg::S11, Reg::ZERO, cg_loop);

    // Verification: rnorm = sqrt(rho) < EPS·n, xsum = Σ x.
    let (rnorm, xsum, eps) = (FReg::new(15), FReg::new(16), FReg::new(17));
    emit_newton_sqrt(&mut p, rnorm, rho, SQRT_ITERS);
    p.fli(eps, EPS, Reg::T6);
    p.fcvt_d_l(t1, Reg::S10);
    p.fmul_d(eps, eps, t1);
    p.flt_d(Reg::T2, rnorm, eps);
    emit_put_int(&mut p, Reg::T2); // verdict line
    p.fli(xsum, 0.0, Reg::T6);
    p.li(Reg::S6, 0);
    let sum_loop = p.here();
    mk_idx8(&mut p, Reg::S6, Reg::S1, Reg::T1);
    p.fld(t1, 0, Reg::T1);
    p.fadd_d(xsum, xsum, t1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.blt(Reg::S6, Reg::S10, sum_loop);
    emit_put_f64_scaled(&mut p, xsum, 1e6);
    emit_put_f64_scaled(&mut p, rnorm, 1e12);
    p.halt();

    Benchmark {
        id: BenchmarkId::Cg,
        input_desc: format!("N={n}, {iters} CG iterations"),
        classification: "Verification checking",
        program: p.finish(),
    }
}

/// Native reference (identical operation order).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (n, iters) = params(scale);
    let (a, b) = inputs(scale);
    let mut x = vec![0f64; n];
    let mut r = b.clone();
    let mut pv = b.clone();
    let mut q = vec![0f64; n];
    let mut rho = 0.0;
    for bi in b.iter().take(n) {
        rho += bi * bi;
    }
    for _ in 0..iters {
        let mut pq = 0.0;
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j] * pv[j];
            }
            q[i] = acc;
            pq += pv[i] * acc;
        }
        let alpha = rho / pq;
        let mut rho_new = 0.0;
        for i in 0..n {
            x[i] += pv[i] * alpha;
            r[i] -= q[i] * alpha;
            rho_new += r[i] * r[i];
        }
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            pv[i] = r[i] + pv[i] * beta;
        }
    }
    let rnorm = newton_sqrt_native(rho, SQRT_ITERS);
    let eps = EPS * n as f64;
    let mut out = Vec::new();
    put_int_native(&mut out, (rnorm < eps) as i64);
    let mut xsum = 0.0;
    for &xi in &x {
        xsum += xi;
    }
    put_f64_scaled_native(&mut out, xsum, 1e6);
    put_f64_scaled_native(&mut out, rnorm, 1e12);
    out
}
