//! Shared kernel-construction helpers: the NAS-style `randlc` pseudorandom
//! generator, inline Newton square roots, and quantized output emitters.
//!
//! Register conventions (documented per helper) are manual; kernels reserve
//! `f19`–`f31` and `t5`/`t6` for helper plumbing.

use tei_isa::{FReg, Label, ProgramBuilder, Reg, Syscall};

/// NAS `randlc` multiplicative LCG constants.
pub const R23: f64 = 1.0 / (1u64 << 23) as f64;
/// 2^23.
pub const T23: f64 = (1u64 << 23) as f64;
/// 2^-46.
pub const R46: f64 = R23 * R23;
/// 2^46.
pub const T46: f64 = T23 * T23;
/// The NAS LCG multiplier 5^13.
pub const RANDLC_A: f64 = 1220703125.0;

/// Emit the `randlc` subroutine and return its entry label.
///
/// Calling convention: `f20` = seed (updated), `f21` = multiplier,
/// `f24..f27` = (r23, t23, r46, t46) preloaded by
/// [`emit_randlc_constants`]; result in `f19`; clobbers `f1`–`f8`, `t5`.
///
/// The double-precision splitting arithmetic is exactly NAS's: it leans on
/// fp-mul and the float↔int conversions, which is why the paper's Figure 6
/// studies the `is` program's fp-mul bit error ratios.
pub fn emit_randlc_subroutine(p: &mut ProgramBuilder) -> Label {
    let entry = p.here();
    let (f1, f2, f3, f4, f5, f6, f7, f8) = (
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
        FReg::new(6),
        FReg::new(7),
        FReg::new(8),
    );
    let (x, a, out) = (FReg::new(20), FReg::new(21), FReg::new(19));
    let (r23, t23, r46, t46) = (FReg::new(24), FReg::new(25), FReg::new(26), FReg::new(27));
    let t5 = Reg::T5;
    let trunc = |p: &mut ProgramBuilder, dst: FReg, src: FReg| {
        p.fcvt_l_d(t5, src);
        p.fcvt_d_l(dst, t5);
    };
    // a1 = trunc(r23*a); a2 = a - t23*a1
    p.fmul_d(f1, r23, a);
    trunc(p, f2, f1);
    p.fmul_d(f4, t23, f2);
    p.fsub_d(f3, a, f4);
    // x1 = trunc(r23*x); x2 = x - t23*x1
    p.fmul_d(f1, r23, x);
    trunc(p, f5, f1);
    p.fmul_d(f4, t23, f5);
    p.fsub_d(f6, x, f4);
    // t1 = a1*x2 + a2*x1
    p.fmul_d(f1, f2, f6);
    p.fmul_d(f4, f3, f5);
    p.fadd_d(f1, f1, f4);
    // t2 = trunc(r23*t1); z = t1 - t23*t2
    p.fmul_d(f4, r23, f1);
    trunc(p, f7, f4);
    p.fmul_d(f4, t23, f7);
    p.fsub_d(f8, f1, f4);
    // t3 = t23*z + a2*x2
    p.fmul_d(f1, t23, f8);
    p.fmul_d(f4, f3, f6);
    p.fadd_d(f1, f1, f4);
    // t4 = trunc(r46*t3); x = t3 - t46*t4
    p.fmul_d(f4, r46, f1);
    trunc(p, f7, f4);
    p.fmul_d(f4, t46, f7);
    p.fsub_d(x, f1, f4);
    // result = r46 * x
    p.fmul_d(out, r46, x);
    p.ret();
    entry
}

/// Load the `randlc` constants into `f24..f27` and the multiplier 5^13
/// into `f21` (clobbers `t6`).
pub fn emit_randlc_constants(p: &mut ProgramBuilder) {
    p.fli(FReg::new(24), R23, Reg::T6);
    p.fli(FReg::new(25), T23, Reg::T6);
    p.fli(FReg::new(26), R46, Reg::T6);
    p.fli(FReg::new(27), T46, Reg::T6);
    p.fli(FReg::new(21), RANDLC_A, Reg::T6);
}

/// Native mirror of the emitted `randlc` (same operation order), for golden
/// reference implementations.
pub fn randlc_native(x: &mut f64, a: f64) -> f64 {
    let t1 = R23 * a;
    let a1 = (t1 as i64) as f64;
    let a2 = a - T23 * a1;
    let t1 = R23 * *x;
    let x1 = (t1 as i64) as f64;
    let x2 = *x - T23 * x1;
    let t1 = a1 * x2 + a2 * x1;
    let t2 = ((R23 * t1) as i64) as f64;
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = ((R46 * t3) as i64) as f64;
    *x = t3 - T46 * t4;
    R46 * *x
}

/// Exponent-halving Newton seed constant: `(1023 << 51)`.
const SQRT_SEED_BIAS: u64 = 1023u64 << 51;

/// Inline a Newton-iteration square root: `dst = sqrt(src)`.
///
/// Seeds with the classic exponent-halving bit trick
/// `bits(s0) = (bits(x) >> 1) + (1023 << 51)` (within ~6 % of the root for
/// every normal double), then `iters` iterations of `s = 0.5·(s + x/s)` —
/// heavy in fp-div and fp-mul, as the sobel magnitude computation is in
/// the original C program. Clobbers `f30`, `f31`, `t5`; uses the 0.5
/// constant in `f28`. `src` must be non-negative.
pub fn emit_newton_sqrt(p: &mut ProgramBuilder, dst: FReg, src: FReg, iters: usize) {
    let half = FReg::new(28);
    let s = FReg::new(30);
    let t = FReg::new(31);
    p.fmv_x_d(Reg::T5, src);
    p.srli(Reg::T5, Reg::T5, 1);
    p.li(Reg::T6, SQRT_SEED_BIAS as i64);
    p.add(Reg::T5, Reg::T5, Reg::T6);
    p.fmv_d_x(s, Reg::T5);
    for _ in 0..iters {
        p.fdiv_d(t, src, s);
        p.fadd_d(t, t, s);
        p.fmul_d(s, t, half);
    }
    p.fmv_d(dst, s);
}

/// Native mirror of [`emit_newton_sqrt`].
pub fn newton_sqrt_native(x: f64, iters: usize) -> f64 {
    let mut s = f64::from_bits((x.to_bits() >> 1).wrapping_add(SQRT_SEED_BIAS));
    for _ in 0..iters {
        let t = x / s + s;
        s = t * 0.5;
    }
    s
}

/// Load the constant 0.5 into `f28` (used by the sqrt helper; clobbers `t6`).
pub fn emit_half_constant(p: &mut ProgramBuilder) {
    p.fli(FReg::new(28), 0.5, Reg::T6);
}

/// Emit: print `trunc(f_src × scale)` as a decimal integer followed by a
/// newline. Clobbers `f29`, `f31`, `a0`, `a7`, `t6`.
pub fn emit_put_f64_scaled(p: &mut ProgramBuilder, src: FReg, scale: f64) {
    p.fli(FReg::new(29), scale, Reg::T6);
    p.fmul_d(FReg::new(31), src, FReg::new(29));
    p.fcvt_l_d(Reg::A0, FReg::new(31));
    p.syscall(Syscall::PutInt);
    p.li(Reg::A0, b'\n' as i64);
    p.syscall(Syscall::PutByte);
}

/// Native mirror of [`emit_put_f64_scaled`] (append to an output vec).
pub fn put_f64_scaled_native(out: &mut Vec<u8>, v: f64, scale: f64) {
    let q = (v * scale) as i64;
    out.extend_from_slice(q.to_string().as_bytes());
    out.push(b'\n');
}

/// Emit: print the integer in `r` followed by a newline (clobbers `a0`, `a7`).
pub fn emit_put_int(p: &mut ProgramBuilder, r: Reg) {
    p.mv(Reg::A0, r);
    p.syscall(Syscall::PutInt);
    p.li(Reg::A0, b'\n' as i64);
    p.syscall(Syscall::PutByte);
}

/// Native mirror of [`emit_put_int`].
pub fn put_int_native(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(v.to_string().as_bytes());
    out.push(b'\n');
}
