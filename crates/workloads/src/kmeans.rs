//! k-means clustering (Rodinia's `k-means`).
//!
//! Lloyd iterations over 2-D points; the observable output is the final
//! cluster *assignment* of every point (the paper's "Clustering"
//! classification criterion), which absorbs small numeric perturbations —
//! the reason the paper finds k-means highly error-tolerant (AVM ≈ 0).

use crate::{Benchmark, BenchmarkId, Scale};
use tei_isa::{FReg, ProgramBuilder, Reg, Syscall};

/// (points, clusters, iterations) per scale.
pub fn params(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Test => (40, 3, 5),
        Scale::Small => (220, 4, 15),
        Scale::Full => (900, 6, 25),
    }
}

/// Deterministic synthetic points clustered around `k` well-separated
/// centers, interleaved `[x0, y0, x1, y1, …]`.
pub fn input_points(scale: Scale) -> Vec<f64> {
    let (n, k, _) = params(scale);
    let mut out = Vec::with_capacity(2 * n);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        let c = i % k;
        let cx = (c % 3) as f64 * 10.0;
        let cy = (c / 3) as f64 * 10.0;
        out.push(cx + next() * 2.0 - 1.0);
        out.push(cy + next() * 2.0 - 1.0);
    }
    out
}

/// Build the simulator program.
pub fn build(scale: Scale) -> Benchmark {
    let (n, k, iters) = params(scale);
    let points = input_points(scale);
    let mut p = ProgramBuilder::new();
    let pts = p.doubles(&points);
    // Initial centroids = first k points.
    let cent = p.doubles(&points[..2 * k]);
    let assign = p.zeros(n);
    p.align(8);
    let counts = p.zeros(8 * k);
    let sums = p.zeros(16 * k);

    let (px, py) = (FReg::new(1), FReg::new(2));
    let (dx, dy, d, best_d) = (FReg::new(3), FReg::new(4), FReg::new(5), FReg::new(6));
    let (cx, cy) = (FReg::new(10), FReg::new(11));
    let inf = FReg::new(12);

    p.fli(inf, 1e300, Reg::T6);
    p.la(Reg::S0, pts);
    p.la(Reg::S1, cent);
    p.la(Reg::S2, assign);
    p.la(Reg::S3, counts);
    p.la(Reg::S4, sums);
    p.li(Reg::S5, iters as i64);
    let iter_loop = p.here();

    // Zero counts and sums.
    p.li(Reg::S8, 0);
    let zero_loop = p.here();
    p.slli(Reg::T0, Reg::S8, 3);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.sd(Reg::ZERO, 0, Reg::T1);
    p.slli(Reg::T0, Reg::S8, 4);
    p.add(Reg::T1, Reg::S4, Reg::T0);
    p.sd(Reg::ZERO, 0, Reg::T1);
    p.sd(Reg::ZERO, 8, Reg::T1);
    p.addi(Reg::S8, Reg::S8, 1);
    p.li(Reg::T0, k as i64);
    p.blt(Reg::S8, Reg::T0, zero_loop);

    // Assignment pass.
    p.li(Reg::S6, 0); // i
    let point_loop = p.here();
    p.slli(Reg::T0, Reg::S6, 4);
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.fld(px, 0, Reg::T1);
    p.fld(py, 8, Reg::T1);
    p.fmv_d(best_d, inf);
    p.li(Reg::T3, 0); // best k
    p.li(Reg::S8, 0); // k
    let k_loop = p.here();
    p.slli(Reg::T0, Reg::S8, 4);
    p.add(Reg::T1, Reg::S1, Reg::T0);
    p.fld(cx, 0, Reg::T1);
    p.fld(cy, 8, Reg::T1);
    p.fsub_d(dx, px, cx);
    p.fsub_d(dy, py, cy);
    p.fmul_d(dx, dx, dx);
    p.fmul_d(dy, dy, dy);
    p.fadd_d(d, dx, dy);
    let not_better = p.label();
    p.flt_d(Reg::T1, d, best_d);
    p.beq(Reg::T1, Reg::ZERO, not_better);
    p.fmv_d(best_d, d);
    p.mv(Reg::T3, Reg::S8);
    p.bind(not_better);
    p.addi(Reg::S8, Reg::S8, 1);
    p.li(Reg::T0, k as i64);
    p.blt(Reg::S8, Reg::T0, k_loop);
    // Record assignment; accumulate sums and counts.
    p.add(Reg::T1, Reg::S2, Reg::S6);
    p.sb(Reg::T3, 0, Reg::T1);
    p.slli(Reg::T0, Reg::T3, 3);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.ld(Reg::T2, 0, Reg::T1);
    p.addi(Reg::T2, Reg::T2, 1);
    p.sd(Reg::T2, 0, Reg::T1);
    p.slli(Reg::T0, Reg::T3, 4);
    p.add(Reg::T1, Reg::S4, Reg::T0);
    p.fld(cx, 0, Reg::T1);
    p.fadd_d(cx, cx, px);
    p.fsd(cx, 0, Reg::T1);
    p.fld(cy, 8, Reg::T1);
    p.fadd_d(cy, cy, py);
    p.fsd(cy, 8, Reg::T1);
    p.addi(Reg::S6, Reg::S6, 1);
    p.li(Reg::T0, n as i64);
    p.blt(Reg::S6, Reg::T0, point_loop);

    // Centroid update.
    p.li(Reg::S8, 0);
    let upd_loop = p.here();
    p.slli(Reg::T0, Reg::S8, 3);
    p.add(Reg::T1, Reg::S3, Reg::T0);
    p.ld(Reg::T2, 0, Reg::T1);
    let skip = p.label();
    p.beq(Reg::T2, Reg::ZERO, skip);
    p.fcvt_d_l(d, Reg::T2);
    p.slli(Reg::T0, Reg::S8, 4);
    p.add(Reg::T1, Reg::S4, Reg::T0);
    p.add(Reg::T4, Reg::S1, Reg::T0);
    p.fld(cx, 0, Reg::T1);
    p.fdiv_d(cx, cx, d);
    p.fsd(cx, 0, Reg::T4);
    p.fld(cy, 8, Reg::T1);
    p.fdiv_d(cy, cy, d);
    p.fsd(cy, 8, Reg::T4);
    p.bind(skip);
    p.addi(Reg::S8, Reg::S8, 1);
    p.li(Reg::T0, k as i64);
    p.blt(Reg::S8, Reg::T0, upd_loop);

    p.addi(Reg::S5, Reg::S5, -1);
    p.bne(Reg::S5, Reg::ZERO, iter_loop);

    // Emit assignments.
    p.li(Reg::S6, 0);
    let out_loop = p.here();
    p.add(Reg::T1, Reg::S2, Reg::S6);
    p.lbu(Reg::A0, 0, Reg::T1);
    p.syscall(Syscall::PutByte);
    p.addi(Reg::S6, Reg::S6, 1);
    p.li(Reg::T0, n as i64);
    p.blt(Reg::S6, Reg::T0, out_loop);
    p.halt();

    Benchmark {
        id: BenchmarkId::Kmeans,
        input_desc: format!("{n} points, {k} clusters, {iters} iters"),
        classification: "Clustering",
        program: p.finish(),
    }
}

/// Native reference (identical operation order).
pub fn native_output(scale: Scale) -> Vec<u8> {
    let (n, k, iters) = params(scale);
    let pts = input_points(scale);
    let mut cent: Vec<f64> = pts[..2 * k].to_vec();
    let mut assign = vec![0u8; n];
    for _ in 0..iters {
        let mut counts = vec![0i64; k];
        let mut sums = vec![0f64; 2 * k];
        for i in 0..n {
            let (px, py) = (pts[2 * i], pts[2 * i + 1]);
            let mut best_d = 1e300;
            let mut best = 0usize;
            for c in 0..k {
                let dx = px - cent[2 * c];
                let dy = py - cent[2 * c + 1];
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best as u8;
            counts[best] += 1;
            sums[2 * best] += px;
            sums[2 * best + 1] += py;
        }
        for c in 0..k {
            if counts[c] != 0 {
                let d = counts[c] as f64;
                cent[2 * c] = sums[2 * c] / d;
                cent[2 * c + 1] = sums[2 * c + 1] / d;
            }
        }
    }
    assign
}
