//! Golden tests: every benchmark must complete cleanly in the simulator
//! and reproduce its native Rust reference output byte-for-byte.

use tei_uarch::FuncCore;
use tei_workloads::{build, native_output, BenchmarkId, Scale};

fn check(id: BenchmarkId, scale: Scale) {
    let bench = build(id, scale);
    let mut core = FuncCore::with_memory(&bench.program, 8 << 20);
    let r = core.run(200_000_000);
    assert!(
        r.exit.is_success(),
        "{id} at {scale:?} exited with {:?}",
        r.exit
    );
    assert!(r.fp_ops > 0, "{id} must exercise the FPU");
    let expect = native_output(id, scale);
    assert!(!expect.is_empty(), "{id} produces output");
    assert_eq!(
        core.output, expect,
        "{id} at {scale:?}: simulator output diverges from native reference"
    );
}

#[test]
fn sobel_matches_native() {
    check(BenchmarkId::Sobel, Scale::Test);
}

#[test]
fn cg_matches_native() {
    check(BenchmarkId::Cg, Scale::Test);
}

#[test]
fn kmeans_matches_native() {
    check(BenchmarkId::Kmeans, Scale::Test);
}

#[test]
fn srad_matches_native() {
    check(BenchmarkId::SradV1, Scale::Test);
}

#[test]
fn hotspot_matches_native() {
    check(BenchmarkId::Hotspot, Scale::Test);
}

#[test]
fn is_matches_native() {
    check(BenchmarkId::Is, Scale::Test);
}

#[test]
fn mg_matches_native() {
    check(BenchmarkId::Mg, Scale::Test);
}

#[test]
fn cg_verification_passes() {
    // The golden cg run must self-verify (first output line "1").
    let out = native_output(BenchmarkId::Cg, Scale::Test);
    assert!(
        out.starts_with(b"1\n"),
        "cg verification failed in golden run"
    );
}

#[test]
fn mg_verification_passes() {
    let out = native_output(BenchmarkId::Mg, Scale::Test);
    assert!(
        out.starts_with(b"1\n"),
        "mg verification failed in golden run"
    );
}

#[test]
fn is_verification_passes() {
    let out = native_output(BenchmarkId::Is, Scale::Test);
    assert!(
        out.starts_with(b"1\n"),
        "is verification failed in golden run"
    );
}

#[test]
fn kmeans_produces_stable_clusters() {
    // All k clusters are non-empty in the golden assignment.
    let out = native_output(BenchmarkId::Kmeans, Scale::Test);
    let (_, k, _) = tei_workloads::kmeans::params(Scale::Test);
    for c in 0..k as u8 {
        assert!(out.contains(&c), "cluster {c} is empty");
    }
}

#[test]
fn table2_metadata_present() {
    for id in BenchmarkId::all() {
        let b = build(id, Scale::Test);
        assert!(!b.input_desc.is_empty());
        assert!(!b.classification.is_empty());
        assert!(b.program.len() > 10);
    }
}
