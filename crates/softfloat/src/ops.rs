//! The twelve modeled FPU operations and their dispatch.

use crate::{arith, convert, Flags, Format, FpuConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation kind (precision-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FpOpKind {
    /// Floating-point addition.
    Add,
    /// Floating-point subtraction.
    Sub,
    /// Floating-point multiplication.
    Mul,
    /// Floating-point division.
    Div,
    /// Signed integer → floating point.
    ItoF,
    /// Floating point → signed integer (truncate).
    FtoI,
}

impl FpOpKind {
    /// All six kinds.
    pub const ALL: [FpOpKind; 6] = [
        FpOpKind::Add,
        FpOpKind::Sub,
        FpOpKind::Mul,
        FpOpKind::Div,
        FpOpKind::ItoF,
        FpOpKind::FtoI,
    ];
}

/// Operand/result precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary32.
    Single,
    /// IEEE-754 binary64.
    Double,
}

impl Precision {
    /// The corresponding interchange format.
    pub fn format(self) -> Format {
        match self {
            Precision::Single => Format::F32,
            Precision::Double => Format::F64,
        }
    }

    /// Width of the companion integer type (conversions).
    pub fn int_bits(self) -> u32 {
        match self {
            Precision::Single => 32,
            Precision::Double => 64,
        }
    }
}

/// One of the twelve modeled FPU operations (6 kinds × 2 precisions) —
/// the instruction set of the paper's Section IV.B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FpOp {
    /// Operation kind.
    pub kind: FpOpKind,
    /// Operand precision.
    pub precision: Precision,
}

impl FpOp {
    /// Construct an operation.
    pub fn new(kind: FpOpKind, precision: Precision) -> Self {
        FpOp { kind, precision }
    }

    /// All twelve operations, double precision first, in a stable order
    /// usable as a table index (see [`FpOp::index`]).
    pub fn all() -> [FpOp; 12] {
        let mut out = [FpOp::new(FpOpKind::Add, Precision::Double); 12];
        let mut i = 0;
        for precision in [Precision::Double, Precision::Single] {
            for kind in FpOpKind::ALL {
                out[i] = FpOp { kind, precision };
                i += 1;
            }
        }
        out
    }

    /// Stable index in `0..12` matching [`FpOp::all`].
    pub fn index(self) -> usize {
        let k = match self.kind {
            FpOpKind::Add => 0,
            FpOpKind::Sub => 1,
            FpOpKind::Mul => 2,
            FpOpKind::Div => 3,
            FpOpKind::ItoF => 4,
            FpOpKind::FtoI => 5,
        };
        match self.precision {
            Precision::Double => k,
            Precision::Single => 6 + k,
        }
    }

    /// The operand format.
    pub fn format(self) -> Format {
        self.precision.format()
    }

    /// True for the two-operand arithmetic kinds.
    pub fn is_binary(self) -> bool {
        matches!(
            self.kind,
            FpOpKind::Add | FpOpKind::Sub | FpOpKind::Mul | FpOpKind::Div
        )
    }

    /// Width in bits of the destination register value.
    pub fn result_bits(self) -> u32 {
        match self.precision {
            Precision::Single => 32,
            Precision::Double => 64,
        }
    }
}

impl fmt::Display for FpOp {
    /// Paper-style label, e.g. `fp-mul (d)` or `I2F (s)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.precision {
            Precision::Single => "s",
            Precision::Double => "d",
        };
        match self.kind {
            FpOpKind::Add => write!(f, "fp-add ({p})"),
            FpOpKind::Sub => write!(f, "fp-sub ({p})"),
            FpOpKind::Mul => write!(f, "fp-mul ({p})"),
            FpOpKind::Div => write!(f, "fp-div ({p})"),
            FpOpKind::ItoF => write!(f, "I2F ({p})"),
            FpOpKind::FtoI => write!(f, "F2I ({p})"),
        }
    }
}

/// Apply `op` to raw operand bits. Unary kinds ignore `b`.
///
/// Integer operands (ItoF) are read from the low `int_bits` of `a` and
/// sign-extended; integer results (FtoI) are returned sign-extended in a
/// `u64`.
pub fn apply(op: FpOp, a: u64, b: u64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    let fmt = op.format();
    match op.kind {
        FpOpKind::Add => arith::add(fmt, a, b, cfg, flags),
        FpOpKind::Sub => arith::sub(fmt, a, b, cfg, flags),
        FpOpKind::Mul => arith::mul(fmt, a, b, cfg, flags),
        FpOpKind::Div => arith::div(fmt, a, b, cfg, flags),
        FpOpKind::ItoF => {
            let x = match op.precision {
                Precision::Single => a as u32 as i32 as i64,
                Precision::Double => a as i64,
            };
            i2f_dispatch(fmt, x, cfg, flags, op.precision)
        }
        FpOpKind::FtoI => {
            let v = convert::f2i(fmt, a, op.precision.int_bits(), flags);
            match op.precision {
                Precision::Single => (v as i32) as u32 as u64,
                Precision::Double => v as u64,
            }
        }
    }
}

fn i2f_dispatch(fmt: Format, x: i64, cfg: FpuConfig, flags: &mut Flags, _p: Precision) -> u64 {
    convert::i2f(fmt, x, cfg, flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_ops_with_stable_indices() {
        let all = FpOp::all();
        assert_eq!(all.len(), 12);
        for (i, op) in all.iter().enumerate() {
            assert_eq!(op.index(), i, "{op}");
        }
        // Double precision comes first (the error-prone half).
        assert_eq!(all[2], FpOp::new(FpOpKind::Mul, Precision::Double));
        assert!(all[..6].iter().all(|o| o.precision == Precision::Double));
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            FpOp::new(FpOpKind::Mul, Precision::Double).to_string(),
            "fp-mul (d)"
        );
        assert_eq!(
            FpOp::new(FpOpKind::ItoF, Precision::Single).to_string(),
            "I2F (s)"
        );
    }

    #[test]
    fn apply_dispatches_all_kinds() {
        let mut flags = Flags::default();
        let cfg = FpuConfig::default();
        let d = Precision::Double;
        let a = 6.0f64.to_bits();
        let b = 1.5f64.to_bits();
        assert_eq!(
            f64::from_bits(apply(FpOp::new(FpOpKind::Add, d), a, b, cfg, &mut flags)),
            7.5
        );
        assert_eq!(
            f64::from_bits(apply(FpOp::new(FpOpKind::Sub, d), a, b, cfg, &mut flags)),
            4.5
        );
        assert_eq!(
            f64::from_bits(apply(FpOp::new(FpOpKind::Mul, d), a, b, cfg, &mut flags)),
            9.0
        );
        assert_eq!(
            f64::from_bits(apply(FpOp::new(FpOpKind::Div, d), a, b, cfg, &mut flags)),
            4.0
        );
        assert_eq!(
            f64::from_bits(apply(
                FpOp::new(FpOpKind::ItoF, d),
                (-9i64) as u64,
                0,
                cfg,
                &mut flags
            )),
            -9.0
        );
        assert_eq!(
            apply(
                FpOp::new(FpOpKind::FtoI, d),
                (-2.75f64).to_bits(),
                0,
                cfg,
                &mut flags
            ) as i64,
            -2
        );
    }

    #[test]
    fn single_precision_conversions_use_32bit_ints() {
        let mut flags = Flags::default();
        let cfg = FpuConfig::default();
        let s = Precision::Single;
        // -1 as a 32-bit pattern sign-extends correctly.
        let r = apply(
            FpOp::new(FpOpKind::ItoF, s),
            0xffff_ffff,
            0,
            cfg,
            &mut flags,
        );
        assert_eq!(f32::from_bits(r as u32), -1.0);
        // Saturation at the i32 boundary.
        let mut flags = Flags::default();
        let big = 3e9f32.to_bits() as u64;
        let r = apply(FpOp::new(FpOpKind::FtoI, s), big, 0, cfg, &mut flags);
        assert_eq!(r as u32 as i32, i32::MAX);
        assert!(flags.invalid);
    }
}
