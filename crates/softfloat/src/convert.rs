//! Integer ↔ floating-point conversions.

use crate::arith::{round_pack, shr_sticky64};
use crate::{Flags, Format, FpuConfig};

/// Convert a signed integer to floating point, round-to-nearest-even.
///
/// The `i32`-sourced single-precision conversion of the ISA sign-extends
/// into the `i64` before calling this.
pub fn i2f(fmt: Format, x: i64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    if x == 0 {
        return fmt.zero(false);
    }
    let sign = x < 0;
    let mag = x.unsigned_abs();
    let top = 63 - mag.leading_zeros(); // MSB position
    let f = fmt.frac_bits;
    let e = fmt.bias() + top as i32;
    let m = if top <= f + 3 {
        mag << (f + 3 - top)
    } else {
        shr_sticky64(mag, top - (f + 3))
    };
    round_pack(fmt, cfg, flags, sign, e, m)
}

/// Convert floating point to a signed integer of `int_bits` width,
/// truncating toward zero and saturating on overflow (matching Rust's
/// `as` cast and RISC-V `fcvt` semantics: NaN converts to 0 with the
/// invalid flag raised).
pub fn f2i(fmt: Format, bits: u64, int_bits: u32, flags: &mut Flags) -> i64 {
    assert!((2..=64).contains(&int_bits), "integer width out of range");
    let max: u64 = (1u64 << (int_bits - 1)) - 1; // e.g. i64::MAX
    let min_mag: u64 = 1u64 << (int_bits - 1); // magnitude of i64::MIN
    if fmt.is_nan(bits) {
        flags.invalid = true;
        return 0;
    }
    let sign = fmt.sign_of(bits);
    let saturate = |flags: &mut Flags| -> i64 {
        flags.invalid = true;
        if sign {
            // Most negative value; wrapping_neg maps 2^63 to i64::MIN.
            (min_mag as i64).wrapping_neg()
        } else {
            max as i64
        }
    };
    if fmt.is_inf(bits) {
        return saturate(flags);
    }
    let f = fmt.frac_bits;
    let exp = fmt.exp_of(bits);
    let frac = fmt.frac_of(bits);
    if exp == 0 {
        if frac != 0 {
            flags.inexact = true;
        }
        return 0;
    }
    let eu = exp as i32 - fmt.bias(); // unbiased exponent
    if eu < 0 {
        flags.inexact = true; // |value| in (0, 1) truncates to 0
        return 0;
    }
    let sig = frac | (1u64 << f);
    let mag: u128 = if eu as u32 <= f {
        let shift = f - eu as u32;
        if sig & ((1u64 << shift) - 1) != 0 {
            flags.inexact = true;
        }
        (sig >> shift) as u128
    } else {
        let shift = eu as u32 - f;
        if shift >= 64 {
            return saturate(flags);
        }
        (sig as u128) << shift
    };
    let limit = if sign { min_mag as u128 } else { max as u128 };
    if mag > limit {
        return saturate(flags);
    }
    if sign {
        (mag as i64).wrapping_neg()
    } else {
        mag as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i2f64(x: i64) -> f64 {
        let mut flags = Flags::default();
        f64::from_bits(i2f(Format::F64, x, FpuConfig::default(), &mut flags))
    }

    fn i2f32(x: i32) -> f32 {
        let mut flags = Flags::default();
        f32::from_bits(i2f(Format::F32, x as i64, FpuConfig::default(), &mut flags) as u32)
    }

    #[test]
    fn i2f_matches_native_casts() {
        for x in [
            0i64,
            1,
            -1,
            42,
            -42,
            i64::MAX,
            i64::MIN,
            (1 << 53) + 1,
            (1 << 53) + 3,
            -(1 << 60) - 12345,
            987654321987654321,
        ] {
            assert_eq!(i2f64(x).to_bits(), (x as f64).to_bits(), "{x}");
        }
        for x in [0i32, 1, -1, i32::MAX, i32::MIN, 16777217, -16777219] {
            assert_eq!(i2f32(x).to_bits(), (x as f32).to_bits(), "{x}");
        }
    }

    #[test]
    fn i2f_inexact_only_when_rounding() {
        let mut flags = Flags::default();
        i2f(Format::F64, 1 << 54, FpuConfig::default(), &mut flags);
        assert!(!flags.inexact, "power of two is exact");
        let mut flags = Flags::default();
        i2f(Format::F64, (1 << 54) + 1, FpuConfig::default(), &mut flags);
        assert!(flags.inexact);
    }

    fn f2i64(x: f64) -> i64 {
        let mut flags = Flags::default();
        f2i(Format::F64, x.to_bits(), 64, &mut flags)
    }

    fn f2i32(x: f32) -> i64 {
        let mut flags = Flags::default();
        f2i(Format::F32, x.to_bits() as u64, 32, &mut flags)
    }

    #[test]
    fn f2i_matches_rust_saturating_casts() {
        for x in [
            0.0f64,
            -0.0,
            0.5,
            -0.5,
            1.9,
            -1.9,
            42.0,
            1e18,
            -1e18,
            9.2e18,
            -9.3e18,
            1e300,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            9007199254740993.0,
            (i64::MAX as f64),
            (i64::MIN as f64),
        ] {
            assert_eq!(f2i64(x), x as i64, "{x}");
        }
        for x in [
            0.0f32,
            1.5,
            -1.5,
            3e9,
            -3e9,
            f32::NAN,
            f32::INFINITY,
            2147483520.0,
            (i32::MIN as f32),
        ] {
            assert_eq!(f2i32(x), (x as i32) as i64, "{x}");
        }
    }

    #[test]
    fn f2i_flags() {
        let mut flags = Flags::default();
        f2i(Format::F64, 1.5f64.to_bits(), 64, &mut flags);
        assert!(flags.inexact && !flags.invalid);
        let mut flags = Flags::default();
        f2i(Format::F64, f64::NAN.to_bits(), 64, &mut flags);
        assert!(flags.invalid);
        let mut flags = Flags::default();
        f2i(Format::F64, 1e300f64.to_bits(), 64, &mut flags);
        assert!(flags.invalid);
        let mut flags = Flags::default();
        f2i(Format::F64, 7.0f64.to_bits(), 64, &mut flags);
        assert!(!flags.any());
    }

    #[test]
    fn f2i_subnormal_truncates_to_zero() {
        let mut flags = Flags::default();
        let sub = f64::MIN_POSITIVE / 2.0;
        assert_eq!(f2i(Format::F64, sub.to_bits(), 64, &mut flags), 0);
        assert!(flags.inexact);
    }

    #[test]
    fn exact_i64_min_roundtrip() {
        // -2^63 is exactly representable and exactly convertible back.
        let x = i64::MIN as f64;
        let mut flags = Flags::default();
        assert_eq!(f2i(Format::F64, x.to_bits(), 64, &mut flags), i64::MIN);
        assert!(!flags.invalid);
    }
}
