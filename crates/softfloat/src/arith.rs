//! IEEE-754 add/sub/mul/div with round-to-nearest-even.

use crate::{Flags, Format, FpuConfig};

/// Right shift with the shifted-out bits ORed into bit 0 (sticky).
#[inline]
pub(crate) fn shr_sticky64(x: u64, n: u32) -> u64 {
    if n == 0 {
        x
    } else if n >= 64 {
        (x != 0) as u64
    } else {
        (x >> n) | ((x & ((1u64 << n) - 1) != 0) as u64)
    }
}

#[inline]
fn shr_sticky128(x: u128, n: u32) -> u128 {
    if n == 0 {
        x
    } else if n >= 128 {
        (x != 0) as u128
    } else {
        (x >> n) | ((x & ((1u128 << n) - 1) != 0) as u128)
    }
}

/// Flush a subnormal operand to a same-signed zero in FTZ mode.
fn ftz_in(fmt: Format, bits: u64, cfg: FpuConfig) -> u64 {
    if cfg.ftz && fmt.is_subnormal(bits) {
        fmt.zero(fmt.sign_of(bits))
    } else {
        bits
    }
}

/// Round and pack a result.
///
/// `sig` carries the significand with three extra low bits (guard, round,
/// sticky): for a normal result it lies in `[2^(f+3), 2^(f+4))` where `f`
/// is the fraction width. `e` is the candidate biased exponent; values
/// `e <= 0` take the subnormal path. Tininess is detected before rounding.
pub(crate) fn round_pack(
    fmt: Format,
    cfg: FpuConfig,
    flags: &mut Flags,
    sign: bool,
    mut e: i32,
    mut sig: u64,
) -> u64 {
    let f = fmt.frac_bits;
    debug_assert!(sig < (1u64 << (f + 4)), "significand overflow before pack");
    let subnormal = e <= 0;
    if subnormal {
        if cfg.ftz {
            flags.underflow = true;
            if sig != 0 {
                flags.inexact = true;
            }
            return fmt.zero(sign);
        }
        let shift = 1 - e; // >= 1
        sig = shr_sticky64(sig, shift.min(64) as u32);
        e = 1; // provisional; re-derived from the significand below
    }
    let round_bits = sig & 7;
    sig >>= 3;
    if round_bits > 4 || (round_bits == 4 && sig & 1 == 1) {
        sig += 1;
    }
    if round_bits != 0 {
        flags.inexact = true;
        if subnormal {
            flags.underflow = true;
        }
    }
    if subnormal {
        return if sig >> f == 1 {
            // Rounded up into the smallest normal binade.
            fmt.pack(sign, 1, sig & ((1u64 << f) - 1))
        } else {
            fmt.pack(sign, 0, sig)
        };
    }
    if sig >> (f + 1) == 1 {
        sig >>= 1; // carry out of rounding; dropped bit is zero
        e += 1;
    }
    if e >= fmt.max_exp() as i32 {
        flags.overflow = true;
        flags.inexact = true;
        return fmt.infinity(sign);
    }
    fmt.pack(sign, e as u32, sig & ((1u64 << f) - 1))
}

/// Unpack a finite non-zero value to `(effective biased exponent, sig)`
/// with `sig` normalized into `[2^f, 2^(f+1))`. Subnormals get `e <= 0`.
fn unpack_norm(fmt: Format, bits: u64) -> (i32, u64) {
    let f = fmt.frac_bits;
    let exp = fmt.exp_of(bits);
    let frac = fmt.frac_of(bits);
    if exp == 0 {
        debug_assert!(frac != 0, "zero must be handled by the caller");
        let mut e = 1i32;
        let mut sig = frac;
        while sig >> f == 0 {
            sig <<= 1;
            e -= 1;
        }
        (e, sig)
    } else {
        (exp as i32, frac | (1u64 << f))
    }
}

fn propagate_nan(fmt: Format, a: u64, b: u64, flags: &mut Flags) -> u64 {
    if fmt.is_snan(a) || fmt.is_snan(b) {
        flags.invalid = true;
    }
    fmt.quiet_nan()
}

/// IEEE-754 addition (`a + b`), round-to-nearest-even.
pub fn add(fmt: Format, a: u64, b: u64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    let a = ftz_in(fmt, a, cfg);
    let b = ftz_in(fmt, b, cfg);
    let (sa, sb) = (fmt.sign_of(a), fmt.sign_of(b));
    if fmt.is_nan(a) || fmt.is_nan(b) {
        return propagate_nan(fmt, a, b, flags);
    }
    if fmt.is_inf(a) {
        if fmt.is_inf(b) && sa != sb {
            flags.invalid = true;
            return fmt.quiet_nan();
        }
        return fmt.infinity(sa);
    }
    if fmt.is_inf(b) {
        return fmt.infinity(sb);
    }
    if fmt.is_zero(a) && fmt.is_zero(b) {
        // +0 unless both operands are -0 (round-to-nearest rules).
        return fmt.zero(sa && sb);
    }
    if fmt.is_zero(a) {
        return b;
    }
    if fmt.is_zero(b) {
        return a;
    }

    let f = fmt.frac_bits;
    let (ea, siga) = unpack_norm(fmt, a);
    let (eb, sigb) = unpack_norm(fmt, b);
    let (sign_big, e_big, sig_big, sign_small, sig_small, diff) = if (ea, siga) >= (eb, sigb) {
        (sa, ea, siga << 3, sb, sigb << 3, (ea - eb) as u32)
    } else {
        (sb, eb, sigb << 3, sa, siga << 3, (eb - ea) as u32)
    };
    let small = shr_sticky64(sig_small, diff);
    let (mut sum, sign) = if sign_big == sign_small {
        (sig_big + small, sign_big)
    } else {
        let d = sig_big - small;
        if d == 0 {
            return fmt.zero(false); // exact cancellation → +0
        }
        (d, sign_big)
    };
    let mut e = e_big;
    // Normalize: one possible right shift (carry), any left shifts
    // (cancellation).
    if sum >> (f + 4) == 1 {
        sum = shr_sticky64(sum, 1);
        e += 1;
    }
    while sum >> (f + 3) == 0 {
        sum <<= 1;
        e -= 1;
    }
    round_pack(fmt, cfg, flags, sign, e, sum)
}

/// IEEE-754 subtraction (`a - b`), round-to-nearest-even.
pub fn sub(fmt: Format, a: u64, b: u64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    let flipped = b ^ (1u64 << (fmt.width() - 1));
    add(fmt, a, flipped, cfg, flags)
}

/// IEEE-754 multiplication, round-to-nearest-even.
pub fn mul(fmt: Format, a: u64, b: u64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    let a = ftz_in(fmt, a, cfg);
    let b = ftz_in(fmt, b, cfg);
    let (sa, sb) = (fmt.sign_of(a), fmt.sign_of(b));
    let sign = sa ^ sb;
    if fmt.is_nan(a) || fmt.is_nan(b) {
        return propagate_nan(fmt, a, b, flags);
    }
    if (fmt.is_inf(a) && fmt.is_zero(b)) || (fmt.is_zero(a) && fmt.is_inf(b)) {
        flags.invalid = true;
        return fmt.quiet_nan();
    }
    if fmt.is_inf(a) || fmt.is_inf(b) {
        return fmt.infinity(sign);
    }
    if fmt.is_zero(a) || fmt.is_zero(b) {
        return fmt.zero(sign);
    }

    let f = fmt.frac_bits;
    let (ea, siga) = unpack_norm(fmt, a);
    let (eb, sigb) = unpack_norm(fmt, b);
    let mut e = ea + eb - fmt.bias();
    let p = (siga as u128) * (sigb as u128);
    let m = if p >> (2 * f + 1) == 1 {
        e += 1;
        shr_sticky128(p, f - 2) as u64
    } else {
        shr_sticky128(p, f - 3) as u64
    };
    round_pack(fmt, cfg, flags, sign, e, m)
}

/// IEEE-754 division, round-to-nearest-even.
pub fn div(fmt: Format, a: u64, b: u64, cfg: FpuConfig, flags: &mut Flags) -> u64 {
    let a = ftz_in(fmt, a, cfg);
    let b = ftz_in(fmt, b, cfg);
    let (sa, sb) = (fmt.sign_of(a), fmt.sign_of(b));
    let sign = sa ^ sb;
    if fmt.is_nan(a) || fmt.is_nan(b) {
        return propagate_nan(fmt, a, b, flags);
    }
    if fmt.is_inf(a) && fmt.is_inf(b) {
        flags.invalid = true;
        return fmt.quiet_nan();
    }
    if fmt.is_zero(a) && fmt.is_zero(b) {
        flags.invalid = true;
        return fmt.quiet_nan();
    }
    if fmt.is_inf(a) {
        return fmt.infinity(sign);
    }
    if fmt.is_inf(b) || fmt.is_zero(a) {
        return fmt.zero(sign);
    }
    if fmt.is_zero(b) {
        flags.div_by_zero = true;
        return fmt.infinity(sign);
    }

    let f = fmt.frac_bits;
    let (ea, siga) = unpack_norm(fmt, a);
    let (eb, sigb) = unpack_norm(fmt, b);
    let mut e = ea - eb + fmt.bias();
    let n = (siga as u128) << (f + 4);
    let q = (n / sigb as u128) as u64;
    let sticky = u64::from(!n.is_multiple_of(sigb as u128));
    let m = if q >> (f + 4) == 1 {
        shr_sticky64(q, 1) | sticky
    } else {
        e -= 1;
        q | sticky
    };
    round_pack(fmt, cfg, flags, sign, e, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Format;

    fn f64_op(
        op: fn(Format, u64, u64, FpuConfig, &mut Flags) -> u64,
        a: f64,
        b: f64,
    ) -> (f64, Flags) {
        let mut flags = Flags::default();
        let r = op(
            Format::F64,
            a.to_bits(),
            b.to_bits(),
            FpuConfig::default(),
            &mut flags,
        );
        (f64::from_bits(r), flags)
    }

    fn check64(
        op: fn(Format, u64, u64, FpuConfig, &mut Flags) -> u64,
        native: fn(f64, f64) -> f64,
        a: f64,
        b: f64,
    ) {
        let (r, _) = f64_op(op, a, b);
        let expect = native(a, b);
        if expect.is_nan() {
            assert!(r.is_nan(), "{a} op {b}: got {r}, want NaN");
        } else {
            assert_eq!(
                r.to_bits(),
                expect.to_bits(),
                "{a:e} op {b:e}: got {r:e}, want {expect:e}"
            );
        }
    }

    #[test]
    fn add_matches_native_on_corner_cases() {
        let cases: &[(f64, f64)] = &[
            (1.5, 2.25),
            (0.1, 0.2),
            (1e300, 1e300),
            (1e-300, -1e-300),
            (1.0, -1.0),
            (1.0, 1e-18),
            (f64::MAX, f64::MAX),
            (f64::MIN_POSITIVE, f64::MIN_POSITIVE),
            (f64::MIN_POSITIVE / 4.0, f64::MIN_POSITIVE / 8.0),
            (0.0, -0.0),
            (-0.0, -0.0),
            (f64::INFINITY, 1.0),
            (f64::INFINITY, f64::NEG_INFINITY),
            (f64::NAN, 1.0),
            (2.0f64.powi(53), 1.0),
            (2.0f64.powi(53), 3.0),
            (1.0, 2.0f64.powi(-53)),
            (1.0, 2.0f64.powi(-54)),
            (8.0, -7.999999999999999),
        ];
        for &(a, b) in cases {
            check64(add, |x, y| x + y, a, b);
            check64(add, |x, y| x + y, b, a);
            check64(sub, |x, y| x - y, a, b);
        }
    }

    #[test]
    fn mul_matches_native_on_corner_cases() {
        let cases: &[(f64, f64)] = &[
            (1.5, 2.25),
            (0.1, 0.2),
            (1e200, 1e200),
            (1e-200, 1e-200),
            (f64::MAX, 2.0),
            (f64::MIN_POSITIVE, 0.5),
            (f64::MIN_POSITIVE, f64::MIN_POSITIVE),
            (0.0, -5.0),
            (f64::INFINITY, 0.0),
            (f64::INFINITY, -3.0),
            (f64::NAN, 2.0),
            (1.0000000000000002, 1.0000000000000002),
            (-3.5e-310, 2.0),
        ];
        for &(a, b) in cases {
            check64(mul, |x, y| x * y, a, b);
            check64(mul, |x, y| x * y, b, a);
        }
    }

    #[test]
    fn div_matches_native_on_corner_cases() {
        let cases: &[(f64, f64)] = &[
            (1.0, 3.0),
            (2.0, 3.0),
            (0.1, 0.2),
            (1e300, 1e-300),
            (1e-300, 1e300),
            (f64::MAX, 0.5),
            (f64::MIN_POSITIVE, 2.0),
            (1.0, 0.0),
            (-1.0, 0.0),
            (0.0, 0.0),
            (f64::INFINITY, f64::INFINITY),
            (f64::INFINITY, 2.0),
            (5.0, f64::INFINITY),
            (f64::NAN, 1.0),
            (4.5e-310, 3.0),
        ];
        for &(a, b) in cases {
            check64(div, |x, y| x / y, a, b);
        }
    }

    #[test]
    fn f32_ops_match_native() {
        let fmt = Format::F32;
        let cases: &[(f32, f32)] = &[
            (1.5, 2.25),
            (0.1, 0.2),
            (1e38, 1e38),
            (1e-38, 1e-38),
            (f32::MAX, f32::MAX),
            (f32::MIN_POSITIVE / 4.0, f32::MIN_POSITIVE / 8.0),
            (1.0, 3.0),
            (7.0, -7.0),
        ];
        for &(a, b) in cases {
            for (ours, native) in [
                (
                    add as fn(Format, u64, u64, FpuConfig, &mut Flags) -> u64,
                    (|x, y| x + y) as fn(f32, f32) -> f32,
                ),
                (sub, |x, y| x - y),
                (mul, |x, y| x * y),
                (div, |x, y| x / y),
            ] {
                let mut flags = Flags::default();
                let r = ours(
                    fmt,
                    a.to_bits() as u64,
                    b.to_bits() as u64,
                    FpuConfig::default(),
                    &mut flags,
                );
                let expect = native(a, b);
                if expect.is_nan() {
                    assert!(fmt.is_nan(r));
                } else {
                    assert_eq!(r as u32, expect.to_bits(), "{a} . {b} -> {expect}");
                }
            }
        }
    }

    #[test]
    fn flags_raised_correctly() {
        let (_, f) = f64_op(add, f64::MAX, f64::MAX);
        assert!(f.overflow && f.inexact);
        let (_, f) = f64_op(div, 1.0, 0.0);
        assert!(f.div_by_zero && !f.invalid);
        let (_, f) = f64_op(div, 0.0, 0.0);
        assert!(f.invalid);
        let (_, f) = f64_op(add, f64::INFINITY, f64::NEG_INFINITY);
        assert!(f.invalid);
        let (_, f) = f64_op(mul, f64::MIN_POSITIVE, f64::MIN_POSITIVE);
        assert!(f.underflow && f.inexact);
        let (_, f) = f64_op(add, 1.0, 1.0);
        assert!(!f.any());
        let (_, f) = f64_op(add, 1.0, 2.0f64.powi(-54));
        assert!(f.inexact && !f.overflow);
    }

    #[test]
    fn ftz_flushes_inputs_and_outputs() {
        let cfg = FpuConfig { ftz: true };
        let fmt = Format::F64;
        let mut flags = Flags::default();
        // Subnormal result flushed to zero.
        let tiny = f64::MIN_POSITIVE;
        let r = mul(fmt, tiny.to_bits(), 0.5f64.to_bits(), cfg, &mut flags);
        assert_eq!(f64::from_bits(r), 0.0);
        assert!(flags.underflow);
        // Subnormal input treated as zero.
        let sub_in = (f64::MIN_POSITIVE / 2.0).to_bits();
        let mut flags = Flags::default();
        let r = add(fmt, sub_in, 0f64.to_bits(), cfg, &mut flags);
        assert_eq!(r, fmt.zero(false));
        // Negative subnormal × anything → signed zero.
        let mut flags = Flags::default();
        let r = mul(
            fmt,
            (-f64::MIN_POSITIVE / 2.0).to_bits(),
            3.0f64.to_bits(),
            cfg,
            &mut flags,
        );
        assert_eq!(r, fmt.zero(true));
    }

    #[test]
    fn signed_zero_semantics() {
        let (r, _) = f64_op(add, -0.0, -0.0);
        assert_eq!(r.to_bits(), (-0.0f64).to_bits());
        let (r, _) = f64_op(add, 0.0, -0.0);
        assert_eq!(r.to_bits(), 0.0f64.to_bits());
        let (r, _) = f64_op(sub, 1.0, 1.0);
        assert_eq!(r.to_bits(), 0.0f64.to_bits(), "x - x = +0 in RNE");
        let (r, _) = f64_op(mul, -0.0, 5.0);
        assert_eq!(r.to_bits(), (-0.0f64).to_bits());
        let (r, _) = f64_op(div, -0.0, 5.0);
        assert_eq!(r.to_bits(), (-0.0f64).to_bits());
    }
}
