//! # tei-softfloat
//!
//! Bit-accurate software IEEE-754 floating point: the golden reference the
//! gate-level FPU datapaths of `tei-fpu` are verified against, and the
//! arithmetic the `tei-uarch` simulator executes.
//!
//! Supports the twelve operations modeled in the paper — addition,
//! subtraction, multiplication, division, integer→float and float→integer
//! conversion, each in single and double precision — with round-to-nearest-
//! even, IEEE exception flags, and an optional flush-to-zero mode matching
//! the gate-level multiplier/divider datapaths.
//!
//! ## Example
//!
//! ```
//! use tei_softfloat::{Fpu, FpOp, FpOpKind, Precision};
//!
//! let mut fpu = Fpu::new();
//! let a = 1.5f64.to_bits();
//! let b = 2.25f64.to_bits();
//! let sum = fpu.apply(FpOp::new(FpOpKind::Add, Precision::Double), a, b);
//! assert_eq!(f64::from_bits(sum), 3.75);
//! assert!(!fpu.flags.inexact);
//! ```

mod arith;
mod convert;
mod ops;

pub use ops::{apply as apply_op, FpOp, FpOpKind, Precision};

use serde::{Deserialize, Serialize};

/// An IEEE-754 binary interchange format, described by field widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Format {
    /// Exponent field width in bits.
    pub exp_bits: u32,
    /// Fraction (trailing significand) field width in bits.
    pub frac_bits: u32,
}

impl Format {
    /// IEEE-754 binary32.
    pub const F32: Format = Format {
        exp_bits: 8,
        frac_bits: 23,
    };
    /// IEEE-754 binary64.
    pub const F64: Format = Format {
        exp_bits: 11,
        frac_bits: 52,
    };

    /// Total encoding width in bits.
    pub const fn width(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Exponent bias.
    pub const fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// All-ones exponent field (infinities and NaNs).
    pub const fn max_exp(self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    pub(crate) fn sign_of(self, bits: u64) -> bool {
        (bits >> (self.width() - 1)) & 1 == 1
    }

    pub(crate) fn exp_of(self, bits: u64) -> u32 {
        ((bits >> self.frac_bits) & ((1 << self.exp_bits) - 1)) as u32
    }

    pub(crate) fn frac_of(self, bits: u64) -> u64 {
        bits & ((1u64 << self.frac_bits) - 1)
    }

    pub(crate) fn pack(self, sign: bool, exp: u32, frac: u64) -> u64 {
        debug_assert!(exp <= self.max_exp());
        debug_assert!(frac < (1u64 << self.frac_bits));
        ((sign as u64) << (self.width() - 1)) | ((exp as u64) << self.frac_bits) | frac
    }

    /// Canonical quiet NaN of this format.
    pub fn quiet_nan(self) -> u64 {
        self.pack(false, self.max_exp(), 1u64 << (self.frac_bits - 1))
    }

    /// Signed infinity.
    pub fn infinity(self, sign: bool) -> u64 {
        self.pack(sign, self.max_exp(), 0)
    }

    /// Signed zero.
    pub fn zero(self, sign: bool) -> u64 {
        self.pack(sign, 0, 0)
    }

    /// True if `bits` encodes any NaN.
    pub fn is_nan(self, bits: u64) -> bool {
        self.exp_of(bits) == self.max_exp() && self.frac_of(bits) != 0
    }

    /// True if `bits` encodes a signaling NaN (quiet bit clear).
    pub fn is_snan(self, bits: u64) -> bool {
        self.is_nan(bits) && (self.frac_of(bits) >> (self.frac_bits - 1)) & 1 == 0
    }

    /// True if `bits` encodes ±infinity.
    pub fn is_inf(self, bits: u64) -> bool {
        self.exp_of(bits) == self.max_exp() && self.frac_of(bits) == 0
    }

    /// True if `bits` encodes ±0.
    pub fn is_zero(self, bits: u64) -> bool {
        self.exp_of(bits) == 0 && self.frac_of(bits) == 0
    }

    /// True if `bits` encodes a subnormal (denormal) number.
    pub fn is_subnormal(self, bits: u64) -> bool {
        self.exp_of(bits) == 0 && self.frac_of(bits) != 0
    }
}

/// IEEE-754 exception flags (sticky).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Invalid operation (NaN produced from non-NaN inputs, 0/0, ∞−∞, ...).
    pub invalid: bool,
    /// Division of a finite non-zero number by zero.
    pub div_by_zero: bool,
    /// Result overflowed to infinity.
    pub overflow: bool,
    /// Result underflowed (tiny and inexact, or flushed to zero).
    pub underflow: bool,
    /// Result was rounded.
    pub inexact: bool,
}

impl Flags {
    /// Merge another flag set into this one (sticky semantics).
    pub fn merge(&mut self, other: Flags) {
        self.invalid |= other.invalid;
        self.div_by_zero |= other.div_by_zero;
        self.overflow |= other.overflow;
        self.underflow |= other.underflow;
        self.inexact |= other.inexact;
    }

    /// True if any flag is raised.
    pub fn any(&self) -> bool {
        self.invalid || self.div_by_zero || self.overflow || self.underflow || self.inexact
    }
}

/// FPU behavior configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpuConfig {
    /// Flush subnormal results to zero and treat subnormal inputs as zero.
    ///
    /// The gate-level multiplier/divider datapaths in `tei-fpu` operate in
    /// this mode (documented substitution; see DESIGN.md).
    pub ftz: bool,
}

/// A software FPU: configuration plus sticky exception flags.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fpu {
    /// Behavior configuration.
    pub cfg: FpuConfig,
    /// Sticky exception flags accumulated across operations.
    pub flags: Flags,
}

impl Fpu {
    /// A fresh IEEE-compliant FPU (no flush-to-zero, clear flags).
    pub fn new() -> Self {
        Fpu::default()
    }

    /// A fresh FPU in flush-to-zero mode.
    pub fn new_ftz() -> Self {
        Fpu {
            cfg: FpuConfig { ftz: true },
            flags: Flags::default(),
        }
    }

    /// Apply `op` to raw operand bits, accumulating exception flags.
    ///
    /// For conversions, integer operands/results travel as two's-complement
    /// bits in the low half of the `u64` (sign-extended for reads).
    pub fn apply(&mut self, op: FpOp, a: u64, b: u64) -> u64 {
        ops::apply(op, a, b, self.cfg, &mut self.flags)
    }

    /// Clear the sticky flags.
    pub fn clear_flags(&mut self) {
        self.flags = Flags::default();
    }
}

// Re-export the low-level functional API for callers that manage their own
// flag state.
pub use arith::{add, div, mul, sub};
pub use convert::{f2i, i2f};
