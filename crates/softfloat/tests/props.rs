//! Property tests: tei-softfloat must agree bit-for-bit with the host's
//! IEEE-754 round-to-nearest-even arithmetic on arbitrary bit patterns.

use proptest::prelude::*;
use tei_softfloat::{add, div, f2i, i2f, mul, sub, Flags, Format, FpuConfig};

/// Generate interesting f64 bit patterns: uniform bits hit NaN/Inf/subnormal
/// ranges often enough to exercise every special path.
fn any_f64_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        // Exponent-structured values cluster near interesting binades.
        (any::<bool>(), 0u64..2048, any::<u64>())
            .prop_map(|(s, e, f)| { ((s as u64) << 63) | (e << 52) | (f & ((1 << 52) - 1)) }),
        Just(0u64),
        Just(0x8000_0000_0000_0000),
        Just(f64::INFINITY.to_bits()),
        Just(f64::NAN.to_bits()),
        Just(f64::MIN_POSITIVE.to_bits()),
        Just(1u64), // smallest subnormal
    ]
}

fn any_f32_bits() -> impl Strategy<Value = u32> {
    prop_oneof![
        any::<u32>(),
        (any::<bool>(), 0u32..256, any::<u32>())
            .prop_map(|(s, e, f)| { ((s as u32) << 31) | (e << 23) | (f & ((1 << 23) - 1)) }),
    ]
}

fn check_f64(ours: u64, native: f64, what: &str, a: u64, b: u64) -> Result<(), TestCaseError> {
    if native.is_nan() {
        prop_assert!(
            Format::F64.is_nan(ours),
            "{what}({a:#x}, {b:#x}) should be NaN"
        );
    } else {
        prop_assert_eq!(
            ours,
            native.to_bits(),
            "{}({:#x}, {:#x}): got {:e}, want {:e}",
            what,
            a,
            b,
            f64::from_bits(ours),
            native
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn prop_f64_add_sub(a in any_f64_bits(), b in any_f64_bits()) {
        let cfg = FpuConfig::default();
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        let mut fl = Flags::default();
        check_f64(add(Format::F64, a, b, cfg, &mut fl), fa + fb, "add", a, b)?;
        check_f64(sub(Format::F64, a, b, cfg, &mut fl), fa - fb, "sub", a, b)?;
    }

    #[test]
    fn prop_f64_mul(a in any_f64_bits(), b in any_f64_bits()) {
        let cfg = FpuConfig::default();
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        let mut fl = Flags::default();
        check_f64(mul(Format::F64, a, b, cfg, &mut fl), fa * fb, "mul", a, b)?;
    }

    #[test]
    fn prop_f64_div(a in any_f64_bits(), b in any_f64_bits()) {
        let cfg = FpuConfig::default();
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        let mut fl = Flags::default();
        check_f64(div(Format::F64, a, b, cfg, &mut fl), fa / fb, "div", a, b)?;
    }

    #[test]
    fn prop_f32_all(a in any_f32_bits(), b in any_f32_bits()) {
        let cfg = FpuConfig::default();
        let fmt = Format::F32;
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        let mut fl = Flags::default();
        for (ours, native) in [
            (add(fmt, a as u64, b as u64, cfg, &mut fl), fa + fb),
            (sub(fmt, a as u64, b as u64, cfg, &mut fl), fa - fb),
            (mul(fmt, a as u64, b as u64, cfg, &mut fl), fa * fb),
            (div(fmt, a as u64, b as u64, cfg, &mut fl), fa / fb),
        ] {
            if native.is_nan() {
                prop_assert!(fmt.is_nan(ours));
            } else {
                prop_assert_eq!(ours as u32, native.to_bits(),
                    "({:#x}, {:#x}) -> {:e}", a, b, native);
            }
        }
    }

    #[test]
    fn prop_i2f_matches_cast(x in any::<i64>()) {
        let mut fl = Flags::default();
        let r = i2f(Format::F64, x, FpuConfig::default(), &mut fl);
        prop_assert_eq!(r, (x as f64).to_bits());
        let mut fl = Flags::default();
        let x32 = x as i32;
        let r = i2f(Format::F32, x32 as i64, FpuConfig::default(), &mut fl);
        prop_assert_eq!(r as u32, (x32 as f32).to_bits());
    }

    #[test]
    fn prop_f2i_matches_saturating_cast(a in any_f64_bits()) {
        let mut fl = Flags::default();
        let v = f2i(Format::F64, a, 64, &mut fl);
        prop_assert_eq!(v, f64::from_bits(a) as i64, "{:#x}", a);
        let mut fl = Flags::default();
        let v32 = f2i(Format::F64, a, 32, &mut fl);
        prop_assert_eq!(v32, (f64::from_bits(a) as i32) as i64, "{:#x}", a);
    }

    #[test]
    fn prop_ftz_results_are_never_subnormal(a in any_f64_bits(), b in any_f64_bits()) {
        let cfg = FpuConfig { ftz: true };
        let fmt = Format::F64;
        let mut fl = Flags::default();
        for r in [
            add(fmt, a, b, cfg, &mut fl),
            sub(fmt, a, b, cfg, &mut fl),
            mul(fmt, a, b, cfg, &mut fl),
            div(fmt, a, b, cfg, &mut fl),
        ] {
            prop_assert!(!fmt.is_subnormal(r), "FTZ produced subnormal {:#x}", r);
        }
    }

    #[test]
    fn prop_add_commutes_and_mul_commutes(a in any_f64_bits(), b in any_f64_bits()) {
        let cfg = FpuConfig::default();
        let fmt = Format::F64;
        let mut fl = Flags::default();
        prop_assert_eq!(add(fmt, a, b, cfg, &mut fl), add(fmt, b, a, cfg, &mut fl));
        prop_assert_eq!(mul(fmt, a, b, cfg, &mut fl), mul(fmt, b, a, cfg, &mut fl));
    }
}
