//! Checkpointed fork-replay support for injection campaigns.
//!
//! A campaign replays the same program once per injection run, and every
//! replay's prefix up to the corrupted FP writeback is identical to the
//! golden run. This module removes that redundancy ZOFI-style: the golden
//! functional run records cheap [`Snapshot`]s every K dynamic FP
//! operations (architectural registers, dirty-page deltas over a shared
//! base image, output watermark), and each injection run *forks* from the
//! nearest checkpoint at or before its target FP index instead of
//! re-executing from instruction zero.
//!
//! After the corruption is applied, [`CheckpointPool::run_injected`] keeps
//! comparing the corrupted core against golden checkpoints at matching FP
//! counts; the moment registers, memory, and output re-converge the run is
//! provably identical to the golden run from there on and can stop early
//! (the early-convergence cutoff). Both paths are exact: outcomes are
//! byte-identical to a full replay-from-zero, which
//! `crates/core/tests/replay_equivalence.rs` asserts.

use crate::arch::{ExitReason, FpEvent, RunResult};
use crate::func::FuncCore;
use crate::mem::PAGE_BYTES;
use std::sync::Arc;

/// Default checkpoint spacing in dynamic FP operations (auto mode).
const DEFAULT_INTERVAL: u64 = 16;
/// Checkpoint-count cap: when recording exceeds it, every other snapshot
/// is dropped and the interval doubles, bounding pool memory while keeping
/// coverage of the whole run.
const MAX_SNAPSHOTS: usize = 64;

/// One resume point of the golden functional run: architectural state,
/// the pages that diverged from the initial memory image, and the output
/// watermark, all at an instruction boundary where `fp_ops` first reached
/// the checkpoint's FP index.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: crate::ArchState,
    instructions: u64,
    fp_ops: u64,
    output: Vec<u8>,
    /// Dirty-page bitmap at capture time (one bit per page).
    dirty: Vec<u64>,
    /// Dirty pages' contents, packed at [`PAGE_BYTES`] stride in ascending
    /// page order (a trailing partial page is zero-padded).
    pages: Vec<u8>,
}

impl Snapshot {
    /// Capture the core's current state. Must be taken at an instruction
    /// boundary (between [`FuncCore::step`] calls).
    pub fn capture(core: &FuncCore) -> Self {
        let dirty = core.mem.dirty_words().to_vec();
        let idxs = core.mem.dirty_pages();
        let mut pages = vec![0u8; idxs.len() * PAGE_BYTES];
        for (k, &p) in idxs.iter().enumerate() {
            let b = core.mem.page_bytes(p);
            pages[k * PAGE_BYTES..k * PAGE_BYTES + b.len()].copy_from_slice(b);
        }
        Snapshot {
            state: core.state.clone(),
            instructions: core.instructions,
            fp_ops: core.fp_ops,
            output: core.output.clone(),
            dirty,
            pages,
        }
    }

    /// Dynamic FP operations completed at this checkpoint.
    pub fn fp_ops(&self) -> u64 {
        self.fp_ops
    }

    /// Instructions retired at this checkpoint.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Approximate heap footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.pages.len() + self.output.len() + self.dirty.len() * 8
    }
}

/// Checkpoint recording was started on a core that already executed
/// instructions, so the pristine base memory image is unavailable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleCoreError {
    /// Instructions the core had already retired.
    pub instructions: u64,
}

impl std::fmt::Display for StaleCoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint recording must start on a fresh core, but {} \
             instructions were already retired",
            self.instructions
        )
    }
}

impl std::error::Error for StaleCoreError {}

/// Records golden-run checkpoints every `interval` dynamic FP operations,
/// thinning adaptively so the pool never exceeds [`MAX_SNAPSHOTS`].
#[derive(Debug)]
pub struct CheckpointRecorder {
    base: Vec<u8>,
    snaps: Vec<Snapshot>,
    interval: u64,
    next_mark: u64,
}

impl CheckpointRecorder {
    /// Start recording on a fresh core (captures the base memory image and
    /// the initial checkpoint). `interval` of 0 selects the auto policy.
    ///
    /// # Errors
    ///
    /// [`StaleCoreError`] if the core has already executed instructions —
    /// the base image must be the pristine initial memory. Campaign
    /// orchestrators surface this as a run-level failure instead of
    /// tearing down the process.
    pub fn try_new(core: &FuncCore, interval: u64) -> Result<Self, StaleCoreError> {
        if core.instructions() != 0 {
            return Err(StaleCoreError {
                instructions: core.instructions(),
            });
        }
        let interval = if interval == 0 {
            DEFAULT_INTERVAL
        } else {
            interval
        };
        Ok(CheckpointRecorder {
            base: core.mem.as_bytes().to_vec(),
            snaps: vec![Snapshot::capture(core)],
            interval,
            next_mark: interval,
        })
    }

    /// [`CheckpointRecorder::try_new`] for contexts where a stale core is
    /// a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if the core has already executed instructions.
    pub fn new(core: &FuncCore, interval: u64) -> Self {
        match Self::try_new(core, interval) {
            Ok(rec) => rec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Call at every instruction boundary of the golden run; captures a
    /// snapshot whenever the FP-op counter crosses the next mark.
    #[inline]
    pub fn observe(&mut self, core: &FuncCore) {
        if core.fp_ops() >= self.next_mark {
            self.capture(core);
        }
    }

    fn capture(&mut self, core: &FuncCore) {
        self.snaps.push(Snapshot::capture(core));
        if self.snaps.len() > MAX_SNAPSHOTS {
            let mut keep = 0usize;
            self.snaps.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            self.interval *= 2;
        }
        self.next_mark = core.fp_ops() + self.interval;
    }

    /// Freeze the recording into a shareable pool.
    pub fn finish(self) -> CheckpointPool {
        CheckpointPool {
            inner: Arc::new(PoolInner {
                base: self.base,
                snaps: self.snaps,
                interval: self.interval,
            }),
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    base: Vec<u8>,
    snaps: Vec<Snapshot>,
    interval: u64,
}

/// An immutable, cheaply clonable set of golden-run checkpoints shared by
/// every worker of a campaign cell.
#[derive(Debug, Clone)]
pub struct CheckpointPool {
    inner: Arc<PoolInner>,
}

/// How a checkpoint-replayed injection run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectedExit {
    /// Ran to a natural end (halt / exit / trap / step budget), exactly as
    /// a replay-from-zero would have.
    Finished(RunResult),
    /// Registers and memory re-converged with a golden checkpoint at the
    /// same FP count, so the rest of the execution is provably identical
    /// to the golden run. `output_matches` reports whether the emitted
    /// output prefix also equals the golden prefix (it decides Masked vs
    /// SDC); the instruction counts let the caller apply the timeout
    /// criterion to the implied full run.
    Converged {
        /// Output emitted so far equals the golden output watermark.
        output_matches: bool,
        /// Corrupted run's retired instructions at the convergence point.
        instructions: u64,
        /// Golden instructions at the matching checkpoint.
        checkpoint_instructions: u64,
    },
}

/// Result of [`CheckpointPool::run_injected`].
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedRun {
    /// Terminal condition (natural end or early convergence).
    pub exit: InjectedExit,
    /// Whether the target FP event was actually reached and corrupted.
    pub fired: bool,
}

impl CheckpointPool {
    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.inner.snaps.len()
    }

    /// True when no checkpoints were recorded (never: the initial
    /// checkpoint is always present).
    pub fn is_empty(&self) -> bool {
        self.inner.snaps.is_empty()
    }

    /// Final checkpoint spacing in dynamic FP operations.
    pub fn interval(&self) -> u64 {
        self.inner.interval
    }

    /// Approximate heap footprint of the pool in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.inner.base.len()
            + self
                .inner
                .snaps
                .iter()
                .map(Snapshot::footprint_bytes)
                .sum::<usize>()
    }

    /// The latest checkpoint at or before `fp` dynamic FP operations.
    pub fn nearest(&self, fp: u64) -> &Snapshot {
        let snaps = &self.inner.snaps;
        let i = snaps.partition_point(|s| s.fp_ops <= fp);
        &snaps[i - 1]
    }

    /// Rewind `core` to `snap`. The core must have been built from the
    /// same program and memory size the pool was recorded with.
    pub fn restore(&self, core: &mut FuncCore, snap: &Snapshot) {
        core.state.clone_from(&snap.state);
        core.mem
            .restore_pages(&snap.dirty, &snap.pages, &self.inner.base);
        core.output.clear();
        core.output.extend_from_slice(&snap.output);
        core.instructions = snap.instructions;
        core.fp_ops = snap.fp_ops;
    }

    /// Execute one injection run by forking from the nearest checkpoint:
    /// restore, fast-forward hook-free to the target FP index, XOR `mask`
    /// into that event's writeback, then run on — stopping early if the
    /// corrupted state re-converges with a golden checkpoint.
    ///
    /// `step_budget` is the total instruction budget counted from program
    /// start (the restored instruction counter continues the golden
    /// count), so `Limit` exits match a replay-from-zero with the same
    /// budget exactly.
    pub fn run_injected(
        &self,
        core: &mut FuncCore,
        step_budget: u64,
        target_fp: u64,
        mask: u64,
    ) -> InjectedRun {
        let snaps = &self.inner.snaps;
        self.restore(core, self.nearest(target_fp));

        let finish = |core: &FuncCore, exit: ExitReason, fired: bool| InjectedRun {
            exit: InjectedExit::Finished(RunResult {
                exit,
                instructions: core.instructions,
                fp_ops: core.fp_ops,
            }),
            fired,
        };

        // Phase 1: hook-free fast-forward to the target FP index.
        while core.fp_ops < target_fp {
            if core.instructions >= step_budget {
                return finish(core, ExitReason::Limit, false);
            }
            match core.step_with(&mut |ev: &FpEvent| ev.result) {
                Ok(None) => {}
                Ok(Some(exit)) => return finish(core, exit, false),
                Err(trap) => return finish(core, ExitReason::Trapped(trap), false),
            }
        }

        // Phase 2: step until the target event fires and corrupt it.
        let mut fired = false;
        while !fired {
            if core.instructions >= step_budget {
                return finish(core, ExitReason::Limit, false);
            }
            let step = core.step_with(&mut |ev: &FpEvent| {
                debug_assert_eq!(ev.index, target_fp, "fast-forward overshot the target");
                fired = true;
                ev.result ^ mask
            });
            match step {
                Ok(None) => {}
                Ok(Some(exit)) => return finish(core, exit, fired),
                Err(trap) => return finish(core, ExitReason::Trapped(trap), fired),
            }
        }

        // Phase 3: run on, watching for re-convergence with the golden
        // checkpoints downstream of the injection.
        let mut cursor = snaps.partition_point(|s| s.fp_ops <= target_fp);
        loop {
            if core.instructions >= step_budget {
                return finish(core, ExitReason::Limit, true);
            }
            if cursor < snaps.len() && core.fp_ops == snaps[cursor].fp_ops {
                let s = &snaps[cursor];
                cursor += 1;
                if core.state == s.state
                    && core.mem.pages_match(&s.dirty, &s.pages, &self.inner.base)
                {
                    return InjectedRun {
                        exit: InjectedExit::Converged {
                            output_matches: core.output == s.output,
                            instructions: core.instructions,
                            checkpoint_instructions: s.instructions,
                        },
                        fired: true,
                    };
                }
            }
            match core.step_with(&mut |ev: &FpEvent| ev.result) {
                Ok(None) => {}
                Ok(Some(exit)) => return finish(core, exit, true),
                Err(trap) => return finish(core, ExitReason::Trapped(trap), true),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExitReason;
    use tei_isa::{FReg, ProgramBuilder, Reg, Syscall};

    /// An FP-heavy loop: each iteration reloads clean operands, so a
    /// corrupted register value is overwritten on the next pass.
    fn fp_loop_program(iters: i64) -> tei_isa::Program {
        let mut p = ProgramBuilder::new();
        let addr = p.doubles(&[1.25, 2.5]);
        p.li(Reg::T0, iters);
        p.la(Reg::S0, addr);
        let head = p.here();
        p.fld(FReg::F1, 0, Reg::S0);
        p.fld(FReg::F2, 8, Reg::S0);
        p.fmul_d(FReg::F3, FReg::F1, FReg::F2);
        p.fadd_d(FReg::F10, FReg::F3, FReg::F2);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, head);
        p.syscall(Syscall::PutF64);
        p.halt();
        p.finish()
    }

    fn record_golden(prog: &tei_isa::Program, interval: u64) -> (CheckpointPool, RunResult) {
        let mut core = FuncCore::with_memory(prog, 1 << 16);
        let mut rec = CheckpointRecorder::new(&core, interval);
        let exit = loop {
            rec.observe(&core);
            match core.step(&mut |ev| ev.result) {
                Ok(None) => {}
                Ok(Some(exit)) => break exit,
                Err(trap) => break ExitReason::Trapped(trap),
            }
        };
        let rr = RunResult {
            exit,
            instructions: core.instructions(),
            fp_ops: core.fp_ops(),
        };
        (rec.finish(), rr)
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let prog = fp_loop_program(40);
        // Uninterrupted reference.
        let mut reference = FuncCore::with_memory(&prog, 1 << 16);
        let rr = reference.run(100_000);
        assert_eq!(rr.exit, ExitReason::Halted);

        let (pool, golden_rr) = record_golden(&prog, 8);
        assert_eq!(golden_rr, rr);
        assert!(pool.len() > 3, "loop must produce several checkpoints");

        // Fork from a mid-run checkpoint and run to completion.
        let snap = pool.nearest(33);
        assert!(snap.fp_ops() <= 33 && snap.fp_ops() > 0);
        let mut fork = FuncCore::with_memory(&prog, 1 << 16);
        pool.restore(&mut fork, snap);
        assert_eq!(fork.instructions(), snap.instructions());
        let fr = fork.run(100_000);
        assert_eq!(fr.exit, ExitReason::Halted);
        assert_eq!(fr.instructions, rr.instructions);
        assert_eq!(fork.output, reference.output);
        assert_eq!(fork.state, reference.state);
    }

    #[test]
    fn run_injected_matches_replay_from_zero() {
        let prog = fp_loop_program(25);
        let (pool, golden_rr) = record_golden(&prog, 4);
        let budget = golden_rr.instructions * 2;
        let mut fork = FuncCore::with_memory(&prog, 1 << 16);
        for target in [0u64, 7, 23, golden_rr.fp_ops - 1] {
            for mask in [1u64 << 2, 1 << 40, 1 << 63] {
                // Reference: full replay from zero with a dyn hook.
                let mut refc = FuncCore::with_memory(&prog, 1 << 16);
                let rr = refc.run_with_hook(budget, &mut |ev| {
                    if ev.index == target {
                        ev.result ^ mask
                    } else {
                        ev.result
                    }
                });
                let inj = pool.run_injected(&mut fork, budget, target, mask);
                assert!(inj.fired, "target {target} must fire");
                match inj.exit {
                    InjectedExit::Finished(f) => {
                        assert_eq!(f, rr, "target {target} mask {mask:#x}");
                        assert_eq!(fork.output, refc.output);
                    }
                    InjectedExit::Converged {
                        output_matches,
                        instructions,
                        checkpoint_instructions,
                    } => {
                        // The implied full run must agree with the reference.
                        let total =
                            instructions + (golden_rr.instructions - checkpoint_instructions);
                        assert!(total <= budget);
                        assert_eq!(rr.exit, ExitReason::Halted);
                        assert_eq!(rr.instructions, total, "target {target} mask {mask:#x}");
                        if output_matches {
                            assert!(refc.output.starts_with(&fork.output));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn early_convergence_detects_masked_flip() {
        // A low-mantissa flip in f3 is overwritten on the next loop
        // iteration, so state re-converges long before the run ends.
        let prog = fp_loop_program(200);
        let (pool, golden_rr) = record_golden(&prog, 4);
        let mut fork = FuncCore::with_memory(&prog, 1 << 16);
        let inj = pool.run_injected(&mut fork, golden_rr.instructions * 2, 10, 1 << 3);
        assert!(inj.fired);
        match inj.exit {
            InjectedExit::Converged {
                output_matches,
                instructions,
                ..
            } => {
                assert!(output_matches, "no output emitted before convergence");
                assert!(
                    instructions < golden_rr.instructions / 2,
                    "must converge early, not at the end ({instructions} of {})",
                    golden_rr.instructions
                );
            }
            other => panic!("expected early convergence, got {other:?}"),
        }
    }

    #[test]
    fn recorder_thins_to_snapshot_cap() {
        let prog = fp_loop_program(600); // 1200 FP ops at interval 1
        let (pool, _) = record_golden(&prog, 1);
        assert!(pool.len() <= MAX_SNAPSHOTS + 1);
        assert!(pool.interval() > 1, "interval must have doubled");
        assert!(pool.footprint_bytes() > 0);
        assert!(!pool.is_empty());
    }
}
