//! Fast functional (instruction-accurate) core.

use crate::arch::{ArchState, ExitReason, FpEvent, RunResult, Trap};
use crate::mem::Memory;
use crate::sem;
use tei_isa::{Instr, Program, Reg, Syscall, DEFAULT_MEM_BYTES};
use tei_softfloat::FpuConfig;

/// Instruction-accurate simulator: executes the program at maximum speed
/// with no timing model. Used for golden runs, for the fast-forward
/// injection replay, and as the value oracle the detailed core is
/// cross-checked against.
#[derive(Debug, Clone)]
pub struct FuncCore {
    /// Architectural registers and PC.
    pub state: ArchState,
    /// Data memory.
    pub mem: Memory,
    /// Bytes emitted through the output services.
    pub output: Vec<u8>,
    text: Vec<Instr>,
    fpu_cfg: FpuConfig,
    pub(crate) instructions: u64,
    pub(crate) fp_ops: u64,
}

impl FuncCore {
    /// Build a core with the default memory size.
    pub fn new(program: &Program) -> Self {
        Self::with_memory(program, DEFAULT_MEM_BYTES as usize)
    }

    /// Build a core with an explicit data-memory size.
    pub fn with_memory(program: &Program, mem_bytes: usize) -> Self {
        let stack_top = (tei_isa::DATA_BASE as usize + mem_bytes - 16) as u64;
        FuncCore {
            state: ArchState::new(program.entry, stack_top),
            mem: Memory::with_image(mem_bytes, &program.data),
            output: Vec::new(),
            text: program.text.clone(),
            // Flush-to-zero matches the modeled gate-level FPU.
            fpu_cfg: FpuConfig { ftz: true },
            instructions: 0,
            fp_ops: 0,
        }
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic FP operations retired so far.
    pub fn fp_ops(&self) -> u64 {
        self.fp_ops
    }

    /// Execute one instruction. `fp_hook` observes every modeled FP
    /// operation and returns the (possibly corrupted) result bits to write
    /// back — identity for fault-free runs.
    ///
    /// Returns `Ok(None)` to continue, `Ok(Some(exit))` on termination.
    ///
    /// # Errors
    ///
    /// Returns the trap on architectural exceptions.
    pub fn step(
        &mut self,
        fp_hook: &mut dyn FnMut(&FpEvent) -> u64,
    ) -> Result<Option<ExitReason>, Trap> {
        self.step_with(fp_hook)
    }

    /// Monomorphic variant of [`FuncCore::step`]: hot loops (golden
    /// fast-forward, checkpoint replay) instantiate it with an inline
    /// closure, eliminating the per-FP-event dynamic dispatch.
    #[inline]
    pub(crate) fn step_with<F: FnMut(&FpEvent) -> u64 + ?Sized>(
        &mut self,
        fp_hook: &mut F,
    ) -> Result<Option<ExitReason>, Trap> {
        use Instr::*;
        let pc = self.state.pc;
        let Some(&i) = self.text.get(pc) else {
            return Err(Trap::BadPc(pc as u64));
        };
        self.instructions += 1;
        let mut next = pc + 1;
        match i {
            Add { rd, rs1, rs2 }
            | Sub { rd, rs1, rs2 }
            | And { rd, rs1, rs2 }
            | Or { rd, rs1, rs2 }
            | Xor { rd, rs1, rs2 }
            | Sll { rd, rs1, rs2 }
            | Srl { rd, rs1, rs2 }
            | Sra { rd, rs1, rs2 }
            | Slt { rd, rs1, rs2 }
            | Sltu { rd, rs1, rs2 }
            | Mul { rd, rs1, rs2 }
            | Div { rd, rs1, rs2 }
            | Rem { rd, rs1, rs2 } => {
                let v = sem::int_op(&i, self.state.x(rs1), self.state.x(rs2));
                self.state.set_x(rd, v);
            }
            Addi { rd, rs1, imm }
            | Andi { rd, rs1, imm }
            | Ori { rd, rs1, imm }
            | Xori { rd, rs1, imm }
            | Slti { rd, rs1, imm } => {
                let b = match i {
                    // Logical immediates are zero-extended; arithmetic
                    // immediates sign-extend (OpenRISC convention).
                    Andi { .. } | Ori { .. } | Xori { .. } => imm as u16 as u64,
                    _ => imm as i64 as u64,
                };
                let v = sem::int_op(&i, self.state.x(rs1), b);
                self.state.set_x(rd, v);
            }
            Slli { rd, rs1, .. } | Srli { rd, rs1, .. } | Srai { rd, rs1, .. } => {
                let v = sem::int_op(&i, self.state.x(rs1), 0);
                self.state.set_x(rd, v);
            }
            Movhi { rd, .. } => {
                let v = sem::int_op(&i, 0, 0);
                self.state.set_x(rd, v);
            }
            Ld { rd, rs1, off }
            | Lw { rd, rs1, off }
            | Lwu { rd, rs1, off }
            | Lb { rd, rs1, off }
            | Lbu { rd, rs1, off } => {
                let addr = self.state.x(rs1).wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&i);
                let raw = self.mem.load(addr, w)?;
                self.state.set_x(rd, sem::extend_load(&i, raw));
            }
            Sd { rs2, rs1, off } | Sw { rs2, rs1, off } | Sb { rs2, rs1, off } => {
                let addr = self.state.x(rs1).wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&i);
                self.mem.store(addr, w, self.state.x(rs2))?;
            }
            Fld { fd, rs1, off } | Flw { fd, rs1, off } => {
                let addr = self.state.x(rs1).wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&i);
                let raw = self.mem.load(addr, w)?;
                self.state.set_f(fd, raw);
            }
            Fsd { fs, rs1, off } | Fsw { fs, rs1, off } => {
                let addr = self.state.x(rs1).wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&i);
                self.mem.store(addr, w, self.state.f(fs))?;
            }
            Beq { rs1, rs2, off }
            | Bne { rs1, rs2, off }
            | Blt { rs1, rs2, off }
            | Bge { rs1, rs2, off }
            | Bltu { rs1, rs2, off }
            | Bgeu { rs1, rs2, off } => {
                if sem::branch_taken(&i, self.state.x(rs1), self.state.x(rs2)) {
                    next = pc.wrapping_add(off as i64 as usize);
                }
            }
            Jal { rd, off } => {
                self.state.set_x(rd, (pc + 1) as u64);
                next = pc.wrapping_add(off as i64 as usize);
            }
            Jalr { rd, rs1, imm } => {
                let target = self.state.x(rs1).wrapping_add(imm as i64 as u64);
                self.state.set_x(rd, (pc + 1) as u64);
                next = target as usize;
            }
            FaddD { .. }
            | FsubD { .. }
            | FmulD { .. }
            | FdivD { .. }
            | FaddS { .. }
            | FsubS { .. }
            | FmulS { .. }
            | FdivS { .. }
            | FcvtDL { .. }
            | FcvtSW { .. }
            | FcvtLD { .. }
            | FcvtWS { .. }
            | FmvD { .. }
            | FnegD { .. }
            | FabsD { .. }
            | FmvXD { .. }
            | FmvDX { .. }
            | FeqD { .. }
            | FltD { .. }
            | FleD { .. } => {
                let (fa, fb, xa) = fp_sources(&self.state, &i);
                let out = sem::fp_op(self.fpu_cfg, &i, fa, fb, xa);
                if out.trap {
                    // A trapping operation never writes back, so it is
                    // neither counted nor visible to the injector.
                    return Err(Trap::FpException);
                }
                let mut bits = out.bits;
                if let Some(op) = out.modeled {
                    let ev = FpEvent {
                        index: self.fp_ops,
                        op,
                        a: out.operands.0,
                        b: out.operands.1,
                        result: bits,
                    };
                    self.fp_ops += 1;
                    bits = fp_hook(&ev);
                }
                write_fp_dest(&mut self.state, &i, bits);
            }
            Ecall => match Syscall::from_u64(self.state.x(Reg::A7)) {
                Some(Syscall::Exit) => {
                    return Ok(Some(ExitReason::Exited(self.state.x(Reg::A0) as i64)))
                }
                Some(Syscall::PutByte) => {
                    self.output.push(self.state.x(Reg::A0) as u8);
                }
                Some(Syscall::PutInt) => {
                    let v = self.state.x(Reg::A0) as i64;
                    self.output.extend_from_slice(v.to_string().as_bytes());
                }
                Some(Syscall::PutF64) => {
                    let bits = self.state.f(tei_isa::FReg::F10);
                    self.output.extend_from_slice(&bits.to_le_bytes());
                }
                None => return Err(Trap::BadSyscall(self.state.x(Reg::A7))),
            },
            Halt => return Ok(Some(ExitReason::Halted)),
        }
        // Out-of-range targets (including falling off the end) trap at the
        // next fetch, keeping all control-transfer checks in one place.
        self.state.pc = next;
        Ok(None)
    }

    /// Run until termination or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> RunResult {
        self.run_with_hook(max_steps, &mut |ev: &FpEvent| ev.result)
    }

    /// Run with an FP writeback hook (injection / tracing).
    pub fn run_with_hook(
        &mut self,
        max_steps: u64,
        fp_hook: &mut dyn FnMut(&FpEvent) -> u64,
    ) -> RunResult {
        let start = self.instructions;
        let exit = loop {
            if self.instructions - start >= max_steps {
                break ExitReason::Limit;
            }
            match self.step_with(fp_hook) {
                Ok(None) => {}
                Ok(Some(exit)) => break exit,
                Err(trap) => break ExitReason::Trapped(trap),
            }
        };
        RunResult {
            exit,
            instructions: self.instructions,
            fp_ops: self.fp_ops,
        }
    }
}

/// FP source register bits + integer source for an FP-domain instruction.
pub(crate) fn fp_sources(state: &ArchState, i: &Instr) -> (u64, u64, u64) {
    use Instr::*;
    match *i {
        FaddD { fs1, fs2, .. }
        | FsubD { fs1, fs2, .. }
        | FmulD { fs1, fs2, .. }
        | FdivD { fs1, fs2, .. }
        | FeqD { fs1, fs2, .. }
        | FltD { fs1, fs2, .. }
        | FleD { fs1, fs2, .. } => (state.f(fs1), state.f(fs2), 0),
        FaddS { fs1, fs2, .. }
        | FsubS { fs1, fs2, .. }
        | FmulS { fs1, fs2, .. }
        | FdivS { fs1, fs2, .. } => (state.f(fs1) & 0xffff_ffff, state.f(fs2) & 0xffff_ffff, 0),
        FcvtLD { fs1, .. }
        | FmvD { fs1, .. }
        | FnegD { fs1, .. }
        | FabsD { fs1, .. }
        | FmvXD { fs1, .. } => (state.f(fs1), 0, 0),
        FcvtWS { fs1, .. } => (state.f(fs1) & 0xffff_ffff, 0, 0),
        FcvtDL { rs1, .. } | FcvtSW { rs1, .. } | FmvDX { rs1, .. } => (0, 0, state.x(rs1)),
        ref other => panic!("fp_sources on {other}"),
    }
}

/// Write an FP-domain instruction's result to its destination register.
pub(crate) fn write_fp_dest(state: &mut ArchState, i: &Instr, bits: u64) {
    use Instr::*;
    match *i {
        FaddD { fd, .. }
        | FsubD { fd, .. }
        | FmulD { fd, .. }
        | FdivD { fd, .. }
        | FaddS { fd, .. }
        | FsubS { fd, .. }
        | FmulS { fd, .. }
        | FdivS { fd, .. }
        | FcvtDL { fd, .. }
        | FcvtSW { fd, .. }
        | FmvD { fd, .. }
        | FnegD { fd, .. }
        | FabsD { fd, .. }
        | FmvDX { fd, .. } => state.set_f(fd, bits),
        FcvtLD { rd, .. }
        | FcvtWS { rd, .. }
        | FmvXD { rd, .. }
        | FeqD { rd, .. }
        | FltD { rd, .. }
        | FleD { rd, .. } => state.set_x(rd, bits),
        ref other => panic!("write_fp_dest on {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_isa::{FReg, ProgramBuilder};

    #[test]
    fn computes_a_sum_loop() {
        let mut p = ProgramBuilder::new();
        // sum 1..=10 in t1
        p.li(Reg::T0, 10);
        p.li(Reg::T1, 0);
        let head = p.here();
        p.add(Reg::T1, Reg::T1, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, head);
        p.mv(Reg::A0, Reg::T1);
        p.syscall(Syscall::Exit);
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(10_000);
        assert_eq!(r.exit, ExitReason::Exited(55));
    }

    #[test]
    fn fp_kernel_and_hook_fire() {
        let mut p = ProgramBuilder::new();
        p.fli(FReg::F1, 1.5, Reg::T0);
        p.fli(FReg::F2, 2.0, Reg::T0);
        p.fmul_d(FReg::F3, FReg::F1, FReg::F2);
        p.fadd_d(FReg::F3, FReg::F3, FReg::F2);
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let mut events = Vec::new();
        let r = core.run_with_hook(1000, &mut |ev| {
            events.push(*ev);
            ev.result
        });
        assert_eq!(r.exit, ExitReason::Halted);
        assert_eq!(events.len(), 2);
        assert_eq!(f64::from_bits(core.state.f(FReg::F3)), 5.0);
        assert_eq!(r.fp_ops, 2);
    }

    #[test]
    fn injection_corrupts_destination() {
        let mut p = ProgramBuilder::new();
        p.fli(FReg::F1, 1.0, Reg::T0);
        p.fmul_d(FReg::F2, FReg::F1, FReg::F1);
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        core.run_with_hook(1000, &mut |ev| ev.result ^ (1 << 52));
        assert_ne!(f64::from_bits(core.state.f(FReg::F2)), 1.0);
    }

    #[test]
    fn memory_and_output() {
        let mut p = ProgramBuilder::new();
        let addr = p.doubles(&[2.5, -1.25]);
        p.la(Reg::S0, addr);
        p.fld(FReg::F1, 0, Reg::S0);
        p.fld(FReg::F2, 8, Reg::S0);
        p.fadd_d(FReg::F10, FReg::F1, FReg::F2);
        p.syscall(Syscall::PutF64);
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(1000);
        assert_eq!(r.exit, ExitReason::Halted);
        assert_eq!(core.output, 1.25f64.to_bits().to_le_bytes());
    }

    #[test]
    fn wild_store_traps() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 0x10);
        p.sd(Reg::T0, 0, Reg::T0);
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(100);
        assert!(matches!(
            r.exit,
            ExitReason::Trapped(Trap::Mem { store: true, .. })
        ));
    }

    #[test]
    fn bad_jump_traps() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 99_999_999);
        p.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::T0,
            imm: 0,
        });
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(100);
        assert!(matches!(r.exit, ExitReason::Trapped(Trap::BadPc(_))));
    }

    #[test]
    fn step_limit_reports_timeout() {
        let mut p = ProgramBuilder::new();
        let head = p.here();
        p.j(head); // infinite loop
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(500);
        assert_eq!(r.exit, ExitReason::Limit);
        assert_eq!(r.instructions, 500);
    }

    #[test]
    fn fp_exception_traps() {
        let mut p = ProgramBuilder::new();
        p.fli(FReg::F1, 0.0, Reg::T0);
        p.fdiv_d(FReg::F2, FReg::F1, FReg::F1); // 0/0 invalid
        p.halt();
        let prog = p.finish();
        let mut core = FuncCore::with_memory(&prog, 1 << 16);
        let r = core.run(100);
        assert_eq!(r.exit, ExitReason::Trapped(Trap::FpException));
    }
}
