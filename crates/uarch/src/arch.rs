//! Architectural state and run outcomes.

use crate::mem::MemFault;
use serde::{Deserialize, Serialize};
use tei_isa::{FReg, Reg};
use tei_softfloat::FpOp;

/// Architectural register state plus the program counter.
///
/// `PartialEq`/`Eq` compare the full register files and PC — the
/// register-side half of the checkpoint convergence test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    x: [u64; 32],
    f: [u64; 32],
    /// Program counter (index into the text segment).
    pub pc: usize,
}

impl ArchState {
    /// Reset state: zero registers, `sp` at the stack top, given entry PC.
    pub fn new(entry: usize, stack_top: u64) -> Self {
        let mut s = ArchState {
            x: [0; 32],
            f: [0; 32],
            pc: entry,
        };
        s.set_x(Reg::SP, stack_top);
        s
    }

    /// Read an integer register (`x0` reads zero).
    #[inline]
    pub fn x(&self, r: Reg) -> u64 {
        self.x[r.num() as usize]
    }

    /// Write an integer register (`x0` writes are ignored).
    #[inline]
    pub fn set_x(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.x[r.num() as usize] = v;
        }
    }

    /// Read an FP register's raw bits.
    #[inline]
    pub fn f(&self, r: FReg) -> u64 {
        self.f[r.num() as usize]
    }

    /// Write an FP register's raw bits.
    #[inline]
    pub fn set_f(&mut self, r: FReg, v: u64) {
        self.f[r.num() as usize] = v;
    }
}

/// A precise architectural trap — the paper's Crash category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trap {
    /// Data-memory access fault.
    Mem {
        /// Faulting address.
        addr: u64,
        /// True for stores.
        store: bool,
    },
    /// Control transfer outside the text segment.
    BadPc(u64),
    /// Floating-point exception (invalid operation or division by zero)
    /// with traps enabled, as the paper's crash taxonomy includes.
    FpException,
    /// Unknown environment-call number.
    BadSyscall(u64),
}

impl From<MemFault> for Trap {
    fn from(f: MemFault) -> Trap {
        Trap::Mem {
            addr: f.addr,
            store: f.store,
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Mem { addr, store: true } => write!(f, "store fault at {addr:#x}"),
            Trap::Mem { addr, store: false } => write!(f, "load fault at {addr:#x}"),
            Trap::BadPc(pc) => write!(f, "control transfer to invalid pc {pc:#x}"),
            Trap::FpException => write!(f, "floating-point exception"),
            Trap::BadSyscall(n) => write!(f, "unknown syscall {n}"),
        }
    }
}

/// Why a simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitReason {
    /// Program invoked the exit service with this code.
    Exited(i64),
    /// Program executed `halt`.
    Halted,
    /// Architectural trap (crash).
    Trapped(Trap),
    /// The step/cycle budget ran out (timeout / livelock guard).
    Limit,
}

impl ExitReason {
    /// True for a clean termination (exit code 0 or halt).
    pub fn is_success(&self) -> bool {
        matches!(self, ExitReason::Halted | ExitReason::Exited(0))
    }
}

/// One dynamic execution of a modeled FPU operation — the injection hook's
/// view (the paper's destination-register `ORd` write).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpEvent {
    /// Zero-based index among the dynamic FP operations of this run.
    pub index: u64,
    /// The operation.
    pub op: FpOp,
    /// First operand's raw bits (integer operand for I2F).
    pub a: u64,
    /// Second operand's raw bits (0 for unary operations).
    pub b: u64,
    /// Fault-free result bits about to be written to the destination.
    pub result: u64,
}

/// Summary of a completed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Why the run ended.
    pub exit: ExitReason,
    /// Instructions retired.
    pub instructions: u64,
    /// Dynamic FP operations retired.
    pub fp_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new(0, 0x1000);
        s.set_x(Reg::ZERO, 77);
        assert_eq!(s.x(Reg::ZERO), 0);
        s.set_x(Reg::A0, 77);
        assert_eq!(s.x(Reg::A0), 77);
    }

    #[test]
    fn sp_initialized() {
        let s = ArchState::new(5, 0xdead0);
        assert_eq!(s.x(Reg::SP), 0xdead0);
        assert_eq!(s.pc, 5);
    }

    #[test]
    fn exit_reason_success() {
        assert!(ExitReason::Halted.is_success());
        assert!(ExitReason::Exited(0).is_success());
        assert!(!ExitReason::Exited(1).is_success());
        assert!(!ExitReason::Trapped(Trap::FpException).is_success());
        assert!(!ExitReason::Limit.is_success());
    }
}
