//! Flat little-endian data memory with fault detection.

use tei_isa::DATA_BASE;

/// A data-memory access fault (address out of the mapped range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u64,
    /// True for a store, false for a load.
    pub store: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault at {:#x}",
            if self.store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Byte-addressed little-endian memory mapped at [`DATA_BASE`].
///
/// Accesses below the base or beyond the end fault — the mechanism by which
/// corrupted pointer values turn into the paper's Crash outcomes.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` bytes and load `image` at the base address.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the memory size.
    pub fn with_image(size: usize, image: &[u8]) -> Self {
        assert!(image.len() <= size, "data image larger than memory");
        let mut bytes = vec![0u8; size];
        bytes[..image.len()].copy_from_slice(image);
        Memory { bytes }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when sized zero (never in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn offset(&self, addr: u64, width: usize, store: bool) -> Result<usize, MemFault> {
        let off = addr.wrapping_sub(DATA_BASE);
        if off
            .checked_add(width as u64)
            .is_none_or(|end| end > self.bytes.len() as u64)
        {
            return Err(MemFault { addr, store });
        }
        Ok(off as usize)
    }

    /// Load `WIDTH` bytes little-endian.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped range.
    #[inline]
    pub fn load(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let off = self.offset(addr, width, false)?;
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.bytes[off + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Store the low `width` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped range.
    #[inline]
    pub fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        let off = self.offset(addr, width, true)?;
        for i in 0..width {
            self.bytes[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Read a block (for output comparison), faulting on range errors.
    ///
    /// # Errors
    ///
    /// Faults when the block leaves the mapped range.
    pub fn read_block(&self, addr: u64, len: usize) -> Result<&[u8], MemFault> {
        let off = self.offset(addr, len, false)?;
        Ok(&self.bytes[off..off + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::with_image(4096, &[]);
        for (w, v) in [
            (1usize, 0xabu64),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            m.store(DATA_BASE + 128, w, v).unwrap();
            assert_eq!(m.load(DATA_BASE + 128, w).unwrap(), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::with_image(64, &[]);
        m.store(DATA_BASE, 4, 0x0403_0201).unwrap();
        assert_eq!(m.load(DATA_BASE, 1).unwrap(), 0x01);
        assert_eq!(m.load(DATA_BASE + 3, 1).unwrap(), 0x04);
    }

    #[test]
    fn faults_outside_mapped_range() {
        let mut m = Memory::with_image(64, &[]);
        assert!(m.load(DATA_BASE - 1, 1).is_err());
        assert!(m.load(DATA_BASE + 64, 1).is_err());
        assert!(m.load(DATA_BASE + 63, 2).is_err());
        assert!(m.load(0, 8).is_err());
        assert!(m.load(u64::MAX, 8).is_err(), "wrap-around guarded");
        assert!(m.store(DATA_BASE + 60, 8, 0).is_err());
        let f = m.store(0x10, 4, 1).unwrap_err();
        assert!(f.store);
    }

    #[test]
    fn image_loaded_at_base() {
        let m = Memory::with_image(64, &[9, 8, 7]);
        assert_eq!(m.load(DATA_BASE, 1).unwrap(), 9);
        assert_eq!(m.load(DATA_BASE + 2, 1).unwrap(), 7);
        assert_eq!(m.load(DATA_BASE + 3, 1).unwrap(), 0);
    }
}
