//! Flat little-endian data memory with fault detection.

use tei_isa::DATA_BASE;

/// A data-memory access fault (address out of the mapped range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u64,
    /// True for a store, false for a load.
    pub store: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault at {:#x}",
            if self.store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Page granularity of the dirty-page tracking used by checkpoint
/// snapshots (see `tei_uarch::snapshot`).
pub const PAGE_BYTES: usize = 4096;

/// Byte-addressed little-endian memory mapped at [`DATA_BASE`].
///
/// Accesses below the base or beyond the end fault — the mechanism by which
/// corrupted pointer values turn into the paper's Crash outcomes.
///
/// Every store also marks its page in a dirty bitmap (pages of
/// [`PAGE_BYTES`]), so checkpoints can snapshot and restore only the pages
/// that diverged from the initial image instead of the whole array.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// One bit per [`PAGE_BYTES`] page, set on the first store since the
    /// initial image (or since the last snapshot restore).
    dirty: Vec<u64>,
}

impl Memory {
    /// Allocate `size` bytes and load `image` at the base address.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the memory size.
    pub fn with_image(size: usize, image: &[u8]) -> Self {
        assert!(image.len() <= size, "data image larger than memory");
        let mut bytes = vec![0u8; size];
        bytes[..image.len()].copy_from_slice(image);
        let pages = size.div_ceil(PAGE_BYTES);
        Memory {
            bytes,
            dirty: vec![0u64; pages.div_ceil(64)],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when sized zero (never in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn offset(&self, addr: u64, width: usize, store: bool) -> Result<usize, MemFault> {
        let off = addr.wrapping_sub(DATA_BASE);
        if off
            .checked_add(width as u64)
            .is_none_or(|end| end > self.bytes.len() as u64)
        {
            return Err(MemFault { addr, store });
        }
        Ok(off as usize)
    }

    /// Load `WIDTH` bytes little-endian.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped range.
    #[inline]
    pub fn load(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let off = self.offset(addr, width, false)?;
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.bytes[off + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Store the low `width` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults when the access leaves the mapped range.
    #[inline]
    pub fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        let off = self.offset(addr, width, true)?;
        for i in 0..width {
            self.bytes[off + i] = (value >> (8 * i)) as u8;
        }
        self.mark_dirty(off, width);
        Ok(())
    }

    #[inline]
    fn mark_dirty(&mut self, off: usize, width: usize) {
        let first = off / PAGE_BYTES;
        let last = (off + width - 1) / PAGE_BYTES;
        self.dirty[first / 64] |= 1 << (first % 64);
        if last != first {
            self.dirty[last / 64] |= 1 << (last % 64);
        }
    }

    /// Number of [`PAGE_BYTES`] pages (the last one possibly partial).
    pub fn num_pages(&self) -> usize {
        self.bytes.len().div_ceil(PAGE_BYTES)
    }

    /// Length in bytes of page `p` (shorter than [`PAGE_BYTES`] only for a
    /// trailing partial page).
    #[inline]
    fn page_len(&self, p: usize) -> usize {
        PAGE_BYTES.min(self.bytes.len() - p * PAGE_BYTES)
    }

    /// The bytes of page `p`.
    pub fn page_bytes(&self, p: usize) -> &[u8] {
        let start = p * PAGE_BYTES;
        &self.bytes[start..start + self.page_len(p)]
    }

    /// The dirty bitmap (one bit per page, LSB-first within each word).
    pub fn dirty_words(&self) -> &[u64] {
        &self.dirty
    }

    /// Indices of all dirty pages, ascending.
    pub fn dirty_pages(&self) -> Vec<usize> {
        iter_bits(&self.dirty).collect()
    }

    /// The full backing array (initial-image capture for checkpoint bases).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rewind memory to `base` overlaid with the snapshot pages: every page
    /// flagged in `snap_dirty` is copied from `snap_pages` (packed at
    /// [`PAGE_BYTES`] stride, in ascending page order), every page dirty in
    /// `self` but not in the snapshot is copied back from `base`, and the
    /// dirty bitmap becomes `snap_dirty`. Untouched pages already equal
    /// `base` and are skipped, which is what makes restores cheap.
    ///
    /// # Panics
    ///
    /// Panics if `base` or the bitmap length disagree with this memory's
    /// geometry (snapshots are only valid for the arena they were taken in).
    pub fn restore_pages(&mut self, snap_dirty: &[u64], snap_pages: &[u8], base: &[u8]) {
        assert_eq!(base.len(), self.bytes.len(), "snapshot arena mismatch");
        assert_eq!(
            snap_dirty.len(),
            self.dirty.len(),
            "snapshot bitmap mismatch"
        );
        for (k, p) in iter_bits(snap_dirty).enumerate() {
            let (start, len) = (p * PAGE_BYTES, self.page_len(p));
            self.bytes[start..start + len]
                .copy_from_slice(&snap_pages[k * PAGE_BYTES..k * PAGE_BYTES + len]);
        }
        for (w, (cur, snap)) in self.dirty.iter().zip(snap_dirty).enumerate() {
            let stale = cur & !snap;
            for p in iter_bits(&[stale]) {
                let p = w * 64 + p;
                let (start, len) = (p * PAGE_BYTES, self.page_len(p));
                self.bytes[start..start + len].copy_from_slice(&base[start..start + len]);
            }
        }
        self.dirty.copy_from_slice(snap_dirty);
    }

    /// True when this memory's content equals `base` overlaid with the
    /// snapshot pages (the convergence-cutoff comparison). Only pages dirty
    /// on either side are inspected.
    pub fn pages_match(&self, snap_dirty: &[u64], snap_pages: &[u8], base: &[u8]) -> bool {
        debug_assert_eq!(base.len(), self.bytes.len());
        let mut k = 0usize;
        for (w, (cur, snap)) in self.dirty.iter().zip(snap_dirty).enumerate() {
            for p in iter_bits(&[cur | snap]) {
                let in_snap = snap >> p & 1 == 1;
                let p = w * 64 + p;
                let (start, len) = (p * PAGE_BYTES, self.page_len(p));
                let want: &[u8] = if in_snap {
                    // `snap_pages` is packed in ascending page order, so the
                    // running count of snapshot bits indexes it directly.
                    &snap_pages[k * PAGE_BYTES..k * PAGE_BYTES + len]
                } else {
                    &base[start..start + len]
                };
                k += in_snap as usize;
                if self.bytes[start..start + len] != *want {
                    return false;
                }
            }
        }
        true
    }

    /// Read a block (for output comparison), faulting on range errors.
    ///
    /// # Errors
    ///
    /// Faults when the block leaves the mapped range.
    pub fn read_block(&self, addr: u64, len: usize) -> Result<&[u8], MemFault> {
        let off = self.offset(addr, len, false)?;
        Ok(&self.bytes[off..off + len])
    }
}

/// Ascending set-bit positions of a bitmap (word-major, LSB-first).
fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(w, &word)| {
        std::iter::successors(Some(word), |&m| Some(m & m.wrapping_sub(1)))
            .take_while(|&m| m != 0)
            .map(move |m| w * 64 + m.trailing_zeros() as usize)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::with_image(4096, &[]);
        for (w, v) in [
            (1usize, 0xabu64),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            m.store(DATA_BASE + 128, w, v).unwrap();
            assert_eq!(m.load(DATA_BASE + 128, w).unwrap(), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::with_image(64, &[]);
        m.store(DATA_BASE, 4, 0x0403_0201).unwrap();
        assert_eq!(m.load(DATA_BASE, 1).unwrap(), 0x01);
        assert_eq!(m.load(DATA_BASE + 3, 1).unwrap(), 0x04);
    }

    #[test]
    fn faults_outside_mapped_range() {
        let mut m = Memory::with_image(64, &[]);
        assert!(m.load(DATA_BASE - 1, 1).is_err());
        assert!(m.load(DATA_BASE + 64, 1).is_err());
        assert!(m.load(DATA_BASE + 63, 2).is_err());
        assert!(m.load(0, 8).is_err());
        assert!(m.load(u64::MAX, 8).is_err(), "wrap-around guarded");
        assert!(m.store(DATA_BASE + 60, 8, 0).is_err());
        let f = m.store(0x10, 4, 1).unwrap_err();
        assert!(f.store);
    }

    #[test]
    fn stores_mark_dirty_pages() {
        let mut m = Memory::with_image(3 * PAGE_BYTES, &[]);
        assert!(m.dirty_pages().is_empty(), "fresh memory is clean");
        m.store(DATA_BASE + 10, 8, 1).unwrap();
        m.store(DATA_BASE + 2 * PAGE_BYTES as u64 + 5, 1, 2)
            .unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 2]);
        // A store straddling a page boundary dirties both pages.
        m.store(DATA_BASE + PAGE_BYTES as u64 - 4, 8, 3).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 1, 2]);
    }

    #[test]
    fn restore_pages_rewinds_to_snapshot() {
        let mut m = Memory::with_image(2 * PAGE_BYTES + 100, &[1, 2, 3]);
        let base = m.as_bytes().to_vec();
        m.store(DATA_BASE + 8, 8, 0xaaaa).unwrap();
        // Snapshot: page 0 modified.
        let snap_dirty = m.dirty_words().to_vec();
        let mut snap_pages = m.page_bytes(0).to_vec();
        snap_pages.resize(PAGE_BYTES, 0);
        let at_snapshot = m.as_bytes().to_vec();
        assert!(m.pages_match(&snap_dirty, &snap_pages, &base));
        // Diverge: touch the partial trailing page and overwrite page 0.
        m.store(DATA_BASE + 2 * PAGE_BYTES as u64 + 90, 8, 0xbbbb)
            .unwrap();
        m.store(DATA_BASE + 8, 8, 0xcccc).unwrap();
        assert!(!m.pages_match(&snap_dirty, &snap_pages, &base));
        m.restore_pages(&snap_dirty, &snap_pages, &base);
        assert_eq!(m.as_bytes(), &at_snapshot[..]);
        assert_eq!(m.dirty_pages(), vec![0]);
        assert!(m.pages_match(&snap_dirty, &snap_pages, &base));
    }

    #[test]
    fn image_loaded_at_base() {
        let m = Memory::with_image(64, &[9, 8, 7]);
        assert_eq!(m.load(DATA_BASE, 1).unwrap(), 9);
        assert_eq!(m.load(DATA_BASE + 2, 1).unwrap(), 7);
        assert_eq!(m.load(DATA_BASE + 3, 1).unwrap(), 0);
    }
}
