//! Cycle-level out-of-order core (the gem5 substitute).
//!
//! A 5-stage organization — fetch, dispatch/rename, issue (order-control
//! buffer), execute, commit — with ROB-based renaming, a bimodal branch
//! predictor, speculative wrong-path execution with squash on mispredict,
//! store-queue forwarding, a small direct-mapped data cache, and precise
//! exceptions at commit.
//!
//! Values are computed *in* the pipeline (execute-at-execute), so timing
//! error injection at FP writeback propagates architecturally exactly as in
//! the paper's microarchitecture-level methodology: corruptions on
//! wrong-path instructions are squashed (microarchitectural masking), and
//! corrupted committed values flow into dependent instructions, memory, and
//! control flow.

use crate::arch::{ArchState, ExitReason, FpEvent, RunResult, Trap};
use crate::mem::Memory;
use crate::sem;
use crate::sem::{write_kind, DestKind};
use serde::{Deserialize, Serialize};
use tei_isa::{FReg, Instr, Program, Reg, Syscall, DEFAULT_MEM_BYTES};
use tei_softfloat::FpuConfig;

/// Microarchitectural configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OooConfig {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Issue-queue (order control buffer) capacity.
    pub iq_entries: usize,
    /// Integer ALU units.
    pub alu_units: usize,
    /// L1 data-cache hit latency (cycles).
    pub mem_latency: u64,
    /// Data-cache miss latency (cycles).
    pub miss_latency: u64,
    /// Direct-mapped data-cache lines (64-byte lines).
    pub cache_lines: usize,
    /// Bimodal predictor entries.
    pub bp_entries: usize,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 64,
            iq_entries: 32,
            alu_units: 2,
            mem_latency: 3,
            miss_latency: 20,
            cache_lines: 256,
            bp_entries: 1024,
        }
    }
}

/// Execution latency of an instruction class (cycles), mirroring the
/// six-stage FPU of the paper's Figure 3.
fn latency(i: &Instr) -> u64 {
    use Instr::*;
    match i {
        Mul { .. } => 3,
        Div { .. } | Rem { .. } => 12,
        FaddD { .. } | FsubD { .. } | FaddS { .. } | FsubS { .. } => 6,
        FmulD { .. } | FmulS { .. } => 6,
        FdivD { .. } | FdivS { .. } => 20,
        FcvtDL { .. } | FcvtLD { .. } | FcvtSW { .. } | FcvtWS { .. } => 4,
        FmvD { .. }
        | FnegD { .. }
        | FabsD { .. }
        | FmvXD { .. }
        | FmvDX { .. }
        | FeqD { .. }
        | FltD { .. }
        | FleD { .. } => 2,
        _ => 1,
    }
}

fn is_fp_domain(i: &Instr) -> bool {
    use Instr::*;
    matches!(
        i,
        FaddD { .. }
            | FsubD { .. }
            | FmulD { .. }
            | FdivD { .. }
            | FaddS { .. }
            | FsubS { .. }
            | FmulS { .. }
            | FdivS { .. }
            | FcvtDL { .. }
            | FcvtLD { .. }
            | FcvtSW { .. }
            | FcvtWS { .. }
            | FmvD { .. }
            | FnegD { .. }
            | FabsD { .. }
            | FmvXD { .. }
            | FmvDX { .. }
            | FeqD { .. }
            | FltD { .. }
            | FleD { .. }
    )
}

fn is_unpipelined_fp(i: &Instr) -> bool {
    matches!(i, Instr::FdivD { .. } | Instr::FdivS { .. })
}

/// Source operand slots: integer rs1/rs2, FP fs1/fs2.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Src {
    /// Not used.
    None,
    /// Value available.
    Ready(u64),
    /// Waiting on a ROB slot.
    Rob(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    Dispatched,
    Executing,
    Done,
}

#[derive(Debug, Clone)]
struct BranchInfo {
    pred_next: usize,
}

#[derive(Debug, Clone)]
struct RobEntry {
    pc: usize,
    instr: Instr,
    stage: Stage,
    srcs: [Src; 2],
    /// Integer operand for FP conversions / fmv.d.x (third source slot).
    xsrc: Src,
    value: u64,
    exception: Option<Trap>,
    branch: Option<BranchInfo>,
    // Store state (filled at execute).
    store_addr: u64,
    store_width: usize,
    store_ready: bool,
    done_at: u64,
    /// Resolved next PC for control instructions.
    actual_next: Option<usize>,
    /// Speculative FP dynamic index (program order at dispatch).
    fp_index: Option<u64>,
    /// Saved rename-map entries for squash recovery.
    prev_map: Option<(DestKind, Option<usize>)>,
}

/// One FP writeback recorded on the golden timeline — what the injector
/// targets when it draws a random cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpTimelineEvent {
    /// Cycle of the FP unit writeback.
    pub cycle: u64,
    /// Speculative (dispatch-order) FP index.
    pub spec_index: u64,
    /// The operation.
    pub op: tei_softfloat::FpOp,
    /// Architectural FP index, `None` if the op was squashed (wrong path).
    pub arch_index: Option<u64>,
}

/// Run statistics of the detailed core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OooStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions squashed on mispredicts.
    pub squashed: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Data-cache misses.
    pub cache_misses: u64,
    /// Committed FP operations (the twelve modeled kinds).
    pub fp_committed: u64,
    /// FP writebacks that happened on the wrong path (squashed).
    pub fp_squashed: u64,
}

/// The detailed out-of-order core.
pub struct OooCore {
    cfg: OooConfig,
    text: Vec<Instr>,
    /// Committed architectural state.
    pub state: ArchState,
    /// Data memory (committed stores only).
    pub mem: Memory,
    /// Output stream.
    pub output: Vec<u8>,
    fpu_cfg: FpuConfig,

    rob: Vec<RobEntry>, // in-order queue, index 0 = oldest
    map_x: [Option<usize>; 32],
    map_f: [Option<usize>; 32],
    fetch_pc: usize,
    fetch_stalled: bool,
    seq: u64,
    cycle: u64,
    fp_dispatch_count: u64,
    fp_commit_count: u64,

    // Predictors.
    bimodal: Vec<u8>,
    jalr_targets: Vec<usize>,

    // FP divider occupancy (unpipelined).
    fpu_busy_until: u64,
    int_div_busy_until: u64,

    // Data cache tags (direct mapped, 64-byte lines).
    cache_tags: Vec<Option<u64>>,

    /// Per-run FP writeback timeline.
    pub fp_timeline: Vec<FpTimelineEvent>,
    /// Statistics.
    pub stats: OooStats,
    exit: Option<ExitReason>,
}

impl OooCore {
    /// Build a detailed core with the default memory size.
    pub fn new(program: &Program, cfg: OooConfig) -> Self {
        Self::with_memory(program, cfg, DEFAULT_MEM_BYTES as usize)
    }

    /// Build a detailed core with an explicit memory size.
    pub fn with_memory(program: &Program, cfg: OooConfig, mem_bytes: usize) -> Self {
        let stack_top = (tei_isa::DATA_BASE as usize + mem_bytes - 16) as u64;
        OooCore {
            text: program.text.clone(),
            state: ArchState::new(program.entry, stack_top),
            mem: Memory::with_image(mem_bytes, &program.data),
            output: Vec::new(),
            fpu_cfg: FpuConfig { ftz: true },
            rob: Vec::new(),
            map_x: [None; 32],
            map_f: [None; 32],
            fetch_pc: program.entry,
            fetch_stalled: false,
            seq: 0,
            cycle: 0,
            fp_dispatch_count: 0,
            fp_commit_count: 0,
            bimodal: vec![1; cfg.bp_entries], // weakly not-taken
            jalr_targets: vec![0; cfg.bp_entries],
            fpu_busy_until: 0,
            int_div_busy_until: 0,
            cache_tags: vec![None; cfg.cache_lines],
            fp_timeline: Vec::new(),
            stats: OooStats::default(),
            exit: None,
            cfg,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Run until termination or `max_cycles`, with an FP writeback hook.
    pub fn run_with_hook(
        &mut self,
        max_cycles: u64,
        fp_hook: &mut dyn FnMut(&FpEvent) -> u64,
    ) -> RunResult {
        while self.exit.is_none() && self.cycle < max_cycles {
            self.step_cycle(fp_hook);
        }
        let exit = self.exit.unwrap_or(ExitReason::Limit);
        self.stats.cycles = self.cycle;
        RunResult {
            exit,
            instructions: self.stats.committed,
            fp_ops: self.fp_commit_count,
        }
    }

    /// Run fault-free.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        self.run_with_hook(max_cycles, &mut |ev: &FpEvent| ev.result)
    }

    fn step_cycle(&mut self, fp_hook: &mut dyn FnMut(&FpEvent) -> u64) {
        self.commit();
        if self.exit.is_some() {
            return;
        }
        self.writeback(fp_hook);
        self.issue();
        self.fetch_dispatch();
        self.cycle += 1;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.first() else { return };
            if head.stage != Stage::Done {
                return;
            }
            let e = self.rob.remove(0);
            self.stats.committed += 1;
            // Precise exception.
            if let Some(trap) = e.exception {
                self.exit = Some(ExitReason::Trapped(trap));
                return;
            }
            // Serializing instructions act at commit.
            match e.instr {
                Instr::Ecall => {
                    if !self.do_syscall() {
                        return;
                    }
                    self.fetch_pc = e.pc + 1;
                    self.fetch_stalled = false;
                }
                Instr::Halt => {
                    self.exit = Some(ExitReason::Halted);
                    return;
                }
                _ => {}
            }
            // Stores write memory in order at commit.
            if e.store_ready {
                if let Err(f) = self.mem.store(e.store_addr, e.store_width, e.value) {
                    self.exit = Some(ExitReason::Trapped(f.into()));
                    return;
                }
                self.cache_fill(e.store_addr);
            }
            // Register writeback to committed state.
            match write_kind(&e.instr) {
                DestKind::Int(rd) => self.state.set_x(rd, e.value),
                DestKind::Fp(fd) => self.state.set_f(fd, e.value),
                DestKind::None => {}
            }
            if let Some(n) = e.actual_next {
                self.state.pc = n;
            }
            if let Some(spec) = e.fp_index {
                // Mark the timeline event architectural.
                if let Some(ev) = self
                    .fp_timeline
                    .iter_mut()
                    .rev()
                    .find(|t| t.spec_index == spec && t.arch_index.is_none())
                {
                    ev.arch_index = Some(self.fp_commit_count);
                }
                self.fp_commit_count += 1;
                self.stats.fp_committed += 1;
            }
            if e.actual_next.is_none() {
                self.state.pc = e.pc + 1;
            }
            // Clear rename entries that still point at this slot: all ROB
            // indices shift down by one after remove(0).
            for m in self.map_x.iter_mut().chain(self.map_f.iter_mut()) {
                *m = match *m {
                    Some(0) => None,
                    Some(n) => Some(n - 1),
                    None => None,
                };
            }
            // Source tags and rename-recovery snapshots also shift.
            for r in &mut self.rob {
                for s in r.srcs.iter_mut().chain(std::iter::once(&mut r.xsrc)) {
                    if let Src::Rob(n) = s {
                        debug_assert!(*n > 0, "dangling source tag");
                        *s = Src::Rob(*n - 1);
                    }
                }
                if let Some((_, Some(n))) = &mut r.prev_map {
                    if *n == 0 {
                        // The previous producer committed; restore to the
                        // architectural register file.
                        r.prev_map = r.prev_map.map(|(k, _)| (k, None));
                    } else {
                        *n -= 1;
                    }
                }
            }
        }
    }

    /// Returns false when the syscall ended the run.
    fn do_syscall(&mut self) -> bool {
        match Syscall::from_u64(self.state.x(Reg::A7)) {
            Some(Syscall::Exit) => {
                self.exit = Some(ExitReason::Exited(self.state.x(Reg::A0) as i64));
                false
            }
            Some(Syscall::PutByte) => {
                self.output.push(self.state.x(Reg::A0) as u8);
                true
            }
            Some(Syscall::PutInt) => {
                let v = self.state.x(Reg::A0) as i64;
                self.output.extend_from_slice(v.to_string().as_bytes());
                true
            }
            Some(Syscall::PutF64) => {
                let bits = self.state.f(FReg::F10);
                self.output.extend_from_slice(&bits.to_le_bytes());
                true
            }
            None => {
                self.exit = Some(ExitReason::Trapped(Trap::BadSyscall(self.state.x(Reg::A7))));
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback / branch resolution
    // ------------------------------------------------------------------

    fn writeback(&mut self, fp_hook: &mut dyn FnMut(&FpEvent) -> u64) {
        let mut squash_after: Option<(usize, usize)> = None; // (rob idx, redirect pc)
        for idx in 0..self.rob.len() {
            if self.rob[idx].stage != Stage::Executing || self.rob[idx].done_at > self.cycle {
                continue;
            }
            let instr = self.rob[idx].instr;
            // FP writeback hook (injection point). Trapping operations
            // never write back and are invisible to the injector.
            if let (Some(op), Some(spec), None) = (
                instr.fp_op(),
                self.rob[idx].fp_index,
                self.rob[idx].exception,
            ) {
                let (a, b) = fp_event_operands(&self.rob[idx], &instr);
                let ev = FpEvent {
                    index: spec,
                    op,
                    a,
                    b,
                    result: self.rob[idx].value,
                };
                self.fp_timeline.push(FpTimelineEvent {
                    cycle: self.cycle,
                    spec_index: spec,
                    op,
                    arch_index: None,
                });
                self.rob[idx].value = fp_hook(&ev);
                let _ = op;
            }
            self.rob[idx].stage = Stage::Done;
            // Branch resolution.
            if let (Some(b), Some(actual)) = (&self.rob[idx].branch, self.rob[idx].actual_next) {
                let pred = b.pred_next;
                self.train_predictor(&instr, self.rob[idx].pc, actual);
                if actual != pred && squash_after.is_none() {
                    squash_after = Some((idx, actual));
                }
            }
            // Wake up dependents.
            let v = self.rob[idx].value;
            for later in idx + 1..self.rob.len() {
                let r = &mut self.rob[later];
                for s in r.srcs.iter_mut().chain(std::iter::once(&mut r.xsrc)) {
                    if *s == Src::Rob(idx) {
                        *s = Src::Ready(v);
                    }
                }
            }
        }
        if let Some((idx, redirect)) = squash_after {
            self.squash_younger_than(idx, redirect);
        }
    }

    fn train_predictor(&mut self, i: &Instr, pc: usize, actual_next: usize) {
        let slot = pc % self.cfg.bp_entries;
        match i {
            Instr::Jalr { .. } => {
                self.jalr_targets[slot] = actual_next;
            }
            _ if i.is_control() => {
                let taken = actual_next != pc + 1;
                let c = &mut self.bimodal[slot];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
            _ => {}
        }
    }

    fn squash_younger_than(&mut self, idx: usize, redirect: usize) {
        self.stats.mispredicts += 1;
        let mut min_fp: Option<u64> = None;
        // Restore rename state newest-first.
        while self.rob.len() > idx + 1 {
            let e = self.rob.pop().expect("non-empty");
            self.stats.squashed += 1;
            if let Some((kind, prev)) = e.prev_map {
                match kind {
                    DestKind::Int(r) => self.map_x[r.num() as usize] = prev,
                    DestKind::Fp(r) => self.map_f[r.num() as usize] = prev,
                    DestKind::None => {}
                }
            }
            if let Some(fi) = e.fp_index {
                min_fp = Some(min_fp.map_or(fi, |m: u64| m.min(fi)));
                // Events already written back on the wrong path stay on the
                // timeline with arch_index = None (microarchitectural
                // masking); entries squashed before writeback logged nothing.
                if e.stage == Stage::Done {
                    self.stats.fp_squashed += 1;
                }
            }
        }
        if let Some(m) = min_fp {
            self.fp_dispatch_count = m;
        }
        self.fetch_pc = redirect;
        self.fetch_stalled = false;
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let mut issued = 0usize;
        let mut alu_used = 0usize;
        let mut mem_used = false;
        let mut fp_used = false;
        for idx in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.rob[idx].stage != Stage::Dispatched {
                continue;
            }
            if !self.ready(idx) {
                continue;
            }
            let instr = self.rob[idx].instr;
            // Structural hazards.
            if instr.is_mem() {
                if mem_used {
                    continue;
                }
            } else if is_fp_domain(&instr) {
                if fp_used || self.cycle < self.fpu_busy_until {
                    continue;
                }
            } else if matches!(instr, Instr::Div { .. } | Instr::Rem { .. }) {
                if self.cycle < self.int_div_busy_until {
                    continue;
                }
            } else if alu_used >= self.cfg.alu_units {
                continue;
            }
            // Memory ordering: loads wait for older stores' addresses.
            if is_load(&instr) && !self.older_stores_resolved(idx) {
                continue;
            }
            if self.execute(idx) {
                issued += 1;
                match () {
                    _ if instr.is_mem() => mem_used = true,
                    _ if is_fp_domain(&instr) => {
                        fp_used = true;
                        if is_unpipelined_fp(&instr) {
                            self.fpu_busy_until = self.cycle + latency(&instr);
                        }
                    }
                    _ if matches!(instr, Instr::Div { .. } | Instr::Rem { .. }) => {
                        self.int_div_busy_until = self.cycle + latency(&instr);
                    }
                    _ => alu_used += 1,
                }
            }
        }
    }

    fn ready(&self, idx: usize) -> bool {
        let e = &self.rob[idx];
        e.srcs
            .iter()
            .chain(std::iter::once(&e.xsrc))
            .all(|s| !matches!(s, Src::Rob(_)))
    }

    fn older_stores_resolved(&self, idx: usize) -> bool {
        self.rob[..idx]
            .iter()
            .all(|e| !is_store(&e.instr) || e.store_ready || e.exception.is_some())
    }

    fn src_val(s: Src) -> u64 {
        match s {
            Src::Ready(v) => v,
            Src::None => 0,
            Src::Rob(_) => unreachable!("issued with pending source"),
        }
    }

    /// Execute instruction at `idx`; returns false if it must retry later
    /// (store-to-load aliasing without exact forwarding).
    fn execute(&mut self, idx: usize) -> bool {
        use Instr::*;
        let instr = self.rob[idx].instr;
        let a = Self::src_val(self.rob[idx].srcs[0]);
        let b = Self::src_val(self.rob[idx].srcs[1]);
        let xa = Self::src_val(self.rob[idx].xsrc);
        let pc = self.rob[idx].pc;
        let mut lat = latency(&instr);
        let mut exception = None;
        let value = match instr {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Slt { .. }
            | Sltu { .. }
            | Mul { .. }
            | Div { .. }
            | Rem { .. } => sem::int_op(&instr, a, b),
            Addi { imm, .. } | Slti { imm, .. } => sem::int_op(&instr, a, imm as i64 as u64),
            Andi { imm, .. } | Ori { imm, .. } | Xori { imm, .. } => {
                sem::int_op(&instr, a, imm as u16 as u64)
            }
            Slli { .. } | Srli { .. } | Srai { .. } => sem::int_op(&instr, a, 0),
            Movhi { .. } => sem::int_op(&instr, 0, 0),
            Ld { off, .. }
            | Lw { off, .. }
            | Lwu { off, .. }
            | Lb { off, .. }
            | Lbu { off, .. }
            | Fld { off, .. }
            | Flw { off, .. } => {
                let addr = a.wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&instr);
                match self.load_with_forwarding(idx, addr, w) {
                    LoadOutcome::Value(raw, extra) => {
                        lat += extra;
                        sem::extend_load(&instr, raw)
                    }
                    LoadOutcome::Retry => return false,
                    LoadOutcome::Fault(f) => {
                        exception = Some(f.into());
                        0
                    }
                }
            }
            Sd { off, .. }
            | Sw { off, .. }
            | Sb { off, .. }
            | Fsd { off, .. }
            | Fsw { off, .. } => {
                let addr = a.wrapping_add(off as i64 as u64);
                let (w, _) = sem::mem_width(&instr);
                let e = &mut self.rob[idx];
                e.store_addr = addr;
                e.store_width = w;
                e.store_ready = true;
                b // store data travels in the value field
            }
            Beq { off, .. }
            | Bne { off, .. }
            | Blt { off, .. }
            | Bge { off, .. }
            | Bltu { off, .. }
            | Bgeu { off, .. } => {
                let taken = sem::branch_taken(&instr, a, b);
                let target = if taken {
                    pc.wrapping_add(off as i64 as usize)
                } else {
                    pc + 1
                };
                self.rob[idx].actual_next = Some(target);
                0
            }
            Jal { off, .. } => {
                self.rob[idx].actual_next = Some(pc.wrapping_add(off as i64 as usize));
                (pc + 1) as u64 // link value
            }
            Jalr { imm, .. } => {
                self.rob[idx].actual_next = Some(a.wrapping_add(imm as i64 as u64) as usize);
                (pc + 1) as u64 // link value
            }
            Ecall | Halt => 0,
            _ if is_fp_domain(&instr) => {
                let out = sem::fp_op(self.fpu_cfg, &instr, a, b, xa);
                if out.trap {
                    exception = Some(Trap::FpException);
                }
                out.bits
            }
            other => panic!("execute: unhandled {other}"),
        };
        let e = &mut self.rob[idx];
        e.value = value;
        e.exception = exception;
        e.stage = Stage::Executing;
        e.done_at = self.cycle + lat;
        true
    }

    fn load_with_forwarding(&mut self, idx: usize, addr: u64, width: usize) -> LoadOutcome {
        // Youngest older store overlapping this load.
        for e in self.rob[..idx].iter().rev() {
            if !is_store(&e.instr) || !e.store_ready {
                continue;
            }
            let (sa, sw) = (e.store_addr, e.store_width);
            let overlap = addr < sa.wrapping_add(sw as u64) && sa < addr.wrapping_add(width as u64);
            if !overlap {
                continue;
            }
            if sa == addr && sw == width {
                // Exact store-to-load forwarding (a microarchitectural
                // masking channel the paper calls out).
                return LoadOutcome::Value(e.value & width_mask(width), 0);
            }
            // Partial overlap: wait until the store commits.
            return LoadOutcome::Retry;
        }
        match self.mem.load(addr, width) {
            Ok(v) => {
                let extra = if self.cache_lookup(addr) {
                    0
                } else {
                    self.stats.cache_misses += 1;
                    self.cache_fill(addr);
                    self.cfg.miss_latency - self.cfg.mem_latency
                };
                LoadOutcome::Value(v, extra)
            }
            Err(f) => LoadOutcome::Fault(f),
        }
    }

    fn cache_index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> 6;
        ((line as usize) % self.cfg.cache_lines, line)
    }

    fn cache_lookup(&self, addr: u64) -> bool {
        let (i, t) = self.cache_index_tag(addr);
        self.cache_tags[i] == Some(t)
    }

    fn cache_fill(&mut self, addr: u64) {
        let (i, t) = self.cache_index_tag(addr);
        self.cache_tags[i] = Some(t);
    }

    // ------------------------------------------------------------------
    // Fetch / dispatch / rename
    // ------------------------------------------------------------------

    fn fetch_dispatch(&mut self) {
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_stalled || self.rob.len() >= self.cfg.rob_entries {
                return;
            }
            let in_iq = self
                .rob
                .iter()
                .filter(|e| e.stage == Stage::Dispatched)
                .count();
            if in_iq >= self.cfg.iq_entries {
                return;
            }
            let pc = self.fetch_pc;
            let Some(&instr) = self.text.get(pc) else {
                // Invalid PC becomes a trapping bubble that commits (or is
                // squashed if this fetch was down the wrong path).
                self.push_entry(pc, Instr::Halt, Some(Trap::BadPc(pc as u64)));
                self.fetch_stalled = true;
                return;
            };
            // Predict next PC.
            let slot = pc % self.cfg.bp_entries;
            let pred_next = match instr {
                Instr::Jal { off, .. } => pc.wrapping_add(off as i64 as usize),
                Instr::Jalr { .. } => {
                    let t = self.jalr_targets[slot];
                    if t == 0 {
                        pc + 1
                    } else {
                        t
                    }
                }
                ref i if i.is_control() => {
                    if self.bimodal[slot] >= 2 {
                        pc.wrapping_add(branch_offset(i) as usize)
                    } else {
                        pc + 1
                    }
                }
                _ => pc + 1,
            };
            self.push_entry(pc, instr, None);
            if matches!(instr, Instr::Ecall | Instr::Halt) {
                self.fetch_stalled = true;
                return;
            }
            if instr.is_control() {
                let last = self.rob.len() - 1;
                self.rob[last].branch = Some(BranchInfo { pred_next });
            }
            self.fetch_pc = pred_next;
            if instr.is_control() && pred_next != pc + 1 {
                // Taken-predicted control breaks the fetch group.
                return;
            }
        }
    }

    fn push_entry(&mut self, pc: usize, instr: Instr, exception: Option<Trap>) {
        let (srcs, xsrc) = self.rename_sources(&instr);
        let dest = write_kind(&instr);
        let prev = match dest {
            DestKind::Int(r) => Some((dest, self.map_x[r.num() as usize])),
            DestKind::Fp(r) => Some((dest, self.map_f[r.num() as usize])),
            DestKind::None => None,
        };
        let fp_index = instr.fp_op().map(|_| {
            let i = self.fp_dispatch_count;
            self.fp_dispatch_count += 1;
            i
        });
        let done = exception.is_some() || matches!(instr, Instr::Ecall | Instr::Halt);
        self.rob.push(RobEntry {
            pc,
            instr,
            stage: if done { Stage::Done } else { Stage::Dispatched },
            srcs,
            xsrc,
            value: 0,
            exception,
            branch: None,
            store_addr: 0,
            store_width: 0,
            store_ready: false,
            done_at: self.cycle,
            actual_next: None,
            fp_index,
            prev_map: prev,
        });
        self.seq += 1;
        let slot = self.rob.len() - 1;
        match dest {
            DestKind::Int(r) if r != Reg::ZERO => self.map_x[r.num() as usize] = Some(slot),
            DestKind::Fp(r) => self.map_f[r.num() as usize] = Some(slot),
            _ => {}
        }
    }

    fn read_x(&self, r: Reg) -> Src {
        if r == Reg::ZERO {
            return Src::Ready(0);
        }
        match self.map_x[r.num() as usize] {
            None => Src::Ready(self.state.x(r)),
            Some(slot) => {
                let e = &self.rob[slot];
                if e.stage == Stage::Done {
                    Src::Ready(e.value)
                } else {
                    Src::Rob(slot)
                }
            }
        }
    }

    fn read_f(&self, r: FReg) -> Src {
        match self.map_f[r.num() as usize] {
            None => Src::Ready(self.state.f(r)),
            Some(slot) => {
                let e = &self.rob[slot];
                if e.stage == Stage::Done {
                    Src::Ready(e.value)
                } else {
                    Src::Rob(slot)
                }
            }
        }
    }

    fn rename_sources(&self, i: &Instr) -> ([Src; 2], Src) {
        use Instr::*;
        match *i {
            Add { rs1, rs2, .. }
            | Sub { rs1, rs2, .. }
            | And { rs1, rs2, .. }
            | Or { rs1, rs2, .. }
            | Xor { rs1, rs2, .. }
            | Sll { rs1, rs2, .. }
            | Srl { rs1, rs2, .. }
            | Sra { rs1, rs2, .. }
            | Slt { rs1, rs2, .. }
            | Sltu { rs1, rs2, .. }
            | Mul { rs1, rs2, .. }
            | Div { rs1, rs2, .. }
            | Rem { rs1, rs2, .. } => ([self.read_x(rs1), self.read_x(rs2)], Src::None),
            Addi { rs1, .. }
            | Andi { rs1, .. }
            | Ori { rs1, .. }
            | Xori { rs1, .. }
            | Slti { rs1, .. }
            | Slli { rs1, .. }
            | Srli { rs1, .. }
            | Srai { rs1, .. }
            | Jalr { rs1, .. } => ([self.read_x(rs1), Src::None], Src::None),
            Movhi { .. } | Jal { .. } | Ecall | Halt => ([Src::None, Src::None], Src::None),
            Ld { rs1, .. }
            | Lw { rs1, .. }
            | Lwu { rs1, .. }
            | Lb { rs1, .. }
            | Lbu { rs1, .. }
            | Fld { rs1, .. }
            | Flw { rs1, .. } => ([self.read_x(rs1), Src::None], Src::None),
            Sd { rs1, rs2, .. } | Sw { rs1, rs2, .. } | Sb { rs1, rs2, .. } => {
                ([self.read_x(rs1), self.read_x(rs2)], Src::None)
            }
            Fsd { rs1, fs, .. } | Fsw { rs1, fs, .. } => {
                ([self.read_x(rs1), self.read_f(fs)], Src::None)
            }
            Beq { rs1, rs2, .. }
            | Bne { rs1, rs2, .. }
            | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. }
            | Bltu { rs1, rs2, .. }
            | Bgeu { rs1, rs2, .. } => ([self.read_x(rs1), self.read_x(rs2)], Src::None),
            FaddD { fs1, fs2, .. }
            | FsubD { fs1, fs2, .. }
            | FmulD { fs1, fs2, .. }
            | FdivD { fs1, fs2, .. }
            | FaddS { fs1, fs2, .. }
            | FsubS { fs1, fs2, .. }
            | FmulS { fs1, fs2, .. }
            | FdivS { fs1, fs2, .. }
            | FeqD { fs1, fs2, .. }
            | FltD { fs1, fs2, .. }
            | FleD { fs1, fs2, .. } => ([self.read_f(fs1), self.read_f(fs2)], Src::None),
            FcvtLD { fs1, .. }
            | FcvtWS { fs1, .. }
            | FmvD { fs1, .. }
            | FnegD { fs1, .. }
            | FabsD { fs1, .. }
            | FmvXD { fs1, .. } => ([self.read_f(fs1), Src::None], Src::None),
            FcvtDL { rs1, .. } | FcvtSW { rs1, .. } | FmvDX { rs1, .. } => {
                ([Src::None, Src::None], self.read_x(rs1))
            }
        }
    }
}

enum LoadOutcome {
    Value(u64, u64), // raw value, extra latency
    Retry,
    Fault(crate::mem::MemFault),
}

fn width_mask(w: usize) -> u64 {
    if w == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * w)) - 1
    }
}

fn is_store(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Sd { .. }
            | Instr::Sw { .. }
            | Instr::Sb { .. }
            | Instr::Fsd { .. }
            | Instr::Fsw { .. }
    )
}

fn is_load(i: &Instr) -> bool {
    i.is_mem() && !is_store(i)
}

fn branch_offset(i: &Instr) -> i64 {
    use Instr::*;
    match i {
        Beq { off, .. }
        | Bne { off, .. }
        | Blt { off, .. }
        | Bge { off, .. }
        | Bltu { off, .. }
        | Bgeu { off, .. } => *off as i64,
        _ => 0,
    }
}

/// Reconstruct the FP event operand pair from an executed ROB entry.
fn fp_event_operands(e: &RobEntry, i: &Instr) -> (u64, u64) {
    use Instr::*;
    let s0 = match e.srcs[0] {
        Src::Ready(v) => v,
        _ => 0,
    };
    let s1 = match e.srcs[1] {
        Src::Ready(v) => v,
        _ => 0,
    };
    let xa = match e.xsrc {
        Src::Ready(v) => v,
        _ => 0,
    };
    match i {
        FcvtDL { .. } | FcvtSW { .. } => (xa, 0),
        FcvtLD { .. } | FcvtWS { .. } => (s0, 0),
        FaddS { .. } | FsubS { .. } | FmulS { .. } | FdivS { .. } => {
            (s0 & 0xffff_ffff, s1 & 0xffff_ffff)
        }
        _ => (s0, s1),
    }
}
