//! Pure per-instruction semantics, shared by the functional and the
//! out-of-order cores so the two can never disagree on values.

use tei_isa::{FReg, Instr, Reg};
use tei_softfloat::{apply_op, Flags, FpOp, FpuConfig};

/// Destination register class of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestKind {
    /// No register destination.
    None,
    /// Integer register.
    Int(Reg),
    /// Floating-point register.
    Fp(FReg),
}

/// The destination register of `i`, if any (`x0` counts as none).
pub fn write_kind(i: &Instr) -> DestKind {
    use Instr::*;
    let d = match *i {
        Add { rd, .. }
        | Sub { rd, .. }
        | And { rd, .. }
        | Or { rd, .. }
        | Xor { rd, .. }
        | Sll { rd, .. }
        | Srl { rd, .. }
        | Sra { rd, .. }
        | Slt { rd, .. }
        | Sltu { rd, .. }
        | Mul { rd, .. }
        | Div { rd, .. }
        | Rem { rd, .. }
        | Addi { rd, .. }
        | Andi { rd, .. }
        | Ori { rd, .. }
        | Xori { rd, .. }
        | Slti { rd, .. }
        | Slli { rd, .. }
        | Srli { rd, .. }
        | Srai { rd, .. }
        | Movhi { rd, .. }
        | Ld { rd, .. }
        | Lw { rd, .. }
        | Lwu { rd, .. }
        | Lb { rd, .. }
        | Lbu { rd, .. }
        | Jal { rd, .. }
        | Jalr { rd, .. }
        | FcvtLD { rd, .. }
        | FcvtWS { rd, .. }
        | FmvXD { rd, .. }
        | FeqD { rd, .. }
        | FltD { rd, .. }
        | FleD { rd, .. } => DestKind::Int(rd),
        Fld { fd, .. }
        | Flw { fd, .. }
        | FaddD { fd, .. }
        | FsubD { fd, .. }
        | FmulD { fd, .. }
        | FdivD { fd, .. }
        | FaddS { fd, .. }
        | FsubS { fd, .. }
        | FmulS { fd, .. }
        | FdivS { fd, .. }
        | FcvtDL { fd, .. }
        | FcvtSW { fd, .. }
        | FmvD { fd, .. }
        | FnegD { fd, .. }
        | FabsD { fd, .. }
        | FmvDX { fd, .. } => DestKind::Fp(fd),
        Sd { .. }
        | Sw { .. }
        | Sb { .. }
        | Fsd { .. }
        | Fsw { .. }
        | Beq { .. }
        | Bne { .. }
        | Blt { .. }
        | Bge { .. }
        | Bltu { .. }
        | Bgeu { .. }
        | Ecall
        | Halt => DestKind::None,
    };
    match d {
        DestKind::Int(r) if r == Reg::ZERO => DestKind::None,
        other => other,
    }
}

/// Integer ALU semantics for register-register and immediate forms.
/// `a` is `rs1`; `b` is `rs2` or the already-extended immediate.
///
/// # Panics
///
/// Panics if called on a non-ALU instruction (programming error).
pub fn int_op(i: &Instr, a: u64, b: u64) -> u64 {
    use Instr::*;
    match i {
        Add { .. } | Addi { .. } => a.wrapping_add(b),
        Sub { .. } => a.wrapping_sub(b),
        And { .. } | Andi { .. } => a & b,
        Or { .. } | Ori { .. } => a | b,
        Xor { .. } | Xori { .. } => a ^ b,
        Sll { .. } => a.wrapping_shl((b & 63) as u32),
        Srl { .. } => a.wrapping_shr((b & 63) as u32),
        Sra { .. } => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Slli { shamt, .. } => a.wrapping_shl(*shamt as u32),
        Srli { shamt, .. } => a.wrapping_shr(*shamt as u32),
        Srai { shamt, .. } => ((a as i64).wrapping_shr(*shamt as u32)) as u64,
        Slt { .. } | Slti { .. } => ((a as i64) < (b as i64)) as u64,
        Sltu { .. } => (a < b) as u64,
        Mul { .. } => a.wrapping_mul(b),
        // RISC-V semantics: division by zero yields all-ones / dividend.
        Div { .. } => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        Rem { .. } => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        Movhi { imm, .. } => (*imm as u64) << 16,
        other => panic!("int_op on non-ALU instruction {other}"),
    }
}

/// Branch condition, given `rs1` and `rs2` values.
///
/// # Panics
///
/// Panics if called on a non-branch instruction.
pub fn branch_taken(i: &Instr, a: u64, b: u64) -> bool {
    use Instr::*;
    match i {
        Beq { .. } => a == b,
        Bne { .. } => a != b,
        Blt { .. } => (a as i64) < (b as i64),
        Bge { .. } => (a as i64) >= (b as i64),
        Bltu { .. } => a < b,
        Bgeu { .. } => a >= b,
        other => panic!("branch_taken on {other}"),
    }
}

/// Width in bytes and signedness of a load, or width of a store.
///
/// # Panics
///
/// Panics on non-memory instructions.
pub fn mem_width(i: &Instr) -> (usize, bool) {
    use Instr::*;
    match i {
        Ld { .. } | Sd { .. } | Fld { .. } | Fsd { .. } => (8, false),
        Lw { .. } => (4, true),
        Lwu { .. } | Sw { .. } | Flw { .. } | Fsw { .. } => (4, false),
        Lb { .. } => (1, true),
        Lbu { .. } | Sb { .. } => (1, false),
        other => panic!("mem_width on {other}"),
    }
}

/// Sign/zero-extend a loaded value per the load instruction.
pub fn extend_load(i: &Instr, raw: u64) -> u64 {
    let (w, signed) = mem_width(i);
    if !signed {
        return raw;
    }
    match w {
        4 => raw as u32 as i32 as i64 as u64,
        1 => raw as u8 as i8 as i64 as u64,
        _ => raw,
    }
}

/// Result of a floating-point-domain instruction.
#[derive(Debug, Clone, Copy)]
pub struct FpOutcome {
    /// Raw result bits (destination register value).
    pub bits: u64,
    /// The modeled FPU operation, if this was one of the twelve.
    pub modeled: Option<FpOp>,
    /// Raw operand bits as seen by the FPU (`a`, `b`).
    pub operands: (u64, u64),
    /// True if the operation raised invalid/div-by-zero (traps enabled).
    pub trap: bool,
}

/// Execute an FP-domain instruction (arithmetic, conversion, move,
/// compare). `fa`/`fb` are the FP source register bits; `xa` is the integer
/// source value (conversions and `fmv.d.x`).
///
/// # Panics
///
/// Panics on non-FP instructions.
pub fn fp_op(cfg: FpuConfig, i: &Instr, fa: u64, fb: u64, xa: u64) -> FpOutcome {
    use Instr::*;
    let mut flags = Flags::default();
    let modeled = i.fp_op();
    if let Some(op) = modeled {
        // Operand mapping: conversions take the integer or float operand
        // in `a`; binaries take (fa, fb). Single precision uses low bits.
        let (a, b) = match i {
            FcvtDL { .. } | FcvtSW { .. } => (xa, 0),
            FcvtLD { .. } | FcvtWS { .. } => (fa, 0),
            _ => (fa, fb),
        };
        let bits = apply_op(op, a, b, cfg, &mut flags);
        return FpOutcome {
            bits,
            modeled,
            operands: (a, b),
            trap: flags.invalid || flags.div_by_zero,
        };
    }
    let bits = match i {
        FmvD { .. } => fa,
        FnegD { .. } => fa ^ (1u64 << 63),
        FabsD { .. } => fa & !(1u64 << 63),
        FmvXD { .. } => fa,
        FmvDX { .. } => xa,
        FeqD { .. } => (f64::from_bits(fa) == f64::from_bits(fb)) as u64,
        FltD { .. } => (f64::from_bits(fa) < f64::from_bits(fb)) as u64,
        FleD { .. } => (f64::from_bits(fa) <= f64::from_bits(fb)) as u64,
        other => panic!("fp_op on {other}"),
    };
    FpOutcome {
        bits,
        modeled: None,
        operands: (fa, fb),
        trap: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_isa::{FReg, Reg};

    fn r3(f: fn(Reg, Reg, Reg) -> Instr) -> Instr {
        f(Reg::A0, Reg::A1, Reg::A2)
    }

    #[test]
    fn int_alu_semantics() {
        let add = r3(|rd, rs1, rs2| Instr::Add { rd, rs1, rs2 });
        assert_eq!(int_op(&add, 7, 9), 16);
        let sub = r3(|rd, rs1, rs2| Instr::Sub { rd, rs1, rs2 });
        assert_eq!(int_op(&sub, 3, 5) as i64, -2);
        let sra = r3(|rd, rs1, rs2| Instr::Sra { rd, rs1, rs2 });
        assert_eq!(int_op(&sra, (-8i64) as u64, 2) as i64, -2);
        let div = r3(|rd, rs1, rs2| Instr::Div { rd, rs1, rs2 });
        assert_eq!(int_op(&div, (-9i64) as u64, 2) as i64, -4);
        assert_eq!(int_op(&div, 5, 0), u64::MAX, "div by zero = all ones");
        let rem = r3(|rd, rs1, rs2| Instr::Rem { rd, rs1, rs2 });
        assert_eq!(int_op(&rem, 9, 0), 9, "rem by zero = dividend");
        let movhi = Instr::Movhi {
            rd: Reg::A0,
            imm: 0xabcd,
        };
        assert_eq!(int_op(&movhi, 0, 0), 0xabcd_0000);
    }

    #[test]
    fn branch_semantics() {
        let blt = Instr::Blt {
            rs1: Reg::A0,
            rs2: Reg::A1,
            off: 0,
        };
        assert!(branch_taken(&blt, (-1i64) as u64, 0));
        let bltu = Instr::Bltu {
            rs1: Reg::A0,
            rs2: Reg::A1,
            off: 0,
        };
        assert!(!branch_taken(&bltu, (-1i64) as u64, 0), "unsigned compare");
    }

    #[test]
    fn load_extension() {
        let lw = Instr::Lw {
            rd: Reg::A0,
            rs1: Reg::A1,
            off: 0,
        };
        assert_eq!(extend_load(&lw, 0x8000_0000) as i64, -(0x8000_0000i64));
        let lbu = Instr::Lbu {
            rd: Reg::A0,
            rs1: Reg::A1,
            off: 0,
        };
        assert_eq!(extend_load(&lbu, 0xff), 0xff);
    }

    #[test]
    fn fp_arith_and_traps() {
        let cfg = FpuConfig { ftz: true };
        let mul = Instr::FmulD {
            fd: FReg::F0,
            fs1: FReg::F1,
            fs2: FReg::F2,
        };
        let out = fp_op(cfg, &mul, 2.5f64.to_bits(), 4.0f64.to_bits(), 0);
        assert_eq!(f64::from_bits(out.bits), 10.0);
        assert!(out.modeled.is_some());
        assert!(!out.trap);
        // 0/0 raises invalid → trap.
        let div = Instr::FdivD {
            fd: FReg::F0,
            fs1: FReg::F1,
            fs2: FReg::F2,
        };
        let out = fp_op(cfg, &div, 0f64.to_bits(), 0f64.to_bits(), 0);
        assert!(out.trap);
        // Compares are unmodeled and never trap (quiet on NaN).
        let feq = Instr::FeqD {
            rd: Reg::A0,
            fs1: FReg::F1,
            fs2: FReg::F2,
        };
        let out = fp_op(cfg, &feq, f64::NAN.to_bits(), 1.0f64.to_bits(), 0);
        assert_eq!(out.bits, 0);
        assert!(out.modeled.is_none());
    }

    #[test]
    fn fp_moves_and_sign_ops() {
        let cfg = FpuConfig::default();
        let neg = Instr::FnegD {
            fd: FReg::F0,
            fs1: FReg::F1,
        };
        let out = fp_op(cfg, &neg, 3.0f64.to_bits(), 0, 0);
        assert_eq!(f64::from_bits(out.bits), -3.0);
        let abs = Instr::FabsD {
            fd: FReg::F0,
            fs1: FReg::F1,
        };
        let out = fp_op(cfg, &abs, (-3.0f64).to_bits(), 0, 0);
        assert_eq!(f64::from_bits(out.bits), 3.0);
        let mvdx = Instr::FmvDX {
            fd: FReg::F0,
            rs1: Reg::A0,
        };
        let out = fp_op(cfg, &mvdx, 0, 0, 0x1234);
        assert_eq!(out.bits, 0x1234);
    }
}
