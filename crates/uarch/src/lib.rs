//! # tei-uarch
//!
//! The microarchitecture substrate: a fast functional core and a detailed
//! cycle-level out-of-order core (the gem5 substitute) for the same ISA,
//! sharing one set of instruction semantics so they can never diverge.
//!
//! The detailed core exposes the paper's injection surface: a hook at every
//! FP-unit writeback (destination-register `ORd` values), a cycle-stamped
//! FP writeback timeline with wrong-path (squashed) markers, and precise
//! Crash/Timeout detection.
//!
//! ## Example
//!
//! ```
//! use tei_isa::{ProgramBuilder, Reg, FReg};
//! use tei_uarch::{FuncCore, ExitReason};
//!
//! let mut p = ProgramBuilder::new();
//! p.fli(FReg::F1, 1.5, Reg::T0);
//! p.fadd_d(FReg::F2, FReg::F1, FReg::F1);
//! p.halt();
//! let prog = p.finish();
//! let mut core = FuncCore::with_memory(&prog, 1 << 16);
//! let r = core.run(100);
//! assert_eq!(r.exit, ExitReason::Halted);
//! assert_eq!(f64::from_bits(core.state.f(FReg::F2)), 3.0);
//! ```

mod arch;
mod func;
mod mem;
mod ooo;
mod sem;
mod snapshot;

pub use arch::{ArchState, ExitReason, FpEvent, RunResult, Trap};
pub use func::FuncCore;
pub use mem::{MemFault, Memory, PAGE_BYTES};
pub use ooo::{FpTimelineEvent, OooConfig, OooCore, OooStats};
pub use sem::{write_kind, DestKind};
pub use snapshot::{
    CheckpointPool, CheckpointRecorder, InjectedExit, InjectedRun, Snapshot, StaleCoreError,
};
