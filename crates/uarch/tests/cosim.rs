//! Co-simulation: the detailed out-of-order core must produce exactly the
//! architectural results of the functional core on arbitrary programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_isa::{FReg, Program, ProgramBuilder, Reg, Syscall, DATA_BASE};
use tei_uarch::{ExitReason, FuncCore, OooConfig, OooCore};

/// Build a random but guaranteed-terminating program: a counted loop whose
/// body mixes ALU ops, FP arithmetic, scratch-memory traffic, and
/// data-dependent forward branches.
fn random_program(seed: u64, body_len: usize, iters: i64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = ProgramBuilder::new();
    let scratch = p.zeros(512);
    // Seed some FP data.
    let table: Vec<f64> = (0..8)
        .map(|_| f64::from_bits((1023u64 + rng.gen_range(0u64..4)) << 52 | rng.gen::<u64>() >> 12))
        .collect();
    let table_addr = p.doubles(&table);

    p.la(Reg::S0, scratch);
    p.la(Reg::S1, table_addr);
    for i in 0..6 {
        p.fld(FReg::new(i), (8 * i as i16) % 64, Reg::S1);
    }
    for r in [Reg::T0, Reg::T1, Reg::T2, Reg::T3] {
        p.li(r, rng.gen_range(-100..100));
    }
    p.li(Reg::S2, iters);
    let head = p.here();

    let int_regs = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4];
    let fp_regs: Vec<FReg> = (0..6).map(FReg::new).collect();
    let mut skip_targets: Vec<(usize, tei_isa::Label)> = Vec::new();
    for b in 0..body_len {
        // Close any due forward branches.
        skip_targets.retain(|(due, l)| {
            if *due <= b {
                p.bind(*l);
                false
            } else {
                true
            }
        });
        let rd = int_regs[rng.gen_range(0..int_regs.len())];
        let r1 = int_regs[rng.gen_range(0..int_regs.len())];
        let r2 = int_regs[rng.gen_range(0..int_regs.len())];
        let fd = fp_regs[rng.gen_range(0..fp_regs.len())];
        let f1 = fp_regs[rng.gen_range(0..fp_regs.len())];
        let f2 = fp_regs[rng.gen_range(0..fp_regs.len())];
        match rng.gen_range(0..14) {
            0 => p.add(rd, r1, r2),
            1 => p.sub(rd, r1, r2),
            2 => p.xor(rd, r1, r2),
            3 => p.mul(rd, r1, r2),
            4 => p.slli(rd, r1, rng.gen_range(0..8)),
            5 => p.fadd_d(fd, f1, f2),
            6 => p.fsub_d(fd, f1, f2),
            7 => p.fmul_d(fd, f1, f2),
            8 => {
                // Store then load through scratch (exercises forwarding).
                let off = (rng.gen_range(0..56) * 8) as i16;
                p.sd(r1, off, Reg::S0);
                p.ld(rd, off, Reg::S0);
            }
            9 => {
                let off = (rng.gen_range(0..56) * 8) as i16;
                p.fsd(f1, off, Reg::S0);
                p.fld(fd, off, Reg::S0);
            }
            10 => {
                // Data-dependent forward skip (mispredict source).
                let l = p.label();
                p.blt(r1, r2, l);
                skip_targets.push((b + 1 + rng.gen_range(0usize..3), l));
            }
            11 => p.fcvt_d_l(fd, r1),
            12 => p.fcvt_l_d(rd, f1),
            _ => p.andi(rd, r1, 0xff),
        }
    }
    for (_, l) in skip_targets {
        p.bind(l);
    }
    p.addi(Reg::S2, Reg::S2, -1);
    p.bne(Reg::S2, Reg::ZERO, head);
    // Emit observable state.
    for r in int_regs {
        p.mv(Reg::A0, r);
        p.syscall(Syscall::PutInt);
    }
    for f in &fp_regs {
        p.fmv_d(FReg::F10, *f);
        p.syscall(Syscall::PutF64);
    }
    p.halt();
    p.finish()
}

fn cosim(seed: u64) {
    let prog = random_program(seed, 40, 30);
    let mut func = FuncCore::with_memory(&prog, 1 << 20);
    let fr = func.run(2_000_000);
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 20);
    let or = ooo.run(20_000_000);
    assert_eq!(fr.exit, or.exit, "seed {seed}: exit reasons differ");
    assert_eq!(
        fr.instructions, or.instructions,
        "seed {seed}: committed instruction counts differ"
    );
    assert_eq!(fr.fp_ops, or.fp_ops, "seed {seed}: fp op counts differ");
    assert_eq!(func.output, ooo.output, "seed {seed}: outputs differ");
    // Full register-file comparison.
    for i in 0..32 {
        let r = Reg::new(i);
        assert_eq!(func.state.x(r), ooo.state.x(r), "seed {seed}: x{i}");
        let f = FReg::new(i);
        assert_eq!(func.state.f(f), ooo.state.f(f), "seed {seed}: f{i}");
    }
    // Scratch memory comparison.
    let a = func.mem.read_block(DATA_BASE, 512).unwrap();
    let b = ooo.mem.read_block(DATA_BASE, 512).unwrap();
    assert_eq!(a, b, "seed {seed}: memory differs");
}

#[test]
fn cosim_many_random_programs() {
    for seed in 0..25 {
        cosim(seed);
    }
}

#[test]
fn ooo_runs_faster_than_one_ipc_on_ilp_code() {
    // Independent ALU ops should dual-issue.
    let mut p = ProgramBuilder::new();
    p.li(Reg::S2, 200);
    let head = p.here();
    for _ in 0..8 {
        p.addi(Reg::T0, Reg::T0, 1);
        p.addi(Reg::T1, Reg::T1, 1);
    }
    p.addi(Reg::S2, Reg::S2, -1);
    p.bne(Reg::S2, Reg::ZERO, head);
    p.halt();
    let prog = p.finish();
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 16);
    let r = ooo.run(1_000_000);
    assert_eq!(r.exit, ExitReason::Halted);
    let ipc = r.instructions as f64 / ooo.stats.cycles as f64;
    assert!(ipc > 1.0, "expected dual-issue IPC, got {ipc:.2}");
}

#[test]
fn mispredicts_squash_and_recover() {
    // A data-dependent alternating branch drives mispredictions; results
    // must still match the functional core.
    let mut p = ProgramBuilder::new();
    p.li(Reg::S2, 500);
    p.li(Reg::T0, 0);
    p.li(Reg::T1, 0);
    let head = p.here();
    p.andi(Reg::T2, Reg::S2, 1);
    let odd = p.label();
    p.bne(Reg::T2, Reg::ZERO, odd);
    p.addi(Reg::T0, Reg::T0, 3);
    p.bind(odd);
    p.addi(Reg::T1, Reg::T1, 5);
    p.addi(Reg::S2, Reg::S2, -1);
    p.bne(Reg::S2, Reg::ZERO, head);
    p.halt();
    let prog = p.finish();

    let mut func = FuncCore::with_memory(&prog, 1 << 16);
    func.run(1_000_000);
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 16);
    let r = ooo.run(10_000_000);
    assert_eq!(r.exit, ExitReason::Halted);
    assert!(
        ooo.stats.mispredicts > 0,
        "alternating branch must mispredict"
    );
    assert!(ooo.stats.squashed > 0);
    assert_eq!(func.state.x(Reg::T0), ooo.state.x(Reg::T0));
    assert_eq!(func.state.x(Reg::T1), ooo.state.x(Reg::T1));
}

#[test]
fn fp_timeline_records_committed_ops_in_order() {
    let mut p = ProgramBuilder::new();
    p.fli(FReg::F1, 1.5, Reg::T0);
    p.fli(FReg::F2, 2.5, Reg::T0);
    for _ in 0..5 {
        p.fmul_d(FReg::F3, FReg::F1, FReg::F2);
        p.fadd_d(FReg::F1, FReg::F3, FReg::F2);
    }
    p.halt();
    let prog = p.finish();
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 16);
    let r = ooo.run(100_000);
    assert_eq!(r.exit, ExitReason::Halted);
    let committed: Vec<u64> = ooo
        .fp_timeline
        .iter()
        .filter_map(|e| e.arch_index)
        .collect();
    assert_eq!(committed.len(), 10);
    let mut sorted = committed.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "each arch index once");
    // Cycles are monotome per arch order after sorting by arch index.
    assert!(ooo.fp_timeline.iter().all(|e| e.cycle < ooo.stats.cycles));
}

#[test]
fn detailed_injection_corrupts_like_functional() {
    // Corrupt arch FP op #3 in both cores; architectural results match.
    let prog = random_program(77, 30, 10);
    let mask = 1u64 << 51;

    let mut func = FuncCore::with_memory(&prog, 1 << 20);
    func.run_with_hook(1_000_000, &mut |ev| {
        if ev.index == 3 {
            ev.result ^ mask
        } else {
            ev.result
        }
    });

    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 20);
    // In the detailed core, FP events carry speculative indices; on the
    // correct path they coincide with architectural indices.
    ooo.run_with_hook(20_000_000, &mut |ev| {
        if ev.index == 3 {
            ev.result ^ mask
        } else {
            ev.result
        }
    });
    assert_eq!(func.output, ooo.output, "corrupted runs must still agree");
}

#[test]
fn timeout_on_livelock() {
    let mut p = ProgramBuilder::new();
    let head = p.here();
    p.j(head);
    let prog = p.finish();
    let mut ooo = OooCore::with_memory(&prog, OooConfig::default(), 1 << 16);
    let r = ooo.run(5_000);
    assert_eq!(r.exit, ExitReason::Limit);
}

#[test]
fn cosim_across_microarchitectural_configs() {
    // The timing model must never change architectural results, whatever
    // the machine width, ROB size, or cache geometry.
    let configs = [
        OooConfig {
            fetch_width: 1,
            issue_width: 1,
            commit_width: 1,
            rob_entries: 8,
            iq_entries: 4,
            alu_units: 1,
            ..Default::default()
        },
        OooConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 128,
            iq_entries: 64,
            alu_units: 4,
            ..Default::default()
        },
        OooConfig {
            cache_lines: 2,
            miss_latency: 60,
            ..Default::default()
        },
        OooConfig {
            bp_entries: 1, // pathological aliasing: constant mispredicts
            ..Default::default()
        },
    ];
    for (ci, cfg) in configs.into_iter().enumerate() {
        for seed in [3u64, 14] {
            let prog = random_program(seed, 30, 20);
            let mut func = FuncCore::with_memory(&prog, 1 << 20);
            let fr = func.run(2_000_000);
            let mut ooo = OooCore::with_memory(&prog, cfg.clone(), 1 << 20);
            let or = ooo.run(50_000_000);
            assert_eq!(fr.exit, or.exit, "config {ci} seed {seed}");
            assert_eq!(func.output, ooo.output, "config {ci} seed {seed}");
            for i in 0..32 {
                assert_eq!(
                    func.state.x(Reg::new(i)),
                    ooo.state.x(Reg::new(i)),
                    "config {ci} seed {seed} x{i}"
                );
            }
        }
    }
}

#[test]
fn narrow_machine_is_slower_than_wide() {
    let prog = random_program(2, 40, 40);
    let narrow = OooConfig {
        fetch_width: 1,
        issue_width: 1,
        commit_width: 1,
        alu_units: 1,
        ..Default::default()
    };
    let mut a = OooCore::with_memory(&prog, narrow, 1 << 20);
    a.run(100_000_000);
    let mut b = OooCore::with_memory(&prog, OooConfig::default(), 1 << 20);
    b.run(100_000_000);
    assert!(
        a.stats.cycles > b.stats.cycles,
        "single-issue ({}) should be slower than dual-issue ({})",
        a.stats.cycles,
        b.stats.cycles
    );
}

#[test]
fn cache_miss_counting_responds_to_geometry() {
    let prog = random_program(8, 35, 30);
    let tiny = OooConfig {
        cache_lines: 2,
        ..Default::default()
    };
    let mut small = OooCore::with_memory(&prog, tiny, 1 << 20);
    small.run(100_000_000);
    let mut big = OooCore::with_memory(&prog, OooConfig::default(), 1 << 20);
    big.run(100_000_000);
    assert!(
        small.stats.cache_misses >= big.stats.cache_misses,
        "a 2-line cache cannot miss less than a 256-line one"
    );
    assert!(big.stats.cache_misses > 0, "cold misses exist");
}
