//! Phase-level timing of the window kernel (load vs settle) per lane
//! width — a scratch profiler for tuning, not a tracked artifact.

use std::time::Instant;
use tei_core::dev::random_operand_pairs;
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::ArrivalKernel;

fn profile<const W: usize>(unit: &FpuUnit, pairs: &[(u64, u64)]) {
    let compiled = unit.dta_compiled();
    let width = unit.input_width();
    let mut kernel = ArrivalKernel::<W>::default();
    let mut flat = vec![false; ArrivalKernel::<W>::WINDOW_VECTORS * width];
    let (mut t_enc, mut t_load, mut t_sel) = (0.0f64, 0.0f64, 0.0f64);
    let mut transitions = 0usize;
    let reps = 8;
    for _ in 0..reps {
        let mut start = 0usize;
        while start + 1 < pairs.len() {
            let count = (pairs.len() - start).min(ArrivalKernel::<W>::WINDOW_VECTORS);
            let t0 = Instant::now();
            for (v, &(a, b)) in pairs[start..start + count].iter().enumerate() {
                unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
            }
            let t1 = Instant::now();
            kernel.load_window(compiled, &flat[..count * width], count);
            let t2 = Instant::now();
            for t in 0..count - 1 {
                kernel.select_transition(compiled, t);
                criterion::black_box(&kernel);
            }
            let t3 = Instant::now();
            t_enc += (t1 - t0).as_secs_f64();
            t_load += (t2 - t1).as_secs_f64();
            t_sel += (t3 - t2).as_secs_f64();
            transitions += count - 1;
            start += count - 1;
        }
    }
    let total = t_enc + t_load + t_sel;
    println!(
        "W={W}: {:>7.0} pairs/s | encode {:>5.1}% load {:>5.1}% settle {:>5.1}% | \
         {:.2} us/transition",
        transitions as f64 / total,
        100.0 * t_enc / total,
        100.0 * t_load / total,
        100.0 * t_sel / total,
        1e6 * total / transitions as f64,
    );
}

fn toggle_density<const W: usize>(unit: &FpuUnit, pairs: &[(u64, u64)]) {
    let compiled = unit.dta_compiled();
    let width = unit.input_width();
    let n = unit.dta_netlist().len();
    let mut kernel = ArrivalKernel::<W>::default();
    let mut flat = vec![false; ArrivalKernel::<W>::WINDOW_VECTORS * width];
    let count = ArrivalKernel::<W>::WINDOW_VECTORS.min(pairs.len());
    for (v, &(a, b)) in pairs[..count].iter().enumerate() {
        unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
    }
    kernel.load_window(compiled, &flat[..count * width], count);
    let (per_t, unions) = kernel.toggle_profile();
    let mean = per_t.iter().sum::<usize>() as f64 / per_t.len() as f64;
    let union_mean = unions.iter().sum::<usize>() as f64 / unions.len() as f64;
    println!(
        "W={W}: mean toggles {:.1}% of nets per transition | batch union {:.1}% \
         ({:.2}x the per-transition set)",
        100.0 * mean / n as f64,
        100.0 * union_mean / n as f64,
        union_mean / mean,
    );
}

fn main() {
    let spec = FpuTimingSpec::paper_calibrated();
    let unit = FpuUnit::generate(FpOp::new(FpOpKind::Mul, Precision::Double), &spec);
    println!(
        "d-mul: {} nets, {} inputs",
        unit.dta_netlist().len(),
        unit.input_width()
    );
    let pairs = random_operand_pairs(unit.op(), 4096, 0xbe9c);

    // Toggle density: mean changed-net fraction per transition, and the
    // union over W-aligned batches (what the batched settle pass walks).
    toggle_density::<4>(&unit, &pairs);
    toggle_density::<8>(&unit, &pairs);

    profile::<1>(&unit, &pairs);
    profile::<4>(&unit, &pairs);
    profile::<8>(&unit, &pairs);
}
