//! DTA throughput: the interpreted `ArrivalSim` walk versus the
//! compiled `ArrivalKernel` at every supported lane width (W = 1/4/8
//! words, 64/256/512 vectors per window), plus a campaign
//! thread-scaling curve, all on the double-precision multiplier (the
//! unit that dominates model-development wall-clock). Under
//! `cargo bench` the measured pairs/sec are also written to
//! `BENCH_dta.json` at the workspace root so the perf trajectory is
//! tracked across PRs; under `cargo test` (quick smoke mode) nothing
//! is written.
//!
//! Setting `TEI_SCALING_SMOKE=1` additionally asserts that the
//! campaign at `TEI_THREADS` workers beats the single-thread campaign
//! by at least 1.3x (skipped, with a message, on machines with fewer
//! than two cores — the CI runners this smoke targets have more).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use tei_core::dev::{
    dta_campaign_tuned, dta_campaign_with_threads, dta_engine, random_operand_pairs, resolve_lanes,
    resolve_prune, safe_bit_counts, DtaTuning, KernelBackend, PrunePolicy, PRUNE_MIN_SAFE_FRACTION,
};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{ArrivalEngine, ArrivalKernel, ArrivalSim, TwoVectorResult, VoltageReduction};

const LEVELS: [VoltageReduction; 2] = [VoltageReduction::VR15, VoltageReduction::VR20];

/// Worker-thread counts of the campaign scaling curve.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Minimum parallel-over-serial campaign speedup the scaling smoke
/// (`TEI_SCALING_SMOKE=1`) demands at `TEI_THREADS` workers.
const SMOKE_MIN_SCALING: f64 = 1.3;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn dmul_unit() -> (FpuUnit, FpuTimingSpec) {
    let spec = FpuTimingSpec::paper_calibrated();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    (FpuUnit::generate(op, &spec), spec)
}

/// Repeat `run_batch` (which processes and reports some number of
/// pairs) over three independent windows of `min_secs` wall clock each
/// and return the best window's pairs/sec. On shared or virtualized
/// hosts, interference from neighbor tenants only ever *subtracts*
/// throughput, so the max across windows is the robust estimator of
/// the engine's real rate — a single long window folds every noise
/// burst into the mean and can even invert ablation comparisons.
fn pairs_per_sec(mut run_batch: impl FnMut() -> usize, min_secs: f64) -> f64 {
    let windows = if min_secs > 0.0 { 3 } else { 1 };
    let mut best = 0.0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut pairs = 0usize;
        let rate = loop {
            pairs += run_batch();
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= min_secs {
                break pairs as f64 / elapsed;
            }
        };
        best = best.max(rate);
    }
    best
}

/// The pre-kernel per-pair loop: interpreted netlist walk with a fresh
/// `Vec<bool>` encode per pair (what `dta_campaign` used to do).
fn sim_batch(unit: &FpuUnit, dta: &tei_netlist::Netlist, pairs: &[(u64, u64)]) -> usize {
    let mut buf = TwoVectorResult::default();
    let mut prev = unit.encode_inputs(pairs[0].0, pairs[0].1);
    for &(a, b) in &pairs[1..] {
        let cur = unit.encode_inputs(a, b);
        ArrivalSim::run_into(dta, &prev, &cur, &mut buf);
        criterion::black_box(buf.settle.first());
        prev = cur;
    }
    pairs.len() - 1
}

/// The compiled path at lane width `W`: cached SoA netlist,
/// allocation-free encode, bit-sliced windows of up to `W * 64` vectors
/// (the same inner loop the campaign chunks run).
fn kernel_batch<const W: usize>(unit: &FpuUnit, pairs: &[(u64, u64)]) -> usize {
    let compiled = unit.dta_compiled();
    let width = unit.input_width();
    let mut kernel = ArrivalKernel::<W>::default();
    let mut flat = vec![false; ArrivalKernel::<W>::WINDOW_VECTORS * width];
    let mut start = 0usize;
    while start + 1 < pairs.len() {
        let count = (pairs.len() - start).min(ArrivalKernel::<W>::WINDOW_VECTORS);
        for (v, &(a, b)) in pairs[start..start + count].iter().enumerate() {
            unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
        }
        kernel.load_window(compiled, &flat[..count * width], count);
        for t in 0..count - 1 {
            kernel.select_transition(compiled, t);
            criterion::black_box(&kernel);
        }
        start += count - 1;
    }
    pairs.len() - 1
}

/// One batch through an [`ArrivalEngine`] — the backend-ablation twin
/// of [`kernel_batch`], driving the interpreted or generated kernel
/// through the same windowed transition walk behind the engine trait.
fn engine_batch(
    engine: &mut dyn ArrivalEngine,
    unit: &FpuUnit,
    flat: &mut [bool],
    pairs: &[(u64, u64)],
) -> usize {
    let width = unit.input_width();
    let window_vectors = engine.window_vectors();
    let mut start = 0usize;
    while start + 1 < pairs.len() {
        let count = (pairs.len() - start).min(window_vectors);
        for (v, &(a, b)) in pairs[start..start + count].iter().enumerate() {
            unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
        }
        engine.load_window(&flat[..count * width], count);
        for t in 0..count - 1 {
            engine.select_transition(t);
            criterion::black_box(&engine);
        }
        start += count - 1;
    }
    pairs.len() - 1
}

/// Best-of-three pairs/sec of a backend at one lane width.
fn engine_rate(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    lanes: usize,
    backend: KernelBackend,
    min_secs: f64,
) -> f64 {
    let mut engine = dta_engine(unit, lanes, backend).expect("engine for ablation");
    let mut flat = vec![false; engine.window_vectors() * unit.input_width()];
    pairs_per_sec(
        || engine_batch(engine.as_mut(), unit, &mut flat, pairs),
        min_secs,
    )
}

fn campaign_rate(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    threads: usize,
    min_secs: f64,
) -> f64 {
    pairs_per_sec(
        || {
            criterion::black_box(
                dta_campaign_with_threads(unit, pairs, clk, &LEVELS, threads)
                    .expect("DTA campaign"),
            );
            pairs.len() - 1
        },
        min_secs,
    )
}

fn bench_dta_throughput(c: &mut Criterion) {
    let measured = bench_mode();
    let smoke = std::env::var("TEI_SCALING_SMOKE").is_ok_and(|v| v == "1");
    let (unit, spec) = dmul_unit();
    let n_pairs = if measured { 8192 } else { 32 };
    let min_secs = if measured { 1.0 } else { 0.0 };
    let pairs = random_operand_pairs(unit.op(), n_pairs, 0xbe9c);
    let dta = unit.dta_netlist();
    let cores = detected_cores();
    let campaign_tuning = DtaTuning::default();
    // What the default tuning actually resolves to on this host: the
    // lane auto-pick consults the engine that will run, and the prune
    // auto-decision consults the slack oracle's measured safe fraction.
    let fresh_kernel = tei_kernels::registry().covers(&unit);
    let campaign_lanes =
        resolve_lanes(campaign_tuning.lanes, campaign_tuning.backend, fresh_kernel);
    let prune_decision = resolve_prune(&unit, spec.clk, &LEVELS, campaign_tuning.prune);
    // An honest scaling curve never oversubscribes: thread counts above
    // the detected core count would only measure scheduler churn (and
    // on a 1-core box produce a spurious *declining* curve), so they
    // are dropped and the report is flagged as degraded instead.
    let scaling_threads: Vec<usize> = SCALING_THREADS
        .iter()
        .copied()
        .filter(|&t| t <= cores)
        .collect();
    let scaling_degraded = scaling_threads.len() < SCALING_THREADS.len();
    if scaling_degraded {
        println!(
            "dta_throughput: thread-scaling curve degraded to {scaling_threads:?} \
             ({cores} core(s) detected, requested {SCALING_THREADS:?})"
        );
    }

    // Criterion display: per-engine transition throughput.
    let mut group = c.benchmark_group("dta_throughput");
    group.throughput(Throughput::Elements((pairs.len() - 1) as u64));
    group.bench_function(BenchmarkId::from_parameter("arrival_sim"), |b| {
        b.iter(|| sim_batch(&unit, &dta, &pairs));
    });
    group.bench_function(BenchmarkId::from_parameter("arrival_kernel_w1"), |b| {
        b.iter(|| kernel_batch::<1>(&unit, &pairs));
    });
    group.bench_function(BenchmarkId::from_parameter("arrival_kernel_w4"), |b| {
        b.iter(|| kernel_batch::<4>(&unit, &pairs));
    });
    group.bench_function(BenchmarkId::from_parameter("arrival_kernel_w8"), |b| {
        b.iter(|| kernel_batch::<8>(&unit, &pairs));
    });
    for lanes in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("codegen_kernel_w", lanes), |b| {
            let mut engine =
                dta_engine(&unit, lanes, KernelBackend::Generated).expect("generated kernel");
            let mut flat = vec![false; engine.window_vectors() * unit.input_width()];
            b.iter(|| engine_batch(engine.as_mut(), &unit, &mut flat, &pairs));
        });
    }
    for threads in scaling_threads.iter().copied() {
        group.bench_function(BenchmarkId::new("campaign_threads", threads), |b| {
            b.iter(|| {
                dta_campaign_with_threads(&unit, &pairs, spec.clk, &LEVELS, threads)
                    .expect("DTA campaign")
            });
        });
    }
    group.bench_function(BenchmarkId::from_parameter("campaign_1_unpruned"), |b| {
        b.iter(|| {
            dta_campaign_tuned(
                &unit,
                &pairs,
                spec.clk,
                &LEVELS,
                1,
                DtaTuning {
                    prune: PrunePolicy::ForceOff,
                    ..campaign_tuning
                },
            )
            .expect("DTA campaign")
        });
    });
    group.finish();

    // Machine-readable summary (measured mode only, so `cargo test`
    // smoke runs never overwrite real numbers).
    let sim_rate = pairs_per_sec(|| sim_batch(&unit, &dta, &pairs), min_secs);
    let kernel_w1 = pairs_per_sec(|| kernel_batch::<1>(&unit, &pairs), min_secs);
    let kernel_w4 = pairs_per_sec(|| kernel_batch::<4>(&unit, &pairs), min_secs);
    let kernel_w8 = pairs_per_sec(|| kernel_batch::<8>(&unit, &pairs), min_secs);
    // Backend ablation: the generated straight-line kernel against the
    // interpreted kernel at every lane width, same windowed walk.
    let codegen_w1 = engine_rate(&unit, &pairs, 1, KernelBackend::Generated, min_secs);
    let codegen_w4 = engine_rate(&unit, &pairs, 4, KernelBackend::Generated, min_secs);
    let codegen_w8 = engine_rate(&unit, &pairs, 8, KernelBackend::Generated, min_secs);
    // Campaign scaling curve over the honest thread counts: each point
    // records the thread count it actually ran with.
    let scaling_curve: Vec<(usize, f64)> = scaling_threads
        .iter()
        .map(|&t| (t, campaign_rate(&unit, &pairs, spec.clk, t, min_secs)))
        .collect();
    // Pruning ablation: the same serial campaign with the slack-oracle
    // safe-bit pruning *forced* on and off (the default campaign runs
    // the auto decision recorded below, which refuses pruning when the
    // oracle proves too few bits safe to pay for the bookkeeping).
    let tuned_rate = |tuning: DtaTuning| {
        pairs_per_sec(
            || {
                criterion::black_box(
                    dta_campaign_tuned(&unit, &pairs, spec.clk, &LEVELS, 1, tuning)
                        .expect("DTA campaign"),
                );
                pairs.len() - 1
            },
            min_secs,
        )
    };
    let campaign_unpruned = tuned_rate(DtaTuning {
        prune: PrunePolicy::ForceOff,
        ..campaign_tuning
    });
    let campaign_pruned = tuned_rate(DtaTuning {
        prune: PrunePolicy::ForceOn,
        ..campaign_tuning
    });
    let speedup = kernel_w1 / sim_rate;
    let pruning_speedup = campaign_pruned / campaign_unpruned;
    let safe_bits = safe_bit_counts(&unit, spec.clk, &LEVELS);
    let codegen_best = codegen_w1.max(codegen_w4).max(codegen_w8);
    println!(
        "dta_throughput summary ({cores} cores): sim {sim_rate:.0} pairs/s, kernel w1 \
         {kernel_w1:.0} ({speedup:.1}x) / w4 {kernel_w4:.0} ({:.1}x) / w8 {kernel_w8:.0} \
         ({:.1}x of w1), codegen w1 {codegen_w1:.0} / w4 {codegen_w4:.0} ({:.2}x of interp \
         w4) / w8 {codegen_w8:.0}, campaign lanes={campaign_lanes} (auto={}) scaling {:?}, \
         forced-prune x1 {campaign_pruned:.0} vs unpruned {campaign_unpruned:.0} pairs/s \
         ({pruning_speedup:.2}x, safe bits {safe_bits:?}, auto prune {})",
        kernel_w4 / kernel_w1,
        kernel_w8 / kernel_w1,
        codegen_w4 / kernel_w4,
        campaign_tuning.lanes.is_none(),
        scaling_curve
            .iter()
            .map(|&(t, r)| format!("x{t}: {r:.0}"))
            .collect::<Vec<_>>(),
        if prune_decision.enabled { "on" } else { "off" },
    );
    if measured {
        let report = serde_json::json!({
            "bench": "dta_throughput",
            "unit": "d-mul",
            "transitions_per_batch": pairs.len() - 1,
            "vr_levels": LEVELS.len(),
            "detected_cores": cores,
            "arrival_sim_pairs_per_sec": sim_rate,
            "arrival_kernel_pairs_per_sec": kernel_w1,
            "kernel_speedup": speedup,
            "lanes": serde_json::json!({
                "w1_pairs_per_sec": kernel_w1,
                "w4_pairs_per_sec": kernel_w4,
                "w8_pairs_per_sec": kernel_w8,
                "w4_speedup_over_w1": kernel_w4 / kernel_w1,
                "w8_speedup_over_w1": kernel_w8 / kernel_w1,
            }),
            "codegen": serde_json::json!({
                "w1_pairs_per_sec": codegen_w1,
                "w4_pairs_per_sec": codegen_w4,
                "w8_pairs_per_sec": codegen_w8,
                "w1_speedup_over_interp_w1": codegen_w1 / kernel_w1,
                "w4_speedup_over_interp_w4": codegen_w4 / kernel_w4,
                "w8_speedup_over_interp_w8": codegen_w8 / kernel_w8,
                "best_speedup_over_interp_w4": codegen_best / kernel_w4,
            }),
            "campaign_lanes": campaign_lanes,
            "campaign_lanes_auto": campaign_tuning.lanes.is_none(),
            "campaign_backend": dta_engine(&unit, campaign_lanes, campaign_tuning.backend)
                .expect("campaign engine")
                .name(),
            "thread_scaling": scaling_curve
                .iter()
                .map(|&(t, r)| {
                    serde_json::json!({"threads": t, "pairs_per_sec": r})
                })
                .collect::<Vec<_>>(),
            "thread_scaling_requested": SCALING_THREADS.to_vec(),
            "thread_scaling_degraded": scaling_degraded,
            "pruning": serde_json::json!({
                "campaign_1_thread_pruned_pairs_per_sec": campaign_pruned,
                "campaign_1_thread_unpruned_pairs_per_sec": campaign_unpruned,
                "forced_pruning_speedup": pruning_speedup,
                "safe_bits_per_level": safe_bits,
                "safe_fraction": prune_decision.safe_fraction,
                "auto_threshold": PRUNE_MIN_SAFE_FRACTION,
                "auto_enabled": prune_decision.enabled,
            }),
        });
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dta.json");
        let text = serde_json::to_string_pretty(&report).expect("serialize bench report");
        tei_core::journal::atomic_write_checksummed(
            std::path::Path::new(path),
            (text + "\n").as_bytes(),
        )
        .expect("write BENCH_dta.json");
        println!("wrote {path}");
    }
    if smoke {
        let threads = tei_core::config::default_threads();
        if cores < 2 {
            println!(
                "TEI_SCALING_SMOKE: skipped — {cores} core(s) detected, \
                 parallel speedup is not measurable here"
            );
        } else {
            // Re-measure with a fixed floor so the smoke is meaningful
            // even in `cargo test` quick mode (min_secs = 0 there).
            let smoke_secs = min_secs.max(0.5);
            let serial = campaign_rate(&unit, &pairs, spec.clk, 1, smoke_secs);
            let parallel = campaign_rate(&unit, &pairs, spec.clk, threads, smoke_secs);
            let scaling = parallel / serial;
            println!(
                "TEI_SCALING_SMOKE: x1 {serial:.0} -> x{threads} {parallel:.0} pairs/s \
                 ({scaling:.2}x, floor {SMOKE_MIN_SCALING}x)"
            );
            assert!(
                scaling >= SMOKE_MIN_SCALING,
                "campaign scaling {scaling:.2}x at {threads} threads is below the \
                 {SMOKE_MIN_SCALING}x floor ({cores} cores detected)"
            );
        }
    }
}

criterion_group!(benches, bench_dta_throughput);
criterion_main!(benches);
