//! DTA throughput: the interpreted `ArrivalSim` walk versus the
//! compiled `ArrivalKernel`, and campaign scaling across worker
//! threads, all on the double-precision multiplier (the unit that
//! dominates model-development wall-clock). Under `cargo bench` the
//! measured pairs/sec are also written to `BENCH_dta.json` at the
//! workspace root so the perf trajectory is tracked across PRs; under
//! `cargo test` (quick smoke mode) nothing is written.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use tei_core::dev::{
    dta_campaign_tuned, dta_campaign_with_threads, random_operand_pairs, safe_bit_counts, DtaTuning,
};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{ArrivalKernel, ArrivalSim, TwoVectorResult, VoltageReduction, WINDOW_VECTORS};

const LEVELS: [VoltageReduction; 2] = [VoltageReduction::VR15, VoltageReduction::VR20];

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn dmul_unit() -> (FpuUnit, FpuTimingSpec) {
    let spec = FpuTimingSpec::paper_calibrated();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    (FpuUnit::generate(op, &spec), spec)
}

/// Repeat `run_batch` (which processes and reports some number of
/// pairs) until `min_secs` of wall clock accumulate; return pairs/sec.
fn pairs_per_sec(mut run_batch: impl FnMut() -> usize, min_secs: f64) -> f64 {
    let start = Instant::now();
    let mut pairs = 0usize;
    loop {
        pairs += run_batch();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return pairs as f64 / elapsed;
        }
    }
}

/// The pre-kernel per-pair loop: interpreted netlist walk with a fresh
/// `Vec<bool>` encode per pair (what `dta_campaign` used to do).
fn sim_batch(unit: &FpuUnit, dta: &tei_netlist::Netlist, pairs: &[(u64, u64)]) -> usize {
    let mut buf = TwoVectorResult::default();
    let mut prev = unit.encode_inputs(pairs[0].0, pairs[0].1);
    for &(a, b) in &pairs[1..] {
        let cur = unit.encode_inputs(a, b);
        ArrivalSim::run_into(dta, &prev, &cur, &mut buf);
        criterion::black_box(buf.settle.first());
        prev = cur;
    }
    pairs.len() - 1
}

/// The compiled path: cached SoA netlist, allocation-free encode,
/// bit-sliced windows of up to [`WINDOW_VECTORS`] vectors (the same
/// inner loop the campaign shards run).
fn kernel_batch(unit: &FpuUnit, pairs: &[(u64, u64)]) -> usize {
    let compiled = unit.dta_compiled();
    let width = unit.input_width();
    let mut kernel = ArrivalKernel::new();
    let mut flat = vec![false; WINDOW_VECTORS * width];
    let mut start = 0usize;
    while start + 1 < pairs.len() {
        let count = (pairs.len() - start).min(WINDOW_VECTORS);
        for (v, &(a, b)) in pairs[start..start + count].iter().enumerate() {
            unit.encode_inputs_into(a, b, &mut flat[v * width..(v + 1) * width]);
        }
        kernel.load_window(compiled, &flat[..count * width], count);
        for t in 0..count - 1 {
            kernel.select_transition(compiled, t);
            criterion::black_box(&kernel);
        }
        start += count - 1;
    }
    pairs.len() - 1
}

fn bench_dta_throughput(c: &mut Criterion) {
    let measured = bench_mode();
    let (unit, spec) = dmul_unit();
    let n_pairs = if measured { 2048 } else { 32 };
    let min_secs = if measured { 1.0 } else { 0.0 };
    let pairs = random_operand_pairs(unit.op(), n_pairs, 0xbe9c);
    let dta = unit.dta_netlist();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // Criterion display: per-engine transition throughput.
    let mut group = c.benchmark_group("dta_throughput");
    group.throughput(Throughput::Elements((pairs.len() - 1) as u64));
    group.bench_function(BenchmarkId::from_parameter("arrival_sim"), |b| {
        b.iter(|| sim_batch(&unit, &dta, &pairs));
    });
    group.bench_function(BenchmarkId::from_parameter("arrival_kernel"), |b| {
        b.iter(|| kernel_batch(&unit, &pairs));
    });
    group.bench_function(BenchmarkId::from_parameter("campaign_1_thread"), |b| {
        b.iter(|| dta_campaign_with_threads(&unit, &pairs, spec.clk, &LEVELS, 1));
    });
    group.bench_function(BenchmarkId::new("campaign_threads", threads), |b| {
        b.iter(|| dta_campaign_with_threads(&unit, &pairs, spec.clk, &LEVELS, threads));
    });
    group.bench_function(BenchmarkId::from_parameter("campaign_1_unpruned"), |b| {
        b.iter(|| {
            dta_campaign_tuned(
                &unit,
                &pairs,
                spec.clk,
                &LEVELS,
                1,
                DtaTuning {
                    prune_safe_bits: false,
                },
            )
        });
    });
    group.finish();

    // Machine-readable summary (measured mode only, so `cargo test`
    // smoke runs never overwrite real numbers).
    let sim_rate = pairs_per_sec(|| sim_batch(&unit, &dta, &pairs), min_secs);
    let kernel_rate = pairs_per_sec(|| kernel_batch(&unit, &pairs), min_secs);
    let campaign_1 = pairs_per_sec(
        || {
            criterion::black_box(dta_campaign_with_threads(
                &unit, &pairs, spec.clk, &LEVELS, 1,
            ));
            pairs.len() - 1
        },
        min_secs,
    );
    let campaign_n = pairs_per_sec(
        || {
            criterion::black_box(dta_campaign_with_threads(
                &unit, &pairs, spec.clk, &LEVELS, threads,
            ));
            pairs.len() - 1
        },
        min_secs,
    );
    // Pruning ablation: the same serial campaign with the slack-oracle
    // safe-bit pruning disabled (every output bit scanned per level).
    let campaign_unpruned = pairs_per_sec(
        || {
            criterion::black_box(dta_campaign_tuned(
                &unit,
                &pairs,
                spec.clk,
                &LEVELS,
                1,
                DtaTuning {
                    prune_safe_bits: false,
                },
            ));
            pairs.len() - 1
        },
        min_secs,
    );
    let speedup = kernel_rate / sim_rate;
    let scaling = campaign_n / campaign_1;
    let pruning_speedup = campaign_1 / campaign_unpruned;
    let safe_bits = safe_bit_counts(&unit, spec.clk, &LEVELS);
    println!(
        "dta_throughput summary: sim {sim_rate:.0} pairs/s, kernel {kernel_rate:.0} pairs/s \
         ({speedup:.1}x), campaign x1 {campaign_1:.0} -> x{threads} {campaign_n:.0} \
         pairs/s ({scaling:.1}x), unpruned x1 {campaign_unpruned:.0} pairs/s \
         (pruning {pruning_speedup:.2}x, safe bits {safe_bits:?})"
    );
    if measured {
        let report = serde_json::json!({
            "bench": "dta_throughput",
            "unit": "d-mul",
            "transitions_per_batch": pairs.len() - 1,
            "vr_levels": LEVELS.len(),
            "arrival_sim_pairs_per_sec": sim_rate,
            "arrival_kernel_pairs_per_sec": kernel_rate,
            "kernel_speedup": speedup,
            "campaign_threads": threads,
            "campaign_1_thread_pairs_per_sec": campaign_1,
            "campaign_n_thread_pairs_per_sec": campaign_n,
            "campaign_scaling": scaling,
            "pruning": serde_json::json!({
                "campaign_1_thread_unpruned_pairs_per_sec": campaign_unpruned,
                "pruning_speedup": pruning_speedup,
                "safe_bits_per_level": safe_bits,
            }),
        });
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dta.json");
        let text = serde_json::to_string_pretty(&report).expect("serialize bench report");
        tei_core::journal::atomic_write_checksummed(
            std::path::Path::new(path),
            (text + "\n").as_bytes(),
        )
        .expect("write BENCH_dta.json");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_dta_throughput);
criterion_main!(benches);
