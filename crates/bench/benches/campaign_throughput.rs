//! Injection-campaign throughput: the original replay-from-zero engine
//! versus checkpointed fork-replay (snapshot restore + early-convergence
//! cutoff) and the additional `(target, mask)` memoization layer, on a
//! long benchmark cell. All three engines are asserted to produce
//! byte-identical `OutcomeCounts` before anything is timed. Under
//! `cargo bench` the measured runs/sec are also written to
//! `BENCH_campaign.json` at the workspace root so the perf trajectory is
//! tracked across PRs; under `cargo test` (quick smoke mode) nothing is
//! written but the engines are still exercised and cross-checked.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion};
use std::time::Instant;
use tei_core::campaign::{self, CampaignConfig, GoldenRun, OutcomeCounts, ReplayMode};
use tei_core::DaModel;
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const MEM: usize = 8 << 20;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

const MODES: [(&str, ReplayMode); 3] = [
    ("from_zero", ReplayMode::FromZero),
    ("checkpointed", ReplayMode::Checkpointed { memoize: false }),
    ("memoized", ReplayMode::Checkpointed { memoize: true }),
];

fn cfg_for(runs: usize, mode: ReplayMode) -> CampaignConfig {
    CampaignConfig {
        runs,
        seed: 0xca3f_a16e,
        mode,
        ..Default::default()
    }
}

/// Repeat whole campaign cells until `min_secs` of wall clock accumulate;
/// return (runs/sec, the cell's outcome tally).
fn runs_per_sec(
    golden: &GoldenRun,
    model: &DaModel,
    runs: usize,
    mode: ReplayMode,
    min_secs: f64,
) -> (f64, OutcomeCounts) {
    let cfg = cfg_for(runs, mode);
    let start = Instant::now();
    let mut total = 0usize;
    let mut counts;
    loop {
        counts = campaign::run_campaign("bench", golden, model, &cfg).counts;
        total += runs;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return (total as f64 / elapsed, counts);
        }
    }
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let measured = bench_mode();
    // k-means is the long-benchmark showcase: high masking rate, so the
    // early-convergence cutoff retires most runs shortly after injection.
    let scale = if measured { Scale::Small } else { Scale::Test };
    let bench = build(BenchmarkId::Kmeans, scale);
    let golden = GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let runs = if measured { 200 } else { 12 };
    let min_secs = if measured { 2.0 } else { 0.0 };

    // Correctness gate first: every engine must agree run for run.
    let tallies: Vec<OutcomeCounts> = MODES
        .iter()
        .map(|&(_, mode)| {
            campaign::run_campaign("bench", &golden, &da, &cfg_for(runs, mode)).counts
        })
        .collect();
    for (name, t) in MODES.iter().map(|m| m.0).zip(&tallies) {
        assert_eq!(
            *t, tallies[0],
            "engine {name} diverged from replay-from-zero"
        );
        assert_eq!(t.total(), runs as u64);
        assert_eq!(t.mistargeted, 0);
    }

    // Criterion display: per-engine campaign-cell latency.
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    for (name, mode) in MODES {
        group.bench_function(CritId::from_parameter(name), |b| {
            b.iter(|| {
                criterion::black_box(campaign::run_campaign(
                    "bench",
                    &golden,
                    &da,
                    &cfg_for(runs, mode),
                ))
            });
        });
    }
    group.finish();

    // Machine-readable summary (measured mode only, so `cargo test`
    // smoke runs never overwrite real numbers).
    let rates: Vec<f64> = MODES
        .iter()
        .map(|&(_, mode)| runs_per_sec(&golden, &da, runs, mode, min_secs).0)
        .collect();
    let (zero, chk, memo) = (rates[0], rates[1], rates[2]);
    println!(
        "campaign_throughput summary ({} {scale:?}, {} instr, {} checkpoints @ {} FP ops): \
         from_zero {zero:.0} runs/s, checkpointed {chk:.0} runs/s ({:.1}x), \
         +memoization {memo:.0} runs/s ({:.1}x)",
        bench.id.name(),
        golden.instructions,
        golden.checkpoints.len(),
        golden.checkpoints.interval(),
        chk / zero,
        memo / zero,
    );
    if measured {
        let cfg = cfg_for(runs, ReplayMode::default());
        let report = serde_json::json!({
            "bench": "campaign_throughput",
            "benchmark": bench.id.name(),
            "scale": format!("{scale:?}"),
            "runs_per_cell": runs,
            "threads": cfg.threads,
            "golden_instructions": golden.instructions,
            "golden_fp_ops": golden.fp_ops,
            "checkpoints": golden.checkpoints.len(),
            "checkpoint_interval_fp_ops": golden.checkpoints.interval(),
            "checkpoint_pool_bytes": golden.checkpoints.footprint_bytes(),
            "from_zero_runs_per_sec": zero,
            "checkpointed_runs_per_sec": chk,
            "memoized_runs_per_sec": memo,
            "checkpointed_speedup": chk / zero,
            "memoized_speedup": memo / zero,
            "outcome_counts_identical": true,
        });
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
        let text = serde_json::to_string_pretty(&report).expect("serialize bench report");
        tei_core::journal::atomic_write_checksummed(
            std::path::Path::new(path),
            (text + "\n").as_bytes(),
        )
        .expect("write BENCH_campaign.json");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
