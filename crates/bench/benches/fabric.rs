//! Fabric worker-scaling benchmark: end-to-end wall-clock of the same
//! campaign (golden capture included — that is what a user pays) run by
//! the in-process serial runner and by 1/2/4-worker fleets, written to
//! `BENCH_fabric.json` at the workspace root.
//!
//! The numbers are **measured, never fabricated**: on a single-core
//! host a multi-process fleet cannot beat one process, so the report
//! carries an explicit `degraded` flag with the reason instead of a
//! made-up curve. The merged result of every fleet size is additionally
//! cross-checked byte-for-byte against the serial run, so the benchmark
//! doubles as a determinism smoke.
//!
//! This executable is its own worker fleet: when invoked with
//! `fabric-worker` as the first argument it runs the worker process
//! body and exits, so the benchmark needs no separately built binary.

use std::path::PathBuf;
use std::time::Instant;
use tei_core::campaign::{self, GoldenRun};
use tei_core::{run_fabric_campaign, CampaignSpec, DaModel, FabricConfig, TeiError};
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// The 2-worker scaling floor the fabric should clear on a multi-core
/// host (coordination + per-process golden capture eat the rest).
const TARGET_2W: f64 = 1.7;

/// Worker-process role: `fabric <bench args>` spawned us with
/// `fabric-worker --connect ... --token ... --index ... --journal-dir ...`.
fn worker_role(args: &[String]) -> ! {
    let mut connect: Option<String> = None;
    let mut token = 0u64;
    let mut index = 0u32;
    let mut journal_dir = PathBuf::from("journal");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().expect("worker flag value");
        match flag.as_str() {
            "--connect" => connect = Some(val()),
            "--token" => token = val().parse().expect("worker token"),
            "--index" => index = val().parse().expect("worker index"),
            "--journal-dir" => journal_dir = PathBuf::from(val()),
            other => panic!("unexpected worker flag {other:?}"),
        }
    }
    let addr = connect.expect("worker needs --connect");
    tei_core::shutdown::install_handlers();
    let code = match tei_core::fabric::worker_main(&addr, token, index, &journal_dir) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[bench worker {index}] {e}");
            1
        }
    };
    std::process::exit(code);
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tei-fabric-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn bench_spec(runs: u64) -> CampaignSpec {
    CampaignSpec {
        runs,
        seed: 1,
        ..CampaignSpec::new("sobel")
    }
}

/// Serial baseline: golden capture + durable single-process campaign,
/// the exact identity the fabric derives from [`bench_spec`].
fn serial_campaign(runs: u64) -> Result<(f64, String), TeiError> {
    let dir = scratch_dir("serial");
    let start = Instant::now();
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let golden = GoldenRun::capture(&bench, 8 << 20, u64::MAX)?;
    let model = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let cfg = campaign::CampaignConfig {
        runs: runs as usize,
        seed: 1,
        timeout_factor: 2.0,
        threads: 1,
        ..Default::default()
    };
    let result = campaign::run_campaign_durable("sobel", &golden, &model, &cfg, &dir)?;
    let secs = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();
    Ok((
        secs,
        serde_json::to_string(&result.counts).expect("serialize counts"),
    ))
}

fn fabric_campaign(runs: u64, workers: usize) -> Result<(f64, String), TeiError> {
    let dir = scratch_dir(&format!("w{workers}"));
    let exe = std::env::current_exe().map_err(|e| TeiError::Fabric {
        detail: format!("resolve bench executable: {e}"),
    })?;
    let mut cfg = FabricConfig::new(
        vec![exe.to_string_lossy().into_owned(), "fabric-worker".into()],
        dir.clone(),
    );
    cfg.workers = workers;
    let spec = bench_spec(runs);
    let start = Instant::now();
    let result = run_fabric_campaign(&spec, &cfg, &mut |_| {})?;
    let secs = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();
    Ok((
        secs,
        serde_json::to_string(&result.counts).expect("serialize counts"),
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fabric-worker") {
        worker_role(&args[1..]);
    }

    let runs: u64 = std::env::var("TEI_FABRIC_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("fabric scaling: {runs} runs of sobel (test scale), {cores} core(s)");

    let (serial_secs, serial_counts) = serial_campaign(runs).expect("serial baseline");
    println!("  serial (in-process, 1 thread): {serial_secs:.2}s");

    let mut curve: Vec<(usize, f64)> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let (secs, counts) = fabric_campaign(runs, workers).expect("fabric campaign");
        assert_eq!(
            counts, serial_counts,
            "{workers}-worker fabric diverged from the serial tally"
        );
        println!(
            "  fabric {workers} worker(s): {secs:.2}s ({:.0} runs/s, byte-identical)",
            runs as f64 / secs
        );
        curve.push((workers, secs));
    }

    let secs_of = |w: usize| {
        curve
            .iter()
            .find_map(|&(cw, s)| (cw == w).then_some(s))
            .expect("measured worker count")
    };
    let speedup_2w = secs_of(1) / secs_of(2);
    let degraded_reason = if cores < 2 {
        Some(format!(
            "host exposes {cores} core(s); multi-process scaling is not measurable here"
        ))
    } else if speedup_2w < TARGET_2W {
        Some(format!(
            "measured {speedup_2w:.2}x at 2 workers, below the {TARGET_2W}x floor"
        ))
    } else {
        None
    };
    println!(
        "  2-worker speedup: {speedup_2w:.2}x (target {TARGET_2W}x){}",
        degraded_reason
            .as_deref()
            .map(|r| format!(" — DEGRADED: {r}"))
            .unwrap_or_default()
    );

    let report = serde_json::json!({
        "schema": "tei-fabric-bench-v1",
        "host_cores": cores,
        "runs": runs,
        "benchmark": "sobel (test scale), fixed:1e-2, vr20",
        "serial_secs": serial_secs,
        "fabric": curve
            .iter()
            .map(|&(w, s)| serde_json::json!({
                "workers": w,
                "secs": s,
                "runs_per_sec": runs as f64 / s,
                "speedup_over_1_worker": secs_of(1) / s,
            }))
            .collect::<Vec<_>>(),
        "fabric_overhead_1w_vs_serial": secs_of(1) / serial_secs,
        "speedup_2w": speedup_2w,
        "target_2w": TARGET_2W,
        "degraded": degraded_reason.is_some(),
        "degraded_reason": degraded_reason,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    let text = serde_json::to_string_pretty(&report).expect("serialize bench report");
    tei_core::journal::atomic_write_checksummed(
        std::path::Path::new(path),
        (text + "\n").as_bytes(),
    )
    .expect("write BENCH_fabric.json");
    println!("wrote {path}");
}
