//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! timing-engine choice, bitmask sampling strategy, and injection replay
//! mode.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_core::{campaign, dev, models::MaskSampling, DaModel, InjectionModel, StatModel};
use tei_netlist::{CellLibrary, Netlist};
use tei_timing::{DeratingModel, DtaEngine, OperatingPoint, TimingEngine, VoltageReduction};
use tei_uarch::{FuncCore, OooConfig, OooCore};
use tei_workloads::{build, BenchmarkId, Scale};

/// Engine ablation: fast arrival vs exact event-driven DTA on the same
/// circuit and operand stream. The setup also cross-checks agreement on
/// final values (the engines may legitimately differ on glitch-only
/// errors).
fn bench_engine_ablation(c: &mut Criterion) {
    let mut nl = Netlist::new("dp16", CellLibrary::nangate45_like());
    let a = nl.add_input_bus("a", 16);
    let b = nl.add_input_bus("b", 16);
    let p = nl.array_multiplier(&a, &b);
    nl.mark_output_bus("p", &p);
    let sta = tei_timing::Sta::analyze(&nl);
    nl.scale_all_delays(4.2 / sta.max_delay());

    let arrival = DtaEngine::new(nl.clone(), TimingEngine::Arrival, DeratingModel::default());
    let event = DtaEngine::new(
        nl.clone(),
        TimingEngine::EventDriven,
        DeratingModel::default(),
    );
    let op = OperatingPoint {
        vdd: VoltageReduction::VR20.vdd(),
        clk: 4.5,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let vecs: Vec<Vec<bool>> = (0..32)
        .map(|_| (0..32).map(|_| rng.gen()).collect())
        .collect();
    // Sanity: golden outputs agree between engines.
    for w in vecs.windows(2) {
        let x = arrival.analyze(&w[0], &w[1], op);
        let y = event.analyze(&w[0], &w[1], op);
        assert_eq!(x.golden, y.golden, "engines disagree on settled values");
    }
    let mut group = c.benchmark_group("engine_ablation");
    group.bench_function("arrival", |bch| {
        bch.iter(|| {
            for w in vecs.windows(2) {
                criterion::black_box(arrival.analyze(&w[0], &w[1], op));
            }
        });
    });
    group.sample_size(10);
    group.bench_function("event_driven", |bch| {
        bch.iter(|| {
            for w in vecs.windows(2) {
                criterion::black_box(event.analyze(&w[0], &w[1], op));
            }
        });
    });
    group.finish();
}

/// Bitmask-sampling ablation: empirical mask library vs independent
/// per-bit draws. The setup prints the multi-bit share of each variant
/// (the quality difference behind the paper's Figure 5).
fn bench_mask_sampling(c: &mut Criterion) {
    let (bank, spec) = dev::default_bank();
    let op = tei_softfloat::FpOp::new(
        tei_softfloat::FpOpKind::Mul,
        tei_softfloat::Precision::Double,
    );
    let ia = StatModel::instruction_aware(&bank, &spec, VoltageReduction::VR20, 4000, 9).unwrap();
    if ia.error_ratio(op) == 0.0 {
        eprintln!("[ablation] skipping mask sampling: no d-mul errors at this calibration");
        return;
    }
    let empirical = ia.clone().with_sampling(MaskSampling::Empirical);
    let independent = ia.with_sampling(MaskSampling::IndependentBits);
    let mut rng = StdRng::seed_from_u64(2);
    let share = |m: &StatModel, rng: &mut StdRng| {
        let n = 2000;
        let multi = (0..n)
            .filter(|_| m.sample_mask(op, rng).count_ones() >= 2)
            .count();
        multi as f64 / n as f64
    };
    eprintln!(
        "[ablation] multi-bit mask share: empirical {:.1}%, independent-bit {:.1}%",
        100.0 * share(&empirical, &mut rng),
        100.0 * share(&independent, &mut rng)
    );
    let mut group = c.benchmark_group("mask_sampling");
    group.bench_function("empirical", |b| {
        b.iter(|| empirical.sample_mask(op, &mut rng));
    });
    group.bench_function("independent_bits", |b| {
        b.iter(|| independent.sample_mask(op, &mut rng));
    });
    group.finish();
}

/// Injection-mode ablation: fast functional replay vs full detailed-core
/// injection for a single corrupted run (the campaign's dominant cost).
fn bench_injection_mode(c: &mut Criterion) {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let mem = 8 << 20;
    let mask = 1u64 << 45;
    let target = 100u64;
    let mut group = c.benchmark_group("injection_mode");
    group.sample_size(10);
    group.bench_function("functional_replay", |b| {
        b.iter(|| {
            let mut core = FuncCore::with_memory(&bench.program, mem);
            core.run_with_hook(u64::MAX, &mut |ev| {
                if ev.index == target {
                    ev.result ^ mask
                } else {
                    ev.result
                }
            })
        });
    });
    group.bench_function("detailed_pipeline", |b| {
        b.iter(|| {
            let mut core = OooCore::with_memory(&bench.program, OooConfig::default(), mem);
            core.run_with_hook(u64::MAX, &mut |ev| {
                if ev.index == target {
                    ev.result ^ mask
                } else {
                    ev.result
                }
            })
        });
    });
    group.finish();
}

/// End-to-end campaign-cell cost (DA model, small run count).
fn bench_campaign_cell(c: &mut Criterion) {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let golden = campaign::GoldenRun::capture(&bench, 8 << 20, u64::MAX).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let cfg = campaign::CampaignConfig {
        runs: 20,
        ..Default::default()
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("da_20_runs_sobel_test", |b| {
        b.iter(|| campaign::run_campaign("sobel", &golden, &da, &cfg));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_ablation,
    bench_mask_sampling,
    bench_injection_mode,
    bench_campaign_cell
);
criterion_main!(benches);
