//! Performance benchmarks of the toolflow's hot paths: gate-level timing
//! simulation, model-development DTA, and the two simulator cores.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{ArrivalSim, EventSim, FanoutTable, TwoVectorResult, VoltageReduction};
use tei_uarch::{FuncCore, OooConfig, OooCore};
use tei_workloads::{build, BenchmarkId, Scale};

fn rand_f64(rng: &mut StdRng) -> u64 {
    let s = (rng.gen::<bool>() as u64) << 63;
    let e = rng.gen_range(950u64..1150) << 52;
    s | e | (rng.gen::<u64>() & ((1 << 52) - 1))
}

/// Arrival-engine DTA throughput on the big double-precision units.
fn bench_arrival_dta(c: &mut Criterion) {
    let spec = FpuTimingSpec::paper_calibrated();
    let mut group = c.benchmark_group("arrival_dta");
    for kind in [FpOpKind::Mul, FpOpKind::Add] {
        let op = FpOp::new(kind, Precision::Double);
        let unit = FpuUnit::generate(op, &spec);
        let dta = unit.dta_netlist();
        let mut rng = StdRng::seed_from_u64(1);
        let prev = unit.encode_inputs(rand_f64(&mut rng), rand_f64(&mut rng));
        let cur = unit.encode_inputs(rand_f64(&mut rng), rand_f64(&mut rng));
        let mut buf = TwoVectorResult::default();
        group.throughput(Throughput::Elements(1));
        group.bench_function(CritId::from_parameter(op.to_string()), |b| {
            b.iter(|| {
                ArrivalSim::run_into(&dta, &prev, &cur, &mut buf);
                buf.max_settle(unit.result_port())
            });
        });
    }
    group.finish();
}

/// Exact event-driven engine on a small datapath (the reference engine).
fn bench_event_engine(c: &mut Criterion) {
    use tei_netlist::{CellLibrary, Netlist};
    let mut nl = Netlist::new("adder32", CellLibrary::nangate45_like());
    let a = nl.add_input_bus("a", 32);
    let b = nl.add_input_bus("b", 32);
    let zero = nl.const_bit(false);
    let (sum, _) = nl.ripple_add(&a, &b, zero);
    nl.mark_output_bus("sum", &sum);
    let fo = FanoutTable::build(&nl);
    let delays = EventSim::derated_delays(&nl, VoltageReduction::VR20.derating_factor());
    let prev: Vec<bool> = vec![false; 64];
    let cur: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    c.bench_function("event_sim_adder32", |bch| {
        bch.iter(|| EventSim::run(&nl, &fo, &prev, &cur, &delays, 4.5));
    });
}

/// Functional-core simulation speed (instructions/second).
fn bench_functional_core(c: &mut Criterion) {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let mut core = FuncCore::with_memory(&bench.program, 8 << 20);
    let total = core.run(u64::MAX).instructions;
    let mut group = c.benchmark_group("simulators");
    group.throughput(Throughput::Elements(total));
    group.bench_function("functional_sobel_test", |b| {
        b.iter(|| {
            let mut core = FuncCore::with_memory(&bench.program, 8 << 20);
            core.run(u64::MAX)
        });
    });
    group.finish();
}

/// Detailed out-of-order core speed (cycles/second).
fn bench_ooo_core(c: &mut Criterion) {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let mut probe = OooCore::with_memory(&bench.program, OooConfig::default(), 8 << 20);
    probe.run(u64::MAX);
    let cycles = probe.stats.cycles;
    let mut group = c.benchmark_group("simulators");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("ooo_sobel_test", |b| {
        b.iter(|| {
            let mut core = OooCore::with_memory(&bench.program, OooConfig::default(), 8 << 20);
            core.run(u64::MAX)
        });
    });
    group.finish();
}

/// FPU unit generation + calibration cost.
fn bench_unit_generation(c: &mut Criterion) {
    let spec = FpuTimingSpec::paper_calibrated();
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("generate_fp_add_d", |b| {
        b.iter(|| FpuUnit::generate(FpOp::new(FpOpKind::Add, Precision::Double), &spec));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arrival_dta,
    bench_event_engine,
    bench_functional_core,
    bench_ooo_core,
    bench_unit_generation
);
criterion_main!(benches);
