//! Process-level fabric tests over the real `tei` binary: a 2-worker
//! campaign with a chaos SIGKILL mid-lease must reassign the dead
//! worker's leases and still merge to the exact serial result, and a
//! `tei serve` + `tei submit` round trip must stream that same result
//! (twice — the second submission answers from the journals without
//! re-executing). These are the CI smoke tests of DESIGN.md's
//! "Campaign fabric" section.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use tei_core::campaign::{self, GoldenRun};
use tei_core::{CampaignResult, DaModel};
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const RUNS: usize = 64;

fn tei_bin() -> &'static str {
    env!("CARGO_BIN_EXE_tei")
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tei-fabric-cli-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The serial ground truth, computed in-process with the exact campaign
/// identity the fabric derives from the same spec flags (throttle and
/// worker count are excluded from the manifest, so they cannot matter).
fn reference_json() -> &'static str {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = scratch_dir("ref");
        let bench = build(BenchmarkId::Sobel, Scale::Test);
        let golden = GoldenRun::capture(&bench, 8 << 20, u64::MAX).expect("golden run");
        let model = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
        let cfg = campaign::CampaignConfig {
            runs: RUNS,
            seed: 1,
            timeout_factor: 2.0,
            threads: 1,
            ..Default::default()
        };
        let result = campaign::run_campaign_durable("sobel", &golden, &model, &cfg, &dir)
            .expect("serial reference campaign");
        std::fs::remove_dir_all(&dir).ok();
        serde_json::to_string(&result).expect("serialize reference")
    })
}

/// Parse a result artifact and re-serialize it compactly so byte
/// comparison ignores the pretty-printing of the file format.
fn read_result(path: &Path) -> String {
    let body = std::fs::read_to_string(path).expect("result artifact");
    let parsed: CampaignResult = serde_json::from_str(&body).expect("parse result artifact");
    serde_json::to_string(&parsed).expect("re-serialize result")
}

#[test]
fn two_worker_campaign_with_chaos_kill_matches_serial() {
    let dir = scratch_dir("chaos");
    let out = dir.join("fabric.json");
    // Throttle each run so leases take long enough (~8 runs × 25 ms)
    // that the 200 ms chaos tick reliably catches worker 0 mid-lease.
    let output = Command::new(tei_bin())
        .args([
            "campaign",
            "--benchmark",
            "sobel",
            "--runs",
            "64",
            "--seed",
            "1",
            "--workers",
            "2",
            "--throttle-ms",
            "25",
            "--chaos-kill-worker",
            "0:1",
            "--journal-dir",
        ])
        .arg(dir.join("journal"))
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run tei campaign");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "tei campaign failed:\n{stderr}");
    assert!(
        stderr.contains("chaos: killed worker 0"),
        "chaos hook did not fire:\n{stderr}"
    );
    assert!(
        stderr.contains("worker 0 died"),
        "worker death went undetected:\n{stderr}"
    );
    assert_eq!(
        read_result(&out),
        reference_json(),
        "kill-and-reassign changed the merged result"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_submit_round_trip_matches_serial() {
    let dir = scratch_dir("serve");
    let mut serve = Command::new(tei_bin())
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
        .arg("--journal-dir")
        .arg(dir.join("journal"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tei serve");
    let stderr = serve.stderr.take().expect("serve stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("[fabric] serving on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address on the serving line")
                .to_string();
        }
    };
    // Keep draining stderr so the server never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines {});

    let submit = |out: &Path| {
        Command::new(tei_bin())
            .args([
                "submit",
                "--connect",
                &addr,
                "--benchmark",
                "sobel",
                "--runs",
                "64",
                "--seed",
                "1",
                "--out",
            ])
            .arg(out)
            .output()
            .expect("run tei submit")
    };

    let first_out = dir.join("first.json");
    let first = submit(&first_out);
    let first_err = String::from_utf8_lossy(&first.stderr);
    assert!(first.status.success(), "tei submit failed:\n{first_err}");
    assert!(
        first_err.contains("accepted as campaign"),
        "no acceptance streamed:\n{first_err}"
    );
    assert_eq!(
        read_result(&first_out),
        reference_json(),
        "served campaign diverged from the serial reference"
    );

    // Same spec again: every run is journaled, so the server must answer
    // from the merge without re-executing anything.
    let again_out = dir.join("again.json");
    let again = submit(&again_out);
    assert!(
        again.status.success(),
        "re-submit failed:\n{}",
        String::from_utf8_lossy(&again.stderr)
    );
    assert_eq!(
        read_result(&again_out),
        reference_json(),
        "replayed submission diverged"
    );

    serve.kill().ok();
    serve.wait().ok();
    drain.join().ok();
    std::fs::remove_dir_all(&dir).ok();
}
