//! Shared, lazily-built experiment artifacts: the calibrated FPU bank,
//! per-benchmark golden runs and operand traces, and the error models.

use std::collections::BTreeMap;
use std::sync::Mutex;
use tei_core::{campaign::GoldenRun, dev, DaCalibration, DaModel, StatModel, TeiError};
use tei_fpu::{FpuBank, FpuTimingSpec};
use tei_timing::VoltageReduction;
use tei_workloads::{build, Benchmark, BenchmarkId, Scale};

/// Data-memory size for benchmark simulations.
pub const MEM: usize = 8 << 20;

/// The two studied corners.
pub const LEVELS: [VoltageReduction; 2] = [VoltageReduction::VR15, VoltageReduction::VR20];

/// Lazily-built shared artifacts for the experiment harness.
pub struct Artifacts {
    scale: Scale,
    bank: (FpuBank, FpuTimingSpec),
    benches: Mutex<BTreeMap<BenchmarkId, Benchmark>>,
    goldens: Mutex<BTreeMap<BenchmarkId, GoldenRun>>,
    traces: Mutex<BTreeMap<BenchmarkId, dev::TraceSet>>,
    ia: Mutex<BTreeMap<String, StatModel>>,
    wa: Mutex<BTreeMap<(BenchmarkId, String), StatModel>>,
    da_cal: Mutex<Option<DaCalibration>>,
}

impl Artifacts {
    /// Build (generating the FPU bank eagerly — everything else lazily).
    pub fn new(scale: Scale) -> Self {
        eprintln!("[artifacts] generating calibrated FPU bank ...");
        Artifacts {
            scale,
            bank: dev::default_bank(),
            benches: Mutex::new(BTreeMap::new()),
            goldens: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(BTreeMap::new()),
            ia: Mutex::new(BTreeMap::new()),
            wa: Mutex::new(BTreeMap::new()),
            da_cal: Mutex::new(None),
        }
    }

    /// Benchmark problem scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The calibrated FPU bank and timing spec.
    pub fn bank(&self) -> (&FpuBank, &FpuTimingSpec) {
        (&self.bank.0, &self.bank.1)
    }

    /// DTA sample budget per instruction type.
    pub fn dta_samples(&self) -> usize {
        dev::dta_samples()
    }

    /// A built benchmark (cached).
    pub fn bench(&self, id: BenchmarkId) -> Benchmark {
        self.benches
            .lock()
            .expect("benches lock")
            .entry(id)
            .or_insert_with(|| build(id, self.scale))
            .clone()
    }

    /// The golden run of a benchmark (cached).
    ///
    /// # Errors
    ///
    /// Propagates [`GoldenRun::capture`] failures.
    pub fn golden(&self, id: BenchmarkId) -> Result<GoldenRun, TeiError> {
        if let Some(g) = self.goldens.lock().expect("goldens lock").get(&id) {
            return Ok(g.clone());
        }
        eprintln!("[artifacts] golden run of {id} ...");
        let bench = self.bench(id);
        let g = GoldenRun::capture(&bench, MEM, u64::MAX)?;
        self.goldens
            .lock()
            .expect("goldens lock")
            .insert(id, g.clone());
        Ok(g)
    }

    /// The operand trace of a benchmark (cached; capped at the DTA budget).
    pub fn trace(&self, id: BenchmarkId) -> dev::TraceSet {
        if let Some(t) = self.traces.lock().expect("traces lock").get(&id) {
            return t.clone();
        }
        eprintln!("[artifacts] operand trace of {id} ...");
        let bench = self.bench(id);
        let t = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, self.dta_samples());
        self.traces
            .lock()
            .expect("traces lock")
            .insert(id, t.clone());
        t
    }

    /// The instruction-aware model at a corner (cached).
    ///
    /// # Errors
    ///
    /// Propagates model-development failures.
    pub fn ia(&self, vr: VoltageReduction) -> Result<StatModel, TeiError> {
        let key = vr.label();
        if let Some(m) = self.ia.lock().expect("ia lock").get(&key) {
            return Ok(m.clone());
        }
        eprintln!("[artifacts] IA-model DTA at {key} ...");
        let (bank, spec) = self.bank();
        let m = StatModel::instruction_aware(bank, spec, vr, self.dta_samples(), 0x1A)?;
        self.ia.lock().expect("ia lock").insert(key, m.clone());
        Ok(m)
    }

    /// The workload-aware model of a benchmark at a corner (cached).
    ///
    /// # Errors
    ///
    /// Propagates model-development failures.
    pub fn wa(&self, id: BenchmarkId, vr: VoltageReduction) -> Result<StatModel, TeiError> {
        let key = (id, vr.label());
        if let Some(m) = self.wa.lock().expect("wa lock").get(&key) {
            return Ok(m.clone());
        }
        eprintln!("[artifacts] WA-model DTA for {id} at {} ...", vr.label());
        let trace = self.trace(id);
        let (bank, spec) = self.bank();
        let m = StatModel::workload_aware(bank, spec, vr, &trace, self.dta_samples())?;
        self.wa.lock().expect("wa lock").insert(key, m.clone());
        Ok(m)
    }

    /// The DA calibration over the pooled benchmark mix (cached):
    /// the paper's Section IV.C.1 Monte-Carlo DTA.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn da_calibration(&self) -> Result<DaCalibration, TeiError> {
        if let Some(c) = self.da_cal.lock().expect("da lock").as_ref() {
            return Ok(c.clone());
        }
        eprintln!("[artifacts] DA-model calibration over the benchmark mix ...");
        let mut pooled = dev::TraceSet::default();
        // Pool a slice of every benchmark's trace.
        let per_bench = (self.dta_samples() / BenchmarkId::all().len()).max(500);
        for id in BenchmarkId::all() {
            let bench = self.bench(id);
            let t = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, per_bench);
            pooled.merge(&t);
        }
        let (bank, spec) = self.bank();
        let cal = dev::calibrate_da(bank, spec, &pooled, &LEVELS, self.dta_samples())?;
        *self.da_cal.lock().expect("da lock") = Some(cal.clone());
        Ok(cal)
    }

    /// The DA model at a corner, built from the pooled calibration.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures and unknown-corner lookups.
    pub fn da(&self, vr: VoltageReduction) -> Result<DaModel, TeiError> {
        DaModel::from_calibration(&self.da_calibration()?, vr)
    }
}
