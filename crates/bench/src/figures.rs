//! One function per table/figure of the paper's evaluation.

use crate::artifacts::{Artifacts, LEVELS, MEM};
use serde_json::{json, Value};
use std::fmt::Write as _;
use tei_core::journal::atomic_write_checksummed;
use tei_core::{campaign, dev, power, stats, InjectionModel, ModelKind, StatModel, TeiError};
use tei_softfloat::{FpOp, Precision};
use tei_timing::{PathCensus, VoltageReduction};
use tei_workloads::BenchmarkId;

/// A regenerated experiment artifact: pretty text plus machine-readable
/// rows.
#[derive(Debug, Clone)]
pub struct Report {
    /// Artifact identifier (`fig4`, `table2`, ...).
    pub id: &'static str,
    /// Human-readable table/series.
    pub text: String,
    /// Machine-readable content.
    pub json: Value,
}

impl Report {
    /// Write the JSON next to the workspace `results/` directory —
    /// atomically (tmp + rename) and with a `.fnv` checksum sidecar, so a
    /// crash mid-write can never leave a torn artifact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`TeiError::Io`].
    pub fn save(&self, dir: &std::path::Path) -> Result<(), TeiError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TeiError::io("create results directory", dir, e))?;
        let path = dir.join(format!("{}.json", self.id));
        let body = serde_json::to_string_pretty(&self.json).unwrap_or_default();
        atomic_write_checksummed(&path, body.as_bytes())?;
        Ok(())
    }
}

fn region_of(bit: usize, op_bits: usize) -> &'static str {
    // LSB-first: mantissa, then exponent, then sign.
    match op_bits {
        64 => {
            if bit < 52 {
                "M"
            } else if bit < 63 {
                "E"
            } else {
                "S"
            }
        }
        _ => {
            if bit < 23 {
                "M"
            } else if bit < 31 {
                "E"
            } else {
                "S"
            }
        }
    }
}

// ---------------------------------------------------------------------
// Figure 4 — whole-core lowest-slack path census
// ---------------------------------------------------------------------

/// Figure 4: distribution of the 1000 lowest-slack paths across pipeline
/// blocks of the whole core.
pub fn fig4(arts: &Artifacts) -> Report {
    let (_, spec) = arts.bank();
    eprintln!("[fig4] building whole-core netlist + path census ...");
    let core = tei_fpu::whole_core(spec);
    let census = PathCensus::top_k(&core, spec.clk, 1000);
    // Group by functional unit (block prefix before the stage name).
    let mut groups: Vec<(String, usize, f64)> = Vec::new(); // (unit, paths, min slack)
    for p in &census.paths {
        let unit = p
            .dominant_block
            .split('/')
            .next()
            .unwrap_or(&p.dominant_block)
            .to_string();
        match groups.iter_mut().find(|(u, _, _)| *u == unit) {
            Some((_, n, s)) => {
                *n += 1;
                *s = s.min(p.slack);
            }
            None => groups.push((unit, 1, p.slack)),
        }
    }
    let mut text = String::from("unit                paths  min-slack(ns)\n");
    for (u, n, s) in &groups {
        let _ = writeln!(text, "{u:18} {n:6}  {s:9.3}");
    }
    let fpu_paths: usize = groups
        .iter()
        .filter(|(u, _, _)| !u.starts_with("core"))
        .map(|(_, n, _)| n)
        .sum();
    let _ = writeln!(
        text,
        "FPU share of the 1000 lowest-slack paths: {:.1}%",
        100.0 * fpu_paths as f64 / census.paths.len() as f64
    );
    Report {
        id: "fig4",
        json: json!({
            "clk_ns": census.clk,
            "groups": groups.iter().map(|(u, n, s)| json!({
                "unit": u, "paths": n, "min_slack_ns": s})).collect::<Vec<_>>(),
            "fpu_share": fpu_paths as f64 / census.paths.len() as f64,
        }),
        text,
    }
}

// ---------------------------------------------------------------------
// Figure 5 — flipped-bit multiplicity of faulty outputs
// ---------------------------------------------------------------------

/// Figure 5: distribution of the number of bit flips at faulty instruction
/// outputs under VR15 and VR20 (benchmark-mix operands).
pub fn fig5(arts: &Artifacts) -> Result<Report, TeiError> {
    let (bank, spec) = arts.bank();
    let mut rows = Vec::new();
    let mut text = String::from("VR     1-bit   2-bit   3-bit   4+bit   multi-bit%\n");
    let mut multi_sum = 0.0;
    for vr in LEVELS {
        let mut hist: [u64; 5] = [0; 5]; // 1,2,3,4+, total
        for id in BenchmarkId::all() {
            let trace = arts.trace(id);
            for op in FpOp::all() {
                let t = trace.of(op);
                if t.len() < 2 {
                    continue;
                }
                let s = dev::dta_campaign(bank.unit(op), t, spec.clk, &[vr])?
                    .pop()
                    .ok_or_else(|| TeiError::EmptyDta {
                        op: op.to_string(),
                        vr: vr.label(),
                    })?;
                for (&k, &v) in &s.flip_hist {
                    let slot = k.min(4) - 1;
                    hist[slot] += v;
                    hist[4] += v;
                }
            }
        }
        let total = hist[4].max(1) as f64;
        let pct = |i: usize| 100.0 * hist[i] as f64 / total;
        let multi = pct(1) + pct(2) + pct(3);
        multi_sum += multi;
        let _ = writeln!(
            text,
            "{:5} {:6.1}% {:6.1}% {:6.1}% {:6.1}%   {multi:6.1}%",
            vr.label(),
            pct(0),
            pct(1),
            pct(2),
            pct(3)
        );
        rows.push(json!({
            "vr": vr.label(),
            "one": pct(0), "two": pct(1), "three": pct(2), "four_plus": pct(3),
            "multi_bit_pct": multi,
        }));
    }
    let _ = writeln!(
        text,
        "average multi-bit share across VR levels: {:.1}% (paper: 64.5%)",
        multi_sum / LEVELS.len() as f64
    );
    Ok(Report {
        id: "fig5",
        json: json!({ "rows": rows, "avg_multi_bit_pct": multi_sum / LEVELS.len() as f64 }),
        text,
    })
}

// ---------------------------------------------------------------------
// Figure 6 — BER convergence with DTA sample count (is / fp-mul)
// ---------------------------------------------------------------------

/// Figure 6: fp-mul BER of the `is` program at VR20 for increasing DTA
/// sample counts, with the average absolute error against the full trace.
pub fn fig6(arts: &Artifacts) -> Result<Report, TeiError> {
    let (bank, spec) = arts.bank();
    let bench = arts.bench(BenchmarkId::Is);
    eprintln!("[fig6] capturing the full is fp-mul trace ...");
    let full_trace = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, usize::MAX);
    let op = FpOp::all()
        .into_iter()
        .find(|o| o.to_string() == "fp-mul (d)")
        .expect("fp-mul (d)");
    let full = full_trace.of(op);
    let unit = bank.unit(op);
    let vr = VoltageReduction::VR20;
    let reference = dev::dta_campaign(unit, full, spec.clk, &[vr])?
        .pop()
        .ok_or_else(|| TeiError::EmptyDta {
            op: op.to_string(),
            vr: vr.label(),
        })?
        .ber();
    let mut text = format!(
        "is fp-mul (d) at VR20; full trace = {} instructions\n  K        AE\n",
        full.len()
    );
    let mut rows = Vec::new();
    // Randomly extracted instruction samples, as in the paper; each sample
    // keeps its true predecessor (the circuit-state semantics of DTA).
    // A deterministic LCG shuffle orders the candidate indices.
    let mut order: Vec<usize> = (1..full.len()).collect();
    let mut state = 0x9e37_79b9u64;
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    for frac in [100usize, 10, 3, 1] {
        let k = ((full.len() - 1) / frac).max(1);
        let ber = dev::dta_campaign_sampled(unit, full, &order[..k], spec.clk, &[vr])?
            .pop()
            .ok_or_else(|| TeiError::EmptyDta {
                op: op.to_string(),
                vr: vr.label(),
            })?
            .ber();
        let ae = dev::average_absolute_error(&reference, &ber);
        let _ = writeln!(text, "{k:9} {ae:9.4}");
        rows.push(json!({ "k": k, "ae": ae, "ber": ber }));
    }
    let region = |ber: &[f64], r: &str| -> f64 {
        let vals: Vec<f64> = ber
            .iter()
            .enumerate()
            .filter(|(b, _)| region_of(*b, 64) == r)
            .map(|(_, &v)| v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let _ = writeln!(
        text,
        "full-trace BER region means: S {:.2e}  E {:.2e}  M {:.2e}",
        region(&reference, "S"),
        region(&reference, "E"),
        region(&reference, "M")
    );
    Ok(Report {
        id: "fig6",
        json: json!({ "rows": rows, "full_ber": reference, "full_len": full.len() }),
        text,
    })
}

// ---------------------------------------------------------------------
// Figures 7 and 8 — per-bit EI probabilities (IA / WA)
// ---------------------------------------------------------------------

fn ber_summary(model: &StatModel, op: FpOp) -> (f64, f64, f64, f64) {
    let ber = model.ber(op);
    let bits = op.result_bits() as usize;
    let mut sums = [0.0; 3];
    let mut counts = [0usize; 3];
    for (b, &v) in ber.iter().enumerate() {
        let i = match region_of(b, bits) {
            "S" => 0,
            "E" => 1,
            _ => 2,
        };
        sums[i] += v;
        counts[i] += 1;
    }
    (
        model.error_ratio(op),
        sums[0] / counts[0].max(1) as f64,
        sums[1] / counts[1].max(1) as f64,
        sums[2] / counts[2].max(1) as f64,
    )
}

/// Figure 7: the IA model's per-bit error-injection probabilities per
/// instruction type and VR level (region means printed; full arrays in
/// JSON).
pub fn fig7(arts: &Artifacts) -> Result<Report, TeiError> {
    let mut text = String::from("op             VR     ER        S-mean    E-mean    M-mean\n");
    let mut rows = Vec::new();
    for vr in LEVELS {
        let ia = arts.ia(vr)?;
        for op in FpOp::all() {
            let (er, s, e, m) = ber_summary(&ia, op);
            let _ = writeln!(
                text,
                "{:14} {:5} {er:9.2e} {s:9.2e} {e:9.2e} {m:9.2e}",
                op.to_string(),
                vr.label()
            );
            rows.push(json!({
                "op": op.to_string(), "vr": vr.label(), "er": er,
                "ber": ia.ber(op),
            }));
        }
    }
    Ok(Report {
        id: "fig7",
        json: json!({ "rows": rows }),
        text,
    })
}

/// Figure 8: the WA model's per-bit EI probabilities per benchmark and VR
/// level, aggregated over the double-precision instruction mix.
pub fn fig8(arts: &Artifacts) -> Result<Report, TeiError> {
    let mut text = String::from("bench     VR     ER        S-mean    E-mean    M-mean\n");
    let mut rows = Vec::new();
    for id in BenchmarkId::all() {
        let golden = arts.golden(id)?;
        for vr in LEVELS {
            let wa = arts.wa(id, vr)?;
            // Frequency-weighted per-bit aggregate over double-precision ops.
            let mut agg = vec![0f64; 64];
            let mut weight = 0f64;
            for op in FpOp::all()
                .into_iter()
                .filter(|o| o.precision == Precision::Double)
            {
                let freq = golden.arch_by_op[op.index()].len() as f64;
                if freq == 0.0 {
                    continue;
                }
                for (b, &v) in wa.ber(op).iter().enumerate() {
                    agg[b] += freq * v;
                }
                weight += freq;
            }
            for v in &mut agg {
                *v /= weight.max(1.0);
            }
            let mean = |r: &str| {
                let vals: Vec<f64> = agg
                    .iter()
                    .enumerate()
                    .filter(|(b, _)| region_of(*b, 64) == r)
                    .map(|(_, &v)| v)
                    .collect();
                vals.iter().sum::<f64>() / vals.len().max(1) as f64
            };
            let er = campaign::model_error_ratio(&wa, &golden);
            let _ = writeln!(
                text,
                "{:9} {:5} {er:9.2e} {:9.2e} {:9.2e} {:9.2e}",
                id.name(),
                vr.label(),
                mean("S"),
                mean("E"),
                mean("M")
            );
            rows.push(json!({
                "benchmark": id.name(), "vr": vr.label(), "er": er, "ber": agg,
            }));
        }
    }
    let _ = writeln!(
        text,
        "(mantissa bits dominate the error probability, as in the paper)"
    );
    Ok(Report {
        id: "fig8",
        json: json!({ "rows": rows }),
        text,
    })
}

// ---------------------------------------------------------------------
// Figures 9 and 10 — injection campaigns
// ---------------------------------------------------------------------

/// The full campaign sweep backing Figures 9 and 10 and the AVM analysis.
///
/// # Errors
///
/// Propagates model-development and campaign failures.
pub fn campaigns(arts: &Artifacts) -> Result<Vec<campaign::CampaignResult>, TeiError> {
    let cfg = campaign::CampaignConfig::default();
    let mut out = Vec::new();
    for id in BenchmarkId::all() {
        let golden = arts.golden(id)?;
        for vr in LEVELS {
            for kind in ModelKind::all() {
                eprintln!(
                    "[campaign] {} × {} × {} ({} runs) ...",
                    id.name(),
                    kind.label(),
                    vr.label(),
                    cfg.runs
                );
                let r = match kind {
                    ModelKind::Da => {
                        campaign::run_campaign_checked(id.name(), &golden, &arts.da(vr)?, &cfg)?
                    }
                    ModelKind::Ia => {
                        campaign::run_campaign_checked(id.name(), &golden, &arts.ia(vr)?, &cfg)?
                    }
                    ModelKind::Wa => {
                        campaign::run_campaign_checked(id.name(), &golden, &arts.wa(id, vr)?, &cfg)?
                    }
                };
                out.push(r);
            }
        }
    }
    Ok(out)
}

/// Figure 9: injection outcome distributions per benchmark × model × VR.
pub fn fig9(results: &[campaign::CampaignResult]) -> Report {
    let mut text = String::from(
        "bench     model     VR     Masked   SDC  Crash Timeout   AVM    (uarch-masked)\n",
    );
    let mut rows = Vec::new();
    for r in results {
        let f = r.fractions();
        let _ = writeln!(
            text,
            "{:9} {:9} {:5} {:6.1}% {:5.1}% {:5.1}% {:6.1}% {:6.3}  ({})",
            r.benchmark,
            r.model,
            r.vr.label(),
            100.0 * f[0],
            100.0 * f[1],
            100.0 * f[2],
            100.0 * f[3],
            r.avm(),
            r.counts.masked_wrong_path,
        );
        rows.push(json!({
            "benchmark": r.benchmark, "model": r.model, "vr": r.vr.label(),
            "masked": f[0], "sdc": f[1], "crash": f[2], "timeout": f[3],
            "avm": r.avm(), "masked_wrong_path": r.counts.masked_wrong_path,
            "masked_no_error": r.counts.masked_no_error,
        }));
    }
    Report {
        id: "fig9",
        json: json!({ "rows": rows }),
        text,
    }
}

/// Figure 10: injected error ratio per benchmark × model × VR, plus the
/// DA/WA and IA/WA divergence factors.
pub fn fig10(results: &[campaign::CampaignResult]) -> Report {
    let mut text =
        String::from("bench     VR     DA-ER      IA-ER      WA-ER      DA/WA     IA/WA\n");
    let mut rows = Vec::new();
    let mut divergences: Vec<(f64, f64)> = Vec::new();
    for bench in BenchmarkId::all() {
        for vr in LEVELS {
            let er_of = |model: &str| {
                results
                    .iter()
                    .find(|r| r.benchmark == bench.name() && r.model == model && r.vr == vr)
                    .map_or(0.0, |r| r.error_ratio)
            };
            let (da, ia, wa) = (er_of("DA-model"), er_of("IA-model"), er_of("WA-model"));
            let ratio = |x: f64| {
                if wa == 0.0 && x == 0.0 {
                    1.0
                } else if wa == 0.0 || x == 0.0 {
                    f64::INFINITY
                } else {
                    (x / wa).max(wa / x)
                }
            };
            let (rd, ri) = (ratio(da), ratio(ia));
            divergences.push((rd, ri));
            let _ = writeln!(
                text,
                "{:9} {:5} {da:10.2e} {ia:10.2e} {wa:10.2e} {rd:9.1} {ri:9.1}",
                bench.name(),
                vr.label()
            );
            rows.push(json!({
                "benchmark": bench.name(), "vr": vr.label(),
                "da_er": da, "ia_er": ia, "wa_er": wa,
                "da_wa_factor": if rd.is_finite() { Some(rd) } else { None },
                "ia_wa_factor": if ri.is_finite() { Some(ri) } else { None },
            }));
        }
    }
    let gm = |f: &dyn Fn(&(f64, f64)) -> f64| {
        let finite: Vec<f64> = divergences
            .iter()
            .map(f)
            .filter(|x| x.is_finite())
            .collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            (finite.iter().map(|x| x.ln()).sum::<f64>() / finite.len() as f64).exp()
        }
    };
    let am = |f: &dyn Fn(&(f64, f64)) -> f64| {
        let finite: Vec<f64> = divergences
            .iter()
            .map(f)
            .filter(|x| x.is_finite())
            .collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    };
    let _ = writeln!(
        text,
        "divergence vs WA (∞ cells for error-free workloads excluded): \n  DA {:.0}× arithmetic / {:.0}× geometric mean; IA {:.0}× / {:.0}× (paper: ~250×, ~230× average)",
        am(&|d| d.0),
        gm(&|d| d.0),
        am(&|d| d.1),
        gm(&|d| d.1)
    );
    Report {
        id: "fig10",
        json: json!({ "rows": rows }),
        text,
    }
}

// ---------------------------------------------------------------------
// Table II and AVM / energy analyses
// ---------------------------------------------------------------------

/// Table II: benchmark, input, dynamic instruction count, classification.
pub fn table2(arts: &Artifacts) -> Result<Report, TeiError> {
    let mut text =
        String::from("app       input                          instructions  classification\n");
    let mut rows = Vec::new();
    for id in BenchmarkId::all() {
        let bench = arts.bench(id);
        let golden = arts.golden(id)?;
        let _ = writeln!(
            text,
            "{:9} {:30} {:12}  {}",
            id.name(),
            bench.input_desc,
            golden.instructions,
            bench.classification
        );
        rows.push(json!({
            "app": id.name(), "input": bench.input_desc,
            "instructions": golden.instructions,
            "fp_ops": golden.fp_ops,
            "classification": bench.classification,
        }));
    }
    Ok(Report {
        id: "table2",
        json: json!({ "rows": rows }),
        text,
    })
}

/// Section V.C: AVM-guided operating points and power savings per model.
pub fn avm_analysis(results: &[campaign::CampaignResult]) -> Report {
    let mut text =
        String::from("bench     model     AVM@VR15 AVM@VR20  chosen-VR  power-savings\n");
    let mut rows = Vec::new();
    for bench in BenchmarkId::all() {
        for kind in ModelKind::all() {
            let avm_of = |vr: VoltageReduction| {
                results
                    .iter()
                    .find(|r| r.benchmark == bench.name() && r.model == kind.label() && r.vr == vr)
                    .map_or(f64::NAN, campaign::CampaignResult::avm)
            };
            let a15 = avm_of(VoltageReduction::VR15);
            let a20 = avm_of(VoltageReduction::VR20);
            let choice = power::select_operating_point(
                &[(VoltageReduction::VR15, a15), (VoltageReduction::VR20, a20)],
                0.0,
            );
            let savings = power::power_savings(choice);
            let _ = writeln!(
                text,
                "{:9} {:9} {a15:8.3} {a20:8.3}  {:9} {:8.1}%",
                bench.name(),
                kind.label(),
                choice.label(),
                100.0 * savings
            );
            rows.push(json!({
                "benchmark": bench.name(), "model": kind.label(),
                "avm_vr15": a15, "avm_vr20": a20,
                "operating_point": choice.label(),
                "power_savings": savings,
            }));
        }
    }
    Report {
        id: "avm",
        json: json!({ "rows": rows }),
        text,
    }
}

/// Section V.C mitigation: clock-stretch prevention guided by the WA model.
pub fn mitigation(
    arts: &Artifacts,
    results: &[campaign::CampaignResult],
) -> Result<Report, TeiError> {
    let mut text =
        String::from("bench     unprotected-VR  savings  protected@VR20 prone%  energy-savings\n");
    let mut rows = Vec::new();
    for bench in BenchmarkId::all() {
        let golden = arts.golden(bench)?;
        let wa_avm = |vr: VoltageReduction| {
            results
                .iter()
                .find(|r| r.benchmark == bench.name() && r.model == "WA-model" && r.vr == vr)
                .map_or(f64::NAN, campaign::CampaignResult::avm)
        };
        let unprotected = power::select_operating_point(
            &[
                (VoltageReduction::VR15, wa_avm(VoltageReduction::VR15)),
                (VoltageReduction::VR20, wa_avm(VoltageReduction::VR20)),
            ],
            0.0,
        );
        let base_savings = power::power_savings(unprotected);
        // Prevention: run at VR20, stretching the clock for each dynamic
        // instruction of an error-prone type (WA-model ER > 0 at VR20).
        let wa20 = arts.wa(bench, VoltageReduction::VR20)?;
        let mut prone_instr = 0u64;
        for op in FpOp::all() {
            if wa20.error_ratio(op) > 0.0 {
                prone_instr += golden.arch_by_op[op.index()].len() as u64;
            }
        }
        let prone_fraction = prone_instr as f64 / golden.instructions.max(1) as f64;
        let m = power::mitigation_energy(VoltageReduction::VR20, prone_fraction);
        let protected_savings = 1.0 - m.energy;
        let _ = writeln!(
            text,
            "{:9} {:14} {:7.1}% {:13.3} {:6.2}% {:13.1}%",
            bench.name(),
            unprotected.label(),
            100.0 * base_savings,
            m.energy,
            100.0 * prone_fraction,
            100.0 * protected_savings
        );
        rows.push(json!({
            "benchmark": bench.name(),
            "unprotected_vr": unprotected.label(),
            "unprotected_savings": base_savings,
            "prone_fraction": prone_fraction,
            "protected_energy": m.energy,
            "protected_savings": protected_savings,
            "extra_savings": protected_savings - base_savings,
        }));
    }
    let _ = writeln!(
        text,
        "(paper: AVM-guided prevention yields up to ~20% extra energy savings)"
    );
    Ok(Report {
        id: "mitigation",
        json: json!({ "rows": rows }),
        text,
    })
}

/// Section IV.C.1: the DA model's calibrated fixed error ratios.
pub fn da_calibration(arts: &Artifacts) -> Result<Report, TeiError> {
    let cal = arts.da_calibration()?;
    let mut text = String::from("VR     fixed-ER   (paper: VR15 1e-3, VR20 1e-2)\n");
    let mut rows = Vec::new();
    for (vr, er) in &cal.er {
        let _ = writeln!(text, "{:5} {er:10.2e}", vr.label());
        rows.push(json!({ "vr": vr.label(), "er": er }));
    }
    let n = stats::sample_size(0.03, 0.95)?;
    let _ = writeln!(
        text,
        "statistical sample size at 3%/95%: {n} runs (paper: 1068)"
    );
    Ok(Report {
        id: "da-calibration",
        json: json!({ "rows": rows, "sample_size": n }),
        text,
    })
}
