//! # tei-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, regenerating the corresponding rows/series from the `tei`
//! toolflow. The `figures` binary drives them from the command line and
//! writes machine-readable JSON next to the pretty-printed tables.
//!
//! Experiment sizing honors `TEI_RUNS`, `TEI_DTA_SAMPLES`, and `TEI_FULL=1`
//! (paper-scale); see EXPERIMENTS.md.

pub mod artifacts;
pub mod figures;

pub use artifacts::Artifacts;
