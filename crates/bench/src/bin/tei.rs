//! Toolflow front-end. The first subcommand is `lint`: run the
//! structural netlist lints (combinational loops, floating and
//! multi-driver nets, unreachable gates, missing delays — see DESIGN.md,
//! "Static verification") over Verilog files or the generated FPU bank.
//!
//! ```text
//! # lint exported netlists
//! cargo run --release -p tei-bench --bin tei -- lint out/d_add.v
//!
//! # lint every generated FPU unit plus a Verilog round-trip
//! cargo run --release -p tei-bench --bin tei -- lint --fpu
//! ```
//!
//! Exit status: 0 when every design is clean, 1 when any diagnostic (or
//! error) is reported, 2 on usage errors.

use tei_netlist::{lint_module, lint_netlist, parse_verilog, to_verilog, CellLibrary};

const USAGE: &str = "usage: tei lint [--fpu | <file.v>...]
subcommands:
  lint      structural netlist lints
lint options:
  --fpu     lint the generated FPU bank (both the functional and the
            DTA-derated netlist of every unit) plus one export/parse
            round-trip instead of reading Verilog files";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("{USAGE}");
        std::process::exit(0);
    }
    match args.first().map(String::as_str) {
        Some("lint") => {
            let clean = lint(&args[1..]);
            std::process::exit(i32::from(!clean));
        }
        Some(other) => {
            eprintln!("tei: unknown subcommand {other:?}\n{USAGE}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Run the lint subcommand; returns whether every design came back clean.
fn lint(args: &[String]) -> bool {
    if args.iter().any(|a| a == "--fpu") {
        if args.len() != 1 {
            eprintln!("tei: --fpu takes no file arguments\n{USAGE}");
            std::process::exit(2);
        }
        return lint_fpu_bank();
    }
    if args.is_empty() {
        eprintln!("tei: lint needs --fpu or at least one Verilog file\n{USAGE}");
        std::process::exit(2);
    }
    let lib = CellLibrary::nangate45_like();
    let mut clean = true;
    for path in args {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("tei: cannot read {path}: {e}");
                clean = false;
                continue;
            }
        };
        let module = match parse_verilog(&src) {
            Ok(module) => module,
            Err(e) => {
                eprintln!("tei: {path}: {e}");
                clean = false;
                continue;
            }
        };
        clean &= report(path, &lint_module(&module, &lib));
    }
    clean
}

/// Lint the generated FPU bank: the functional and DTA netlists of every
/// unit, plus an export → parse → module-lint round-trip of the first
/// unit to cover the Verilog path end to end.
fn lint_fpu_bank() -> bool {
    let (bank, _) = tei_core::dev::default_bank();
    let mut clean = true;
    for unit in bank.iter() {
        clean &= report(unit.tag(), &lint_netlist(unit.netlist()));
        let dta = unit.dta_netlist();
        clean &= report(&format!("{} (DTA)", unit.tag()), &lint_netlist(&dta));
    }
    if let Some(unit) = bank.iter().next() {
        let src = to_verilog(unit.netlist());
        match parse_verilog(&src) {
            Ok(module) => {
                let diags = lint_module(&module, unit.netlist().library());
                clean &= report(&format!("{} (round-trip)", unit.tag()), &diags);
            }
            Err(e) => {
                eprintln!("tei: {} round-trip failed to parse: {e}", unit.tag());
                clean = false;
            }
        }
    }
    clean
}

/// Print one design's diagnostics; returns whether it was clean.
fn report(design: &str, diags: &[tei_netlist::LintDiagnostic]) -> bool {
    if diags.is_empty() {
        println!("{design}: clean");
        return true;
    }
    println!(
        "{design}: {} finding{}",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    for d in diags {
        println!("  {d}");
    }
    false
}
