//! Regenerate the paper's tables and figures from the `tei` toolflow.
//!
//! ```text
//! cargo run --release -p tei-bench --bin figures -- all
//! cargo run --release -p tei-bench --bin figures -- fig9 fig10 avm
//! TEI_FULL=1 cargo run --release -p tei-bench --bin figures -- all
//! ```
//!
//! JSON copies of every artifact land in `results/`.

use tei_bench::figures::{self, Report};
use tei_bench::Artifacts;
use tei_workloads::Scale;

const USAGE: &str = "usage: figures [fig4|fig5|fig6|fig7|fig8|fig9|fig10|table2|avm|mitigation|da-calibration|all]...";

fn main() {
    if let Err(e) = run() {
        eprintln!("figures: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), tei_core::TeiError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale = if tei_core::config::full_scale() {
        Scale::Full
    } else {
        Scale::Small
    };
    let mut wanted: Vec<&str> = args.iter().map(String::as_str).collect();
    if wanted.contains(&"all") {
        wanted = vec![
            "table2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "da-calibration",
            "fig9",
            "fig10",
            "avm",
            "mitigation",
        ];
    }
    let arts = Artifacts::new(scale);
    let out_dir = std::path::Path::new("results");

    // The campaign sweep backs fig9/fig10/avm/mitigation; run it at most
    // once.
    let needs_campaigns = wanted
        .iter()
        .any(|w| matches!(*w, "fig9" | "fig10" | "avm" | "mitigation"));
    let campaign_results = if needs_campaigns {
        figures::campaigns(&arts)?
    } else {
        Vec::new()
    };

    let mut emitted = 0;
    for w in &wanted {
        let report: Report = match *w {
            "fig4" => figures::fig4(&arts),
            "fig5" => figures::fig5(&arts)?,
            "fig6" => figures::fig6(&arts)?,
            "fig7" => figures::fig7(&arts)?,
            "fig8" => figures::fig8(&arts)?,
            "fig9" => figures::fig9(&campaign_results),
            "fig10" => figures::fig10(&campaign_results),
            "table2" => figures::table2(&arts)?,
            "avm" => figures::avm_analysis(&campaign_results),
            "mitigation" => figures::mitigation(&arts, &campaign_results)?,
            "da-calibration" => figures::da_calibration(&arts)?,
            other => {
                eprintln!("unknown artifact {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        };
        println!("==== {} ====", report.id);
        println!("{}", report.text);
        report.save(out_dir)?;
        emitted += 1;
    }
    eprintln!(
        "regenerated {emitted} artifact(s) into {}",
        out_dir.display()
    );
    Ok(())
}
