//! Develop and persist error models (the toolflow's model development
//! phase, Figure 2), so the application-evaluation phase can reload them
//! without re-running gate-level DTA.
//!
//! ```text
//! # develop and save all models for the studied corners
//! cargo run --release -p tei-bench --bin models -- develop models/
//!
//! # inspect a saved model
//! cargo run --release -p tei-bench --bin models -- show models/wa-sobel-VR20.json
//! ```

use tei_bench::Artifacts;
use tei_core::journal::atomic_write_checksummed;
use tei_core::{InjectionModel, StatModel, TeiError};
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;
use tei_workloads::{BenchmarkId, Scale};

const USAGE: &str = "usage: models develop <dir> | models show <file.json>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("develop") => {
            let dir = std::path::PathBuf::from(args.get(1).map_or("models", String::as_str));
            if let Err(e) = develop(&dir) {
                eprintln!("models: {e}");
                std::process::exit(1);
            }
        }
        Some("show") => {
            let Some(path) = args.get(1) else {
                eprintln!("{USAGE}");
                std::process::exit(2);
            };
            show(std::path::Path::new(path));
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn develop(dir: &std::path::Path) -> Result<(), TeiError> {
    std::fs::create_dir_all(dir).map_err(|e| TeiError::io("create output directory", dir, e))?;
    let arts = Artifacts::new(Scale::Small);
    let mut written = 0usize;
    for vr in [VoltageReduction::VR15, VoltageReduction::VR20] {
        let da = arts.da(vr)?;
        save(dir, &format!("da-{}", vr.label()), &da)?;
        written += 1;
        let ia = arts.ia(vr)?;
        save(dir, &format!("ia-{}", vr.label()), &ia)?;
        written += 1;
        for id in BenchmarkId::all() {
            let wa = arts.wa(id, vr)?;
            save(dir, &format!("wa-{}-{}", id.name(), vr.label()), &wa)?;
            written += 1;
        }
    }
    eprintln!("wrote {written} models into {}", dir.display());
    Ok(())
}

fn save<M: serde::Serialize>(dir: &std::path::Path, name: &str, model: &M) -> Result<(), TeiError> {
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(model).unwrap_or_default();
    atomic_write_checksummed(&path, body.as_bytes())?;
    eprintln!("  {}", path.display());
    Ok(())
}

fn show(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read model file");
    // DA models are small ({vr, er}); statistical models carry per-op data.
    if let Ok(m) = serde_json::from_str::<StatModel>(&text) {
        println!("{} at {}", m.name(), m.vr().label());
        println!("{:14} {:>10}  S/E/M mean BER", "op", "ER");
        for op in FpOp::all() {
            let ber = m.ber(op);
            let bits = op.result_bits() as usize;
            let (mut s, mut e, mut mm) = (0.0, 0.0, 0.0);
            let (mut cs, mut ce, mut cm) = (0, 0, 0);
            for (b, &v) in ber.iter().enumerate() {
                let frac = if bits == 64 { 52 } else { 23 };
                let expo = if bits == 64 { 63 } else { 31 };
                if b >= expo {
                    s += v;
                    cs += 1;
                } else if b >= frac {
                    e += v;
                    ce += 1;
                } else {
                    mm += v;
                    cm += 1;
                }
            }
            println!(
                "{:14} {:10.2e}  {:.2e} / {:.2e} / {:.2e}",
                op.to_string(),
                m.error_ratio(op),
                s / cs.max(1) as f64,
                e / ce.max(1) as f64,
                mm / cm.max(1) as f64
            );
        }
    } else if let Ok(m) = serde_json::from_str::<tei_core::DaModel>(&text) {
        println!(
            "{} at {}: fixed ER {:.3e}",
            m.name(),
            m.vr().label(),
            m.fixed_er()
        );
    } else {
        eprintln!("unrecognized model file {}", path.display());
        std::process::exit(1);
    }
}
