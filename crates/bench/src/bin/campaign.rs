//! Durable single-cell injection campaign: every completed run is
//! journaled before it counts, so a killed sweep resumes from where it
//! stopped instead of restarting (see DESIGN.md, "Durable execution").
//!
//! ```text
//! # 1068-run sweep; ctrl-C (or SIGKILL) and re-run to resume
//! cargo run --release -p tei-bench --bin campaign -- \
//!     --benchmark sobel --vr vr20 --runs 1068 --out results/sobel-da.json
//! ```
//!
//! The model is the calibration-free fixed-ratio DA model
//! (`--model fixed:<er>`), which needs no gate-level DTA — the binary
//! starts injecting immediately, which is what a kill-and-resume smoke
//! test wants. The journal lands in `TEI_JOURNAL_DIR` (default
//! `journal/`) unless `--journal-dir` overrides it.

use std::path::PathBuf;
use tei_core::journal::atomic_write_checksummed;
use tei_core::{campaign, DaModel, TeiError};
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const USAGE: &str = "usage: campaign --benchmark <name> [options]
options:
  --benchmark <name>     benchmark to sweep (required; e.g. is, sobel, k-means)
  --model fixed[:<er>]   fixed-ratio DA model, default fixed:1e-2
  --vr vr15|vr20         voltage-reduction corner (default vr20)
  --runs <n>             injection runs (default TEI_RUNS or 1068)
  --seed <n>             base RNG seed (default 1)
  --threads <n>          worker threads (default TEI_THREADS or cores)
  --scale test|small|full  benchmark problem size (default test)
  --throttle-ms <n>      per-run sleep, for external kill tests (default 0)
  --journal-dir <dir>    journal directory (default TEI_JOURNAL_DIR or journal/)
  --out <file>           result JSON (default results/campaign-<bench>.json)";

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) if e.is_interrupted() => {
            eprintln!("campaign: {e}");
            eprintln!("campaign: journal retained; re-run the same command to resume");
            std::process::exit(130);
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("campaign: bad value {value:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

fn run() -> Result<(), TeiError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("{USAGE}");
        std::process::exit(0);
    }
    let mut benchmark: Option<String> = None;
    let mut model = String::from("fixed:1e-2");
    let mut vr = VoltageReduction::VR20;
    let mut cfg = campaign::CampaignConfig {
        seed: 1,
        ..Default::default()
    };
    let mut scale = Scale::Test;
    let mut journal_dir = tei_core::config::default_journal_dir();
    let mut out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("campaign: {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--benchmark" => benchmark = Some(val()),
            "--model" => model = val(),
            "--vr" => {
                vr = match val().to_ascii_lowercase().as_str() {
                    "vr15" => VoltageReduction::VR15,
                    "vr20" => VoltageReduction::VR20,
                    other => {
                        eprintln!("campaign: unknown VR level {other:?}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--runs" => cfg.runs = parse_or_exit(flag, &val()),
            "--seed" => cfg.seed = parse_or_exit(flag, &val()),
            "--threads" => cfg.threads = parse_or_exit(flag, &val()),
            "--scale" => {
                scale = match val().to_ascii_lowercase().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("campaign: unknown scale {other:?}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--throttle-ms" => cfg.chaos.throttle_ms = parse_or_exit(flag, &val()),
            "--journal-dir" => journal_dir = PathBuf::from(val()),
            "--out" => out = Some(PathBuf::from(val())),
            other => {
                eprintln!("campaign: unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(name) = benchmark else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let Some(id) = BenchmarkId::all().into_iter().find(|b| b.name() == name) else {
        let known: Vec<&str> = BenchmarkId::all().iter().map(|b| b.name()).collect();
        eprintln!("campaign: unknown benchmark {name:?} (known: {known:?})");
        std::process::exit(2);
    };
    let Some(er) = model
        .strip_prefix("fixed")
        .map(|r| r.strip_prefix(':').unwrap_or("1e-2"))
        .and_then(|r| r.parse::<f64>().ok())
    else {
        eprintln!("campaign: unknown model {model:?} (supported: fixed[:<er>])\n{USAGE}");
        std::process::exit(2);
    };

    let bench = build(id, scale);
    eprintln!("[campaign] golden run of {} ...", id.name());
    let golden = campaign::GoldenRun::capture(&bench, 8 << 20, u64::MAX)?;
    let da = DaModel::from_fixed(vr, er);
    eprintln!(
        "[campaign] {} × fixed:{er:.1e} × {} ({} runs, {} threads, journal {}) ...",
        id.name(),
        vr.label(),
        cfg.runs,
        cfg.threads,
        journal_dir.display()
    );
    let result = campaign::run_campaign_durable(id.name(), &golden, &da, &cfg, &journal_dir)?;

    let f = result.fractions();
    println!(
        "{}: Masked {:.1}% SDC {:.1}% Crash {:.1}% Timeout {:.1}%  AVM {:.3} ({} quarantined)",
        id.name(),
        100.0 * f[0],
        100.0 * f[1],
        100.0 * f[2],
        100.0 * f[3],
        result.avm(),
        result.counts.quarantined,
    );
    let out = out.unwrap_or_else(|| PathBuf::from(format!("results/campaign-{}.json", id.name())));
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| TeiError::io("create output directory", dir, e))?;
        }
    }
    let body = serde_json::to_string_pretty(&result).unwrap_or_default();
    atomic_write_checksummed(&out, (body + "\n").as_bytes())?;
    eprintln!("wrote {}", out.display());
    Ok(())
}
