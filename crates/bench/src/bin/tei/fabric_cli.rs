//! The fabric subcommands: one-shot multi-process campaigns
//! (`tei campaign`), the resident coordinator (`tei serve`), the
//! submission client (`tei submit`), and the worker process body the
//! coordinator spawns (`tei fabric-worker`).

use crate::USAGE;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tei_core::fabric::{wire, ChaosKill, Message};
use tei_core::journal::atomic_write_checksummed;
use tei_core::{CampaignResult, CampaignSpec, FabricConfig, FabricEvent, TeiError};

/// Default `tei serve` address (0x7e1, like the default campaign seed).
const DEFAULT_LISTEN: &str = "127.0.0.1:2017";

/// Map a fabric run's outcome to the process exit code convention.
pub(crate) fn exit_code(run: Result<(), TeiError>) -> i32 {
    match run {
        Ok(()) => 0,
        Err(e) if e.is_interrupted() => {
            eprintln!("tei: {e}");
            eprintln!("tei: journals and lease table retained; re-run to resume");
            130
        }
        Err(e) => {
            eprintln!("tei: {e}");
            1
        }
    }
}

fn parse_or_exit<T: std::str::FromStr>(cmd: &str, flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("tei {cmd}: bad value {value:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

/// Flags shared by the fabric subcommands. Spec fields not given stay at
/// the [`CampaignSpec::new`] defaults; string-typed spec fields are
/// validated by `spec.parse()` before anything spawns.
struct FabricArgs {
    spec: CampaignSpec,
    workers: usize,
    leases_per_worker: usize,
    lease_timeout: Duration,
    journal_dir: PathBuf,
    out: Option<PathBuf>,
    listen: String,
    connect: Option<String>,
    chaos: Option<ChaosKill>,
}

fn parse_args(cmd: &str, args: &[String]) -> FabricArgs {
    let mut fa = FabricArgs {
        spec: CampaignSpec::new(""),
        workers: 2,
        leases_per_worker: 4,
        lease_timeout: Duration::from_secs(600),
        journal_dir: tei_core::config::default_journal_dir(),
        out: None,
        listen: DEFAULT_LISTEN.to_string(),
        connect: None,
        chaos: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("tei {cmd}: {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--benchmark" => fa.spec.benchmark = val(),
            "--model" => fa.spec.model = val(),
            "--vr" => fa.spec.vr = val().to_ascii_lowercase(),
            "--scale" => fa.spec.scale = val().to_ascii_lowercase(),
            "--runs" => fa.spec.runs = parse_or_exit(cmd, flag, &val()),
            "--seed" => fa.spec.seed = parse_or_exit(cmd, flag, &val()),
            "--timeout-factor" => fa.spec.timeout_factor = parse_or_exit(cmd, flag, &val()),
            "--threads-per-worker" => {
                fa.spec.threads_per_worker = parse_or_exit(cmd, flag, &val());
            }
            "--throttle-ms" => fa.spec.throttle_ms = parse_or_exit(cmd, flag, &val()),
            "--workers" => fa.workers = parse_or_exit(cmd, flag, &val()),
            "--leases-per-worker" => fa.leases_per_worker = parse_or_exit(cmd, flag, &val()),
            "--lease-timeout-s" => {
                fa.lease_timeout = Duration::from_secs(parse_or_exit(cmd, flag, &val()));
            }
            "--journal-dir" => fa.journal_dir = PathBuf::from(val()),
            "--out" => fa.out = Some(PathBuf::from(val())),
            "--listen" => fa.listen = val(),
            "--connect" => fa.connect = Some(val()),
            "--chaos-kill-worker" => fa.chaos = Some(parse_chaos(cmd, &val())),
            other => {
                eprintln!("tei {cmd}: unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    fa
}

fn parse_chaos(cmd: &str, value: &str) -> ChaosKill {
    let parsed = value.split_once(':').and_then(|(w, n)| {
        Some(ChaosKill {
            worker: w.parse().ok()?,
            after_leases: n.parse().ok()?,
        })
    });
    parsed.unwrap_or_else(|| {
        eprintln!(
            "tei {cmd}: --chaos-kill-worker wants <worker>:<after-leases>, got {value:?}\n{USAGE}"
        );
        std::process::exit(2);
    })
}

/// Refuse a malformed spec before anything spawns (usage error, exit 2).
fn require_spec(cmd: &str, spec: &CampaignSpec) {
    if spec.benchmark.is_empty() {
        eprintln!("tei {cmd}: --benchmark is required\n{USAGE}");
        std::process::exit(2);
    }
    if let Err(e) = spec.parse() {
        eprintln!("tei {cmd}: {e}\n{USAGE}");
        std::process::exit(2);
    }
}

/// The worker command the coordinator spawns: this very binary, in its
/// `fabric-worker` role, so fleet and coordinator are one build by
/// construction (the manifest-hash cross-check still verifies it).
fn self_worker_cmd() -> Result<Vec<String>, TeiError> {
    let exe = std::env::current_exe().map_err(|e| TeiError::Fabric {
        detail: format!("resolve the tei binary path: {e}"),
    })?;
    Ok(vec![
        exe.to_string_lossy().into_owned(),
        "fabric-worker".to_string(),
    ])
}

fn fleet_config(fa: &FabricArgs) -> Result<FabricConfig, TeiError> {
    let mut cfg = FabricConfig::new(self_worker_cmd()?, fa.journal_dir.clone());
    cfg.workers = fa.workers;
    cfg.leases_per_worker = fa.leases_per_worker;
    cfg.lease_timeout = fa.lease_timeout;
    cfg.chaos_kill_worker = fa.chaos;
    Ok(cfg)
}

/// Narrate coordinator events on stderr (stdout carries the result).
fn print_event(ev: &FabricEvent) {
    match ev {
        FabricEvent::WorkerSpawned { worker } => eprintln!("[fabric] worker {worker} spawned"),
        FabricEvent::WorkerConnected { worker } => eprintln!("[fabric] worker {worker} connected"),
        FabricEvent::WorkerDied { worker, reassigned } => {
            eprintln!("[fabric] worker {worker} died; {reassigned} lease(s) back to pending")
        }
        FabricEvent::LeaseGranted {
            campaign,
            worker,
            lo,
            hi,
        } => eprintln!("[fabric] campaign {campaign}: runs [{lo}, {hi}) -> worker {worker}"),
        FabricEvent::Progress {
            campaign,
            completed,
            total,
        } => eprintln!("[fabric] campaign {campaign}: {completed}/{total} runs durable"),
        FabricEvent::Queued {
            campaign,
            benchmark,
        } => eprintln!("[fabric] campaign {campaign} queued ({benchmark})"),
        FabricEvent::Finished { campaign } => eprintln!("[fabric] campaign {campaign} finished"),
        FabricEvent::ChaosKilled { worker } => eprintln!("[fabric] chaos: killed worker {worker}"),
    }
}

/// Print the merged result in the same shape the single-process
/// `campaign` binary uses, so diffs between the two are trivial.
fn print_result(result: &CampaignResult) {
    let f = result.fractions();
    println!(
        "{}: Masked {:.1}% SDC {:.1}% Crash {:.1}% Timeout {:.1}%  AVM {:.3} ({} quarantined)",
        result.benchmark,
        100.0 * f[0],
        100.0 * f[1],
        100.0 * f[2],
        100.0 * f[3],
        result.avm(),
        result.counts.quarantined,
    );
}

fn write_result(
    result: &CampaignResult,
    out: Option<&Path>,
    benchmark: &str,
) -> Result<(), TeiError> {
    let out = out.map_or_else(
        || PathBuf::from(format!("results/fabric-{benchmark}.json")),
        Path::to_path_buf,
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| TeiError::io("create output directory", dir, e))?;
        }
    }
    let body = serde_json::to_string_pretty(result).unwrap_or_default();
    atomic_write_checksummed(&out, (body + "\n").as_bytes())?;
    eprintln!("wrote {}", out.display());
    Ok(())
}

/// `tei campaign`: one-shot multi-process campaign over a locally
/// spawned worker fleet; merged result byte-identical to 1 process.
pub(crate) fn campaign(args: &[String]) -> Result<(), TeiError> {
    let fa = parse_args("campaign", args);
    require_spec("campaign", &fa.spec);
    let cfg = fleet_config(&fa)?;
    eprintln!(
        "[fabric] {} × {} × {} ({} runs, {} workers, journal {})",
        fa.spec.benchmark,
        fa.spec.model,
        fa.spec.vr,
        fa.spec.runs,
        cfg.workers,
        cfg.journal_dir.display()
    );
    let result = tei_core::run_fabric_campaign(&fa.spec, &cfg, &mut print_event)?;
    print_result(&result);
    write_result(&result, fa.out.as_deref(), &fa.spec.benchmark)
}

/// `tei serve`: resident coordinator + worker fleet; returns on signal.
pub(crate) fn serve(args: &[String]) -> Result<(), TeiError> {
    let fa = parse_args("serve", args);
    let cfg = fleet_config(&fa)?;
    tei_core::serve(&fa.listen, &cfg, &mut print_event)
}

/// `tei submit`: queue a campaign on a running server, stream progress,
/// and print + persist the merged result.
pub(crate) fn submit(args: &[String]) -> Result<(), TeiError> {
    let fa = parse_args("submit", args);
    require_spec("submit", &fa.spec);
    let Some(addr) = fa.connect else {
        eprintln!("tei submit: --connect <addr> is required\n{USAGE}");
        std::process::exit(2);
    };
    let stream = TcpStream::connect(&addr).map_err(|e| TeiError::Fabric {
        detail: format!("connect to server {addr}: {e}"),
    })?;
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone().map_err(|e| TeiError::Fabric {
        detail: format!("clone stream to {addr}: {e}"),
    })?;
    let mut writer = stream;
    let peer = format!("server {addr}");
    wire::send(
        &mut writer,
        &peer,
        &Message::Submit {
            spec: fa.spec.clone(),
        },
    )?;
    loop {
        match wire::recv(&mut reader, &peer)? {
            None => {
                return Err(TeiError::Fabric {
                    detail: format!("{peer} closed the connection before the result"),
                })
            }
            Some(Message::Accepted { campaign }) => {
                eprintln!("[submit] accepted as campaign {campaign}");
            }
            Some(Message::Refused { detail }) => {
                return Err(TeiError::Fabric {
                    detail: format!("{peer} refused the campaign: {detail}"),
                })
            }
            Some(Message::Progress {
                completed, total, ..
            }) => eprintln!("[submit] {completed}/{total} runs durable"),
            Some(Message::Finished { result, .. }) => {
                match serde_json::from_str::<CampaignResult>(&result) {
                    Ok(parsed) => {
                        print_result(&parsed);
                        write_result(&parsed, fa.out.as_deref(), &fa.spec.benchmark)?;
                    }
                    // Schema drift between client and server build:
                    // still deliver the payload.
                    Err(_) => println!("{result}"),
                }
                return Ok(());
            }
            Some(other) => eprintln!("[submit] ignoring unexpected message: {other:?}"),
        }
    }
}

/// `tei fabric-worker`: the process body the coordinator spawns.
pub(crate) fn worker(args: &[String]) -> Result<(), TeiError> {
    let mut connect: Option<String> = None;
    let mut token: Option<u64> = None;
    let mut index: Option<u32> = None;
    let mut journal_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("tei fabric-worker: {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--connect" => connect = Some(val()),
            "--token" => token = Some(parse_or_exit("fabric-worker", flag, &val())),
            "--index" => index = Some(parse_or_exit("fabric-worker", flag, &val())),
            "--journal-dir" => journal_dir = Some(PathBuf::from(val())),
            other => {
                eprintln!("tei fabric-worker: unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let (Some(connect), Some(token), Some(index), Some(journal_dir)) =
        (connect, token, index, journal_dir)
    else {
        eprintln!("tei fabric-worker: --connect, --token, --index, --journal-dir are all required");
        std::process::exit(2);
    };
    tei_core::config::validate_env()?;
    tei_core::shutdown::install_handlers();
    tei_core::fabric::worker_main(&connect, token, index, &journal_dir)
}
