//! The static-verification subcommands: `lint` (structural netlist
//! lints) and `codegen` (generated-kernel staleness + equivalence).

use crate::USAGE;
use tei_netlist::{lint_module, lint_netlist, parse_verilog, to_verilog, CellLibrary};

/// Run the codegen subcommand; returns whether every unit came back clean.
pub(crate) fn codegen(args: &[String]) -> bool {
    let mode = args.first().map(String::as_str);
    let (emit_dir, tags) = match mode {
        Some("--check") => (None, &args[1..]),
        Some("--emit") => {
            let Some(dir) = args.get(1) else {
                eprintln!("tei: --emit needs a target directory\n{USAGE}");
                std::process::exit(2);
            };
            (Some(std::path::PathBuf::from(dir)), &args[2..])
        }
        _ => {
            eprintln!("tei: codegen needs --check or --emit\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (bank, spec) = tei_core::dev::default_bank();
    let all_tags: Vec<&str> = bank.iter().map(|u| u.tag()).collect();
    for tag in tags {
        if !all_tags.contains(&tag.as_str()) {
            eprintln!(
                "tei: unknown unit tag {tag:?} (known: {})",
                all_tags.join(", ")
            );
            std::process::exit(2);
        }
    }
    let mut clean = true;
    for unit in bank.iter() {
        if !tags.is_empty() && !tags.iter().any(|t| t == unit.tag()) {
            continue;
        }
        clean &= match &emit_dir {
            Some(dir) => emit_unit(unit, dir),
            None => check_unit(unit, spec.clk),
        };
    }
    clean
}

/// Re-emit one unit's specialized source into `dir`.
fn emit_unit(unit: &tei_fpu::FpuUnit, dir: &std::path::Path) -> bool {
    let module = unit.tag().replace('-', "_");
    let levels = unit.dta_netlist().levelize();
    let keep: Vec<u32> = unit
        .result_port()
        .iter()
        .map(|n| n.index() as u32)
        .collect();
    let source = tei_timing::emit_program(unit.dta_compiled(), &levels, &module, unit.tag(), &keep);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("tei: cannot create {}: {e}", dir.display());
        return false;
    }
    let path = dir.join(format!("{module}.rs"));
    match std::fs::write(&path, &source) {
        Ok(()) => {
            println!("{}: emitted {}", unit.tag(), path.display());
            true
        }
        Err(e) => {
            eprintln!("tei: cannot write {}: {e}", path.display());
            false
        }
    }
}

/// Verify one unit's shipped kernel: registered, fingerprint-fresh
/// against the freshly regenerated netlist, and bit-identical to the
/// interpreter over a fixed-seed operand batch at the default width.
fn check_unit(unit: &tei_fpu::FpuUnit, clk: f64) -> bool {
    use tei_core::dev::{dta_campaign_tuned, random_operand_pairs, DtaTuning, KernelBackend};
    use tei_timing::VoltageReduction;

    let fingerprint = unit.dta_compiled().fingerprint();
    let entry = match tei_kernels::registry().entry_for_tag(unit.tag()) {
        Some(e) => e,
        None => {
            println!("{}: STALE — no generated kernel registered", unit.tag());
            return false;
        }
    };
    if entry.fingerprint != fingerprint {
        println!(
            "{}: STALE — shipped kernel fingerprint {:#018x} != regenerated {:#018x} \
             (rebuild tei-kernels)",
            unit.tag(),
            entry.fingerprint,
            fingerprint
        );
        return false;
    }
    let levels = [VoltageReduction::VR15, VoltageReduction::VR20];
    let pairs = random_operand_pairs(unit.op(), 600, 0x0c0d_e9e4);
    let run = |backend: KernelBackend| {
        let tuning = DtaTuning {
            backend,
            ..DtaTuning::default()
        };
        dta_campaign_tuned(unit, &pairs, clk, &levels, 1, tuning)
            .map(|stats| serde_json::to_string(&stats).expect("stats serialize"))
    };
    match (
        run(KernelBackend::Interpreter),
        run(KernelBackend::Generated),
    ) {
        (Ok(interp), Ok(generated)) if interp == generated => {
            println!(
                "{}: fresh ({:#018x}), {} transitions bit-identical to interpreter",
                unit.tag(),
                fingerprint,
                pairs.len() - 1
            );
            true
        }
        (Ok(_), Ok(_)) => {
            println!(
                "{}: MISMATCH — generated kernel diverged from interpreter",
                unit.tag()
            );
            false
        }
        (Err(e), _) | (_, Err(e)) => {
            println!("{}: ERROR — {e}", unit.tag());
            false
        }
    }
}

/// Run the lint subcommand; returns whether every design came back clean.
pub(crate) fn lint(args: &[String]) -> bool {
    if args.iter().any(|a| a == "--fpu") {
        if args.len() != 1 {
            eprintln!("tei: --fpu takes no file arguments\n{USAGE}");
            std::process::exit(2);
        }
        return lint_fpu_bank();
    }
    if args.is_empty() {
        eprintln!("tei: lint needs --fpu or at least one Verilog file\n{USAGE}");
        std::process::exit(2);
    }
    let lib = CellLibrary::nangate45_like();
    let mut clean = true;
    for path in args {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("tei: cannot read {path}: {e}");
                clean = false;
                continue;
            }
        };
        let module = match parse_verilog(&src) {
            Ok(module) => module,
            Err(e) => {
                eprintln!("tei: {path}: {e}");
                clean = false;
                continue;
            }
        };
        clean &= report(path, &lint_module(&module, &lib));
    }
    clean
}

/// Lint the generated FPU bank: the functional and DTA netlists of every
/// unit, plus an export → parse → module-lint round-trip of the first
/// unit to cover the Verilog path end to end.
fn lint_fpu_bank() -> bool {
    let (bank, _) = tei_core::dev::default_bank();
    let mut clean = true;
    for unit in bank.iter() {
        clean &= report(unit.tag(), &lint_netlist(unit.netlist()));
        let dta = unit.dta_netlist();
        clean &= report(&format!("{} (DTA)", unit.tag()), &lint_netlist(&dta));
    }
    if let Some(unit) = bank.iter().next() {
        let src = to_verilog(unit.netlist());
        match parse_verilog(&src) {
            Ok(module) => {
                let diags = lint_module(&module, unit.netlist().library());
                clean &= report(&format!("{} (round-trip)", unit.tag()), &diags);
            }
            Err(e) => {
                eprintln!("tei: {} round-trip failed to parse: {e}", unit.tag());
                clean = false;
            }
        }
    }
    clean
}

/// Print one design's diagnostics; returns whether it was clean.
fn report(design: &str, diags: &[tei_netlist::LintDiagnostic]) -> bool {
    if diags.is_empty() {
        println!("{design}: clean");
        return true;
    }
    println!(
        "{design}: {} finding{}",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    for d in diags {
        println!("  {d}");
    }
    false
}
