//! Toolflow front-end: the `tei` command.
//!
//! Static verification (see DESIGN.md, "Static verification"):
//!
//! * `tei lint` — structural netlist lints over Verilog files or the
//!   generated FPU bank.
//! * `tei codegen` — staleness + interpreter-equivalence checks of the
//!   shipped netlist-specialized kernels, and re-emission of their
//!   sources.
//!
//! Campaign fabric (see DESIGN.md, "Campaign fabric"):
//!
//! * `tei campaign --workers N` — one-shot lease-partitioned
//!   multi-process injection campaign; byte-identical to the
//!   single-process run and resumable after any crash.
//! * `tei serve` — resident coordinator: keeps one worker fleet and its
//!   golden/checkpoint caches warm across queued campaigns.
//! * `tei submit` — queue a campaign on a running server and stream its
//!   progress until the merged result arrives.
//! * `tei fabric-worker` — the worker process body the coordinator
//!   spawns (internal; documented for completeness).
//!
//! Exit codes: 0 clean, 1 findings or campaign failure, 2 usage,
//! 130 interrupted (journals retained; re-run to resume).

mod checks;
mod fabric_cli;

const USAGE: &str = "usage: tei <subcommand> [args]

static verification:
  tei lint --fpu | <file.v> ...         structural netlist lints
  tei codegen --check [tag ...]         shipped-kernel staleness + equivalence
  tei codegen --emit <dir> [tag ...]    re-emit specialized kernel sources

campaign fabric:
  tei campaign --benchmark <name> [--workers <n>] [options]
                                        one-shot multi-process campaign
  tei serve [--listen <addr>] [--workers <n>] [options]
                                        resident coordinator + worker fleet
  tei submit --connect <addr> --benchmark <name> [options]
                                        queue a campaign on a running server
  tei fabric-worker --connect <addr> --token <t> --index <i> --journal-dir <d>
                                        internal: fleet worker process

campaign options:
  --benchmark <name>       benchmark (e.g. is, sobel, k-means)
  --model fixed[:<er>]     fixed-ratio DA model (default fixed:1e-2)
  --vr vr15|vr20           voltage-reduction corner (default vr20)
  --scale test|small|full  benchmark problem size (default test)
  --runs <n>               injection runs (default 120)
  --seed <n>               base RNG seed (default 1)
  --timeout-factor <x>     timeout as a multiple of golden instructions
  --threads-per-worker <n> threads inside each worker process (default 1)
  --throttle-ms <n>        per-run sleep, for kill tests (default 0)
  --out <file>             result JSON (default results/fabric-<bench>.json)

fleet options:
  --workers <n>            worker processes (default 2)
  --leases-per-worker <n>  lease granularity when partitioning (default 4)
  --lease-timeout-s <n>    hung-worker lease expiry backstop (default 600)
  --journal-dir <dir>      journal directory (default TEI_JOURNAL_DIR or journal/)
  --listen <addr>          serve address (default 127.0.0.1:2017)
  --chaos-kill-worker <w>:<n>  test hook: SIGKILL worker w after n leases";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return;
    }
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let rest = &args[1..];
    let code = match cmd.as_str() {
        "lint" => {
            if checks::lint(rest) {
                0
            } else {
                1
            }
        }
        "codegen" => {
            if checks::codegen(rest) {
                0
            } else {
                1
            }
        }
        "campaign" => fabric_cli::exit_code(fabric_cli::campaign(rest)),
        "serve" => fabric_cli::exit_code(fabric_cli::serve(rest)),
        "submit" => fabric_cli::exit_code(fabric_cli::submit(rest)),
        "fabric-worker" => fabric_cli::exit_code(fabric_cli::worker(rest)),
        other => {
            eprintln!("tei: unknown subcommand {other:?}\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}
