//! Statistical fault-injection sample sizing (Leveugle et al., DATE'09),
//! which the paper uses to choose 1068 runs per campaign cell.

use crate::error::TeiError;

/// Number of injection runs for a given error margin `e` and confidence
/// level, assuming the worst-case outcome variance (p = 0.5) and an
/// effectively infinite fault population:
///
/// `n = t² · p(1−p) / e²`
///
/// where `t` is the two-sided normal quantile of the confidence level.
///
/// # Errors
///
/// [`TeiError::Config`] unless `0 < e < 1`, and
/// [`TeiError::UnsupportedConfidence`] for confidence levels outside the
/// supported table (0.90, 0.95, 0.99).
pub fn sample_size(error_margin: f64, confidence: f64) -> Result<usize, TeiError> {
    if !(error_margin > 0.0 && error_margin < 1.0) {
        return Err(TeiError::Config {
            knob: "error_margin".to_string(),
            reason: format!("{error_margin} is outside (0, 1)"),
        });
    }
    let t = match confidence {
        c if (c - 0.90).abs() < 1e-9 => 1.6449,
        c if (c - 0.95).abs() < 1e-9 => 1.9600,
        c if (c - 0.99).abs() < 1e-9 => 2.5758,
        other => return Err(TeiError::UnsupportedConfidence(other)),
    };
    let p = 0.5;
    Ok((t * t * p * (1.0 - p) / (error_margin * error_margin)).ceil() as usize)
}

/// Finite-population correction: runs needed when only `population` faults
/// exist (Leveugle eq. for finite N).
///
/// # Errors
///
/// Propagates [`sample_size`] errors.
pub fn sample_size_finite(
    population: u64,
    error_margin: f64,
    confidence: f64,
) -> Result<usize, TeiError> {
    let n0 = sample_size(error_margin, confidence)? as f64;
    let n = population as f64;
    if n <= 0.0 {
        return Ok(0);
    }
    Ok(
        (n / (1.0 + (n - 1.0) * (error_margin * error_margin) / (n0 * error_margin * error_margin)))
            .min(n)
            .ceil() as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_reproduced() {
        // 3 % margin, 95 % confidence → the paper's 1068 runs.
        assert_eq!(sample_size(0.03, 0.95).unwrap(), 1068);
    }

    #[test]
    fn tighter_margins_need_more_runs() {
        assert!(sample_size(0.01, 0.95).unwrap() > sample_size(0.03, 0.95).unwrap());
        assert!(sample_size(0.03, 0.99).unwrap() > sample_size(0.03, 0.95).unwrap());
    }

    #[test]
    fn finite_population_caps_runs() {
        assert!(sample_size_finite(500, 0.03, 0.95).unwrap() <= 500);
        // A huge population approaches the infinite-population size.
        let inf = sample_size(0.03, 0.95).unwrap();
        let big = sample_size_finite(100_000_000, 0.03, 0.95).unwrap();
        assert!((big as i64 - inf as i64).abs() <= 1);
    }

    #[test]
    fn odd_confidence_rejected() {
        let err = sample_size(0.03, 0.80).unwrap_err();
        assert!(matches!(err, TeiError::UnsupportedConfidence(c) if (c - 0.80).abs() < 1e-12));
        assert!(sample_size(0.0, 0.95).is_err(), "margin must be in (0,1)");
        assert!(sample_size_finite(10, 0.03, 0.42).is_err());
    }
}
