//! The three timing-error injection models of the paper's Table I:
//! data-agnostic (DA), instruction-aware (IA), and the proposed
//! instruction- and workload-aware (WA) model.

// Orchestration must degrade to typed errors, never panic mid-sweep
// (clippy.toml bans the panicking extractors here).
#![deny(clippy::disallowed_methods)]

use crate::dev::{
    dta_campaign_with_threads, per_op_parallel, random_operand_pairs, DaCalibration, OpErrorStats,
    TraceSet,
};
use crate::error::TeiError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tei_fpu::{FpuBank, FpuTimingSpec};
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;

/// A timing-error injection model at a fixed voltage-reduction level:
/// per-instruction error probabilities plus a bitmask sampler.
pub trait InjectionModel {
    /// Model family name (`DA-model`, `IA-model`, `WA-model`).
    fn name(&self) -> &'static str;

    /// The modeled voltage-reduction level.
    fn vr(&self) -> VoltageReduction;

    /// Probability that one dynamic instance of `op` suffers a timing error.
    fn error_ratio(&self, op: FpOp) -> f64;

    /// Draw a (non-zero) destination-register error bitmask for `op`,
    /// given that an error occurs.
    fn sample_mask(&self, op: FpOp, rng: &mut dyn rand::RngCore) -> u64;
}

/// Model family tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelKind {
    /// Data-agnostic fixed-probability model.
    Da,
    /// Instruction-aware statistical model.
    Ia,
    /// Instruction- and workload-aware model (the paper's proposal).
    Wa,
}

impl ModelKind {
    /// All three, paper order.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Da, ModelKind::Ia, ModelKind::Wa]
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Da => "DA-model",
            ModelKind::Ia => "IA-model",
            ModelKind::Wa => "WA-model",
        }
    }
}

// ---------------------------------------------------------------------
// DA model
// ---------------------------------------------------------------------

/// Data-agnostic model: one fixed error ratio for every instruction at a
/// given voltage, single uniformly-placed bit flip (Section II.B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaModel {
    vr: VoltageReduction,
    er: f64,
}

impl DaModel {
    /// Build from a calibration (Monte-Carlo DTA over a benchmark mix).
    ///
    /// # Errors
    ///
    /// [`TeiError::MissingVrLevel`] naming the level when the calibration
    /// does not contain it.
    pub fn from_calibration(cal: &DaCalibration, vr: VoltageReduction) -> Result<Self, TeiError> {
        let er = cal
            .er
            .iter()
            .find(|(v, _)| *v == vr)
            .map(|&(_, e)| e)
            .ok_or_else(|| TeiError::MissingVrLevel {
                vr: vr.label(),
                context: "DA calibration",
            })?;
        Ok(DaModel { vr, er })
    }

    /// Build directly from a fixed error ratio (e.g. the paper's published
    /// 1e-3 @ VR15 and 1e-2 @ VR20).
    pub fn from_fixed(vr: VoltageReduction, er: f64) -> Self {
        DaModel { vr, er }
    }

    /// The fixed error ratio.
    pub fn fixed_er(&self) -> f64 {
        self.er
    }
}

impl InjectionModel for DaModel {
    fn name(&self) -> &'static str {
        "DA-model"
    }

    fn vr(&self) -> VoltageReduction {
        self.vr
    }

    fn error_ratio(&self, _op: FpOp) -> f64 {
        self.er
    }

    fn sample_mask(&self, op: FpOp, rng: &mut dyn rand::RngCore) -> u64 {
        // Single uniformly-selected bit of the destination register.
        1u64 << rng.gen_range(0..op.result_bits())
    }
}

// ---------------------------------------------------------------------
// Statistical (IA / WA) models
// ---------------------------------------------------------------------

/// How a statistical model turns its DTA statistics into masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MaskSampling {
    /// Draw from the library of empirically observed bitmasks (captures
    /// correlated multi-bit flips — the default, and the paper's method).
    #[default]
    Empirical,
    /// Draw each bit independently from its BER (the ablation variant).
    IndependentBits,
}

/// Per-operation statistics shared by the IA and WA models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatModel {
    kind: ModelKind,
    vr: VoltageReduction,
    sampling: MaskSampling,
    per_op: Vec<OpStats>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct OpStats {
    error_ratio: f64,
    /// Conditional per-bit flip probability given an error (for the
    /// independent-bit sampler) — `bit_errors / faulty`.
    cond_bits: Vec<f64>,
    masks: Vec<u64>,
    /// Unconditional per-bit error ratios (reported as Figures 7/8).
    ber: Vec<f64>,
}

impl StatModel {
    // Documented invariant: the public constructors above pass a single
    // VR level down to every per-op campaign, so mixed-VR stats here are
    // a caller bug inside this module, not an operational failure.
    fn from_stats(
        kind: ModelKind,
        vr: VoltageReduction,
        sampling: MaskSampling,
        stats: &[OpErrorStats],
    ) -> Self {
        let mut per_op: Vec<OpStats> = FpOp::all()
            .iter()
            .map(|op| OpStats {
                error_ratio: 0.0,
                cond_bits: vec![0.0; op.result_bits() as usize],
                masks: Vec::new(),
                ber: vec![0.0; op.result_bits() as usize],
            })
            .collect();
        for s in stats {
            assert_eq!(s.vr, vr, "mixed VR levels in model construction");
            let slot = &mut per_op[s.op.index()];
            slot.error_ratio = s.error_ratio();
            slot.ber = s.ber();
            slot.cond_bits = s
                .bit_errors
                .iter()
                .map(|&c| {
                    if s.faulty == 0 {
                        0.0
                    } else {
                        c as f64 / s.faulty as f64
                    }
                })
                .collect();
            slot.masks = s.masks.clone();
        }
        StatModel {
            kind,
            vr,
            sampling,
            per_op,
        }
    }

    /// Build the instruction-aware model: DTA over uniformly random
    /// operands per instruction type (paper Section IV.C.2). Per-op
    /// campaigns are distributed over worker threads; the stats come
    /// back in op order, so the model is thread-count independent.
    ///
    /// # Errors
    ///
    /// [`TeiError::EmptyDta`] when a per-op campaign yields no stats for
    /// the requested VR level, [`TeiError::WorkerPool`] if the worker
    /// pool fails.
    pub fn instruction_aware(
        bank: &FpuBank,
        spec: &FpuTimingSpec,
        vr: VoltageReduction,
        samples_per_op: usize,
        seed: u64,
    ) -> Result<Self, TeiError> {
        let stats: Vec<OpErrorStats> = per_op_parallel(|op| {
            let pairs = random_operand_pairs(op, samples_per_op, seed);
            dta_campaign_with_threads(bank.unit(op), &pairs, spec.clk, &[vr], 1)?
                .pop()
                .ok_or_else(|| TeiError::EmptyDta {
                    op: op.to_string(),
                    vr: vr.label(),
                })
        })?
        .into_iter()
        .collect::<Result<_, _>>()?;
        #[cfg(feature = "sanitize-arrivals")]
        Self::sanitize_masks_against_oracle(bank, spec, &stats);
        Ok(Self::from_stats(
            ModelKind::Ia,
            vr,
            MaskSampling::default(),
            &stats,
        ))
    }

    /// Cross-layer sanitizer: no error mask a campaign observed may
    /// touch an output bit the static slack oracle proves safe — the
    /// model layer's independent restatement of the pruning soundness
    /// argument (see DESIGN.md, "Static verification").
    #[cfg(feature = "sanitize-arrivals")]
    fn sanitize_masks_against_oracle(bank: &FpuBank, spec: &FpuTimingSpec, stats: &[OpErrorStats]) {
        use tei_timing::SlackOracle;
        for s in stats {
            let unit = bank.unit(s.op);
            let compiled = unit.dta_compiled();
            let oracle = SlackOracle::from_bounds(
                compiled.static_bounds().to_vec(),
                unit.result_port().to_vec(),
            );
            let safe = oracle.safe_bits_at(spec.clk, s.vr.derating_factor());
            let mut safe_mask = 0u64;
            for bit in 0..safe.len() {
                if safe.is_safe(bit) {
                    safe_mask |= 1 << bit;
                }
            }
            for &m in &s.masks {
                assert_eq!(
                    m & safe_mask,
                    0,
                    "sanitize-arrivals: {} mask {m:#x} touches statically-safe bits",
                    s.op
                );
            }
        }
    }

    /// Build the workload-aware model: DTA over the operand trace of the
    /// target benchmark (paper Section IV.C.3). Parallelized like
    /// [`StatModel::instruction_aware`].
    ///
    /// # Errors
    ///
    /// See [`StatModel::instruction_aware`].
    pub fn workload_aware(
        bank: &FpuBank,
        spec: &FpuTimingSpec,
        vr: VoltageReduction,
        trace: &TraceSet,
        per_op_cap: usize,
    ) -> Result<Self, TeiError> {
        let stats: Vec<OpErrorStats> = per_op_parallel(|op| {
            let t = trace.of(op);
            let take = t.len().min(per_op_cap);
            dta_campaign_with_threads(bank.unit(op), &t[..take], spec.clk, &[vr], 1)?
                .pop()
                .ok_or_else(|| TeiError::EmptyDta {
                    op: op.to_string(),
                    vr: vr.label(),
                })
        })?
        .into_iter()
        .collect::<Result<_, _>>()?;
        #[cfg(feature = "sanitize-arrivals")]
        Self::sanitize_masks_against_oracle(bank, spec, &stats);
        Ok(Self::from_stats(
            ModelKind::Wa,
            vr,
            MaskSampling::default(),
            &stats,
        ))
    }

    /// Switch the mask-sampling strategy (ablation).
    pub fn with_sampling(mut self, sampling: MaskSampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// The per-bit error ratios for `op` (Figures 7 and 8).
    pub fn ber(&self, op: FpOp) -> &[f64] {
        &self.per_op[op.index()].ber
    }
}

impl InjectionModel for StatModel {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn vr(&self) -> VoltageReduction {
        self.vr
    }

    fn error_ratio(&self, op: FpOp) -> f64 {
        self.per_op[op.index()].error_ratio
    }

    fn sample_mask(&self, op: FpOp, rng: &mut dyn rand::RngCore) -> u64 {
        let s = &self.per_op[op.index()];
        match self.sampling {
            MaskSampling::Empirical => {
                if s.masks.is_empty() {
                    // Model says errors happen but holds no mask (can only
                    // occur with truncated libraries): fall back to one bit.
                    return 1u64 << rng.gen_range(0..op.result_bits());
                }
                s.masks[rng.gen_range(0..s.masks.len())]
            }
            MaskSampling::IndependentBits => {
                let mut mask = 0u64;
                for (bit, &p) in s.cond_bits.iter().enumerate() {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        mask |= 1 << bit;
                    }
                }
                if mask == 0 {
                    mask = 1u64 << rng.gen_range(0..op.result_bits());
                }
                mask
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests should panic loudly, not thread errors.
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tei_softfloat::{FpOpKind, Precision};

    #[test]
    fn da_model_is_instruction_agnostic() {
        let m = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
        let mul = FpOp::new(FpOpKind::Mul, Precision::Double);
        let cvt = FpOp::new(FpOpKind::ItoF, Precision::Single);
        assert_eq!(m.error_ratio(mul), 1e-2);
        assert_eq!(m.error_ratio(cvt), 1e-2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let mask = m.sample_mask(mul, &mut rng);
            assert_eq!(mask.count_ones(), 1, "DA flips exactly one bit");
        }
        // Single-precision masks stay within 32 bits.
        for _ in 0..100 {
            let mask = m.sample_mask(cvt, &mut rng);
            assert!(mask < (1u64 << 32));
        }
    }

    #[test]
    fn missing_vr_level_is_a_typed_error() {
        let cal = crate::dev::DaCalibration {
            er: vec![(VoltageReduction::VR15, 1e-3)],
        };
        assert!(DaModel::from_calibration(&cal, VoltageReduction::VR15).is_ok());
        let err = DaModel::from_calibration(&cal, VoltageReduction::VR20).unwrap_err();
        match err {
            crate::TeiError::MissingVrLevel { vr, context } => {
                assert_eq!(vr, VoltageReduction::VR20.label());
                assert_eq!(context, "DA calibration");
            }
            other => panic!("expected MissingVrLevel, got {other}"),
        }
    }

    #[test]
    fn model_kind_labels() {
        assert_eq!(ModelKind::Da.label(), "DA-model");
        assert_eq!(ModelKind::Wa.label(), "WA-model");
        assert_eq!(ModelKind::all().len(), 3);
    }
}
