//! Cooperative shutdown for long-running sweeps.
//!
//! Durable campaigns install SIGINT/SIGTERM handlers that set a process-
//! wide flag; workers poll it between injection runs, drain, and the
//! campaign flushes its journal before returning
//! [`TeiError::Interrupted`](crate::TeiError::Interrupted). A second
//! ctrl-C therefore still kills the process the ordinary way — the
//! journal's fsync'd append path makes even that safe, losing at most the
//! in-flight runs.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown signal was received (or [`request`]ed).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatically request shutdown (tests and embedders).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clear the flag (tests only — a real process exits after draining).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one relaxed store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Install SIGINT/SIGTERM handlers (idempotent; unix only — a no-op
/// elsewhere). Uses the libc `signal` symbol std already links, so no
/// external crate is needed.
pub fn install_handlers() {
    #[cfg(unix)]
    {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        install_handlers(); // must not crash, idempotent
        install_handlers();
    }
}
