//! # tei-core
//!
//! The paper's primary contribution: the cross-layer timing error injection
//! toolflow (Figure 2).
//!
//! * **Model development phase** ([`dev`]) — dynamic timing analysis
//!   campaigns over the gate-level FPU units extract per-instruction,
//!   per-bit error statistics and bitmask libraries.
//! * **Error models** ([`models`]) — the data-agnostic (DA),
//!   instruction-aware (IA), and workload-aware (WA) injection models of
//!   Table I.
//! * **Application evaluation phase** ([`campaign`]) — microarchitecture-
//!   aware injection campaigns over the benchmark programs, classifying
//!   every run as Masked / SDC / Crash / Timeout and computing the
//!   Application Vulnerability Metric (AVM, eq. 4).
//! * **Energy analysis** ([`power`]) — the calibrated power model and
//!   AVM-guided operating-point selection of Section V.C.
//! * **Statistics** ([`stats`]) — Leveugle sample sizing (the 1068 runs).
//! * **Durability** ([`journal`], [`error`], [`shutdown`]) — write-ahead
//!   outcome journals with manifest-keyed resume, panic-isolated runs
//!   with quarantine + retry, typed orchestration errors, and
//!   signal-drained shutdown, so multi-hour sweeps survive crashes,
//!   poisoned runs, and ctrl-C without losing completed work.
//! * **Campaign fabric** ([`fabric`]) — lease-partitioned multi-process
//!   campaigns over the journal layer (coordinator + worker fleet over a
//!   localhost framed socket, with a resident `tei serve` front end);
//!   the merged result is byte-identical to the single-process run.
//!
//! ## Example
//!
//! ```no_run
//! use tei_core::{campaign, dev, models, models::InjectionModel};
//! use tei_timing::VoltageReduction;
//! use tei_workloads::{build, BenchmarkId, Scale};
//!
//! # fn main() -> Result<(), tei_core::TeiError> {
//! // Model development: generate the FPU bank and a workload-aware model.
//! let (bank, spec) = dev::default_bank();
//! let bench = build(BenchmarkId::Sobel, Scale::Small);
//! let trace = dev::TraceSet::capture(&bench.program, 8 << 20, u64::MAX, 20_000);
//! let wa = models::StatModel::workload_aware(
//!     &bank, &spec, VoltageReduction::VR20, &trace, 20_000)?;
//!
//! // Application evaluation: run the injection campaign durably — every
//! // completed run is journaled, and an interrupted sweep resumes.
//! let golden = campaign::GoldenRun::capture(&bench, 8 << 20, u64::MAX)?;
//! let cfg = campaign::CampaignConfig::default();
//! let result = campaign::run_campaign_durable(
//!     "sobel", &golden, &wa, &cfg, &tei_core::config::default_journal_dir())?;
//! println!("AVM = {:.3}", result.avm());
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod config;
pub mod dev;
pub mod error;
pub mod fabric;
pub mod journal;
pub mod models;
pub mod power;
pub mod shutdown;
pub mod stats;

pub use campaign::{
    CampaignConfig, CampaignResult, GoldenRun, Outcome, OutcomeCounts, QuarantinedRun, ReplayMode,
};
pub use dev::{
    DaCalibration, DtaTuning, KernelBackend, OpErrorStats, PruneDecision, PrunePolicy, TraceSet,
};
pub use error::TeiError;
pub use fabric::{run_fabric_campaign, serve, CampaignSpec, FabricConfig, FabricEvent};
pub use journal::{atomic_write, atomic_write_checksummed, fnv64, CampaignManifest, Journal};
pub use models::{DaModel, InjectionModel, MaskSampling, ModelKind, StatModel};
