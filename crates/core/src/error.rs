//! Typed errors for the orchestration (non-hot) paths of the toolflow.
//!
//! Hot per-run replay code stays `Result`-free — it operates on data the
//! golden run already validated — but everything that touches the outside
//! world (env knobs, filesystems, model calibration inputs, worker pools)
//! surfaces a [`TeiError`] instead of panicking, so a multi-hour campaign
//! can report *what* went wrong and leave its journal resumable.

use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by campaign orchestration, model development, and the
/// durable-journal layer.
#[derive(Debug)]
pub enum TeiError {
    /// An environment knob or config field holds an unusable value.
    Config {
        /// Knob or field name (e.g. `TEI_THREADS`).
        knob: String,
        /// What was wrong with it.
        reason: String,
    },
    /// [`crate::stats::sample_size`] got a confidence level outside the
    /// supported table.
    UnsupportedConfidence(f64),
    /// A model constructor asked a calibration for a VR level it does not
    /// contain.
    MissingVrLevel {
        /// The requested level's label (e.g. `VR20`).
        vr: String,
        /// Which lookup failed.
        context: &'static str,
    },
    /// A DTA campaign produced no stats for a requested `(op, vr)` cell.
    EmptyDta {
        /// Operation label.
        op: String,
        /// VR level label.
        vr: String,
    },
    /// The error-free golden run of a benchmark did not complete cleanly.
    GoldenRun {
        /// Benchmark name.
        benchmark: String,
        /// Failure detail (exit reason / core disagreement).
        detail: String,
    },
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (`create journal`, `rename artifact`).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A journal file failed structural validation beyond simple tail
    /// truncation (bad magic, unreadable manifest).
    JournalCorrupt {
        /// Journal path.
        path: PathBuf,
        /// What was malformed.
        reason: String,
    },
    /// An existing journal was recorded under a different campaign
    /// manifest; resuming would silently merge incompatible sweeps.
    ManifestMismatch {
        /// Journal path.
        path: PathBuf,
        /// Manifest hash the current campaign expects.
        expected: u64,
        /// Manifest hash stored in the journal.
        found: u64,
    },
    /// The sweep was interrupted (SIGINT/SIGTERM) after draining workers
    /// and flushing the journal; completed runs are preserved on disk.
    Interrupted {
        /// Runs durably recorded before stopping.
        completed: u64,
        /// Total runs the campaign wants.
        requested: u64,
    },
    /// A worker pool could not be joined — the scoped-thread invariant
    /// (workers never unwind past their isolation boundary) was violated.
    WorkerPool(&'static str),
    /// A fabric peer (worker, coordinator, or client) violated the wire
    /// protocol: bad handshake token, corrupt frame, or a message that is
    /// not valid in the connection's current state.
    Protocol {
        /// Which peer misbehaved (e.g. `worker 3`, `client 127.0.0.1:…`).
        peer: String,
        /// What was wrong.
        detail: String,
    },
    /// The multi-process campaign fabric failed as a whole: workers could
    /// not be spawned, every worker died with leases outstanding, or the
    /// final merge found conflicting records.
    Fabric {
        /// What went wrong.
        detail: String,
    },
    /// Structural lints found defects in a netlist a campaign was about
    /// to analyze (combinational loops, floating nets, dead logic, …).
    NetlistLint {
        /// Design name the lints ran against.
        design: String,
        /// Every finding, with the nets involved.
        diagnostics: Vec<tei_netlist::LintDiagnostic>,
    },
}

impl fmt::Display for TeiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeiError::Config { knob, reason } => write!(f, "invalid {knob}: {reason}"),
            TeiError::UnsupportedConfidence(c) => write!(
                f,
                "unsupported confidence level {c} (supported: 0.90, 0.95, 0.99)"
            ),
            TeiError::MissingVrLevel { vr, context } => {
                write!(f, "VR level {vr} missing from {context}")
            }
            TeiError::EmptyDta { op, vr } => {
                write!(f, "DTA campaign returned no stats for {op} at {vr}")
            }
            TeiError::GoldenRun { benchmark, detail } => {
                write!(f, "golden run of {benchmark} failed: {detail}")
            }
            TeiError::Io { op, path, source } => {
                write!(f, "could not {op} {}: {source}", path.display())
            }
            TeiError::JournalCorrupt { path, reason } => {
                write!(f, "journal {} is corrupt: {reason}", path.display())
            }
            TeiError::ManifestMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal {} belongs to a different campaign \
                 (manifest {found:#018x}, expected {expected:#018x}); \
                 delete it or point TEI_JOURNAL_DIR elsewhere",
                path.display()
            ),
            TeiError::Interrupted {
                completed,
                requested,
            } => write!(
                f,
                "campaign interrupted after {completed}/{requested} runs; \
                 journal flushed, re-run to resume"
            ),
            TeiError::WorkerPool(what) => write!(f, "worker pool failure in {what}"),
            TeiError::Protocol { peer, detail } => {
                write!(f, "fabric protocol violation from {peer}: {detail}")
            }
            TeiError::Fabric { detail } => write!(f, "campaign fabric failed: {detail}"),
            TeiError::NetlistLint {
                design,
                diagnostics,
            } => {
                write!(
                    f,
                    "netlist {design} failed structural lints ({} finding{}):",
                    diagnostics.len(),
                    if diagnostics.len() == 1 { "" } else { "s" }
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TeiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TeiError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl TeiError {
    /// Wrap an I/O error with the operation and path that hit it.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        TeiError::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// True when the error is the cooperative-interrupt signal (not a
    /// failure: the journal holds every completed run).
    pub fn is_interrupted(&self) -> bool {
        matches!(self, TeiError::Interrupted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = TeiError::ManifestMismatch {
            path: PathBuf::from("j/x.wal"),
            expected: 1,
            found: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("different campaign"));
        assert!(msg.contains("TEI_JOURNAL_DIR"));
        assert!(TeiError::Interrupted {
            completed: 3,
            requested: 10
        }
        .is_interrupted());
    }

    #[test]
    fn lint_display_lists_findings() {
        let e = TeiError::NetlistLint {
            design: "d-add".into(),
            diagnostics: vec![tei_netlist::LintDiagnostic {
                kind: tei_netlist::LintKind::FloatingNet,
                nets: vec!["n7".into()],
            }],
        };
        let msg = e.to_string();
        assert!(msg.contains("d-add failed structural lints (1 finding)"));
        assert!(msg.contains("floating-net: n7"));
    }

    #[test]
    fn io_wrapper_keeps_source() {
        use std::error::Error as _;
        let e = TeiError::io(
            "create journal",
            "/nope/x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().contains("create journal"));
    }
}
