//! Power/energy model and AVM-guided voltage selection (paper Section V.C).
//!
//! Substitutes the Voltus power measurements: normalized core power as a
//! function of supply reduction, calibrated through the paper's anchor
//! points (≈21 % savings at 10 % reduction, ≈56 % at 20 %), plus the
//! energy accounting for the AVM-guided operating-point selection and a
//! simple error-prevention (instruction clock-stretch) mitigation model.

use serde::{Deserialize, Serialize};
use tei_timing::VoltageReduction;

/// Normalized power at a supply-reduction fraction `f` (0 = nominal):
/// the quadratic `P(f) = 1 − 1.4 f − 7 f²` fitted through the paper's
/// anchor points `P(0) = 1`, `P(0.10) ≈ 0.79`, `P(0.20) = 0.44`.
pub fn power_ratio_at(fraction: f64) -> f64 {
    assert!(
        (0.0..=0.3).contains(&fraction),
        "reduction fraction out of the calibrated range"
    );
    1.0 - 1.4 * fraction - 7.0 * fraction * fraction
}

/// Normalized power at a VR level.
pub fn power_ratio(vr: VoltageReduction) -> f64 {
    power_ratio_at(vr.fraction())
}

/// Power savings (fraction of nominal) at a VR level.
pub fn power_savings(vr: VoltageReduction) -> f64 {
    1.0 - power_ratio(vr)
}

/// AVM-guided operating point: the deepest voltage reduction whose AVM
/// does not exceed `threshold` (0 = strictly error-free operation).
/// `avm_by_vr` must be sorted by increasing reduction and include the
/// nominal point implicitly (AVM 0 by construction).
pub fn select_operating_point(
    avm_by_vr: &[(VoltageReduction, f64)],
    threshold: f64,
) -> VoltageReduction {
    let mut best = VoltageReduction::Nominal;
    for &(vr, avm) in avm_by_vr {
        if avm <= threshold && vr.fraction() > best.fraction() {
            best = vr;
        }
    }
    best
}

/// Energy accounting for the clock-stretch error-prevention technique:
/// running at `vr` while stretching the clock (one extra cycle) for the
/// fraction `prone_fraction` of instructions that the error model marks
/// as error-prone at this corner. Returns normalized energy relative to
/// nominal-voltage execution of the same program
/// (`E = P(vr) × (1 + prone_fraction)`, nominal = 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationEnergy {
    /// Operating point.
    pub vr: VoltageReduction,
    /// Fraction of dynamic instructions stretched.
    pub prone_fraction: f64,
    /// Normalized energy (nominal, unprotected = 1.0).
    pub energy: f64,
}

/// Evaluate the prevention technique at `vr`.
pub fn mitigation_energy(vr: VoltageReduction, prone_fraction: f64) -> MitigationEnergy {
    assert!((0.0..=1.0).contains(&prone_fraction), "invalid fraction");
    MitigationEnergy {
        vr,
        prone_fraction,
        energy: power_ratio(vr) * (1.0 + prone_fraction),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        assert!((power_ratio_at(0.0) - 1.0).abs() < 1e-12);
        let s10 = 1.0 - power_ratio_at(0.10);
        assert!(
            (s10 - 0.21).abs() < 0.001,
            "10% VR ≈ 21% savings, got {s10}"
        );
        let s20 = 1.0 - power_ratio_at(0.20);
        assert!(
            (s20 - 0.56).abs() < 0.001,
            "20% VR ≈ 56% savings, got {s20}"
        );
        // Monotone increasing savings.
        assert!(power_savings(VoltageReduction::VR20) > power_savings(VoltageReduction::VR15));
        assert!(power_savings(VoltageReduction::VR15) > 0.0);
    }

    #[test]
    fn operating_point_selection() {
        use VoltageReduction::*;
        // k-means-like: error-free at both levels → deepest reduction.
        let safe = [(VR15, 0.0), (VR20, 0.0)];
        assert_eq!(select_operating_point(&safe, 0.0), VR20);
        // Errors at VR20 only → VR15.
        let mid = [(VR15, 0.0), (VR20, 0.3)];
        assert_eq!(select_operating_point(&mid, 0.0), VR15);
        // Errors everywhere → nominal.
        let none = [(VR15, 0.5), (VR20, 0.9)];
        assert_eq!(select_operating_point(&none, 0.0), Nominal);
        // A tolerance threshold admits low-AVM points.
        assert_eq!(select_operating_point(&mid, 0.35), VR20);
    }

    #[test]
    fn mitigation_energy_tradeoff() {
        // Stretching a tiny fraction at VR20 keeps most of the savings.
        let m = mitigation_energy(VoltageReduction::VR20, 0.01);
        assert!(m.energy < 0.5, "VR20 with 1% stretching stays cheap");
        // Stretching everything erases the benefit.
        let all = mitigation_energy(VoltageReduction::VR15, 1.0);
        assert!(all.energy > 1.0);
    }

    #[test]
    #[should_panic(expected = "calibrated range")]
    fn out_of_range_fraction_rejected() {
        power_ratio_at(0.5);
    }
}
