//! Durable campaign execution: a write-ahead outcome journal, campaign
//! manifests, and crash-safe artifact writes.
//!
//! A paper-scale sweep is 1068 injection runs per (benchmark, VR, model)
//! cell; losing hours of completed runs to one OOM kill or ctrl-C is not
//! acceptable. Following the ZOFI principle that a fault-injection tool
//! must tolerate the chaos it creates, every completed run is appended to
//! an on-disk journal *before* it counts, as a length-prefixed,
//! checksummed record behind an fsync'd append path:
//!
//! ```text
//! file   := magic "TEIJRNL1" record*
//! record := len:u32le payload:[u8; len] fnv64(payload):u64le
//! ```
//!
//! The first record is the campaign **manifest** — a canonical JSON
//! identity of (benchmark, model fingerprint, VR, run count, seed,
//! timeout) — and a journal whose manifest hash differs from the resuming
//! campaign's is **refused** ([`TeiError::ManifestMismatch`]), never
//! silently merged. The replay engine (`FromZero` vs `Checkpointed`) is
//! deliberately *excluded* from the identity: outcomes are engine-
//! independent (see `replay_equivalence`), so a sweep started under one
//! engine may resume under another.
//!
//! Recovery truncates a torn tail (a partial record from a mid-write
//! crash, or a record whose checksum does not match) back to the last
//! good record and resumes from there; per-run records are self-contained
//! so replaying the journal reconstructs the exact partial
//! [`OutcomeCounts`](crate::campaign::OutcomeCounts).

// Orchestration must degrade to typed errors, never panic mid-sweep
// (clippy.toml bans the panicking extractors here).
#![deny(clippy::disallowed_methods)]

use crate::campaign::Outcome;
use crate::error::TeiError;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Journal file magic (8 bytes, versioned).
pub const MAGIC: &[u8; 8] = b"TEIJRNL1";

// ---------------------------------------------------------------------
// Checksums and crash-safe file writes
// ---------------------------------------------------------------------

/// 64-bit FNV-1a — the toolflow's record and artifact checksum. Not
/// cryptographic; it detects torn writes and bit rot, which is the threat
/// model for local experiment artifacts.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fsync_dir(path: &Path) {
    // Durability of the rename itself. Best-effort: some filesystems
    // refuse directory fsync; the data file was already synced.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, fsync the directory. A crash at
/// any point leaves either the old file or the new one — never a torn
/// mix. Returns the [`fnv64`] checksum of `bytes`.
///
/// # Errors
///
/// [`TeiError::Io`] on any filesystem failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<u64, TeiError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            TeiError::io(
                "resolve artifact path",
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let mut f = File::create(&tmp).map_err(|e| TeiError::io("create temp file", &tmp, e))?;
    f.write_all(bytes)
        .map_err(|e| TeiError::io("write temp file", &tmp, e))?;
    f.sync_all()
        .map_err(|e| TeiError::io("sync temp file", &tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| TeiError::io("rename into place", path, e))?;
    fsync_dir(path);
    Ok(fnv64(bytes))
}

/// [`atomic_write`] plus a sidecar checksum file (`<name>.fnv`) holding
/// `fnv64-<hex>  <name>`, itself written atomically. Returns the checksum.
///
/// # Errors
///
/// [`TeiError::Io`] on any filesystem failure.
pub fn atomic_write_checksummed(path: &Path, bytes: &[u8]) -> Result<u64, TeiError> {
    let sum = atomic_write(path, bytes)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let sidecar = sidecar_path(path);
    atomic_write(&sidecar, format!("fnv64-{sum:016x}  {name}\n").as_bytes())?;
    Ok(sum)
}

/// The sidecar checksum path of an artifact (`x.json` → `x.json.fnv`).
pub fn sidecar_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".fnv");
    PathBuf::from(s)
}

/// Verify an artifact against its sidecar checksum. `Ok(true)` when the
/// checksum matches, `Ok(false)` when the sidecar is missing (legacy
/// artifact).
///
/// # Errors
///
/// [`TeiError::Io`] if either file cannot be read, and
/// [`TeiError::JournalCorrupt`] when the checksum does not match.
pub fn verify_checksummed(path: &Path) -> Result<bool, TeiError> {
    let sidecar = sidecar_path(path);
    let recorded = match std::fs::read_to_string(&sidecar) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(TeiError::io("read checksum sidecar", &sidecar, e)),
    };
    let bytes = std::fs::read(path).map_err(|e| TeiError::io("read artifact", path, e))?;
    let want = recorded
        .strip_prefix("fnv64-")
        .and_then(|r| r.get(..16))
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| TeiError::JournalCorrupt {
            path: sidecar.clone(),
            reason: "unparsable checksum sidecar".into(),
        })?;
    if fnv64(&bytes) == want {
        Ok(true)
    } else {
        Err(TeiError::JournalCorrupt {
            path: path.to_path_buf(),
            reason: "artifact checksum mismatch".into(),
        })
    }
}

// ---------------------------------------------------------------------
// Campaign manifest
// ---------------------------------------------------------------------

/// The identity a journal is keyed by. Two campaigns with equal manifest
/// hashes draw identical per-run outcomes, so their journals are
/// interchangeable; anything else must be refused at resume time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Journal format version.
    pub version: u32,
    /// Benchmark name.
    pub benchmark: String,
    /// Model family label.
    pub model: String,
    /// VR level label.
    pub vr: String,
    /// Total runs the sweep wants.
    pub runs: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// `f64::to_bits` of the timeout factor (bit-exact identity).
    pub timeout_factor_bits: u64,
    /// Golden-run fingerprint: retired instructions.
    pub golden_instructions: u64,
    /// Golden-run fingerprint: dynamic FP operations.
    pub golden_fp_ops: u64,
    /// Golden-run fingerprint: [`fnv64`] of the error-free output.
    pub golden_output_fnv: u64,
    /// [`fnv64`] over the model's per-op error-ratio bit patterns — a
    /// cheap but sensitive identity for the calibrated model.
    pub model_fingerprint: u64,
}

impl CampaignManifest {
    /// Canonical serialized form (field order is declaration order, so the
    /// bytes — and the hash — are stable across processes).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .unwrap_or_default()
    }

    /// The manifest content hash journals are keyed by.
    pub fn hash(&self) -> u64 {
        fnv64(&self.canonical_bytes())
    }

    /// Stable journal file name for this cell.
    pub fn file_name(&self) -> String {
        format!("{}.tei-journal", self.stem())
    }

    /// Per-worker journal file name used by the campaign fabric: worker
    /// `idx` appends only to `<slug>-<hash>.w<idx>.tei-journal`, so
    /// concurrent workers never contend on one file and a crashed
    /// worker's partial journal stays attributable.
    pub fn worker_file_name(&self, idx: u32) -> String {
        format!("{}.w{idx}.tei-journal", self.stem())
    }

    /// Lease-table file name the fabric coordinator persists next to the
    /// journals (same manifest-hash key, so a foreign table is refused).
    pub fn lease_file_name(&self) -> String {
        format!("{}.leases.json", self.stem())
    }

    /// `<slug>-<hash>` stem shared by the journal, per-worker journal,
    /// and lease-table file names.
    fn stem(&self) -> String {
        let slug: String = format!("{}-{}-{}", self.benchmark, self.model, self.vr)
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{slug}-{:016x}", self.hash())
    }
}

// ---------------------------------------------------------------------
// Run records
// ---------------------------------------------------------------------

/// Outcome stored in a journal record: a classified run, or one that was
/// quarantined after panicking twice (its repro triple is retained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordedOutcome {
    /// A normally classified run.
    Classified(Outcome),
    /// The run panicked on both attempts and was isolated.
    Quarantined,
}

/// One completed injection run, as durably journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Run index within the campaign (0-based).
    pub run: u64,
    /// The run's derived RNG seed (repro handle).
    pub seed: u64,
    /// Drawn target FP index, if the draw reached one (`None` for
    /// wrong-path / no-error runs and for quarantines before the draw).
    pub target: Option<u64>,
    /// Drawn XOR corruption mask (0 when no draw happened).
    pub mask: u64,
    /// Classified or quarantined outcome.
    pub outcome: RecordedOutcome,
    /// The draw landed on a squashed (wrong-path) writeback.
    pub wrong_path: bool,
    /// The model assigned zero error probability everywhere.
    pub no_error: bool,
    /// The target event never fired during replay.
    pub mistargeted: bool,
    /// The first attempt panicked; this outcome came from the retry.
    pub retried: bool,
    /// Golden error-free instruction count (context for offline repro).
    pub instructions: u64,
}

const TAG_MANIFEST: u8 = 0;
const TAG_RUN: u8 = 1;
const NO_TARGET: u64 = u64::MAX;

impl RunRecord {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(1 + 8 * 5 + 2);
        p.push(TAG_RUN);
        p.extend_from_slice(&self.run.to_le_bytes());
        p.extend_from_slice(&self.seed.to_le_bytes());
        p.extend_from_slice(&self.target.unwrap_or(NO_TARGET).to_le_bytes());
        p.extend_from_slice(&self.mask.to_le_bytes());
        p.push(match self.outcome {
            RecordedOutcome::Classified(Outcome::Masked) => 0,
            RecordedOutcome::Classified(Outcome::Sdc) => 1,
            RecordedOutcome::Classified(Outcome::Crash) => 2,
            RecordedOutcome::Classified(Outcome::Timeout) => 3,
            RecordedOutcome::Quarantined => 4,
        });
        p.push(
            u8::from(self.wrong_path)
                | u8::from(self.no_error) << 1
                | u8::from(self.mistargeted) << 2
                | u8::from(self.retried) << 3,
        );
        p.extend_from_slice(&self.instructions.to_le_bytes());
        p
    }

    fn decode(payload: &[u8]) -> Option<RunRecord> {
        if payload.len() != 1 + 8 * 4 + 2 + 8 || payload[0] != TAG_RUN {
            return None;
        }
        // Indexing cannot fail: the payload length was checked above.
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let target = u64_at(17);
        let outcome = match payload[33] {
            0 => RecordedOutcome::Classified(Outcome::Masked),
            1 => RecordedOutcome::Classified(Outcome::Sdc),
            2 => RecordedOutcome::Classified(Outcome::Crash),
            3 => RecordedOutcome::Classified(Outcome::Timeout),
            4 => RecordedOutcome::Quarantined,
            _ => return None,
        };
        let flags = payload[34];
        Some(RunRecord {
            run: u64_at(1),
            seed: u64_at(9),
            target: (target != NO_TARGET).then_some(target),
            mask: u64_at(25),
            outcome,
            wrong_path: flags & 1 != 0,
            no_error: flags & 2 != 0,
            mistargeted: flags & 4 != 0,
            retried: flags & 8 != 0,
            instructions: u64_at(35),
        })
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Largest frame recovery will accept; anything bigger is a corrupt
/// length prefix, not a real record.
const MAX_PAYLOAD: usize = 1 << 20;

// ---------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------

/// Append-only write-ahead log of completed injection runs.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    appended: u64,
}

/// Result of opening a journal: the handle plus every run already
/// durably recorded under the same manifest.
#[derive(Debug)]
pub struct JournalResume {
    /// The open journal, positioned for appends.
    pub journal: Journal,
    /// Replayed records (possibly after torn-tail truncation).
    pub completed: Vec<RunRecord>,
    /// Bytes discarded from a torn tail during recovery (0 on a clean
    /// open; non-zero means the previous process died mid-append).
    pub truncated_bytes: u64,
}

impl Journal {
    /// Open `dir/<manifest file name>` for resuming, or create it fresh.
    /// An existing journal is validated (magic, manifest hash, record
    /// checksums); a torn or checksum-corrupt tail is truncated back to
    /// the last good record, and a manifest that does not match `manifest`
    /// is refused.
    ///
    /// # Errors
    ///
    /// [`TeiError::Io`] on filesystem failures, [`TeiError::JournalCorrupt`]
    /// when the header itself is unreadable, and
    /// [`TeiError::ManifestMismatch`] for a journal from a different
    /// campaign.
    pub fn open_or_create(
        dir: &Path,
        manifest: &CampaignManifest,
    ) -> Result<JournalResume, TeiError> {
        std::fs::create_dir_all(dir).map_err(|e| TeiError::io("create journal dir", dir, e))?;
        Self::open_or_create_at(&dir.join(manifest.file_name()), manifest)
    }

    /// [`Journal::open_or_create`] at an explicit file path instead of the
    /// manifest-derived name — the fabric uses this to give each worker
    /// its own journal ([`CampaignManifest::worker_file_name`]) under the
    /// same manifest identity.
    ///
    /// # Errors
    ///
    /// See [`Journal::open_or_create`].
    pub fn open_or_create_at(
        path: &Path,
        manifest: &CampaignManifest,
    ) -> Result<JournalResume, TeiError> {
        if path.exists() {
            Self::resume(path, manifest)
        } else {
            Self::create(path, manifest)
        }
    }

    /// Read-only replay of a journal file: validate the magic and
    /// manifest, return every good record, and stop at (without
    /// truncating) a torn or corrupt tail. The file is never opened for
    /// writing, so the fabric's merge can scan the journals of workers
    /// that are still alive.
    ///
    /// # Errors
    ///
    /// [`TeiError::Io`] when the file cannot be read,
    /// [`TeiError::JournalCorrupt`] when the header is unreadable, and
    /// [`TeiError::ManifestMismatch`] for a foreign journal.
    pub fn replay_readonly(
        path: &Path,
        manifest: &CampaignManifest,
    ) -> Result<Vec<RunRecord>, TeiError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| TeiError::io("read journal", path, e))?;
        let (completed, _) = Self::decode_records(&bytes, path, manifest)?;
        Ok(completed)
    }

    /// Shared record decoder of [`Journal::resume`] and
    /// [`Journal::replay_readonly`]: validate magic + manifest, collect
    /// good records, and return the byte offset of the first bad frame
    /// (the torn-tail boundary).
    fn decode_records(
        bytes: &[u8],
        path: &Path,
        manifest: &CampaignManifest,
    ) -> Result<(Vec<RunRecord>, usize), TeiError> {
        let corrupt = |reason: &str| TeiError::JournalCorrupt {
            path: path.to_path_buf(),
            reason: reason.into(),
        };
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut off = MAGIC.len();

        // Frame reader: Some((payload, next_off)), None on a torn or
        // corrupt frame (recoverable tail).
        let read_frame = |off: usize| -> Option<(&[u8], usize)> {
            let len_end = off.checked_add(4)?;
            if len_end > bytes.len() {
                return None;
            }
            let len = u32::from_le_bytes(bytes[off..len_end].try_into().ok()?) as usize;
            if len > MAX_PAYLOAD {
                return None;
            }
            let payload_end = len_end.checked_add(len)?;
            let frame_end = payload_end.checked_add(8)?;
            if frame_end > bytes.len() {
                return None;
            }
            let payload = &bytes[len_end..payload_end];
            let stored = u64::from_le_bytes(bytes[payload_end..frame_end].try_into().ok()?);
            (fnv64(payload) == stored).then_some((payload, frame_end))
        };

        // The manifest record is load-bearing: without it the journal's
        // identity is unknown, so corruption here is not recoverable.
        let (mpayload, next) =
            read_frame(off).ok_or_else(|| corrupt("unreadable manifest record"))?;
        if mpayload.first() != Some(&TAG_MANIFEST) {
            return Err(corrupt("first record is not a manifest"));
        }
        let found = fnv64(&mpayload[1..]);
        let expected = manifest.hash();
        if found != expected {
            return Err(TeiError::ManifestMismatch {
                path: path.to_path_buf(),
                expected,
                found,
            });
        }
        off = next;

        let mut completed = Vec::new();
        while let Some((payload, next)) = read_frame(off) {
            match RunRecord::decode(payload) {
                Some(rec) => completed.push(rec),
                None => break, // valid checksum but alien tag/shape: stop
            }
            off = next;
        }
        Ok((completed, off))
    }

    fn create(path: &Path, manifest: &CampaignManifest) -> Result<JournalResume, TeiError> {
        // Header goes through the atomic helper so a crash during
        // creation never leaves a half-written magic for a later resume
        // to stumble over.
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        let mut payload = vec![TAG_MANIFEST];
        payload.extend_from_slice(&manifest.canonical_bytes());
        header.extend_from_slice(&frame(&payload));
        atomic_write(path, &header)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| TeiError::io("open journal for append", path, e))?;
        Ok(JournalResume {
            journal: Journal {
                file,
                path: path.to_path_buf(),
                appended: 0,
            },
            completed: Vec::new(),
            truncated_bytes: 0,
        })
    }

    fn resume(path: &Path, manifest: &CampaignManifest) -> Result<JournalResume, TeiError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| TeiError::io("read journal", path, e))?;
        let (completed, off) = Self::decode_records(&bytes, path, manifest)?;
        let truncated_bytes = (bytes.len() - off) as u64;
        drop(bytes);

        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| TeiError::io("open journal for append", path, e))?;
        if truncated_bytes > 0 {
            // Chop the torn tail so the next append starts on a frame
            // boundary.
            file.set_len(off as u64)
                .map_err(|e| TeiError::io("truncate torn journal tail", path, e))?;
            file.sync_all()
                .map_err(|e| TeiError::io("sync truncated journal", path, e))?;
        }
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            appended: 0,
        };
        use std::io::Seek;
        journal
            .file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| TeiError::io("seek journal end", path, e))?;
        Ok(JournalResume {
            journal,
            completed,
            truncated_bytes,
        })
    }

    /// Durably append one run record (write + fsync before returning, so
    /// a record that `append` acknowledged survives any crash).
    ///
    /// # Errors
    ///
    /// [`TeiError::Io`] when the write or sync fails.
    pub fn append(&mut self, rec: &RunRecord) -> Result<(), TeiError> {
        let framed = frame(&rec.encode());
        self.file
            .write_all(&framed)
            .map_err(|e| TeiError::io("append journal record", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| TeiError::io("sync journal record", &self.path, e))?;
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this handle (excludes replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    // Tests should panic loudly, not thread errors.
    #![allow(clippy::disallowed_methods)]

    use super::*;

    fn manifest() -> CampaignManifest {
        CampaignManifest {
            version: 1,
            benchmark: "is".into(),
            model: "DA-model".into(),
            vr: "VR20".into(),
            runs: 8,
            seed: 42,
            timeout_factor_bits: 2.0f64.to_bits(),
            golden_instructions: 1000,
            golden_fp_ops: 100,
            golden_output_fnv: 7,
            model_fingerprint: 9,
        }
    }

    fn rec(run: u64) -> RunRecord {
        RunRecord {
            run,
            seed: run ^ 0xabc,
            target: Some(run * 3),
            mask: 1 << run,
            outcome: RecordedOutcome::Classified(Outcome::Sdc),
            wrong_path: false,
            no_error: false,
            mistargeted: false,
            retried: run % 2 == 1,
            instructions: 1000,
        }
    }

    #[test]
    fn record_roundtrip() {
        for r in [rec(0), rec(5)] {
            assert_eq!(RunRecord::decode(&r.encode()), Some(r));
        }
        let q = RunRecord {
            target: None,
            outcome: RecordedOutcome::Quarantined,
            ..rec(2)
        };
        assert_eq!(RunRecord::decode(&q.encode()), Some(q));
    }

    #[test]
    fn append_and_resume() {
        let dir = std::env::temp_dir().join(format!("tei-jrnl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = manifest();
        let mut r = Journal::open_or_create(&dir, &m).expect("create");
        assert!(r.completed.is_empty());
        for i in 0..5 {
            r.journal.append(&rec(i)).expect("append");
        }
        drop(r);
        let r2 = Journal::open_or_create(&dir, &m).expect("resume");
        assert_eq!(r2.completed.len(), 5);
        assert_eq!(r2.truncated_bytes, 0);
        assert_eq!(r2.completed[3], rec(3));

        // A different manifest must be refused.
        let mut other = manifest();
        other.seed = 43;
        // Same path forced: write the other manifest's journal name aside.
        let err = Journal::resume(r2.journal.path(), &other).unwrap_err();
        assert!(matches!(err, TeiError::ManifestMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_and_verify() {
        let dir = std::env::temp_dir().join(format!("tei-aw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.json");
        atomic_write_checksummed(&p, b"{\"x\":1}").expect("write");
        assert!(verify_checksummed(&p).expect("verify"));
        // Corrupt the artifact: verification must fail loudly.
        std::fs::write(&p, b"{\"x\":2}").unwrap();
        assert!(verify_checksummed(&p).is_err());
        // Missing sidecar is a soft Ok(false).
        let q = dir.join("b.json");
        std::fs::write(&q, b"zz").unwrap();
        assert!(!verify_checksummed(&q).expect("no sidecar"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
