//! Environment-tunable experiment sizing.

/// Read a `usize` from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `TEI_FULL=1` selects paper-scale experiment sizes.
pub fn full_scale() -> bool {
    std::env::var("TEI_FULL").is_ok_and(|v| v == "1")
}

/// Injection runs per (benchmark, model, VR) cell. Paper: 1068 (3 % margin,
/// 95 % confidence); default scaled down for laptop runtimes. Override with
/// `TEI_RUNS`.
pub fn default_runs() -> usize {
    let fallback = if full_scale() { 1068 } else { 120 };
    env_usize("TEI_RUNS", fallback)
}

/// Operand pairs per instruction type for model development DTA. Paper: 1 M
/// per type; default scaled down. Override with `TEI_DTA_SAMPLES`.
pub fn default_dta_samples() -> usize {
    let fallback = if full_scale() { 1_000_000 } else { 20_000 };
    env_usize("TEI_DTA_SAMPLES", fallback)
}

/// Golden-run checkpoint spacing in dynamic FP operations for the
/// fork-replay campaign engine. 0 selects the recorder's auto policy
/// (a dense initial interval with adaptive thinning under a fixed
/// snapshot cap). Spacing is a pure performance knob — campaign outcome
/// tallies are identical for every value. Override with
/// `TEI_CHECKPOINT_INTERVAL`.
pub fn default_checkpoint_interval() -> u64 {
    env_usize("TEI_CHECKPOINT_INTERVAL", 0) as u64
}

/// Worker threads for sharded DTA campaigns and per-op model building.
/// Defaults to all available cores; override with `TEI_THREADS` (set it
/// to 1 for fully serial execution — results are identical either way).
pub fn default_threads() -> usize {
    let fallback = std::thread::available_parallelism().map_or(4, |n| n.get());
    env_usize("TEI_THREADS", fallback).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("TEI_SURELY_UNSET_VAR_12345", 7), 7);
    }
}
